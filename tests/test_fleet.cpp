// Fleet engine differential suite: every CrossbarFleet bulk entry point is
// pinned against a serial loop over independent single-crossbar ArrayCode
// engines, and the fleet Monte Carlo is pinned BIT-IDENTICAL to the flat
// single-crossbar run_montecarlo at several shard factorizations and lane
// counts -- the contract that lets bench_fleet_throughput gate its exit
// status on exact equality.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "arch/fleet.hpp"
#include "core/array_code.hpp"
#include "reliability/fleet_reliability.hpp"
#include "reliability/montecarlo.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

arch::FleetParams tiny_fleet(std::size_t shards, std::size_t threads = 0) {
  arch::FleetParams params;
  params.n = 15;
  params.m = 5;
  params.shards = shards;
  params.threads = threads;
  return params;
}

TEST(FleetParams, ValidateRejectsBadShapes) {
  EXPECT_THROW(tiny_fleet(0).validate(), std::invalid_argument);
  arch::FleetParams bad_m = tiny_fleet(4);
  bad_m.m = 4;  // even m
  EXPECT_THROW(bad_m.validate(), std::invalid_argument);
  bad_m.m = 7;  // does not divide n
  EXPECT_THROW(bad_m.validate(), std::invalid_argument);
  EXPECT_NO_THROW(tiny_fleet(1).validate());
}

TEST(Fleet, TranslateRoundTripsShardMajorAddresses) {
  arch::CrossbarFleet fleet(tiny_fleet(3));
  const std::uint64_t cells = 15u * 15u;
  EXPECT_EQ(fleet.params().data_bits(), 3u * cells);
  const arch::FleetAddress first = fleet.translate(0);
  EXPECT_EQ(first, (arch::FleetAddress{0, 0, 0}));
  const arch::FleetAddress last = fleet.translate(3 * cells - 1);
  EXPECT_EQ(last, (arch::FleetAddress{2, 14, 14}));
  const arch::FleetAddress mid = fleet.translate(cells + 17);
  EXPECT_EQ(mid, (arch::FleetAddress{1, 1, 2}));
  EXPECT_THROW(fleet.translate(3 * cells), std::out_of_range);
}

TEST(Fleet, LoadRandomMatchesPerShardSubstreamsAndDrawsOnce) {
  arch::CrossbarFleet fleet(tiny_fleet(5));
  util::Rng rng(101);
  fleet.load_random(rng);
  // Exactly one draw: the caller's stream continues as if load_random had
  // drawn a single value.
  util::Rng expect_rng(101);
  const std::uint64_t base_seed = expect_rng.next();
  EXPECT_EQ(rng.next(), expect_rng.next());
  // Shard s's image comes from substream s with the fill_random word
  // discipline; check bits must already be consistent.
  for (std::size_t s = 0; s < 5; ++s) {
    util::Rng shard_rng = util::Rng::for_stream(base_seed, s);
    util::BitMatrix image(15, 15);
    for (auto& row : image.rows_span()) util::fill_random(row, shard_rng);
    EXPECT_EQ(fleet.data(s), image) << "shard " << s;
    EXPECT_TRUE(fleet.code(s).consistent_with(fleet.data(s)));
  }
  EXPECT_TRUE(fleet.all_consistent());
  // Distinct shards, distinct images (overwhelmingly likely at 225 bits).
  EXPECT_NE(fleet.data(0), fleet.data(1));
}

TEST(Fleet, LoadRandomIsWorkerCountInvariant) {
  arch::CrossbarFleet serial(tiny_fleet(6, /*threads=*/1));
  arch::CrossbarFleet wide(tiny_fleet(6, /*threads=*/0));
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  serial.load_random(rng_a);
  wide.load_random(rng_b);
  for (std::size_t s = 0; s < 6; ++s) {
    ASSERT_EQ(serial.data(s), wide.data(s)) << "shard " << s;
  }
}

TEST(Fleet, ScrubMatchesIndependentSingleCrossbarEngines) {
  // Differential: the fleet scrub must agree, shard for shard and in
  // aggregate, with a serial loop over independent ArrayCode engines
  // running the identical images and injected faults.
  arch::CrossbarFleet fleet(tiny_fleet(4));
  util::Rng rng(23);
  fleet.load_random(rng);
  std::vector<util::BitMatrix> mirror_data;
  std::vector<ecc::ArrayCode> mirror_codes;
  for (std::size_t s = 0; s < 4; ++s) {
    mirror_data.push_back(fleet.data(s));
    mirror_codes.emplace_back(15, 5);
    mirror_codes.back().encode_all(mirror_data.back());
  }
  // One correctable error per shard plus a two-bit block in shard 2.
  for (std::size_t s = 0; s < 4; ++s) {
    fleet.inject_data_error(s, 3, 3);
    mirror_data[s].flip(3, 3);
  }
  fleet.inject_data_error(2, 0, 0);
  fleet.inject_data_error(2, 0, 1);
  mirror_data[2].flip(0, 0);
  mirror_data[2].flip(0, 1);

  const arch::FleetScrubReport report = fleet.scrub_all();
  arch::FleetScrubReport expect;
  for (std::size_t s = 0; s < 4; ++s) {
    const ecc::ScrubReport r = mirror_codes[s].scrub(mirror_data[s]);
    ++expect.shards_checked;
    expect.blocks_checked += r.blocks_checked;
    expect.clean += r.clean;
    expect.corrected_data += r.corrected_data;
    expect.corrected_check += r.corrected_check;
    expect.uncorrectable += r.uncorrectable;
  }
  EXPECT_EQ(report, expect);
  // Post-scrub images agree bit for bit with the mirrors.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(fleet.data(s), mirror_data[s]) << "shard " << s;
  }
  // Counters recorded the pass and the injections.
  const arch::ShardCounters totals = fleet.total_counters();
  EXPECT_EQ(totals.scrub_passes, 4u);
  EXPECT_EQ(totals.injected_faults, 6u);
  EXPECT_EQ(totals.corrected_data, report.corrected_data);
  EXPECT_EQ(totals.uncorrectable, report.uncorrectable);
}

TEST(Fleet, InjectRandomErrorsIsDeterministicAndDistinct) {
  arch::CrossbarFleet fleet_a(tiny_fleet(3));
  arch::CrossbarFleet fleet_b(tiny_fleet(3));
  util::Rng rng_a(55);
  util::Rng rng_b(55);
  fleet_a.load_random(rng_a);
  fleet_b.load_random(rng_b);
  const auto flips_a = fleet_a.inject_random_errors(rng_a, 40);
  const auto flips_b = fleet_b.inject_random_errors(rng_b, 40);
  ASSERT_EQ(flips_a.size(), 40u);
  EXPECT_EQ(flips_a, flips_b);
  for (std::size_t i = 1; i < flips_a.size(); ++i) {
    EXPECT_FALSE(flips_a[i] == flips_a[i - 1]);  // sorted distinct addresses
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(fleet_a.data(s), fleet_b.data(s));
  }
  EXPECT_THROW(
      fleet_a.inject_random_errors(rng_a, fleet_a.params().data_bits() + 1),
      std::invalid_argument);
}

TEST(Fleet, BroadcastThenEncodeKeepsEveryShardConsistent) {
  arch::CrossbarFleet fleet(tiny_fleet(4));
  util::Rng rng(9);
  const util::BitMatrix image = util::random_bit_matrix(15, 15, rng);
  fleet.load_broadcast(image);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(fleet.data(s), image);
  EXPECT_TRUE(fleet.all_consistent());
  fleet.inject_data_error(1, 2, 2);
  EXPECT_FALSE(fleet.all_consistent());
  fleet.encode_all();  // re-encode accepts the flipped bit as data
  EXPECT_TRUE(fleet.all_consistent());
  const util::BitMatrix wrong_shape(10, 10);
  EXPECT_THROW(fleet.load_broadcast(wrong_shape), std::invalid_argument);
}

rel::FleetMonteCarloConfig fleet_mc(std::size_t shards,
                                    std::size_t trials_per_shard,
                                    std::size_t threads) {
  rel::FleetMonteCarloConfig config;
  config.n = 20;
  config.m = 5;
  config.fit_per_bit = 1e6;  // flips near-certain per trial
  config.window_hours = 24.0;
  config.shards = shards;
  config.trials_per_shard = trials_per_shard;
  config.threads = threads;
  return config;
}

TEST(FleetMonteCarlo, BitIdenticalToFlatSingleCrossbarRun) {
  // The tentpole cross-check: S shards x T trials/shard must equal a flat
  // run over S*T trials, counter for counter, because both walk the same
  // substream sequence over the same shared golden image.
  const rel::FleetMonteCarloConfig config = fleet_mc(8, 5, 2);
  util::Rng fleet_rng(77);
  const rel::FleetMonteCarloResult fleet =
      rel::run_fleet_montecarlo(config, fleet_rng);
  util::Rng flat_rng(77);
  const rel::MonteCarloResult flat = run_montecarlo(config.flat(), flat_rng);
  EXPECT_EQ(fleet.total, flat);
  EXPECT_EQ(fleet_rng.next(), flat_rng.next());  // same caller-stream advance
}

TEST(FleetMonteCarlo, ShardFactorizationDoesNotChangeTotals) {
  // 40 trials as 8x5, 4x10, 2x20, 40x1: identical totals every way.
  util::Rng rng_a(31);
  const rel::FleetMonteCarloResult base =
      rel::run_fleet_montecarlo(fleet_mc(8, 5, 0), rng_a);
  for (const auto& [shards, per_shard] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 10}, {2, 20}, {40, 1}}) {
    util::Rng rng_b(31);
    const rel::FleetMonteCarloResult other =
        rel::run_fleet_montecarlo(fleet_mc(shards, per_shard, 0), rng_b);
    EXPECT_EQ(other.total, base.total) << shards << "x" << per_shard;
    EXPECT_EQ(other.shards.size(), shards);
  }
}

TEST(FleetMonteCarlo, LaneCountDoesNotChangeAnyResultBit) {
  util::Rng rng_serial(13);
  const rel::FleetMonteCarloResult serial =
      rel::run_fleet_montecarlo(fleet_mc(6, 4, 1), rng_serial);
  for (const std::size_t threads : {2u, 5u, 0u}) {
    util::Rng rng(13);
    const rel::FleetMonteCarloResult parallel =
        rel::run_fleet_montecarlo(fleet_mc(6, 4, threads), rng);
    EXPECT_EQ(parallel.total, serial.total) << "threads=" << threads;
    EXPECT_EQ(parallel.shards, serial.shards) << "threads=" << threads;
  }
}

TEST(FleetMonteCarlo, ShardSlotsSumToTotals) {
  util::Rng rng(3);
  const rel::FleetMonteCarloResult result =
      rel::run_fleet_montecarlo(fleet_mc(10, 3, 0), rng);
  ASSERT_EQ(result.shards.size(), 10u);
  rel::FleetShardOutcome sum;
  for (const rel::FleetShardOutcome& s : result.shards) {
    sum.trials_with_errors += s.trials_with_errors;
    sum.trials_failed += s.trials_failed;
    sum.flips_injected += s.flips_injected;
    sum.blocks_failed += s.blocks_failed;
  }
  EXPECT_EQ(sum.trials_with_errors, result.total.trials_with_errors);
  EXPECT_EQ(sum.trials_failed, result.total.trials_failed);
  EXPECT_EQ(sum.flips_injected, result.total.flips_injected);
  EXPECT_EQ(sum.blocks_failed, result.total.blocks_failed);
  EXPECT_EQ(result.total.trials, 30u);
  EXPECT_GT(result.total.trials_with_errors, 0u);
}

// ---------------------------------------------------------------------------
// Degraded mode: quarantine, spares, and exact campaign accounting

TEST(FleetDegraded, QuarantineWithoutSpareExcludesShardEverywhere) {
  arch::CrossbarFleet fleet(tiny_fleet(4));
  util::Rng rng(17);
  fleet.load_random(rng);

  EXPECT_FALSE(fleet.quarantine_shard(2));  // no spare: shard goes dead
  EXPECT_FALSE(fleet.shard_active(2));
  EXPECT_FALSE(fleet.quarantine_shard(2));  // already dead: no double count
  const arch::FleetHealth health = fleet.health();
  EXPECT_EQ(health.active, 3u);
  EXPECT_EQ(health.dead, 1u);
  EXPECT_EQ(health.quarantined, 1u);
  EXPECT_EQ(health.spares_available, 0u);
  EXPECT_EQ(health.spares_activated, 0u);

  // Dead shards have no backing: direct access throws, bulk ops skip.
  EXPECT_THROW((void)fleet.data(2), std::runtime_error);
  EXPECT_THROW((void)fleet.physical_shard(2), std::runtime_error);
  EXPECT_THROW(fleet.inject_data_error(2, 0, 0), std::runtime_error);
  EXPECT_EQ(fleet.scrub_all().shards_checked, 3u);
  EXPECT_TRUE(fleet.all_consistent());  // dead shards vacuously consistent

  // Random injection drops addresses landing on the dead shard but leaves
  // the draw order -- hence every survivor's flips -- unchanged.
  arch::CrossbarFleet mirror(tiny_fleet(4));
  util::Rng rng_a(29);
  util::Rng rng_b(29);
  fleet.load_random(rng_a);
  mirror.load_random(rng_b);
  const auto flips = fleet.inject_random_errors(rng_a, 60);
  const auto mirror_flips = mirror.inject_random_errors(rng_b, 60);
  EXPECT_LT(flips.size(), mirror_flips.size());  // shard 2's share dropped
  for (const arch::FleetAddress& addr : flips) {
    EXPECT_NE(addr.shard, 2u);
  }
  for (const std::size_t s : {0u, 1u, 3u}) {
    EXPECT_EQ(fleet.data(s), mirror.data(s)) << "shard " << s;
  }
}

TEST(FleetDegraded, SpareRemapReplaysTheLogicalShardsImage) {
  arch::FleetParams params = tiny_fleet(4);
  params.spares = 2;
  arch::CrossbarFleet fleet(params);

  EXPECT_TRUE(fleet.quarantine_shard(1));  // respared, still active
  EXPECT_TRUE(fleet.shard_active(1));
  EXPECT_EQ(fleet.physical_shard(1), 4u);  // first spare slot activates first
  const arch::FleetHealth health = fleet.health();
  EXPECT_EQ(health.active, 4u);
  EXPECT_EQ(health.dead, 0u);
  EXPECT_EQ(health.quarantined, 1u);
  EXPECT_EQ(health.spares_available, 1u);
  EXPECT_EQ(health.spares_activated, 1u);

  // Substreams are logical-shard-indexed: after a reload the respared
  // shard carries the exact image its retired predecessor would have.
  arch::CrossbarFleet pristine(tiny_fleet(4));
  util::Rng rng_a(71);
  util::Rng rng_b(71);
  fleet.load_random(rng_a);
  pristine.load_random(rng_b);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(fleet.data(s), pristine.data(s)) << "shard " << s;
  }

  // Exhaust the pool: second quarantine respares, third goes dead.
  EXPECT_TRUE(fleet.quarantine_shard(3));
  EXPECT_EQ(fleet.physical_shard(3), 5u);
  EXPECT_FALSE(fleet.quarantine_shard(0));
  EXPECT_FALSE(fleet.shard_active(0));
  EXPECT_EQ(fleet.health().spares_available, 0u);
}

TEST(FleetDegraded, QuarantineUncorrectableTakesOnlyBrokenShards) {
  arch::CrossbarFleet fleet(tiny_fleet(4));
  util::Rng rng(43);
  fleet.load_random(rng);
  // Shard 0: one correctable flip.  Shard 2: a two-bit block (m=5 corrects
  // at most one data error per block -- uncorrectable).
  fleet.inject_data_error(0, 3, 3);
  fleet.inject_data_error(2, 0, 0);
  fleet.inject_data_error(2, 0, 1);

  const std::vector<std::size_t> quarantined = fleet.quarantine_uncorrectable();
  EXPECT_EQ(quarantined, (std::vector<std::size_t>{2}));
  EXPECT_TRUE(fleet.shard_active(0));  // corrected in the preflight scrub
  EXPECT_FALSE(fleet.shard_active(2));
  EXPECT_TRUE(fleet.all_consistent());
  // Nothing broken, nothing quarantined on a second pass.
  EXPECT_TRUE(fleet.quarantine_uncorrectable().empty());
}

arch::FleetParams campaign_fleet(std::size_t shards, std::size_t spares = 0) {
  arch::FleetParams params;
  params.n = 20;
  params.m = 5;
  params.shards = shards;
  params.spares = spares;
  return params;
}

TEST(FleetCampaign, HealthyFleetIsBitIdenticalToTheFlatEngine) {
  const rel::FleetMonteCarloConfig config = fleet_mc(6, 4, 0);
  arch::CrossbarFleet fleet(campaign_fleet(6));
  util::Rng campaign_rng(91);
  const rel::FleetCampaignResult campaign =
      rel::run_fleet_campaign(config, fleet, campaign_rng);
  EXPECT_FALSE(campaign.degradation.degraded());

  util::Rng flat_rng(91);
  const rel::FleetMonteCarloResult flat =
      rel::run_fleet_montecarlo(config, flat_rng);
  EXPECT_EQ(campaign.total, flat.total);
  EXPECT_EQ(campaign.shards, flat.shards);
  EXPECT_EQ(campaign_rng.next(), flat_rng.next());
}

TEST(FleetCampaign, ResparedShardRunsBitIdenticalToHealthy) {
  const rel::FleetMonteCarloConfig config = fleet_mc(6, 4, 0);
  arch::CrossbarFleet fleet(campaign_fleet(6, /*spares=*/1));
  // An uncorrectable two-bit block in shard 3 before the campaign: the
  // preflight scrub must quarantine it onto the spare.
  fleet.inject_data_error(3, 0, 0);
  fleet.inject_data_error(3, 0, 1);

  util::Rng campaign_rng(91);
  const rel::FleetCampaignResult campaign =
      rel::run_fleet_campaign(config, fleet, campaign_rng);
  EXPECT_EQ(campaign.degradation.quarantined,
            (std::vector<std::size_t>{3}));
  EXPECT_EQ(campaign.degradation.spares_activated, 1u);
  EXPECT_EQ(campaign.degradation.shards_excluded, 0u);
  EXPECT_EQ(campaign.degradation.trials_skipped, 0u);
  EXPECT_FALSE(campaign.shards[3].skipped);

  // Logical-shard substreams make the respared campaign BIT-IDENTICAL to a
  // healthy one: the spare replays shard 3's exact trial sequence.
  util::Rng flat_rng(91);
  const rel::FleetMonteCarloResult healthy =
      rel::run_fleet_montecarlo(config, flat_rng);
  EXPECT_EQ(campaign.total, healthy.total);
  EXPECT_EQ(campaign.shards, healthy.shards);
}

TEST(FleetCampaign, ExcludedShardIsAnExactSubtraction) {
  const rel::FleetMonteCarloConfig config = fleet_mc(6, 4, 0);
  arch::CrossbarFleet fleet(campaign_fleet(6));  // no spares
  fleet.inject_data_error(3, 0, 0);
  fleet.inject_data_error(3, 0, 1);

  util::Rng campaign_rng(91);
  const rel::FleetCampaignResult campaign =
      rel::run_fleet_campaign(config, fleet, campaign_rng);
  EXPECT_EQ(campaign.degradation.quarantined,
            (std::vector<std::size_t>{3}));
  EXPECT_EQ(campaign.degradation.spares_activated, 0u);
  EXPECT_EQ(campaign.degradation.shards_excluded, 1u);
  EXPECT_EQ(campaign.degradation.trials_skipped, config.trials_per_shard);
  EXPECT_TRUE(campaign.shards[3].skipped);
  EXPECT_EQ(campaign.shards[3].stats, rel::MonteCarloResult{});

  // The degraded totals equal the healthy run's minus EXACTLY the excluded
  // shard's slot -- every counter, no slack.
  util::Rng flat_rng(91);
  const rel::FleetMonteCarloResult healthy =
      rel::run_fleet_montecarlo(config, flat_rng);
  rel::MonteCarloResult expected = healthy.total;
  const rel::MonteCarloResult& gone = healthy.shards[3].stats;
  expected.trials -= gone.trials;
  expected.trials_with_errors -= gone.trials_with_errors;
  expected.trials_failed -= gone.trials_failed;
  expected.blocks_total -= gone.blocks_total;
  expected.flips_injected -= gone.flips_injected;
  expected.blocks_failed -= gone.blocks_failed;
  expected.blocks_with_errors -= gone.blocks_with_errors;
  expected.corrected_data -= gone.corrected_data;
  expected.corrected_check -= gone.corrected_check;
  expected.detected_uncorrectable -= gone.detected_uncorrectable;
  expected.miscorrected -= gone.miscorrected;
  EXPECT_EQ(campaign.total, expected);
  // Surviving shards match the healthy run slot for slot.
  for (std::size_t s = 0; s < 6; ++s) {
    if (s == 3) continue;
    EXPECT_EQ(campaign.shards[s], healthy.shards[s]) << "shard " << s;
  }
}

TEST(FleetCampaign, ShapeMismatchRejected) {
  arch::CrossbarFleet fleet(campaign_fleet(4));
  util::Rng rng(1);
  rel::FleetMonteCarloConfig config = fleet_mc(6, 4, 0);  // 6 != 4 shards
  EXPECT_THROW((void)rel::run_fleet_campaign(config, fleet, rng),
               std::invalid_argument);
  config = fleet_mc(4, 4, 0);
  config.n = 15;  // fleet is n=20
  EXPECT_THROW((void)rel::run_fleet_campaign(config, fleet, rng),
               std::invalid_argument);
}

TEST(FleetMttfGrid, EvaluatesEveryCellReproducibly) {
  rel::FleetMttfGridConfig config;
  config.n = 15;
  config.m = 5;
  config.scrub_period_hours = 24.0;
  config.max_hours = 24.0 * 365;
  config.trials = 8;
  config.threads = 0;
  config.fit_points = {1e5, 1e6};
  config.shard_counts = {1, 4};
  util::Rng rng_a(41);
  const auto grid_a = rel::run_fleet_mttf_grid(config, rng_a);
  ASSERT_EQ(grid_a.size(), 4u);
  for (const rel::FleetMttfPoint& point : grid_a) {
    EXPECT_EQ(point.trials, 8u);
    EXPECT_GT(point.analytic_mttf_hours, 0.0);
    EXPECT_GT(point.empirical_mttf_hours, 0.0);
    EXPECT_LE(point.failures, point.trials);
  }
  // Row-major order: fit varies slowest, shards fastest.
  EXPECT_EQ(grid_a[0].fit_per_bit, 1e5);
  EXPECT_EQ(grid_a[1].shards, 4u);
  EXPECT_EQ(grid_a[2].fit_per_bit, 1e6);
  // Same caller seed, same grid -- bit for bit.
  util::Rng rng_b(41);
  const auto grid_b = rel::run_fleet_mttf_grid(config, rng_b);
  for (std::size_t i = 0; i < grid_a.size(); ++i) {
    EXPECT_EQ(grid_a[i].failures, grid_b[i].failures);
    EXPECT_EQ(grid_a[i].empirical_mttf_hours, grid_b[i].empirical_mttf_hours);
    EXPECT_EQ(grid_a[i].scrub_windows, grid_b[i].scrub_windows);
  }
  // More shards at the same SER cannot raise the analytic MTTF.
  EXPECT_LE(grid_a[1].analytic_mttf_hours, grid_a[0].analytic_mttf_hours);
}

}  // namespace
}  // namespace pimecc
