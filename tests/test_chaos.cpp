// Chaos-injection suite for the crash-safety layer: the deterministic I/O
// fault injector itself (util/chaos), the rotated crash-safe checkpoint
// store built on it (util/ckpt_store), and the end-to-end acceptance
// property -- a checkpointed lifetime campaign killed at an arbitrary
// torn-write point resumes from the latest valid generation and finishes
// bit-identical to an uninterrupted run.  Every failure is armed
// explicitly (no clocks, no entropy), so each scenario reproduces from the
// test source alone; fuzzed offsets come from util::Rng substreams, the
// same discipline as the rest of the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "reliability/lifetime.hpp"
#include "util/chaos.hpp"
#include "util/ckpt_store.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

namespace chaos = util::chaos;

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::span<const std::uint8_t> span_of(const std::vector<std::uint8_t>& bytes) {
  return std::span<const std::uint8_t>(bytes.data(), bytes.size());
}

/// Unique per-test path under gtest's temp dir.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "pimecc_chaos_" + name;
}

// ---------------------------------------------------------------------------
// Pure corruption helpers

TEST(Chaos, TruncatedKeepsExactPrefix) {
  const auto bytes = bytes_of("abcdef");
  EXPECT_EQ(chaos::truncated(span_of(bytes), 0).size(), 0u);
  EXPECT_EQ(chaos::truncated(span_of(bytes), 3), bytes_of("abc"));
  EXPECT_EQ(chaos::truncated(span_of(bytes), 6), bytes);
  EXPECT_EQ(chaos::truncated(span_of(bytes), 100), bytes);  // beyond: whole
}

TEST(Chaos, BitFlippedFlipsExactlyOneBit) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x00};
  const auto flipped = chaos::bit_flipped(span_of(bytes), 9);
  EXPECT_EQ(flipped[0], 0x00);
  EXPECT_EQ(flipped[1], 0x02);  // bit 9 = bit 1 of byte 1
  // Involution: flipping again restores the original.
  EXPECT_EQ(chaos::bit_flipped(span_of(flipped), 9), bytes);
  EXPECT_THROW((void)chaos::bit_flipped(span_of(bytes), 16), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Real backend + chaos backend

TEST(Chaos, RealBackendRoundTripsAndReportsMissing) {
  chaos::FileBackend& real = chaos::real_file_backend();
  const std::string path = temp_path("real_roundtrip");
  const auto payload = bytes_of("durable payload");
  real.write_file(path, span_of(payload));
  ASSERT_TRUE(real.exists(path));
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(real.read_file(path, read));
  EXPECT_EQ(read, payload);
  real.remove_file(path);
  EXPECT_FALSE(real.exists(path));
  EXPECT_FALSE(real.read_file(path, read));
  real.remove_file(path);  // missing: still not an error
}

TEST(Chaos, TornWriteLeavesPrefixAndThrows) {
  chaos::ChaosBackend backend;
  const std::string path = temp_path("torn");
  const auto payload = bytes_of("0123456789");
  backend.plan().tear_after = 4;
  EXPECT_THROW(backend.write_file(path, span_of(payload)), chaos::IoError);
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(backend.read_file(path, read));
  EXPECT_EQ(read, bytes_of("0123"));  // exactly the torn prefix reached disk
  EXPECT_EQ(backend.log().writes_torn, 1u);
  // One-shot: the next write goes through whole.
  backend.write_file(path, span_of(payload));
  ASSERT_TRUE(backend.read_file(path, read));
  EXPECT_EQ(read, payload);
  backend.remove_file(path);
}

TEST(Chaos, CorruptBitSucceedsSilently) {
  chaos::ChaosBackend backend;
  const std::string path = temp_path("corrupt");
  const auto payload = bytes_of("AAAA");
  backend.plan().corrupt_bit = 0;
  EXPECT_NO_THROW(backend.write_file(path, span_of(payload)));  // "succeeds"
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(backend.read_file(path, read));
  EXPECT_EQ(read, chaos::bit_flipped(span_of(payload), 0));
  EXPECT_EQ(backend.log().bits_corrupted, 1u);
  backend.remove_file(path);
}

TEST(Chaos, ShortReadTruncatesOnce) {
  chaos::ChaosBackend backend;
  const std::string path = temp_path("short_read");
  const auto payload = bytes_of("full content");
  backend.write_file(path, span_of(payload));
  backend.plan().short_read = 4;
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(backend.read_file(path, read));
  EXPECT_EQ(read, bytes_of("full"));
  EXPECT_EQ(backend.log().reads_shortened, 1u);
  ASSERT_TRUE(backend.read_file(path, read));  // one-shot: next read is whole
  EXPECT_EQ(read, payload);
  backend.remove_file(path);
}

TEST(Chaos, TransientOpenFailuresAreCountedAndConsumed) {
  chaos::ChaosBackend backend;
  const std::string path = temp_path("open_fail");
  const auto payload = bytes_of("x");
  backend.plan().fail_opens = 2;
  EXPECT_THROW(backend.write_file(path, span_of(payload)), chaos::IoError);
  EXPECT_THROW(backend.write_file(path, span_of(payload)), chaos::IoError);
  EXPECT_FALSE(backend.exists(path));  // failed before creating anything
  EXPECT_NO_THROW(backend.write_file(path, span_of(payload)));
  EXPECT_EQ(backend.log().opens_failed, 2u);
  EXPECT_EQ(backend.log().faults_injected(), 2u);
  backend.remove_file(path);
}

// ---------------------------------------------------------------------------
// CheckpointStore: rotation, recovery, retry

util::CheckpointStore::Validator accept_all() {
  return [](std::span<const std::uint8_t>) { return true; };
}

TEST(CkptStore, RejectsEmptyPathAndZeroGenerations) {
  EXPECT_THROW(util::CheckpointStore("", {}, nullptr), std::invalid_argument);
  util::CheckpointStore::Options bad;
  bad.generations = 0;
  EXPECT_THROW(util::CheckpointStore(temp_path("opts"), bad, nullptr),
               std::invalid_argument);
}

TEST(CkptStore, SaveRotatesNewestFirstAndBoundsGenerations) {
  chaos::ChaosBackend backend;
  util::CheckpointStore::Options options;
  options.generations = 3;
  util::CheckpointStore store(temp_path("rotate"), options, &backend);
  for (int i = 1; i <= 4; ++i) {
    const auto image = bytes_of("snapshot " + std::to_string(i));
    store.save(span_of(image));
  }
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(backend.read_file(store.generation_path(1), read));
  EXPECT_EQ(read, bytes_of("snapshot 4"));
  ASSERT_TRUE(backend.read_file(store.generation_path(2), read));
  EXPECT_EQ(read, bytes_of("snapshot 3"));
  ASSERT_TRUE(backend.read_file(store.generation_path(3), read));
  EXPECT_EQ(read, bytes_of("snapshot 2"));
  // The window is bounded: snapshot 1 rotated out, no stray temp file.
  EXPECT_FALSE(backend.exists(store.generation_path(4)));
  EXPECT_FALSE(backend.exists(store.temp_path()));
  for (std::size_t g = 1; g <= 3; ++g) backend.remove_file(store.generation_path(g));
}

TEST(CkptStore, RecoverPrefersNewestAndCountsRejections) {
  chaos::ChaosBackend backend;
  util::CheckpointStore store(temp_path("recover"), {}, &backend);
  store.save(span_of(bytes_of("old")));
  store.save(span_of(bytes_of("mid")));
  store.save(span_of(bytes_of("new")));

  auto newest = store.recover(accept_all());
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->bytes, bytes_of("new"));
  EXPECT_EQ(newest->generation, 1u);
  EXPECT_EQ(newest->rejected, 0u);

  // A validator refusing the newest generation falls back one; a THROWING
  // validator (what a decoder does on a corrupt image) counts the same.
  auto fallback = store.recover([](std::span<const std::uint8_t> bytes) {
    if (bytes.size() == 3 && bytes[0] == 'n') {
      throw std::runtime_error("decoder rejects");
    }
    return true;
  });
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->bytes, bytes_of("mid"));
  EXPECT_EQ(fallback->generation, 2u);
  EXPECT_EQ(fallback->rejected, 1u);

  auto none = store.recover([](std::span<const std::uint8_t>) { return false; });
  EXPECT_FALSE(none.has_value());
  for (std::size_t g = 1; g <= 3; ++g) backend.remove_file(store.generation_path(g));
}

TEST(CkptStore, LegacyBareFileIsTheLastResort) {
  chaos::ChaosBackend backend;
  const std::string base = temp_path("legacy");
  // The pre-rotation layout: a single checkpoint at the bare base path.
  backend.write_file(base, span_of(bytes_of("legacy image")));
  util::CheckpointStore store(base, {}, &backend);
  auto recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("legacy image"));
  EXPECT_EQ(recovered->generation, 0u);
  // Any rotated generation outranks it.
  store.save(span_of(bytes_of("rotated image")));
  recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("rotated image"));
  EXPECT_EQ(recovered->generation, 1u);
  backend.remove_file(base);
  backend.remove_file(store.generation_path(1));
}

TEST(CkptStore, TransientFailuresRetryWithBackoffThenSucceed) {
  chaos::ChaosBackend backend;
  util::CheckpointStore::Options options;
  options.retries = 3;
  util::CheckpointStore store(temp_path("retry"), options, &backend);
  backend.plan().fail_opens = 2;  // two transient failures, then clean
  EXPECT_NO_THROW(store.save(span_of(bytes_of("eventually durable"))));
  EXPECT_EQ(backend.log().opens_failed, 2u);
  EXPECT_EQ(backend.log().backoffs, 2u);  // one backoff per failed attempt
  auto recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("eventually durable"));
  backend.remove_file(store.generation_path(1));
}

TEST(CkptStore, PersistentFailureThrowsAndPreservesGenerations) {
  chaos::ChaosBackend backend;
  util::CheckpointStore::Options options;
  options.retries = 2;
  util::CheckpointStore store(temp_path("persistent"), options, &backend);
  store.save(span_of(bytes_of("good snapshot")));
  backend.plan().fail_opens = 100;  // more than the retry budget
  EXPECT_THROW(store.save(span_of(bytes_of("never lands"))), chaos::IoError);
  // The failed save changed NOTHING: the good generation is intact and no
  // temp file leaks.
  auto recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("good snapshot"));
  EXPECT_EQ(recovered->generation, 1u);
  EXPECT_FALSE(backend.exists(store.temp_path()));
  backend.plan().fail_opens = 0;
  backend.remove_file(store.generation_path(1));
}

TEST(CkptStore, CrashMidWriteNeverLosesThePreviousSnapshot) {
  // A torn temp write (the crash/disk-full scenario) with no retry budget:
  // the save fails, but the previously published generation is untouched
  // because the store never renames anything before the temp is durable.
  chaos::ChaosBackend backend;
  util::CheckpointStore::Options options;
  options.retries = 0;
  util::CheckpointStore store(temp_path("crash_mid_write"), options, &backend);
  store.save(span_of(bytes_of("previous good")));
  backend.plan().tear_after = 5;
  EXPECT_THROW(store.save(span_of(bytes_of("torn next snapshot"))),
               chaos::IoError);
  auto recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("previous good"));
  EXPECT_FALSE(backend.exists(store.temp_path()));  // torn temp cleaned up
  backend.remove_file(store.generation_path(1));
}

TEST(CkptStore, RenameFailureLeavesRecoverableState) {
  chaos::ChaosBackend backend;
  util::CheckpointStore::Options options;
  options.retries = 0;
  util::CheckpointStore store(temp_path("rename_fail"), options, &backend);
  store.save(span_of(bytes_of("gen one")));
  backend.plan().fail_rename = true;
  EXPECT_THROW(store.save(span_of(bytes_of("gen two"))), chaos::IoError);
  // Whatever rename the fault hit, some complete good snapshot survives
  // under a name the recovery scan covers.
  auto recovered = store.recover(accept_all());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->bytes, bytes_of("gen one"));
  for (std::size_t g = 0; g <= 3; ++g) backend.remove_file(store.generation_path(g));
  backend.remove_file(store.temp_path());
}

TEST(CkptStore, SilentBitCorruptionIsCaughtByTheValidator) {
  // corrupt_bit models media corruption the write syscall cannot see: the
  // save "succeeds", and only validate-at-recovery (CRC in the real
  // decoders) can reject the generation.  With an older good generation
  // present, recovery falls back instead of failing.
  chaos::ChaosBackend backend;
  util::CheckpointStore store(temp_path("silent_bit"), {}, &backend);
  const auto good = bytes_of("framed snapshot bytes");
  store.save(span_of(good));
  backend.plan().corrupt_bit = 13;
  store.save(span_of(good));  // lands corrupted, reported as success
  auto recovered = store.recover([&](std::span<const std::uint8_t> bytes) {
    return std::vector<std::uint8_t>(bytes.begin(), bytes.end()) == good;
  });
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->generation, 2u);  // newest rejected, fallback accepted
  EXPECT_EQ(recovered->rejected, 1u);
  for (std::size_t g = 1; g <= 2; ++g) backend.remove_file(store.generation_path(g));
}

// ---------------------------------------------------------------------------
// Acceptance: torn-write kill + resume of a checkpointed lifetime campaign

rel::LifetimeConfig chaos_lifetime_config() {
  rel::LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 2;
  config.fit_per_bit = 5e4;
  config.scrub_period_hours = 24.0;
  config.trials = 30;
  config.max_hours = 1e6;
  return config;
}

std::vector<std::uint8_t> encode_progress(const rel::LifetimeConfig& config,
                                          const rel::LifetimeProgress& progress) {
  std::ostringstream out(std::ios::binary);
  rel::save_lifetime_checkpoint(out, config, progress);
  const std::string blob = out.str();
  return std::vector<std::uint8_t>(blob.begin(), blob.end());
}

util::CheckpointStore::Validator lifetime_validator(
    const rel::LifetimeConfig& config, rel::LifetimeProgress& out) {
  return [&config, &out](std::span<const std::uint8_t> bytes) {
    std::istringstream in(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()),
        std::ios::binary);
    out = rel::load_lifetime_checkpoint(in, config);  // throws on any defect
    return true;
  };
}

void expect_results_equal(const rel::LifetimeResult& a,
                          const rel::LifetimeResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.scrubs_performed, b.scrubs_performed);
  EXPECT_EQ(a.errors_corrected, b.errors_corrected);
  EXPECT_EQ(a.time_to_failure_hours.count(), b.time_to_failure_hours.count());
  EXPECT_EQ(a.time_to_failure_hours.sum(), b.time_to_failure_hours.sum());
}

TEST(ChaosRecovery, TornCampaignResumesBitIdenticalAtArbitraryTearPoints) {
  const rel::LifetimeConfig config = chaos_lifetime_config();

  // Ground truth: one uninterrupted campaign.
  util::Rng straight_rng(8080);
  const rel::LifetimeResult straight =
      rel::simulate_lifetime(config, straight_rng);
  ASSERT_GT(straight.failures, 0u);

  // Fuzzed tear offsets from a dedicated substream (plus the structural
  // extremes), each one a distinct "the process died mid-checkpoint" run.
  util::Rng fuzz = util::Rng::for_stream(0xC4A05u, 1);
  std::vector<std::uint64_t> tear_points = {0, 1, 19, 20};
  for (int i = 0; i < 4; ++i) tear_points.push_back(21 + fuzz.next() % 200);

  for (const std::uint64_t tear : tear_points) {
    chaos::ChaosBackend backend;
    util::CheckpointStore::Options options;
    options.retries = 0;  // a "crash" never retries
    util::CheckpointStore store(
        temp_path("resume_" + std::to_string(tear)), options, &backend);

    // Phase 1: the doomed process -- checkpoint every chunk, die on the
    // third save with a torn write at byte `tear`.
    util::Rng doomed_rng(8080);
    rel::LifetimeProgress progress = rel::begin_lifetime(config, doomed_rng);
    bool died = false;
    std::size_t saves = 0;
    while (!rel::lifetime_complete(config, progress)) {
      rel::advance_lifetime(config, progress, 7);
      ++saves;
      if (saves == 3) backend.plan().tear_after = tear;
      try {
        const auto blob = encode_progress(config, progress);
        store.save(span_of(blob));
      } catch (const chaos::IoError&) {
        died = true;  // process killed mid-write; in-memory progress lost
        break;
      }
    }
    ASSERT_TRUE(died) << "tear=" << tear;

    // Phase 2: the restarted process -- recover the newest generation that
    // still decodes, resume, and run to completion.
    rel::LifetimeProgress resumed;
    const auto recovered =
        store.recover(lifetime_validator(config, resumed));
    ASSERT_TRUE(recovered.has_value()) << "tear=" << tear;
    EXPECT_LT(resumed.trials_done, config.trials);
    while (!rel::lifetime_complete(config, resumed)) {
      rel::advance_lifetime(config, resumed, 7);
      const auto blob = encode_progress(config, resumed);
      store.save(span_of(blob));
    }
    expect_results_equal(straight, rel::lifetime_result(resumed));

    for (std::size_t g = 0; g <= 3; ++g) {
      backend.remove_file(store.generation_path(g));
    }
    backend.remove_file(store.temp_path());
  }
}

}  // namespace
}  // namespace pimecc
