// Unit + property tests for src/simpler: netlist IR, NOR logic builder,
// the SIMPLER row mapper, the row VM, and the ECC scheduling pass.
#include <gtest/gtest.h>

#include <set>

#include "arch/params.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/logic.hpp"
#include "simpler/mapper.hpp"
#include "simpler/netlist.hpp"
#include "simpler/row_vm.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc::simpler {
namespace {

// ------------------------------------------------------------------- netlist

TEST(Netlist, BuildsAndEvaluatesNor) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  const NodeId b = nl.add_input();
  const NodeId g = nl.add_nor({a, b});
  nl.mark_output(g);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.num_inputs(), 2u);
  for (int combo = 0; combo < 4; ++combo) {
    util::BitVector in(2);
    in.set(0, combo & 1);
    in.set(1, (combo >> 1) & 1);
    const util::BitVector out = nl.eval(in);
    EXPECT_EQ(out.get(0), !(in.get(0) || in.get(1)));
  }
}

TEST(Netlist, ConstantsEvaluate) {
  Netlist nl("t");
  const NodeId zero = nl.add_const(false);
  const NodeId one = nl.add_const(true);
  const NodeId g = nl.add_nor({zero, one});
  nl.mark_output(g);
  nl.mark_output(zero);
  EXPECT_EQ(nl.eval(util::BitVector(0)).to_string(), "00");
}

TEST(Netlist, ValidatesConstruction) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  EXPECT_THROW(nl.add_nor({}), std::invalid_argument);
  EXPECT_THROW(nl.add_nor({static_cast<NodeId>(5)}), std::invalid_argument);
  nl.mark_output(a);
  nl.mark_output(a);  // a node may drive several output pins
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_THROW(nl.mark_output(99), std::out_of_range);
  EXPECT_THROW((void)nl.eval(util::BitVector(2)), std::invalid_argument);
}

TEST(Netlist, FanoutCountsIncludeOutputPins) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  const NodeId g1 = nl.add_nor({a});
  const NodeId g2 = nl.add_nor({a, g1});
  nl.mark_output(g2);
  const auto fanout = nl.fanout_counts();
  EXPECT_EQ(fanout[a], 2u);
  EXPECT_EQ(fanout[g1], 1u);
  EXPECT_EQ(fanout[g2], 1u);  // the output pin
}

// ------------------------------------------------------------- LogicBuilder

class GateTruthTableTest : public ::testing::TestWithParam<int> {};

TEST_P(GateTruthTableTest, TwoAndThreeInputHelpersMatchSemantics) {
  const int combo = GetParam();
  const bool va = combo & 1, vb = (combo >> 1) & 1, vc = (combo >> 2) & 1;

  Netlist nl("t");
  LogicBuilder b(nl);
  const NodeId a = b.input();
  const NodeId bb = b.input();
  const NodeId c = b.input();
  b.output(b.xor2(a, bb));
  b.output(b.xnor2(a, bb));
  b.output(b.xor3(a, bb, c));
  b.output(b.majority3(a, bb, c));
  b.output(b.mux(a, bb, c));  // a ? c : b
  b.output(b.and2(a, bb));
  b.output(b.or2(a, bb));
  b.output(b.nand2(a, bb));
  b.output(b.nor2(a, bb));

  util::BitVector in(3);
  in.set(0, va);
  in.set(1, vb);
  in.set(2, vc);
  const util::BitVector out = nl.eval(in);
  EXPECT_EQ(out.get(0), va != vb);
  EXPECT_EQ(out.get(1), va == vb);
  EXPECT_EQ(out.get(2), va ^ vb ^ vc);
  EXPECT_EQ(out.get(3), (va && vb) || (va && vc) || (vb && vc));
  EXPECT_EQ(out.get(4), va ? vc : vb);
  EXPECT_EQ(out.get(5), va && vb);
  EXPECT_EQ(out.get(6), va || vb);
  EXPECT_EQ(out.get(7), !(va && vb));
  EXPECT_EQ(out.get(8), !(va || vb));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, GateTruthTableTest, ::testing::Range(0, 8));

TEST(LogicBuilder, WideOrAndNorDecomposeCorrectly) {
  Netlist nl("t");
  LogicBuilder b(nl, /*max_fanin=*/4);
  Bus ins = b.input_bus(13);
  b.output(b.or_gate(std::span<const NodeId>(ins)));
  b.output(b.nor_gate(std::span<const NodeId>(ins)));
  b.output(b.and_gate(std::span<const NodeId>(ins)));
  EXPECT_EQ(nl.max_fanin(), 4u);
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    util::BitVector in(13);
    bool any = false, all = true;
    for (std::size_t i = 0; i < 13; ++i) {
      const bool v = rng.bernoulli(0.3);
      in.set(i, v);
      any = any || v;
      all = all && v;
    }
    const util::BitVector out = nl.eval(in);
    EXPECT_EQ(out.get(0), any);
    EXPECT_EQ(out.get(1), !any);
    EXPECT_EQ(out.get(2), all);
  }
}

TEST(LogicBuilder, RippleAddMatchesNativeAddition) {
  Netlist nl("t");
  LogicBuilder b(nl);
  const Bus x = b.input_bus(32);
  const Bus y = b.input_bus(32);
  const AddResult sum = b.ripple_add(x, y, b.constant(false));
  b.output_bus(sum.sum);
  b.output(sum.carry_out);
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t xv = rng.next() & 0xFFFFFFFFull;
    const std::uint64_t yv = rng.next() & 0xFFFFFFFFull;
    util::BitVector in(64);
    for (std::size_t i = 0; i < 32; ++i) {
      in.set(i, (xv >> i) & 1u);
      in.set(32 + i, (yv >> i) & 1u);
    }
    const util::BitVector out = nl.eval(in);
    const std::uint64_t expect = xv + yv;
    for (std::size_t i = 0; i < 33; ++i) {
      EXPECT_EQ(out.get(i), (expect >> i) & 1u) << "bit " << i;
    }
  }
}

TEST(LogicBuilder, SubCompareEqualAgainstNative) {
  Netlist nl("t");
  LogicBuilder b(nl);
  const Bus x = b.input_bus(16);
  const Bus y = b.input_bus(16);
  const AddResult diff = b.ripple_sub(x, y);
  b.output_bus(diff.sum);
  b.output(diff.carry_out);          // borrow: x < y
  b.output(b.greater_equal(x, y));   // x >= y
  b.output(b.equal(x, y));
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t xv = rng.next() & 0xFFFF;
    const std::uint64_t yv = trial % 5 == 0 ? xv : rng.next() & 0xFFFF;
    util::BitVector in(32);
    for (std::size_t i = 0; i < 16; ++i) {
      in.set(i, (xv >> i) & 1u);
      in.set(16 + i, (yv >> i) & 1u);
    }
    const util::BitVector out = nl.eval(in);
    const std::uint64_t d = (xv - yv) & 0xFFFF;
    for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out.get(i), (d >> i) & 1u);
    EXPECT_EQ(out.get(16), xv < yv);
    EXPECT_EQ(out.get(17), xv >= yv);
    EXPECT_EQ(out.get(18), xv == yv);
  }
}

TEST(LogicBuilder, PopcountMatchesCount) {
  for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                                  std::size_t{64}}) {
    Netlist nl("t");
    LogicBuilder b(nl);
    const Bus ins = b.input_bus(width);
    b.output_bus(b.popcount(ins));
    util::Rng rng(width);
    for (int trial = 0; trial < 30; ++trial) {
      util::BitVector in(width);
      for (std::size_t i = 0; i < width; ++i) in.set(i, rng.bernoulli(0.5));
      const util::BitVector out = nl.eval(in);
      std::uint64_t got = 0;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out.get(i)) got |= std::uint64_t{1} << i;
      }
      EXPECT_EQ(got, in.count()) << "width " << width;
    }
  }
}

TEST(LogicBuilder, MultiplyMatchesNative) {
  Netlist nl("t");
  LogicBuilder b(nl);
  const Bus x = b.input_bus(8);
  const Bus y = b.input_bus(8);
  b.output_bus(b.multiply(x, y));
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t xv = rng.next() & 0xFF;
    const std::uint64_t yv = rng.next() & 0xFF;
    util::BitVector in(16);
    for (std::size_t i = 0; i < 8; ++i) {
      in.set(i, (xv >> i) & 1u);
      in.set(8 + i, (yv >> i) & 1u);
    }
    const util::BitVector out = nl.eval(in);
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      if (out.get(i)) got |= std::uint64_t{1} << i;
    }
    EXPECT_EQ(got, xv * yv);
  }
}

TEST(LogicBuilder, ConstantBusEncodesValue) {
  Netlist nl("t");
  LogicBuilder b(nl);
  b.output_bus(b.constant_bus(10, 0b1100101));
  const util::BitVector out = nl.eval(util::BitVector(0));
  EXPECT_EQ(out.to_string(), "1010011000");  // LSB-first
}

// -------------------------------------------------------------------- mapper

TEST(Mapper, CellUsageOfLeavesAndGates) {
  Netlist nl("t");
  const NodeId a = nl.add_input();
  const NodeId b = nl.add_input();
  const NodeId g1 = nl.add_nor({a, b});  // CU = max(1, 1+1) = 2
  const NodeId g2 = nl.add_nor({g1, a}); // CU = max(2, 1+1) = 2
  nl.mark_output(g2);
  const auto cu = compute_cell_usage(nl);
  EXPECT_EQ(cu[a], 1u);
  EXPECT_EQ(cu[b], 1u);
  EXPECT_EQ(cu[g1], 2u);
  EXPECT_EQ(cu[g2], 2u);
}

/// Random NOR DAG generator for mapper/VM equivalence properties.
Netlist random_netlist(std::uint64_t seed, std::size_t inputs, std::size_t gates,
                       std::size_t outputs) {
  util::Rng rng(seed);
  Netlist nl("rand" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < inputs; ++i) pool.push_back(nl.add_input());
  for (std::size_t g = 0; g < gates; ++g) {
    const std::size_t fanin = 1 + rng.uniform_below(3);
    std::vector<NodeId> ins;
    for (std::size_t i = 0; i < fanin; ++i) {
      ins.push_back(pool[rng.uniform_below(pool.size())]);
    }
    pool.push_back(nl.add_nor(std::span<const NodeId>(ins)));
  }
  for (std::size_t o = 0; o < outputs; ++o) {
    // Prefer late nodes as outputs; avoid duplicates.
    for (std::size_t attempt = 0; attempt < 50; ++attempt) {
      const NodeId candidate =
          pool[pool.size() - 1 - rng.uniform_below(std::min(pool.size(),
                                                            gates / 2 + 1))];
      try {
        nl.mark_output(candidate);
        break;
      } catch (const std::invalid_argument&) {
      }
    }
  }
  return nl;
}

class MapperEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperEquivalenceTest, MappedProgramComputesTheNetlist) {
  const Netlist nl = random_netlist(GetParam(), 12, 120, 6);
  MapperOptions options;
  options.row_width = 64;
  const MappedProgram program = map_to_row(nl, options);
  EXPECT_LE(program.peak_cells_used, options.row_width);

  xbar::Crossbar xb(2, options.row_width);
  util::Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    util::BitVector in(nl.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in.set(i, rng.bernoulli(0.5));
    const RowRunResult result = run_single_row(nl, program, xb, 1, in);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_EQ(result.outputs, nl.eval(in)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Mapper, BaselineCountsGatesPlusInits) {
  const Netlist nl = random_netlist(99, 8, 60, 4);
  MapperOptions options;
  options.row_width = 40;
  const MappedProgram program = map_to_row(nl, options);
  EXPECT_EQ(program.baseline_cycles(),
            program.gate_cycles + program.init_cycles);
  EXPECT_GE(program.init_cycles, 1u);  // the up-front batch init
  std::size_t gate_ops = 0, init_ops = 0;
  for (const MappedOp& op : program.ops) {
    (op.kind == MappedOp::Kind::kGate ? gate_ops : init_ops)++;
  }
  EXPECT_EQ(gate_ops, program.gate_cycles);
  EXPECT_EQ(init_ops, program.init_cycles);
}

TEST(Mapper, OutputCellsAreNeverRecycled) {
  const Netlist nl = random_netlist(7, 10, 100, 5);
  MapperOptions options;
  options.row_width = 48;
  const MappedProgram program = map_to_row(nl, options);
  std::set<CellIndex> outputs(program.output_cells.begin(),
                              program.output_cells.end());
  // After an output gate writes its cell, no later init may touch it.
  std::set<CellIndex> written_outputs;
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kGate) {
      if (op.writes_output && outputs.count(op.cell)) {
        written_outputs.insert(op.cell);
      }
    } else {
      for (const CellIndex cell : op.init_cells) {
        EXPECT_FALSE(written_outputs.count(cell))
            << "output cell re-initialized";
      }
    }
  }
}

TEST(Mapper, TinyRowThrows) {
  const Netlist nl = random_netlist(8, 10, 100, 5);
  MapperOptions options;
  options.row_width = 12;  // inputs fit, working set cannot
  EXPECT_THROW((void)map_to_row(nl, options), std::runtime_error);
}

TEST(Mapper, InputRecyclingCanBeDisabled) {
  const Netlist nl = random_netlist(21, 12, 80, 4);
  MapperOptions recycle;
  recycle.row_width = 64;
  MapperOptions pin = recycle;
  pin.allow_input_recycling = false;
  const MappedProgram a = map_to_row(nl, recycle);
  const MappedProgram bprog = map_to_row(nl, pin);
  // Pinned inputs can only increase pressure (more init cycles or equal).
  EXPECT_GE(bprog.baseline_cycles(), a.baseline_cycles());
  for (const MappedOp& op : bprog.ops) {
    if (op.kind == MappedOp::Kind::kInit) {
      EXPECT_TRUE(op.covered_cells.empty());
    }
  }
}

TEST(RowVm, SimdMatchesPerRowEval) {
  const Netlist nl = random_netlist(31, 10, 80, 5);
  MapperOptions options;
  options.row_width = 64;
  const MappedProgram program = map_to_row(nl, options);
  constexpr std::size_t kRows = 16;
  xbar::Crossbar xb(kRows, options.row_width);
  util::Rng rng(32);
  util::BitMatrix inputs(kRows, nl.num_inputs());
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      inputs.set(r, i, rng.bernoulli(0.5));
    }
  }
  const SimdRunResult result = run_simd(nl, program, xb, inputs);
  EXPECT_EQ(result.violations, 0u);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(result.outputs.row(r), nl.eval(inputs.row(r))) << "row " << r;
  }
}

// -------------------------------------------------------------- ecc_schedule

TEST(EccSchedule, ProposedIsNeverFasterThanBaseline) {
  const Netlist nl = random_netlist(41, 12, 150, 8);
  MapperOptions options;
  options.row_width = 90;
  const MappedProgram program = map_to_row(nl, options);
  arch::ArchParams params;
  params.n = 90;
  params.m = 9;
  for (const auto policy : {CoveragePolicy::kOutputsOnly,
                            CoveragePolicy::kInputsAndOutputs}) {
    const EccScheduleResult result = schedule_with_ecc(program, params, policy);
    EXPECT_GT(result.proposed_cycles, result.baseline_cycles);
    EXPECT_GE(result.overhead_fraction(), 0.0);
  }
}

TEST(EccSchedule, CriticalOpsEqualOutputGateWrites) {
  const Netlist nl = random_netlist(42, 12, 150, 8);
  MapperOptions options;
  options.row_width = 90;
  const MappedProgram program = map_to_row(nl, options);
  std::size_t output_writes = 0;
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kGate && op.writes_output) ++output_writes;
  }
  arch::ArchParams params;
  params.n = 90;
  params.m = 9;
  const EccScheduleResult result =
      schedule_with_ecc(program, params, CoveragePolicy::kOutputsOnly);
  EXPECT_EQ(result.critical_ops, output_writes);
  EXPECT_EQ(result.cancel_ops, 0u);
}

TEST(EccSchedule, InputsAndOutputsAddsCancelWork) {
  const Netlist nl = random_netlist(43, 16, 200, 6);
  MapperOptions options;
  options.row_width = 90;
  const MappedProgram program = map_to_row(nl, options);
  arch::ArchParams params;
  params.n = 90;
  params.m = 9;
  const auto outputs_only =
      schedule_with_ecc(program, params, CoveragePolicy::kOutputsOnly);
  const auto both =
      schedule_with_ecc(program, params, CoveragePolicy::kInputsAndOutputs);
  EXPECT_GE(both.proposed_cycles, outputs_only.proposed_cycles);
  EXPECT_LE(both.cancel_ops, nl.num_inputs());
}

TEST(EccSchedule, FindMinPcsIsInPaperRangeAndSufficient) {
  const Netlist nl = random_netlist(44, 12, 150, 10);
  MapperOptions options;
  options.row_width = 90;
  const MappedProgram program = map_to_row(nl, options);
  arch::ArchParams params;
  params.n = 90;
  params.m = 9;
  const std::size_t min_pcs =
      find_min_pcs(program, params, CoveragePolicy::kInputsAndOutputs);
  EXPECT_GE(min_pcs, 1u);
  EXPECT_LE(min_pcs, 8u);
  arch::ArchParams more = params;
  more.num_pcs = min_pcs;
  arch::ArchParams lots = params;
  lots.num_pcs = 32;
  EXPECT_EQ(schedule_with_ecc(program, more, CoveragePolicy::kInputsAndOutputs)
                .proposed_cycles,
            schedule_with_ecc(program, lots, CoveragePolicy::kInputsAndOutputs)
                .proposed_cycles);
}

}  // namespace
}  // namespace pimecc::simpler
