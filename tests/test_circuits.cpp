// Tests for src/bench_circuits: every generated benchmark circuit must
// match its bit-accurate reference model -- exhaustively where the input
// space is small, on random vectors otherwise -- and have the documented
// PI/PO shape.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_circuits/circuits.hpp"
#include "bench_circuits/pla.hpp"
#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"
#include "simpler/mapper.hpp"
#include "simpler/row_vm.hpp"
#include "xbar/crossbar.hpp"
#include "util/rng.hpp"

namespace pimecc::circuits {
namespace {

util::BitVector random_input(util::Rng& rng, std::size_t bits, double density) {
  util::BitVector in(bits);
  for (std::size_t i = 0; i < bits; ++i) in.set(i, rng.bernoulli(density));
  return in;
}

// ----------------------------------------------------------------- ref_util

// A field wider than 64 bits zero-extends the value; the old implementation
// shifted the 64-bit value by the in-field bit index, which is UB (caught by
// the UBSan CI stage) from bit 64 on.
TEST(RefUtil, WideFieldsZeroExtendWithoutWideShifts) {
  util::BitVector v(200);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, true);
  set_bits(v, 3, 128, 0x8000'0000'0000'0005ull);
  EXPECT_TRUE(v.get(3));        // bit 0 of the value
  EXPECT_TRUE(v.get(5));        // bit 2
  EXPECT_FALSE(v.get(4));       // bit 1
  EXPECT_TRUE(v.get(3 + 63));   // bit 63
  for (std::size_t i = 64; i < 128; ++i) EXPECT_FALSE(v.get(3 + i)) << i;
  EXPECT_TRUE(v.get(0) && v.get(3 + 128));  // neighbors untouched
  // get_bits over a wide field returns the low 64 bits.
  EXPECT_EQ(get_bits(v, 3, 128), 0x8000'0000'0000'0005ull);
  EXPECT_EQ(get_bits(v, 3, 64), 0x8000'0000'0000'0005ull);
}

// ------------------------------------------------------------------ registry

TEST(Registry, ElevenCircuitsInTableOrder) {
  const auto& names = circuit_names();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "adder");
  EXPECT_EQ(names.back(), "voter");
  EXPECT_THROW((void)build_circuit("nope"), std::invalid_argument);
  EXPECT_EQ(build_all_circuits().size(), 11u);
}

struct Shape {
  const char* name;
  std::size_t pi;
  std::size_t po;
};

class ShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeTest, MatchesDocumentedInterface) {
  const Shape shape = GetParam();
  const CircuitSpec spec = build_circuit(shape.name);
  EXPECT_EQ(spec.netlist.num_inputs(), shape.pi) << shape.name;
  EXPECT_EQ(spec.netlist.num_outputs(), shape.po) << shape.name;
  EXPECT_GT(spec.netlist.num_gates(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCircuits, ShapeTest,
    ::testing::Values(Shape{"adder", 256, 129}, Shape{"arbiter", 112, 57},
                      Shape{"bar", 135, 128}, Shape{"cavlc", 10, 11},
                      Shape{"ctrl", 7, 26}, Shape{"dec", 8, 256},
                      Shape{"int2float", 11, 7}, Shape{"max", 512, 130},
                      Shape{"priority", 128, 8}, Shape{"sin", 24, 25},
                      Shape{"voter", 1001, 1}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// Random netlist-vs-reference agreement for every circuit.
class AgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AgreementTest, NetlistMatchesReferenceOnRandomVectors) {
  const CircuitSpec spec = build_circuit(GetParam());
  util::Rng rng(std::hash<std::string>{}(GetParam()));
  const int trials = spec.netlist.num_inputs() > 500 ? 10 : 40;
  for (int t = 0; t < trials; ++t) {
    // Mix densities so sparse patterns (arbiter/priority) get exercised.
    const double density = t % 3 == 0 ? 0.05 : (t % 3 == 1 ? 0.5 : 0.9);
    const util::BitVector in =
        random_input(rng, spec.netlist.num_inputs(), density);
    EXPECT_EQ(spec.netlist.eval(in), spec.reference(in))
        << GetParam() << " trial " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, AgreementTest,
                         ::testing::ValuesIn(circuit_names()),
                         [](const auto& param_info) { return param_info.param; });

// ----------------------------------------------- exhaustive small circuits

TEST(Dec, ExhaustiveAllInputsOneHot) {
  const CircuitSpec spec = build_circuit("dec");
  for (std::size_t v = 0; v < 256; ++v) {
    util::BitVector in(8);
    set_bits(in, 0, 8, v);
    const util::BitVector out = spec.netlist.eval(in);
    EXPECT_EQ(out.count(), 1u);
    EXPECT_TRUE(out.get(v));
    EXPECT_EQ(out, spec.reference(in));
  }
}

TEST(Ctrl, ExhaustiveMatchesPla) {
  const CircuitSpec spec = build_circuit("ctrl");
  for (std::size_t v = 0; v < 128; ++v) {
    util::BitVector in(7);
    set_bits(in, 0, 7, v);
    EXPECT_EQ(spec.netlist.eval(in), spec.reference(in)) << "input " << v;
  }
}

TEST(Cavlc, ExhaustiveMatchesPla) {
  const CircuitSpec spec = build_circuit("cavlc");
  for (std::size_t v = 0; v < 1024; ++v) {
    util::BitVector in(10);
    set_bits(in, 0, 10, v);
    EXPECT_EQ(spec.netlist.eval(in), spec.reference(in)) << "input " << v;
  }
}

TEST(Int2Float, ExhaustiveAllElevenBitInputs) {
  const CircuitSpec spec = build_circuit("int2float");
  for (std::size_t v = 0; v < 2048; ++v) {
    util::BitVector in(11);
    set_bits(in, 0, 11, v);
    EXPECT_EQ(spec.netlist.eval(in), spec.reference(in)) << "input " << v;
  }
}

// ------------------------------------------------------- semantic spot tests

TEST(Adder, AddsSpecificValues) {
  const CircuitSpec spec = build_circuit("adder");
  util::BitVector in(256);
  // 1 + 1 = 2.
  in.set(0, true);
  in.set(128, true);
  util::BitVector out = spec.netlist.eval(in);
  EXPECT_FALSE(out.get(0));
  EXPECT_TRUE(out.get(1));
  EXPECT_FALSE(out.get(128));
  // All-ones + 1 carries out.
  util::BitVector in2(256);
  for (std::size_t i = 0; i < 128; ++i) in2.set(i, true);
  in2.set(128, true);
  out = spec.netlist.eval(in2);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_FALSE(out.get(i));
  EXPECT_TRUE(out.get(128));
}

TEST(Bar, RotationIdentityAndFullTurnEdges) {
  const CircuitSpec spec = build_circuit("bar");
  util::Rng rng(3);
  util::BitVector data = random_input(rng, 128, 0.5);
  for (const std::size_t amount : {std::size_t{0}, std::size_t{1},
                                   std::size_t{64}, std::size_t{127}}) {
    util::BitVector in(135);
    for (std::size_t i = 0; i < 128; ++i) in.set(i, data.get(i));
    set_bits(in, 128, 7, amount);
    const util::BitVector out = spec.netlist.eval(in);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_EQ(out.get((i + amount) % 128), data.get(i)) << "amount " << amount;
    }
  }
}

TEST(Priority, LowestIndexWinsAndValidTracksAnyRequest) {
  const CircuitSpec spec = build_circuit("priority");
  util::BitVector in(128);
  EXPECT_EQ(spec.netlist.eval(in).count(), 0u);  // no request: invalid, idx 0
  in.set(77, true);
  in.set(100, true);
  const util::BitVector out = spec.netlist.eval(in);
  EXPECT_EQ(get_bits(out, 0, 7), 77u);
  EXPECT_TRUE(out.get(7));
}

TEST(Voter, MajorityBoundary) {
  const CircuitSpec spec = build_circuit("voter");
  util::BitVector in(1001);
  for (std::size_t i = 0; i < 500; ++i) in.set(i, true);
  EXPECT_FALSE(spec.netlist.eval(in).get(0));  // 500 < 501
  in.set(700, true);
  EXPECT_TRUE(spec.netlist.eval(in).get(0));   // 501 >= 501
  util::BitVector all(1001, true);
  EXPECT_TRUE(spec.netlist.eval(all).get(0));
}

TEST(Max, PicksMaximumAndTiesPreferEarlier) {
  const CircuitSpec spec = build_circuit("max");
  util::BitVector in(512);
  // a = 5, b = 9, c = 9, d = 2 -> max 9 at index 1 (b beats the tying c).
  set_bits(in, 0, 128, 5);
  set_bits(in, 128, 128, 9);
  set_bits(in, 256, 128, 9);
  set_bits(in, 384, 128, 2);
  const util::BitVector out = spec.netlist.eval(in);
  EXPECT_EQ(get_bits(out, 0, 64), 9u);
  EXPECT_TRUE(out.get(128));    // idx low bit = 1
  EXPECT_FALSE(out.get(129));   // idx high bit = 0
  EXPECT_EQ(out, spec.reference(in));
}

TEST(Arbiter, OneHotPointerGrantsFirstRequesterAtOrAfter) {
  const CircuitSpec spec = build_circuit("arbiter");
  util::BitVector in(112);
  in.set(10, true);          // request from client 10
  in.set(30, true);          // request from client 30
  in.set(56 + 20, true);     // pointer at position 20
  const util::BitVector out = spec.netlist.eval(in);
  EXPECT_TRUE(out.get(30));  // first requester at/after 20
  EXPECT_FALSE(out.get(10));
  EXPECT_TRUE(out.get(56));  // valid
  EXPECT_EQ(out.count(), 2u);
}

TEST(Arbiter, WrapsAroundAndDefaultsToPositionZero) {
  const CircuitSpec spec = build_circuit("arbiter");
  util::BitVector wrap(112);
  wrap.set(3, true);
  wrap.set(56 + 50, true);  // pointer past the only request: wraps to 3
  EXPECT_TRUE(spec.netlist.eval(wrap).get(3));
  util::BitVector no_ptr(112);
  no_ptr.set(40, true);
  EXPECT_TRUE(spec.netlist.eval(no_ptr).get(40));  // head defaults to 0
}

TEST(Sin, TracksRealSineWithinApproximationError) {
  // The spec is the x - x^3/6 polynomial; verify the generated circuit's
  // *reference* is within the expected error of sin on [0, 1) radians.
  const CircuitSpec spec = build_circuit("sin");
  for (const double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto x = static_cast<std::uint64_t>(u * 16777216.0);
    util::BitVector in(24);
    set_bits(in, 0, 24, x);
    const util::BitVector out = spec.reference(in);
    const double got = static_cast<double>(get_bits(out, 0, 24)) / 16777216.0;
    // Cubic Taylor truncation + 12-bit operand truncation: a few e-3.
    EXPECT_NEAR(got, std::sin(u), 8e-3) << "u=" << u;
  }
}


// ------------------------------------------------- mapped execution (all)



class MappedExecutionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MappedExecutionTest, SimplerMappedProgramMatchesReference) {
  // The full Table I front half for every benchmark: build, map into the
  // paper's 1020-cell row, execute with genuine MAGIC semantics, compare
  // against the reference model.
  const CircuitSpec spec = build_circuit(GetParam());
  simpler::MapperOptions options;
  options.row_width = 1020;
  const simpler::MappedProgram program =
      simpler::map_to_row(spec.netlist, options);
  EXPECT_LE(program.peak_cells_used, options.row_width);

  xbar::Crossbar xb(1, options.row_width);
  util::Rng rng(std::hash<std::string>{}(GetParam()) ^ 0xEEC);
  const int trials = spec.netlist.num_gates() > 5000 ? 2 : 5;
  for (int t = 0; t < trials; ++t) {
    const util::BitVector in =
        random_input(rng, spec.netlist.num_inputs(), t % 2 == 0 ? 0.5 : 0.1);
    const simpler::RowRunResult run =
        simpler::run_single_row(spec.netlist, program, xb, 0, in);
    EXPECT_EQ(run.violations, 0u) << GetParam();
    EXPECT_EQ(run.outputs, spec.reference(in)) << GetParam() << " trial " << t;
    EXPECT_EQ(run.cycles, program.baseline_cycles()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, MappedExecutionTest,
                         ::testing::ValuesIn(circuit_names()),
                         [](const auto& param_info) { return param_info.param; });
// ----------------------------------------------------------------- PLA layer

TEST(Pla, SynthesisMatchesEvalOnRandomSpecs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const PlaSpec pla = make_table_pla(8, 6, 20, seed);
    simpler::Netlist nl("pla");
    simpler::LogicBuilder b(nl);
    const simpler::Bus ins = b.input_bus(8);
    b.output_bus(synthesize_pla(b, ins, pla));
    for (std::size_t v = 0; v < 256; ++v) {
      util::BitVector in(8);
      set_bits(in, 0, 8, v);
      EXPECT_EQ(nl.eval(in), eval_pla(pla, in)) << "seed " << seed << " v " << v;
    }
  }
}

TEST(Pla, DeterministicGeneration) {
  const PlaSpec a = make_table_pla(10, 11, 90, 42);
  const PlaSpec b = make_table_pla(10, 11, 90, 42);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].care_mask, b.terms[i].care_mask);
    EXPECT_EQ(a.terms[i].match_value, b.terms[i].match_value);
    EXPECT_EQ(a.terms[i].output_mask, b.terms[i].output_mask);
  }
}

TEST(Pla, ValidatesShape) {
  EXPECT_THROW((void)make_table_pla(0, 5, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)make_table_pla(40, 5, 5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pimecc::circuits
