// Differential and structural tests for the sparse event-driven
// reliability engine (ISSUE 5): the O(flips) Monte Carlo must reproduce
// the dense reference engine's counters exactly on every substream (with
// the documented `miscorrected` exact-vs-approximated exception), the
// undo-log rollback must reconstitute golden state across trials, and the
// skip-ahead lifetime engine must match the windowed walker in
// distribution and the analytic model in expectation.
//
// The ReliabilityEngineSmoke suite uses tiny configurations and is
// additionally registered under the `smoke;reliability` ctest labels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/montecarlo.hpp"
#include "reliability/reference_reliability.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::rel {
namespace {

/// Copies a result with `miscorrected` zeroed: the sparse engine is exact
/// where the reference approximates, so equality is asserted on everything
/// else and the two miscorrection counters are compared by <= separately.
MonteCarloResult without_miscorrected(MonteCarloResult r) {
  r.miscorrected = 0;
  return r;
}

void expect_counters_match(const MonteCarloConfig& config, std::uint64_t seed) {
  util::Rng fast_rng(seed), ref_rng(seed);
  const MonteCarloResult fast = run_montecarlo(config, fast_rng);
  const MonteCarloResult ref = reference_run_montecarlo(config, ref_rng);
  EXPECT_EQ(without_miscorrected(fast), without_miscorrected(ref))
      << "n=" << config.n << " m=" << config.m << " seed=" << seed;
  EXPECT_LE(fast.miscorrected, ref.miscorrected);
  EXPECT_LE(fast.miscorrected, fast.blocks_failed);
  // Both consume exactly one draw from the caller's stream.
  EXPECT_EQ(fast_rng.next(), ref_rng.next());
}

// --------------------------------------------------------------- smoke

TEST(ReliabilityEngineSmoke, MontecarloMatchesReferenceTinyConfig) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  config.fit_per_bit = 1e6;
  config.trials = 40;
  config.threads = 2;
  expect_counters_match(config, 0x5E11ull);
}

TEST(ReliabilityEngineSmoke, LifetimeZeroRateMatchesReferenceExactly) {
  LifetimeConfig config;
  config.n = 15;
  config.m = 5;
  config.crossbars = 2;
  config.fit_per_bit = 0.0;
  config.scrub_period_hours = 24.0;
  config.max_hours = 100.0;  // not a multiple of the period: 5 windows
  config.trials = 7;
  util::Rng fast_rng(1), ref_rng(1);
  const LifetimeResult fast = simulate_lifetime(config, fast_rng);
  const LifetimeResult ref = reference_simulate_lifetime(config, ref_rng);
  EXPECT_EQ(fast.failures, 0u);
  EXPECT_EQ(ref.failures, 0u);
  EXPECT_EQ(fast.scrubs_performed, 7u * 5u);
  EXPECT_EQ(fast.scrubs_performed, ref.scrubs_performed);
  EXPECT_EQ(fast.errors_corrected, ref.errors_corrected);
}

TEST(ReliabilityEngineSmoke, LifetimeCertainFailureMatchesReferenceExactly) {
  // p_window == 1: every cell errs every window, so both engines must fail
  // every trial at the very first scrub.
  LifetimeConfig config;
  config.n = 15;
  config.m = 15;
  config.crossbars = 1;
  config.fit_per_bit = 1e12;
  config.scrub_period_hours = 24.0;
  config.max_hours = 24.0 * 50;
  config.trials = 5;
  util::Rng fast_rng(2), ref_rng(2);
  const LifetimeResult fast = simulate_lifetime(config, fast_rng);
  const LifetimeResult ref = reference_simulate_lifetime(config, ref_rng);
  for (const LifetimeResult* r : {&fast, &ref}) {
    EXPECT_EQ(r->failures, 5u);
    EXPECT_EQ(r->scrubs_performed, 5u);
    EXPECT_EQ(r->errors_corrected, 0u);
    EXPECT_DOUBLE_EQ(r->time_to_failure_hours.mean(), 24.0);
    EXPECT_DOUBLE_EQ(r->time_to_failure_hours.min(), 24.0);
    EXPECT_DOUBLE_EQ(r->time_to_failure_hours.max(), 24.0);
  }
}

TEST(ReliabilityEngineSmoke, ScrubBlockAgreesWithCheckBlock) {
  // Randomized differential: inject 0-3 faults into one block, scrub it
  // via both APIs on independent copies, and require identical verdicts
  // and identical repaired state.
  util::Rng rng(3);
  for (int round = 0; round < 60; ++round) {
    const std::size_t n = 15, m = 5;
    util::BitMatrix data = util::random_bit_matrix(n, n, rng);
    ecc::ArrayCode code(n, m);
    code.encode_all(data);
    const std::size_t br = rng.uniform_below(3);
    const std::size_t bc = rng.uniform_below(3);
    const std::size_t faults = rng.uniform_below(4);
    fault::inject_block_flips(rng, data, code, br, bc, faults, true);

    util::BitMatrix data2 = data;
    ecc::ArrayCode code2 = code;
    const ecc::BlockRepair repair = code.scrub_block(data, {br, bc});
    const ecc::DecodeResult decode = code2.check_block(data2, {br, bc});
    EXPECT_EQ(repair.status, decode.status);
    if (decode.data_error) {
      EXPECT_EQ(repair.data_r, br * m + decode.data_error->r);
      EXPECT_EQ(repair.data_c, bc * m + decode.data_error->c);
    }
    if (decode.check_error) {
      EXPECT_EQ(repair.check_on_leading_axis, decode.check_error->on_leading_axis);
      EXPECT_EQ(repair.check_index, decode.check_error->index);
    }
    EXPECT_EQ(data, data2);
    EXPECT_EQ(code.check_bits({br, bc}), code2.check_bits({br, bc}));
  }
}

TEST(ReliabilityEngineSmoke, ScrubBlockValidates) {
  util::BitMatrix data(15, 15);
  ecc::ArrayCode code(15, 5);
  code.encode_all(data);
  EXPECT_THROW((void)code.scrub_block(data, {3, 0}), std::out_of_range);
  util::BitMatrix wrong(10, 10);
  EXPECT_THROW((void)code.scrub_block(wrong, {0, 0}), std::invalid_argument);
}

// --------------------------------------------------- montecarlo engine

TEST(MonteCarloEngine, MatchesReferenceAcrossConfigs) {
  // The rollback is exercised hard: at these rates most trials carry
  // multiple flips (incl. uncorrectable doubles and miscorrection-capable
  // triples), and any residue left by trial t corrupts every later trial's
  // counters -- so multi-trial equality pins the undo log, not just the
  // scrub.
  struct Case {
    std::size_t n, m;
    double fit;
    bool check_bits;
  };
  const Case cases[] = {
      {60, 15, 3e6, true},
      {45, 9, 1e7, true},
      {66, 3, 2e6, false},
      {40, 5, 5e7, true},  // heavy: ~2 flips per block on average
  };
  for (const Case& c : cases) {
    MonteCarloConfig config;
    config.n = c.n;
    config.m = c.m;
    config.fit_per_bit = c.fit;
    config.include_check_bits = c.check_bits;
    config.trials = 150;
    for (const std::uint64_t seed : {1ull, 77ull, 0xABCDull}) {
      expect_counters_match(config, seed);
    }
  }
}

TEST(MonteCarloEngine, ExactMiscorrectionIsStrictlyBelowApproximationSomewhere) {
  // At m=3 with heavy injection, trials with one failed (uncorrectable)
  // block and an unrelated successful correction are common; the reference
  // counts those blocks as miscorrected, the exact accounting must not.
  MonteCarloConfig config;
  config.n = 30;
  config.m = 3;
  config.fit_per_bit = 2e7;
  config.trials = 400;
  util::Rng fast_rng(11), ref_rng(11);
  const MonteCarloResult fast = run_montecarlo(config, fast_rng);
  const MonteCarloResult ref = reference_run_montecarlo(config, ref_rng);
  EXPECT_GT(ref.miscorrected, 0u);
  EXPECT_LT(fast.miscorrected, ref.miscorrected);
  EXPECT_LE(fast.miscorrected, fast.blocks_failed);
}

TEST(MonteCarloEngine, ValidatesWindowHoursBeforeRunning) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  for (const double bad : {0.0, -24.0}) {
    config.window_hours = bad;
    util::Rng rng(1);
    EXPECT_THROW((void)run_montecarlo(config, rng), std::invalid_argument);
    EXPECT_THROW((void)reference_run_montecarlo(config, rng), std::invalid_argument);
    // Validation happens before the base-seed draw: the stream is untouched.
    util::Rng fresh(1);
    EXPECT_EQ(rng.next(), fresh.next());
  }
  config.window_hours = 24.0;
  config.fit_per_bit = -1.0;
  util::Rng rng(1);
  EXPECT_THROW((void)run_montecarlo(config, rng), std::invalid_argument);
}

TEST(MonteCarloEngine, ReferenceEngineIsThreadCountInvariantToo) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  config.fit_per_bit = 1e6;
  config.trials = 32;
  config.threads = 1;
  util::Rng a(5), b(5);
  const MonteCarloResult one = reference_run_montecarlo(config, a);
  config.threads = 4;
  const MonteCarloResult four = reference_run_montecarlo(config, b);
  EXPECT_EQ(one, four);
}

// ----------------------------------------------------- lifetime engine

TEST(LifetimeEngine, SkipAheadTracksReferenceFailureRate) {
  // Both engines sample the same process (iid windows, binomial hits,
  // uniform block assignment), so over many trials the failure proportions
  // must agree within binomial noise.  P(fail by the horizon) ~ 0.66 here;
  // 400 trials apiece puts sigma(diff) ~ 0.033, and the 4.5-sigma band
  // keeps seed-driven flakes out while still catching any systematic bias.
  LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 4;
  config.fit_per_bit = 1e4;  // analytic MTTF ~ 221 h
  config.scrub_period_hours = 24.0;
  config.max_hours = 240.0;
  config.trials = 400;
  util::Rng fast_rng(7), ref_rng(7);
  const LifetimeResult fast = simulate_lifetime(config, fast_rng);
  const LifetimeResult ref = reference_simulate_lifetime(config, ref_rng);
  const double n = static_cast<double>(config.trials);
  const double pf = static_cast<double>(fast.failures) / n;
  const double pr = static_cast<double>(ref.failures) / n;
  const double sigma = std::sqrt((pf * (1 - pf) + pr * (1 - pr)) / n);
  EXPECT_GT(fast.failures, 0u);
  EXPECT_NEAR(pf, pr, 4.5 * sigma + 1e-9);
  // Corrected-error volume must agree too (same event process).
  const double cf = static_cast<double>(fast.errors_corrected) / n;
  const double cr = static_cast<double>(ref.errors_corrected) / n;
  EXPECT_NEAR(cf, cr, 0.15 * (cf + cr) / 2 + 1.0);
}

TEST(LifetimeEngine, SkipAheadAndReferenceBothTrackAnalyticMttf) {
  LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 4;
  config.fit_per_bit = 1e4;
  config.trials = 300;
  config.max_hours = 24.0 * 2000;
  const double analytic = analytic_mttf_hours(config);
  util::Rng fast_rng(9), ref_rng(9);
  const double fast = simulate_lifetime(config, fast_rng)
                          .empirical_mttf_hours(config.max_hours);
  const double ref = reference_simulate_lifetime(config, ref_rng)
                         .empirical_mttf_hours(config.max_hours);
  EXPECT_NEAR(fast / analytic, 1.0, 0.2);
  EXPECT_NEAR(ref / analytic, 1.0, 0.2);
  EXPECT_NEAR(fast / ref, 1.0, 0.25);
}

TEST(LifetimeEngine, ResultIndependentOfThreadCount) {
  LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 2;
  config.fit_per_bit = 1e4;
  config.max_hours = 24.0 * 500;
  config.trials = 64;
  std::vector<LifetimeResult> results;
  std::vector<std::uint64_t> next_draws;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    util::Rng rng(0x11FE'711ull);
    results.push_back(simulate_lifetime(config, rng));
    next_draws.push_back(rng.next());  // caller stream must advance identically
  }
  EXPECT_GT(results[0].failures, 0u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].failures, results[i].failures);
    EXPECT_EQ(results[0].scrubs_performed, results[i].scrubs_performed);
    EXPECT_EQ(results[0].errors_corrected, results[i].errors_corrected);
    // RunningStats folded in trial order after the join: bit-identical.
    EXPECT_EQ(results[0].time_to_failure_hours.count(),
              results[i].time_to_failure_hours.count());
    EXPECT_EQ(results[0].time_to_failure_hours.mean(),
              results[i].time_to_failure_hours.mean());
    EXPECT_EQ(results[0].time_to_failure_hours.stddev(),
              results[i].time_to_failure_hours.stddev());
    EXPECT_EQ(next_draws[0], next_draws[i]);
  }
}

TEST(LifetimeEngine, ValidatesConfigBeforeDrawing) {
  util::Rng rng(1);
  LifetimeConfig config;
  config.max_hours = 0.0;
  EXPECT_THROW((void)simulate_lifetime(config, rng), std::invalid_argument);
  config = LifetimeConfig{};
  // An infinite horizon must be rejected up front, not spun on forever.
  config.max_hours = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)simulate_lifetime(config, rng), std::invalid_argument);
  config = LifetimeConfig{};
  config.fit_per_bit = -1.0;
  EXPECT_THROW((void)simulate_lifetime(config, rng), std::invalid_argument);
  util::Rng fresh(1);
  EXPECT_EQ(rng.next(), fresh.next());
}

TEST(LifetimeEngine, EmpiricalMttfHandComputedCensoredExample) {
  // 4 trials against a 1000 h horizon: two fail at 100 h and 200 h, two
  // survive (censored at the full horizon).  Exposure-based MLE:
  // (100 + 200 + 2 * 1000) / 2 = 1150 h.
  LifetimeResult result;
  result.trials = 4;
  result.failures = 2;
  result.time_to_failure_hours.add(100.0);
  result.time_to_failure_hours.add(200.0);
  EXPECT_DOUBLE_EQ(result.empirical_mttf_hours(1000.0), 1150.0);
  // failures == 0 convention: total exposure, horizon * trials.
  LifetimeResult censored;
  censored.trials = 4;
  EXPECT_DOUBLE_EQ(censored.empirical_mttf_hours(1000.0), 4000.0);
}

}  // namespace
}  // namespace pimecc::rel
