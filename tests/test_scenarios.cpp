// Unit tests for the scenario-diversity subsystem: the activation-induced
// disturbance model, per-row activation accounting in the crossbars and the
// PIM machine, stuck-at cell semantics, the pluggable scrub policies'
// deterministic schedules, and the scenario lifetime engine (zero-rate
// exact cross-check against simulate_lifetime, iid statistical band, stuck
// re-flip semantics, and thread-count determinism).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "arch/pim_machine.hpp"
#include "fault/disturbance.hpp"
#include "fault/models.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/scenario.hpp"
#include "reliability/scrub_policy.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/reference_crossbar.hpp"

namespace pimecc {
namespace {

// --------------------------------------------------------- DisturbanceModel

TEST(Disturbance, ValidatesConstruction) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 1e-6;
  EXPECT_NO_THROW(fault::DisturbanceModel(8, 8, params));
  EXPECT_THROW(fault::DisturbanceModel(0, 8, params), std::invalid_argument);
  EXPECT_THROW(fault::DisturbanceModel(8, 0, params), std::invalid_argument);
  params.neighbor_radius = 0;
  EXPECT_THROW(fault::DisturbanceModel(8, 8, params), std::invalid_argument);
  params.neighbor_radius = 1;
  params.flip_probability_per_activation = -1e-6;
  EXPECT_THROW(fault::DisturbanceModel(8, 8, params), std::invalid_argument);
}

TEST(Disturbance, PressureSumsNeighborsAboveTheFloor) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 1e-6;
  params.neighbor_radius = 2;
  params.activation_floor = 10;
  const fault::DisturbanceModel model(6, 6, params);
  const std::vector<double> acts = {100.0, 5.0, 40.0, 0.0, 25.0, 100.0};
  // Victim 2 sees rows {0, 1, 3, 4}: (100-10) + 0 + 0 + (25-10) = 105.
  EXPECT_DOUBLE_EQ(model.victim_pressure(acts, 2), 105.0);
  // Victim 0 sees rows {1, 2}: 0 + 30.  Its own 100 never self-disturbs.
  EXPECT_DOUBLE_EQ(model.victim_pressure(acts, 0), 30.0);
  EXPECT_THROW((void)model.victim_pressure(acts, 6), std::out_of_range);
  const std::vector<double> wrong(5, 0.0);
  EXPECT_THROW((void)model.victim_pressure(wrong, 0), std::invalid_argument);
}

TEST(Disturbance, ZeroPressureRowsConsumeNoRandomness) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 1e-3;
  const fault::DisturbanceModel model(8, 8, params);
  util::Rng rng(3);
  const util::Rng::State before = rng.state();
  const std::vector<std::uint64_t> idle(8, 0);
  EXPECT_TRUE(model.sample(rng, idle).empty());
  EXPECT_EQ(rng.state(), before);
}

TEST(Disturbance, FlipsLandOnlyOnVictimRows) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 0.5;  // hot, for coverage
  params.neighbor_radius = 1;
  const fault::DisturbanceModel model(8, 16, params);
  std::vector<double> acts(8, 0.0);
  acts[4] = 50.0;  // single aggressor: victims are rows 3 and 5 only
  util::Rng rng(11);
  std::vector<fault::DataFlip> out;
  std::vector<std::size_t> scratch;
  for (int draw = 0; draw < 50; ++draw) {
    out.clear();
    model.sample(rng, acts, out, scratch);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const fault::DataFlip& f : out) {
      EXPECT_TRUE(f.r == 3 || f.r == 5) << "non-victim row " << f.r;
      EXPECT_LT(f.c, 16u);
      EXPECT_TRUE(seen.insert({f.r, f.c}).second) << "duplicate flip";
    }
  }
}

TEST(Disturbance, SampleIsDeterministicPerRngStream) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 1e-2;
  const fault::DisturbanceModel model(16, 16, params);
  std::vector<std::uint64_t> acts(16, 0);
  acts[2] = 100;
  acts[9] = 400;
  util::Rng a(77), b(77);
  for (int draw = 0; draw < 10; ++draw) {
    const auto fa = model.sample(a, acts);
    const auto fb = model.sample(b, acts);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].r, fb[i].r);
      EXPECT_EQ(fa[i].c, fb[i].c);
    }
  }
}

// The hazard is additive in aggressor activations, so one window of 2A
// activations and two windows of A each yield the same flip distribution
// (chunk invariance).  Compare empirical per-victim flip rates.
TEST(Disturbance, HazardIsChunkInvariantInDistribution) {
  fault::DisturbanceParams params;
  params.flip_probability_per_activation = 2e-3;
  const fault::DisturbanceModel model(4, 64, params);
  std::vector<double> full(4, 0.0), half(4, 0.0);
  full[1] = 800.0;  // p(victim cell) = 1 - exp(-1.6) = 0.798
  half[1] = 400.0;
  util::Rng rng_one(5), rng_two(6);
  const int kDraws = 400;
  std::size_t flips_one = 0, flips_two = 0;
  std::vector<fault::DataFlip> out;
  std::vector<std::size_t> scratch;
  for (int draw = 0; draw < kDraws; ++draw) {
    out.clear();
    model.sample(rng_one, full, out, scratch);
    flips_one += std::count_if(out.begin(), out.end(),
                               [](const fault::DataFlip& f) { return f.r == 0; });
    // Two half-windows: a cell flips in the window iff it flips an odd
    // number of times; with independent per-window Bernoulli hazards the
    // *expected flip count* is what adds, so compare total flips.
    out.clear();
    model.sample(rng_two, half, out, scratch);
    model.sample(rng_two, half, out, scratch);
    flips_two += std::count_if(out.begin(), out.end(),
                               [](const fault::DataFlip& f) { return f.r == 0; });
  }
  const double kCells = 64.0 * kDraws;
  const double rate_one = static_cast<double>(flips_one) / kCells;
  // Per half-window p_h = 1 - exp(-0.8); two windows flip 2*p_h cells in
  // expectation vs 1 - exp(-1.6) for the single window -- the *event*
  // counts differ (XOR-cancellation is the injector's job), but the
  // underlying hazard matches: 1-(1-p_h)^2 == 1-exp(-1.6).
  const double p_two_union =
      1.0 - std::pow(1.0 - (static_cast<double>(flips_two) / (2.0 * kCells)), 2.0);
  EXPECT_NEAR(rate_one, 1.0 - std::exp(-1.6), 0.02);
  EXPECT_NEAR(p_two_union, 1.0 - std::exp(-1.6), 0.02);
}

// ------------------------------------------------------- activation counters

TEST(ActivationCounters, RowOpsCountPerRowAndColumnOpsBroadcast) {
  xbar::Crossbar xb(8, 8);
  const util::BitVector row_image(8, true);
  xb.write_row(3, row_image);
  xb.write_row(3, row_image);
  (void)xb.read_row(5);
  EXPECT_EQ(xb.row_activations(3), 2u);
  EXPECT_EQ(xb.row_activations(5), 1u);
  EXPECT_EQ(xb.row_activations(0), 0u);
  // A column access drives every wordline: all rows tick once.
  xb.write_column(2, util::BitVector(8, false));
  EXPECT_EQ(xb.row_activations(3), 3u);
  EXPECT_EQ(xb.row_activations(0), 1u);
  EXPECT_THROW((void)xb.row_activations(8), std::out_of_range);
  const std::vector<std::uint64_t> snapshot = xb.row_activation_snapshot();
  ASSERT_EQ(snapshot.size(), 8u);
  EXPECT_EQ(snapshot[3], 3u);
  EXPECT_EQ(snapshot[0], 1u);
  xb.reset_row_activations();
  for (std::size_t r = 0; r < 8; ++r) EXPECT_EQ(xb.row_activations(r), 0u);
}

TEST(ActivationCounters, FastAndReferenceEnginesAgreeOnARandomProgram) {
  constexpr std::size_t kN = 16;
  xbar::Crossbar fast(kN, kN);
  xbar::ReferenceCrossbar ref(kN, kN);
  util::Rng rng(2025);
  for (int op = 0; op < 300; ++op) {
    switch (rng.uniform_below(6)) {
      case 0: {
        const std::size_t r = rng.uniform_below(kN);
        util::BitVector v(kN);
        for (std::size_t i = 0; i < kN; ++i) v.set(i, rng.bernoulli(0.5));
        fast.write_row(r, v);
        ref.write_row(r, v);
        break;
      }
      case 1: {
        const std::size_t c = rng.uniform_below(kN);
        util::BitVector v(kN);
        for (std::size_t i = 0; i < kN; ++i) v.set(i, rng.bernoulli(0.5));
        fast.write_column(c, v);
        ref.write_column(c, v);
        break;
      }
      case 2: {
        const std::size_t r = rng.uniform_below(kN);
        EXPECT_TRUE(fast.read_row(r) == ref.read_row(r));
        break;
      }
      case 3: {
        const std::size_t line = rng.uniform_below(kN);
        const std::size_t lines[1] = {line};
        const auto o = rng.bernoulli(0.5) ? xbar::Orientation::kRow
                                          : xbar::Orientation::kColumn;
        fast.magic_init(o, lines);
        ref.magic_init(o, lines);
        break;
      }
      case 4: {
        std::size_t in[2] = {rng.uniform_below(kN), rng.uniform_below(kN)};
        std::size_t out_line = rng.uniform_below(kN);
        while (out_line == in[0] || out_line == in[1]) {
          out_line = rng.uniform_below(kN);
        }
        if (in[0] == in[1]) in[1] = (in[1] + 1) % kN;
        const auto o = rng.bernoulli(0.5) ? xbar::Orientation::kRow
                                          : xbar::Orientation::kColumn;
        const std::size_t outs[1] = {out_line};
        fast.magic_init(o, outs);
        ref.magic_init(o, outs);
        (void)fast.magic_nor(o, in, out_line);
        (void)ref.magic_nor(o, in, out_line);
        break;
      }
      default: {
        const std::size_t r = rng.uniform_below(kN);
        const std::size_t c = rng.uniform_below(kN);
        const bool v = rng.bernoulli(0.5);
        fast.write_bit(r, c, v);
        ref.write_bit(r, c, v);
        break;
      }
    }
  }
  EXPECT_EQ(fast.row_activation_snapshot(), ref.row_activation_snapshot());
  for (std::size_t r = 0; r < kN; ++r) {
    EXPECT_EQ(fast.row_activations(r), ref.row_activations(r)) << "row " << r;
  }
}

TEST(ActivationCounters, PimMachineExposesMemActivationAccounting) {
  arch::ArchParams params;
  params.n = 30;
  params.m = 15;
  params.validate();
  arch::PimMachine machine(params);
  util::Rng rng(4);
  machine.load(util::random_bit_matrix(30, 30, rng));
  machine.reset_mem_row_activations();
  const std::uint64_t before = machine.mem_row_activations(7);
  EXPECT_EQ(before, 0u);
  util::BitVector row(30);
  for (std::size_t i = 0; i < 30; ++i) row.set(i, rng.bernoulli(0.5));
  machine.write_row_protected(7, row);
  EXPECT_GT(machine.mem_row_activations(7), 0u);
  const std::vector<std::uint64_t> snapshot = machine.mem_row_activation_snapshot();
  ASSERT_EQ(snapshot.size(), 30u);
  EXPECT_EQ(snapshot[7], machine.mem_row_activations(7));
  machine.reset_mem_row_activations();
  for (std::size_t r = 0; r < 30; ++r) {
    EXPECT_EQ(machine.mem_row_activations(r), 0u);
  }
}

// ----------------------------------------------------------------- StuckAt

TEST(StuckAt, MarkRepairReplaceLifecycle) {
  EXPECT_THROW(fault::StuckAtSet(0), std::invalid_argument);
  fault::StuckAtSet stuck(3);
  EXPECT_TRUE(stuck.mark(42));
  EXPECT_FALSE(stuck.mark(42));  // already latched: no state change
  EXPECT_TRUE(stuck.is_stuck(42));
  EXPECT_FALSE(stuck.is_stuck(7));
  EXPECT_THROW((void)stuck.on_repair(7), std::logic_error);
  EXPECT_FALSE(stuck.on_repair(42));  // repair 1 of 3: still stuck
  EXPECT_FALSE(stuck.on_repair(42));  // repair 2 of 3
  EXPECT_EQ(stuck.replaced_count(), 0u);
  EXPECT_TRUE(stuck.on_repair(42));   // repair 3: remapped to a spare
  EXPECT_FALSE(stuck.is_stuck(42));
  EXPECT_EQ(stuck.stuck_count(), 0u);
  EXPECT_EQ(stuck.replaced_count(), 1u);
  // A replaced cell can latch again (the spare is not immortal).
  EXPECT_TRUE(stuck.mark(42));
  stuck.clear();
  EXPECT_EQ(stuck.stuck_count(), 0u);
}

// ---------------------------------------------------------- scrub schedules

rel::ScrubPlanContext make_context(std::span<const double> rates,
                                   double horizon) {
  rel::ScrubPlanContext ctx;
  ctx.n = 60;
  ctx.m = 15;
  ctx.horizon_hours = horizon;
  ctx.row_activation_rates = rates;
  return ctx;
}

bool covers(const rel::ScrubEvent& event, std::size_t band) {
  return event.full() || std::binary_search(event.bands.begin(),
                                            event.bands.end(), band);
}

TEST(ScrubSchedule, PeriodicEmitsOneScrubPerStartedWindow) {
  rel::ScrubPolicyConfig config;  // periodic, 24 h
  const auto policy = rel::make_scrub_policy(config);
  EXPECT_EQ(policy->kind(), rel::ScrubPolicyKind::kPeriodic);
  const std::vector<double> rates(60, 0.0);
  const auto plan = policy->plan(make_context(rates, 240.0));
  ASSERT_EQ(plan.size(), 10u);  // windows start at 0, 24, ..., 216
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan[i].hours, 24.0 * static_cast<double>(i + 1));
    EXPECT_TRUE(plan[i].full());
  }
  // A horizon inside a window still gets that window's scrub: the final
  // event may overhang the horizon (one-scrub-per-started-window).
  const auto overhang = policy->plan(make_context(rates, 250.0));
  ASSERT_EQ(overhang.size(), 11u);
  EXPECT_DOUBLE_EQ(overhang.back().hours, 264.0);
}

TEST(ScrubSchedule, RegionPolicyRoundRobinsBandsAtTheRegionCadence) {
  rel::ScrubPolicyConfig config;
  ASSERT_TRUE(rel::apply_policy_preset("region", config));
  const auto policy = rel::make_scrub_policy(config);
  const std::vector<double> rates(60, 0.0);
  const auto plan = policy->plan(make_context(rates, 48.0));
  ASSERT_EQ(plan.size(), 8u);  // every 6 h, one band per event
  std::size_t per_band[4] = {0, 0, 0, 0};
  double previous = 0.0;
  for (const rel::ScrubEvent& event : plan) {
    EXPECT_GT(event.hours, previous);
    previous = event.hours;
    ASSERT_EQ(event.bands.size(), 1u);
    ++per_band[event.bands[0]];
  }
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(per_band[b], 2u) << "band " << b;  // two full cycles in 48 h
  }
}

TEST(ScrubSchedule, ActivationPolicyScrubsHotBandsMoreOftenWithABackstop) {
  rel::ScrubPolicyConfig config;
  ASSERT_TRUE(rel::apply_policy_preset("activation", config));
  const auto policy = rel::make_scrub_policy(config);
  const std::vector<double> rates =
      rel::row_activation_rates(rel::canonical_workload(), 60);
  const auto plan = policy->plan(make_context(rates, 48.0));
  std::size_t hot = 0, cold = 0;
  for (const rel::ScrubEvent& event : plan) {
    if (covers(event, 0)) ++hot;   // band 0 holds the hot rows: 6 h cadence
    if (covers(event, 3)) ++cold;  // cold band rides the 24 h backstop
  }
  EXPECT_EQ(hot, 8u);
  EXPECT_EQ(cold, 2u);
  // With no activations at all, every band falls back to the backstop and
  // the coalesced schedule degenerates to the periodic baseline.
  const std::vector<double> idle(60, 0.0);
  const auto fallback = policy->plan(make_context(idle, 48.0));
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_TRUE(fallback[0].full());
  EXPECT_TRUE(fallback[1].full());
}

TEST(ScrubSchedule, HotRowPolicyAddsHotScrubsAndFullsAbsorbCoincidentOnes) {
  rel::ScrubPolicyConfig config;
  ASSERT_TRUE(rel::apply_policy_preset("hotrow", config));
  const auto policy = rel::make_scrub_policy(config);
  const std::vector<double> rates =
      rel::row_activation_rates(rel::canonical_workload(), 60);
  const auto plan = policy->plan(make_context(rates, 48.0));
  ASSERT_EQ(plan.size(), 8u);  // 6 h grid; fulls at 24 and 48 absorb hot events
  for (const rel::ScrubEvent& event : plan) {
    const bool on_full_grid = std::fmod(event.hours, 24.0) == 0.0;
    if (on_full_grid) {
      EXPECT_TRUE(event.full()) << "t=" << event.hours;
    } else {
      ASSERT_EQ(event.bands.size(), 1u) << "t=" << event.hours;
      EXPECT_EQ(event.bands[0], 0u);  // only band 0 contains hot rows
    }
  }
  // Uniform workload: no row is hotter than the floor, so the policy
  // degenerates to the periodic baseline.
  const std::vector<double> uniform(60, 1000.0);
  const auto flat = policy->plan(make_context(uniform, 48.0));
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_TRUE(flat[0].full());
}

TEST(ScrubSchedule, ValidatesConfigurationAndContext) {
  rel::ScrubPolicyConfig config;
  config.period_hours = 0.0;
  EXPECT_THROW(rel::require_valid(config), std::invalid_argument);
  config.period_hours = 24.0;
  config.activation_budget = 0;
  EXPECT_THROW(rel::require_valid(config), std::invalid_argument);
  config.activation_budget = 1;
  config.regions = 0;
  EXPECT_THROW(rel::require_valid(config), std::invalid_argument);
  config.regions = 4;
  EXPECT_NO_THROW(rel::require_valid(config));

  const auto policy = rel::make_scrub_policy(rel::ScrubPolicyConfig{});
  const std::vector<double> rates(60, 0.0);
  rel::ScrubPlanContext bad = make_context(rates, 240.0);
  bad.m = 7;  // does not divide n
  EXPECT_THROW((void)policy->plan(bad), std::invalid_argument);
  bad = make_context(rates, -1.0);
  EXPECT_THROW((void)policy->plan(bad), std::invalid_argument);
  const std::vector<double> short_rates(59, 0.0);
  EXPECT_THROW((void)policy->plan(make_context(short_rates, 240.0)),
               std::invalid_argument);
  std::vector<double> negative(60, 0.0);
  negative[3] = -1.0;
  EXPECT_THROW((void)policy->plan(make_context(negative, 240.0)),
               std::invalid_argument);
}

TEST(ScrubSchedule, PresetNamesRoundTrip) {
  for (const std::string_view name : rel::scrub_policy_preset_names()) {
    rel::ScrubPolicyConfig config;
    EXPECT_TRUE(rel::apply_policy_preset(name, config)) << name;
    EXPECT_EQ(rel::to_string(make_scrub_policy(config)->kind()), name);
  }
  rel::ScrubPolicyConfig config;
  EXPECT_FALSE(rel::apply_policy_preset("nonsense", config));
  for (const std::string_view name : rel::fault_preset_names()) {
    rel::FaultMix mix;
    EXPECT_TRUE(rel::apply_fault_preset(name, 1000.0, mix)) << name;
  }
  rel::FaultMix mix;
  EXPECT_FALSE(rel::apply_fault_preset("nonsense", 1000.0, mix));
}

// --------------------------------------------------------- scenario engine

void expect_identical(const rel::ScenarioResult& a, const rel::ScenarioResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.scrub_events, b.scrub_events);
  EXPECT_EQ(a.blocks_scrubbed, b.blocks_scrubbed);
  EXPECT_EQ(a.cells_scrubbed, b.cells_scrubbed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.errors_corrected, b.errors_corrected);
  EXPECT_EQ(a.stuck_repairs, b.stuck_repairs);
  EXPECT_EQ(a.cells_replaced, b.cells_replaced);
  EXPECT_EQ(a.time_to_failure_hours.count(), b.time_to_failure_hours.count());
  EXPECT_EQ(a.time_to_failure_hours.mean(), b.time_to_failure_hours.mean());
  EXPECT_EQ(a.time_to_failure_hours.min(), b.time_to_failure_hours.min());
  EXPECT_EQ(a.time_to_failure_hours.max(), b.time_to_failure_hours.max());
}

TEST(Scenario, ValidatesConfigurationBeforeConsumingRandomness) {
  rel::ScenarioConfig config;
  config.n = 60;
  config.m = 7;  // does not divide n
  util::Rng rng(1);
  const util::Rng::State before = rng.state();
  EXPECT_THROW((void)rel::run_scenario(config, rng), std::invalid_argument);
  EXPECT_EQ(rng.state(), before);
  config.m = 15;
  config.trials = 0;
  EXPECT_THROW((void)rel::run_scenario(config, rng), std::invalid_argument);
  config.trials = 1;
  config.faults.stuck_probability = 1.5;
  EXPECT_THROW((void)rel::run_scenario(config, rng), std::invalid_argument);
}

TEST(Scenario, DrawsExactlyOneValueFromTheCallerRng) {
  rel::ScenarioConfig config;
  config.trials = 3;
  config.max_hours = 48.0;
  config.faults.fit_per_bit = 1e4;
  util::Rng rng(99), twin(99);
  (void)rel::run_scenario(config, rng);
  (void)twin.next();
  EXPECT_EQ(rng.state(), twin.state());
}

// At a zero fault rate the scenario engine and the lifetime engine must
// agree *exactly*: same scrub count (one per started window), zero
// failures, zero corrections -- the accounting cross-check that pins the
// policy's emission rule to the reference walker's.
TEST(Scenario, ZeroRateScrubAccountingMatchesLifetimeEngineExactly) {
  rel::ScenarioConfig sc;
  sc.trials = 7;
  sc.max_hours = 240.0;
  sc.policy.period_hours = 24.0;
  util::Rng rng_s(123);
  const rel::ScenarioResult scenario = rel::run_scenario(sc, rng_s);

  rel::LifetimeConfig lf;
  lf.crossbars = 1;
  lf.fit_per_bit = 0.0;
  lf.scrub_period_hours = 24.0;
  lf.trials = 7;
  lf.max_hours = 240.0;
  util::Rng rng_l(123);
  const rel::LifetimeResult lifetime = rel::simulate_lifetime(lf, rng_l);

  EXPECT_EQ(scenario.failures, 0u);
  EXPECT_EQ(lifetime.failures, 0u);
  EXPECT_EQ(scenario.scrub_events, lifetime.scrubs_performed);
  EXPECT_EQ(scenario.scrub_events, 7u * 10u);
  EXPECT_EQ(scenario.errors_corrected, 0u);
  EXPECT_EQ(scenario.faults_injected, 0u);
  // Full scrubs over a 60x60/m=15 array: 16 blocks of 225 data + 30 check
  // cells per event.
  EXPECT_EQ(scenario.blocks_scrubbed, scenario.scrub_events * 16u);
  EXPECT_EQ(scenario.cells_scrubbed, scenario.scrub_events * 16u * 255u);
  // Zero failures: the MTTF convention is total exposure.
  EXPECT_DOUBLE_EQ(scenario.empirical_mttf_hours(240.0), 240.0 * 7.0);
}

// With the iid mechanism alone and the periodic policy the scenario engine
// samples the same physical process as the lifetime engine (it places hits
// on distinct cells where the lifetime engine draws per-block counts, so
// the pin is statistical, not bit-exact).
TEST(Scenario, IidFailureRateMatchesLifetimeEngineStatistically) {
  constexpr std::size_t kTrials = 300;
  constexpr double kHorizon = 240.0;
  rel::ScenarioConfig sc;
  sc.trials = kTrials;
  sc.max_hours = kHorizon;
  sc.faults.fit_per_bit = 1.5e4;
  util::Rng rng_s(0xA5E11);
  const rel::ScenarioResult scenario = rel::run_scenario(sc, rng_s);

  rel::LifetimeConfig lf;
  lf.crossbars = 1;
  lf.fit_per_bit = 1.5e4;
  lf.trials = kTrials;
  lf.max_hours = kHorizon;
  util::Rng rng_l(0xB0B);
  const rel::LifetimeResult lifetime = rel::simulate_lifetime(lf, rng_l);

  ASSERT_GT(scenario.failures, 0u);
  ASSERT_GT(lifetime.failures, 0u);
  const double ps = static_cast<double>(scenario.failures) / kTrials;
  const double pl = static_cast<double>(lifetime.failures) / kTrials;
  const double sigma =
      std::sqrt((ps * (1.0 - ps) + pl * (1.0 - pl)) / kTrials);
  EXPECT_NEAR(ps, pl, 5.0 * sigma + 1e-9);
  const double mttf_ratio = scenario.empirical_mttf_hours(kHorizon) /
                            lifetime.empirical_mttf_hours(kHorizon);
  EXPECT_GT(mttf_ratio, 0.5);
  EXPECT_LT(mttf_ratio, 2.0);
}

// Stuck-at semantics end to end: cells that re-flip after every repair are
// strictly worse than cells replaced on first repair, and the repair
// accounting obeys the replacement threshold.
TEST(Scenario, StuckCellsDegradeLifetimeUntilReplaced) {
  rel::ScenarioConfig base;
  base.trials = 120;
  base.max_hours = 480.0;
  base.faults.fit_per_bit = 2e4;
  base.faults.stuck_probability = 1.0;  // every fault latches

  rel::ScenarioConfig sticky = base;
  sticky.faults.replace_after_repairs = 64;  // effectively never replaced
  util::Rng rng_a(31337);
  const rel::ScenarioResult never_replaced = rel::run_scenario(sticky, rng_a);

  rel::ScenarioConfig replace_fast = base;
  replace_fast.faults.replace_after_repairs = 1;  // spare on first repair
  util::Rng rng_b(31337);
  const rel::ScenarioResult replaced = rel::run_scenario(replace_fast, rng_b);

  EXPECT_GT(never_replaced.stuck_repairs, 0u);
  EXPECT_GT(never_replaced.failures, replaced.failures);
  // Replace-after-1 remaps on every stuck repair: the two counters agree
  // exactly, and the >= replace_after * replacements invariant is tight.
  EXPECT_EQ(replaced.stuck_repairs, replaced.cells_replaced);
  EXPECT_GT(replaced.cells_replaced, 0u);
  EXPECT_GE(never_replaced.stuck_repairs,
            never_replaced.cells_replaced * 64u);
}

// Tiny mixed-mechanism campaign under the smoke label: every CI invocation
// exercises disturbance + bursts + stuck-at + an adaptive policy end to
// end, and the campaign is a pure function of the seed.
TEST(ScenarioSmoke, MixedCampaignIsDeterministicPerSeed) {
  rel::ScenarioConfig config;
  config.trials = 12;
  config.max_hours = 120.0;
  ASSERT_TRUE(rel::apply_fault_preset("mixed", 1.5e4, config.faults));
  ASSERT_TRUE(rel::apply_policy_preset("hotrow", config.policy));
  util::Rng rng_a(7), rng_b(7), rng_c(8);
  const rel::ScenarioResult a = rel::run_scenario(config, rng_a);
  const rel::ScenarioResult b = rel::run_scenario(config, rng_b);
  expect_identical(a, b);
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_GT(a.scrub_events, 0u);
  // A different seed perturbs the campaign (overwhelmingly likely at this
  // fault rate).
  const rel::ScenarioResult c = rel::run_scenario(config, rng_c);
  EXPECT_NE(a.faults_injected, c.faults_injected);
}

// The substream-determinism contract: bit-identical results at any thread
// count.  Runs under the concurrency label (ThreadSanitizer target set).
TEST(ScenarioConcurrency, ResultsAreBitIdenticalAtAnyThreadCount) {
  rel::ScenarioConfig config;
  config.trials = 64;
  config.max_hours = 240.0;
  ASSERT_TRUE(rel::apply_fault_preset("mixed", 1.5e4, config.faults));
  ASSERT_TRUE(rel::apply_policy_preset("activation", config.policy));

  config.threads = 1;
  util::Rng rng_serial(42);
  const rel::ScenarioResult serial = rel::run_scenario(config, rng_serial);
  ASSERT_GT(serial.failures, 0u);

  config.threads = 3;
  util::Rng rng_three(42);
  expect_identical(serial, rel::run_scenario(config, rng_three));

  config.threads = 0;  // full shared-executor width
  util::Rng rng_wide(42);
  expect_identical(serial, rel::run_scenario(config, rng_wide));
}

}  // namespace
}  // namespace pimecc
