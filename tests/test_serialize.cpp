// Tests for util/serialize: CRC-64, the byte codecs, and the chunk framing
// -- every structural defect class (truncation, bad magic, bad version,
// implausible size, checksum mismatch, trailing bytes, nonzero bit-vector
// padding) must throw SerializeError, never return partial data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace pimecc {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::SerializeError;

TEST(Crc64, KnownVector) {
  // CRC-64/XZ check value for the ASCII digits "123456789".
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(util::crc64(digits), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(util::crc64({}), 0u);
}

TEST(Crc64, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes(64);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint64_t clean = util::crc64(bytes);
  for (std::size_t i = 0; i < bytes.size(); i += 11) {
    bytes[i] ^= 0x10;
    EXPECT_NE(util::crc64(bytes), clean) << "flip at byte " << i;
    bytes[i] ^= 0x10;
  }
  EXPECT_EQ(util::crc64(bytes), clean);
}

TEST(ChunkMagic, PacksEightChars) {
  const std::uint64_t magic = util::chunk_magic("PIMECCKP");
  EXPECT_EQ(magic & 0xFF, static_cast<std::uint64_t>('P'));
  EXPECT_EQ((magic >> 56) & 0xFF, static_cast<std::uint64_t>('P'));
  EXPECT_NE(util::chunk_magic("PIMECCMC"), magic);
  EXPECT_THROW((void)util::chunk_magic("SHORT"), std::invalid_argument);
  EXPECT_THROW((void)util::chunk_magic("TOO LONG TAG"), std::invalid_argument);
}

TEST(ByteCodec, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1234.5678);
  w.f64(-0.0);
  w.str("hello");
  w.str("");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1234.5678);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_NO_THROW(r.require_exhausted());
}

TEST(ByteCodec, RoundTripsBitContainers) {
  util::Rng rng(7);
  util::BitVector bits(133);
  util::fill_random(bits, rng);
  const util::BitMatrix mat = util::random_bit_matrix(9, 70, rng);

  ByteWriter w;
  w.bitvector(bits);
  w.bitmatrix(mat);
  w.bitvector(util::BitVector(0));

  ByteReader r(w.data());
  EXPECT_TRUE(r.bitvector() == bits);
  EXPECT_TRUE(r.bitmatrix() == mat);
  EXPECT_EQ(r.bitvector().size(), 0u);
  EXPECT_NO_THROW(r.require_exhausted());
}

TEST(ByteCodec, TruncationThrows) {
  ByteWriter w;
  w.u64(42);
  w.str("payload");
  const auto full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(full.subspan(0, cut));
    EXPECT_THROW(
        {
          (void)r.u64();
          (void)r.str();
        },
        SerializeError)
        << "prefix length " << cut;
  }
}

TEST(ByteCodec, TrailingBytesThrow) {
  ByteWriter w;
  w.u32(1);
  w.u8(0);
  ByteReader r(w.data());
  (void)r.u32();
  EXPECT_THROW(r.require_exhausted(), SerializeError);
}

TEST(ByteCodec, HugeDeclaredBitVectorThrowsBeforeAllocating) {
  ByteWriter w;
  w.u64(~std::uint64_t{0});  // declared bit count ~2^64: words don't exist
  ByteReader r(w.data());
  EXPECT_THROW((void)r.bitvector(), SerializeError);

  ByteWriter wm;
  wm.u64(1u << 20);  // rows
  wm.u64(1u << 20);  // cols -- words would need terabytes
  ByteReader rm(wm.data());
  EXPECT_THROW((void)rm.bitmatrix(), SerializeError);
}

TEST(ByteCodec, NonzeroPaddingRejected) {
  util::BitVector bits(10);
  bits.set(3, true);
  ByteWriter w;
  w.bitvector(bits);
  std::vector<std::uint8_t> bytes(w.data().begin(), w.data().end());
  bytes[8 + 2] |= 0x80;  // bit 23 of the word: beyond size 10, inside word 0
  ByteReader r(bytes);
  EXPECT_THROW((void)r.bitvector(), SerializeError);
}

TEST(ChunkFraming, RoundTrips) {
  const std::uint64_t magic = util::chunk_magic("PIMECCT1");
  ByteWriter w;
  w.u64(123);
  w.str("chunk payload");

  std::stringstream stream;
  util::write_chunk(stream, magic, 3, w.data());
  const util::Chunk chunk = util::read_chunk(stream, magic, 5);
  EXPECT_EQ(chunk.version, 3u);
  ByteReader r(chunk.payload);
  EXPECT_EQ(r.u64(), 123u);
  EXPECT_EQ(r.str(), "chunk payload");
  EXPECT_NO_THROW(r.require_exhausted());
}

TEST(ChunkFraming, EmptyPayloadRoundTrips) {
  const std::uint64_t magic = util::chunk_magic("PIMECCT1");
  std::stringstream stream;
  util::write_chunk(stream, magic, 1, {});
  const util::Chunk chunk = util::read_chunk(stream, magic, 1);
  EXPECT_EQ(chunk.version, 1u);
  EXPECT_TRUE(chunk.payload.empty());
}

class ChunkDefects : public ::testing::Test {
 protected:
  void SetUp() override {
    ByteWriter w;
    w.u64(0xFEEDFACEull);
    w.str("some payload text");
    std::stringstream stream;
    util::write_chunk(stream, magic_, 2, w.data());
    encoded_ = stream.str();
  }

  [[nodiscard]] util::Chunk decode(const std::string& bytes,
                                   std::uint32_t max_version = 4) const {
    std::istringstream stream(bytes);
    return util::read_chunk(stream, magic_, max_version);
  }

  const std::uint64_t magic_ = util::chunk_magic("PIMECCT2");
  std::string encoded_;
};

TEST_F(ChunkDefects, WrongMagicThrows) {
  std::string bad = encoded_;
  bad[0] ^= 0x01;
  EXPECT_THROW((void)decode(bad), SerializeError);
}

TEST_F(ChunkDefects, UnsupportedVersionThrows) {
  // Reader older than the writer: max_version below the stored version.
  EXPECT_THROW((void)decode(encoded_, 1), SerializeError);
  // Version 0 is never valid.
  std::string bad = encoded_;
  bad[8] = bad[9] = bad[10] = bad[11] = '\0';
  EXPECT_THROW((void)decode(bad), SerializeError);
}

TEST_F(ChunkDefects, EveryTruncationThrows) {
  for (std::size_t cut = 0; cut < encoded_.size(); ++cut) {
    EXPECT_THROW((void)decode(encoded_.substr(0, cut)), SerializeError)
        << "prefix length " << cut;
  }
  EXPECT_NO_THROW((void)decode(encoded_));
}

TEST_F(ChunkDefects, CorruptPayloadByteFailsChecksum) {
  const std::size_t header = 8 + 4 + 8;
  for (std::size_t i = header; i + 8 < encoded_.size(); ++i) {
    std::string bad = encoded_;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_THROW((void)decode(bad), SerializeError) << "payload byte " << i;
  }
}

TEST_F(ChunkDefects, CorruptChecksumThrows) {
  std::string bad = encoded_;
  bad.back() = static_cast<char>(bad.back() ^ 0xFF);
  EXPECT_THROW((void)decode(bad), SerializeError);
}

TEST_F(ChunkDefects, ImplausibleSizeThrowsWithoutAllocating) {
  // Rewrite the size field to a multi-exabyte claim; the reader must
  // reject on the bound, not attempt the allocation/read.
  std::string bad = encoded_;
  for (std::size_t i = 0; i < 8; ++i) {
    bad[12 + i] = static_cast<char>(0xFF);
  }
  EXPECT_THROW((void)decode(bad), SerializeError);
}

}  // namespace
}  // namespace pimecc
