// Tests for the multi-slope generalization of the diagonal code.
#include <set>
#include <gtest/gtest.h>

#include "core/block_code.hpp"
#include "core/multislope_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::ecc {
namespace {

util::BitMatrix random_block(std::size_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  util::BitMatrix mat(m, m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) mat.set(r, c, rng.bernoulli(0.5));
  }
  return mat;
}

TEST(MultiSlope, ValidatesSlopes) {
  EXPECT_THROW(MultiSlopeCodec(15, {3}), std::invalid_argument);   // gcd 3
  EXPECT_THROW(MultiSlopeCodec(15, {5}), std::invalid_argument);   // gcd 5
  EXPECT_THROW(MultiSlopeCodec(15, {1, 16}), std::invalid_argument);  // dup mod m
  EXPECT_THROW(MultiSlopeCodec(15, {}), std::invalid_argument);
  EXPECT_THROW(MultiSlopeCodec(0, {1}), std::invalid_argument);
  EXPECT_NO_THROW(MultiSlopeCodec(15, {1, 14, 2, 13}));
}

TEST(MultiSlope, KTwoMatchesThePaperDiagonalCode) {
  // Family slope 1 is the leading family ((r + c) mod m); slope m-1 is the
  // counter family ((r - c) mod m).
  const std::size_t m = 9;
  const MultiSlopeCodec multi(m, {1, m - 1});
  const BlockCodec paper(m);
  const util::BitMatrix data = random_block(m, 5);
  const MultiCheckBits mc = multi.encode(data, 0, 0);
  const CheckBits pc = paper.encode(data, 0, 0);
  EXPECT_EQ(mc.family_parity[0], pc.leading);
  EXPECT_EQ(mc.family_parity[1], pc.counter);
}

TEST(MultiSlope, StorageOverheadScalesWithFamilies) {
  EXPECT_NEAR(MultiSlopeCodec(15, {1, 14}).storage_overhead(), 2.0 / 15, 1e-12);
  EXPECT_NEAR(MultiSlopeCodec(15, {1, 14, 2, 13}).storage_overhead(), 4.0 / 15,
              1e-12);
}

TEST(MultiSlope, ParallelOpTouchesEachLineOncePerFamily) {
  // The PIM-compatibility property that makes extra slopes free for the
  // continuous update: any coprime slope assigns the cells of one written
  // row (or column) to m distinct lines.
  const std::size_t m = 15;
  const MultiSlopeCodec codec(m, {1, 14, 2, 13, 4, 11});
  for (std::size_t f = 0; f < codec.families(); ++f) {
    for (std::size_t fixed = 0; fixed < m; ++fixed) {
      std::set<std::size_t> row_lines, col_lines;
      for (std::size_t i = 0; i < m; ++i) {
        row_lines.insert(codec.line_of(f, fixed, i));  // a written row
        col_lines.insert(codec.line_of(f, i, fixed));  // a written column
      }
      EXPECT_EQ(row_lines.size(), m) << "family " << f;
      EXPECT_EQ(col_lines.size(), m) << "family " << f;
    }
  }
}

TEST(MultiSlope, ContinuousUpdateMatchesReencode) {
  const std::size_t m = 15;
  const MultiSlopeCodec codec(m, {1, 14, 2});
  util::BitMatrix data = random_block(m, 7);
  MultiCheckBits check = codec.encode(data, 0, 0);
  util::Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const std::size_t r = rng.uniform_below(m);
    const std::size_t c = rng.uniform_below(m);
    const bool old_value = data.get(r, c);
    const bool new_value = rng.bernoulli(0.5);
    data.set(r, c, new_value);
    codec.update_for_write(check, r, c, old_value, new_value);
  }
  EXPECT_EQ(check, codec.encode(data, 0, 0));
}

class MultiSlopeSingleErrorTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiSlopeSingleErrorTest, EverySinglePositionCorrectsUnderAllK) {
  const std::size_t position = GetParam();
  const std::size_t m = 9;
  for (const std::vector<std::size_t>& slopes :
       {std::vector<std::size_t>{1, m - 1},
        std::vector<std::size_t>{1, m - 1, 2},
        std::vector<std::size_t>{1, m - 1, 2, m - 2}}) {
    const MultiSlopeCodec codec(m, slopes);
    util::BitMatrix data = random_block(m, 11);
    const util::BitMatrix golden = data;
    MultiCheckBits check = codec.encode(data, 0, 0);
    data.flip(position / m, position % m);
    const MultiDecodeResult result = codec.check_and_correct(data, 0, 0, check);
    EXPECT_EQ(result.status, MultiDecodeStatus::kCorrected);
    EXPECT_EQ(data, golden) << "K=" << slopes.size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, MultiSlopeSingleErrorTest,
                         ::testing::Range<std::size_t>(0, 81));

TEST(MultiSlope, KTwoNeverMiscorrectsDoubles) {
  // Exhaustive over all C(81, 2) double errors at m=9: the paper's design
  // detects every double and never silently mangles data.
  const std::size_t m = 9;
  const MultiSlopeCodec codec(m, {1, m - 1});
  const util::BitMatrix golden = random_block(m, 13);
  const MultiCheckBits reference = codec.encode(golden, 0, 0);
  for (std::size_t i = 0; i < m * m; ++i) {
    for (std::size_t j = i + 1; j < m * m; ++j) {
      util::BitMatrix data = golden;
      data.flip(i / m, i % m);
      data.flip(j / m, j % m);
      MultiCheckBits check = reference;
      const MultiDecodeResult result =
          codec.check_and_correct(data, 0, 0, check);
      EXPECT_EQ(result.status, MultiDecodeStatus::kDetectedUncorrectable)
          << i << "," << j;
    }
  }
}

TEST(MultiSlope, KFourCorrectsMostDoublesAndNeverSilently) {
  const std::size_t m = 9;
  const MultiSlopeCodec codec(m, {1, m - 1, 2, m - 2});
  const util::BitMatrix golden = random_block(m, 17);
  const MultiCheckBits reference = codec.encode(golden, 0, 0);
  std::size_t corrected = 0, detected = 0, silent = 0;
  for (std::size_t i = 0; i < m * m; ++i) {
    for (std::size_t j = i + 1; j < m * m; ++j) {
      util::BitMatrix data = golden;
      data.flip(i / m, i % m);
      data.flip(j / m, j % m);
      MultiCheckBits check = reference;
      const MultiDecodeResult result =
          codec.check_and_correct(data, 0, 0, check);
      if (data == golden) {
        ++corrected;
      } else if (result.status == MultiDecodeStatus::kDetectedUncorrectable) {
        ++detected;
      } else {
        ++silent;
      }
    }
  }
  EXPECT_EQ(silent, 0u);
  // The large majority of doubles must now correct (measured: exactly 90%
  // at m=9; ambiguity comes from error pairs whose four line-pairs admit a
  // second consistent placement).
  EXPECT_GE(corrected, 85 * (m * m * (m * m - 1) / 2) / 100);
  EXPECT_EQ(corrected + detected, m * m * (m * m - 1) / 2);
}

TEST(MultiSlope, CheckBitCorruptionIsRepairedInStorage) {
  const std::size_t m = 9;
  const MultiSlopeCodec codec(m, {1, m - 1, 2});
  util::BitMatrix data = random_block(m, 19);
  const MultiCheckBits golden = codec.encode(data, 0, 0);
  MultiCheckBits check = golden;
  check.family_parity[2].flip(4);
  const MultiDecodeResult result = codec.check_and_correct(data, 0, 0, check);
  EXPECT_EQ(result.status, MultiDecodeStatus::kCorrected);
  EXPECT_EQ(result.corrected_check_bits, 1u);
  EXPECT_TRUE(result.corrected_cells.empty());
  EXPECT_EQ(check, golden);
}

TEST(MultiSlope, CleanBlockDecodesClean) {
  const std::size_t m = 15;
  const MultiSlopeCodec codec(m, {1, 14, 2, 13});
  util::BitMatrix data = random_block(m, 21);
  MultiCheckBits check = codec.encode(data, 0, 0);
  EXPECT_EQ(codec.check_and_correct(data, 0, 0, check).status,
            MultiDecodeStatus::kClean);
}

}  // namespace
}  // namespace pimecc::ecc
