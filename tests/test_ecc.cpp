// Unit + property tests for src/core: diagonal geometry, per-block codec,
// whole-array code, and the horizontal-parity strawman.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/geometry.hpp"
#include "core/horizontal_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::ecc {
namespace {

util::BitMatrix random_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  util::BitMatrix mat(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) mat.set(r, c, rng.bernoulli(0.5));
  }
  return mat;
}

// ------------------------------------------------------------------ geometry

TEST(DiagonalGeometry, RejectsEvenOrZeroBlockSize) {
  EXPECT_THROW(DiagonalGeometry(0), std::invalid_argument);
  EXPECT_THROW(DiagonalGeometry(2), std::invalid_argument);
  EXPECT_THROW(DiagonalGeometry(14), std::invalid_argument);
  EXPECT_NO_THROW(DiagonalGeometry(15));
}

TEST(DiagonalGeometry, MatchesPaperFormulas) {
  const DiagonalGeometry geo(5);
  EXPECT_EQ(geo.leading(0, 0), 0u);
  EXPECT_EQ(geo.leading(1, 2), 3u);
  EXPECT_EQ(geo.leading(4, 4), 3u);  // (4+4) mod 5
  EXPECT_EQ(geo.counter(0, 0), 0u);
  EXPECT_EQ(geo.counter(1, 2), 4u);  // (1-2) mod 5
  EXPECT_EQ(geo.counter(0, 4), 1u);  // (0-4) mod 5
}

TEST(DiagonalGeometry, AcceptsAbsoluteCoordinates) {
  const DiagonalGeometry geo(7);
  EXPECT_EQ(geo.leading(7 + 2, 14 + 3), geo.leading(2, 3));
  EXPECT_EQ(geo.counter(7 + 2, 14 + 3), geo.counter(2, 3));
}

class GeometryBijectionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeometryBijectionTest, DiagonalPairUniquelyLocatesEveryCell) {
  const std::size_t m = GetParam();
  const DiagonalGeometry geo(m);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const DiagonalPair d = geo.diagonals(r, c);
      EXPECT_TRUE(seen.insert({d.leading, d.counter}).second)
          << "two cells share diagonals for m=" << m;
      const Cell back = geo.locate(d);
      EXPECT_EQ(back.r, r);
      EXPECT_EQ(back.c, c);
    }
  }
  EXPECT_EQ(seen.size(), m * m);
}

INSTANTIATE_TEST_SUITE_P(OddBlockSizes, GeometryBijectionTest,
                         ::testing::Values(1, 3, 5, 7, 9, 11, 15, 17));

TEST(DiagonalGeometry, LocateRejectsOutOfRange) {
  const DiagonalGeometry geo(5);
  EXPECT_THROW((void)geo.locate({5, 0}), std::out_of_range);
  EXPECT_THROW((void)geo.locate({0, 5}), std::out_of_range);
}

// ---------------------------------------------------------------- BlockCodec

TEST(BlockCodec, EncodeComputesDiagonalParities) {
  // 3x3 block with a single set bit at (1, 2): leading diag (1+2)%3 = 0,
  // counter diag (1-2)%3 = 2.
  BlockCodec codec(3);
  util::BitMatrix data(3, 3);
  data.set(1, 2, true);
  const CheckBits check = codec.encode(data, 0, 0);
  EXPECT_EQ(check.leading.to_string(), "100");
  EXPECT_EQ(check.counter.to_string(), "001");
}

TEST(BlockCodec, EncodeRespectsWindowAnchor) {
  BlockCodec codec(3);
  util::BitMatrix data(6, 6);
  data.set(4, 5, true);  // inside block (1,1) at relative (1,2)
  const CheckBits anchored = codec.encode(data, 3, 3);
  EXPECT_EQ(anchored.leading.to_string(), "100");
  EXPECT_THROW((void)codec.encode(data, 4, 4), std::out_of_range);
}

TEST(BlockCodec, CleanBlockHasZeroSyndrome) {
  BlockCodec codec(5);
  const util::BitMatrix data = random_matrix(5, 5, 77);
  const CheckBits check = codec.encode(data, 0, 0);
  const Syndrome s = codec.compute_syndrome(data, 0, 0, check);
  EXPECT_TRUE(s.clean());
  EXPECT_EQ(codec.classify(s).status, DecodeStatus::kClean);
}

class SingleErrorTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SingleErrorTest, EveryDataBitPositionIsCorrected) {
  const auto [r, c] = GetParam();
  BlockCodec codec(5);
  util::BitMatrix data = random_matrix(5, 5, 101);
  const util::BitMatrix golden = data;
  CheckBits check = codec.encode(data, 0, 0);

  data.flip(r, c);
  const DecodeResult result = codec.check_and_correct(data, 0, 0, check);
  EXPECT_EQ(result.status, DecodeStatus::kCorrectedData);
  ASSERT_TRUE(result.data_error.has_value());
  EXPECT_EQ(result.data_error->r, r);
  EXPECT_EQ(result.data_error->c, c);
  EXPECT_EQ(data, golden);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, SingleErrorTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 5),
                       ::testing::Range<std::size_t>(0, 5)));

TEST(BlockCodec, SingleCheckBitErrorIsCorrectedInPlace) {
  BlockCodec codec(5);
  util::BitMatrix data = random_matrix(5, 5, 55);
  const CheckBits golden = codec.encode(data, 0, 0);
  for (std::size_t d = 0; d < 5; ++d) {
    for (const bool leading : {true, false}) {
      CheckBits corrupted = golden;
      (leading ? corrupted.leading : corrupted.counter).flip(d);
      const DecodeResult result = codec.check_and_correct(data, 0, 0, corrupted);
      EXPECT_EQ(result.status, DecodeStatus::kCorrectedCheck);
      ASSERT_TRUE(result.check_error.has_value());
      EXPECT_EQ(result.check_error->on_leading_axis, leading);
      EXPECT_EQ(result.check_error->index, d);
      EXPECT_EQ(corrupted, golden);
    }
  }
}

TEST(BlockCodec, EveryDoubleDataErrorIsDetectedNeverMiscorrected) {
  BlockCodec codec(5);
  util::BitMatrix base = random_matrix(5, 5, 303);
  const CheckBits check = codec.encode(base, 0, 0);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = i + 1; j < 25; ++j) {
      util::BitMatrix data = base;
      data.flip(i / 5, i % 5);
      data.flip(j / 5, j % 5);
      const Syndrome s = codec.compute_syndrome(data, 0, 0, check);
      const DecodeResult result = codec.classify(s);
      // The two flips land on distinct diagonal pairs (odd-m bijection), so
      // the signature can never look like one data error.
      EXPECT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
          << "flips " << i << "," << j;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 300u);  // C(25,2)
}

TEST(BlockCodec, DataPlusCheckDoubleErrorNeverDecodesClean) {
  // A data flip plus a check flip can look like either a correctable pattern
  // (if unrelated) or uncorrectable; it must never decode as *clean*.
  BlockCodec codec(5);
  util::BitMatrix base = random_matrix(5, 5, 404);
  const CheckBits golden = codec.encode(base, 0, 0);
  for (std::size_t bit = 0; bit < 25; ++bit) {
    for (std::size_t d = 0; d < 5; ++d) {
      util::BitMatrix data = base;
      data.flip(bit / 5, bit % 5);
      CheckBits check = golden;
      check.leading.flip(d);
      const Syndrome s = codec.compute_syndrome(data, 0, 0, check);
      EXPECT_NE(codec.classify(s).status, DecodeStatus::kClean);
    }
  }
}

TEST(BlockCodec, ContinuousUpdateMatchesReencode) {
  BlockCodec codec(7);
  util::Rng rng(11);
  util::BitMatrix data = random_matrix(7, 7, 12);
  CheckBits check = codec.encode(data, 0, 0);
  for (int step = 0; step < 500; ++step) {
    const std::size_t r = rng.uniform_below(7);
    const std::size_t c = rng.uniform_below(7);
    const bool old_value = data.get(r, c);
    const bool new_value = rng.bernoulli(0.5);
    data.set(r, c, new_value);
    codec.update_for_write(check, r, c, old_value, new_value);
  }
  EXPECT_EQ(check, codec.encode(data, 0, 0));
}

TEST(BlockCodec, CellCountsMatchPaper) {
  BlockCodec codec(15);
  EXPECT_EQ(codec.check_bit_count(), 30u);
  EXPECT_EQ(codec.cells_per_block(), 15u * 15u + 30u);
}

// ----------------------------------------------------------------- ArrayCode

TEST(ArrayCode, ValidatesGeometry) {
  EXPECT_THROW(ArrayCode(10, 4), std::invalid_argument);   // even m
  EXPECT_THROW(ArrayCode(10, 3), std::invalid_argument);   // m does not divide n
  EXPECT_NO_THROW(ArrayCode(15, 5));
}

TEST(ArrayCode, EncodeAllThenConsistent) {
  util::BitMatrix data = random_matrix(30, 30, 21);
  ArrayCode code(30, 5);
  EXPECT_EQ(code.block_count(), 36u);
  code.encode_all(data);
  EXPECT_TRUE(code.consistent_with(data));
  data.flip(17, 23);
  EXPECT_FALSE(code.consistent_with(data));
}

TEST(ArrayCode, RowParallelOpUpdatesStayConsistent) {
  // Simulate many row-parallel MAGIC writes (one column changes across all
  // rows) maintained only through continuous updates.
  const std::size_t n = 45;
  util::BitMatrix data = random_matrix(n, n, 31);
  ArrayCode code(n, 9);
  code.encode_all(data);
  util::Rng rng(32);
  for (int op = 0; op < 40; ++op) {
    const std::size_t col = rng.uniform_below(n);
    std::vector<CellWrite> writes;
    for (std::size_t r = 0; r < n; ++r) {
      const bool old_value = data.get(r, col);
      const bool new_value = rng.bernoulli(0.5);
      writes.push_back({r, col, old_value, new_value});
      data.set(r, col, new_value);
    }
    EXPECT_TRUE(code.writes_touch_each_diagonal_once(writes));
    code.apply_writes(writes);
  }
  EXPECT_TRUE(code.consistent_with(data));
}

TEST(ArrayCode, ColumnParallelOpTouchesEachDiagonalOnce) {
  const std::size_t n = 30;
  util::BitMatrix data = random_matrix(n, n, 41);
  ArrayCode code(n, 5);
  code.encode_all(data);
  std::vector<CellWrite> writes;
  for (std::size_t c = 0; c < n; ++c) {
    writes.push_back({7, c, data.get(7, c), !data.get(7, c)});
    data.flip(7, c);
  }
  EXPECT_TRUE(code.writes_touch_each_diagonal_once(writes));
  code.apply_writes(writes);
  EXPECT_TRUE(code.consistent_with(data));
}

TEST(ArrayCode, SameDiagonalTwiceViolatesTheta1Invariant) {
  ArrayCode code(15, 5);
  // (0,0) and (1,4): leading (0+0)%5=0 vs (1+4)%5=0 -- same leading diagonal
  // of the same block.
  std::vector<CellWrite> writes = {{0, 0, false, true}, {1, 4, false, true}};
  EXPECT_FALSE(code.writes_touch_each_diagonal_once(writes));
}

TEST(ArrayCode, CheckBlockCorrectsInjectedError) {
  util::BitMatrix data = random_matrix(15, 15, 51);
  const util::BitMatrix golden = data;
  ArrayCode code(15, 5);
  code.encode_all(data);
  data.flip(8, 2);  // block (1, 0)
  const DecodeResult result = code.check_block(data, {1, 0});
  EXPECT_EQ(result.status, DecodeStatus::kCorrectedData);
  EXPECT_EQ(data, golden);
}

TEST(ArrayCode, ScrubReportsPerBlockOutcomes) {
  util::BitMatrix data = random_matrix(15, 15, 61);
  ArrayCode code(15, 5);
  code.encode_all(data);
  data.flip(0, 0);             // single error in block (0,0): corrected
  data.flip(6, 6);             // two errors in block (1,1): uncorrectable
  data.flip(7, 7);
  const ScrubReport report = code.scrub(data);
  EXPECT_EQ(report.blocks_checked, 9u);
  EXPECT_EQ(report.corrected_data, 1u);
  EXPECT_EQ(report.uncorrectable, 1u);
  EXPECT_EQ(report.clean, 7u);
}

TEST(ArrayCode, ApplyWritesRejectsOutOfRange) {
  ArrayCode code(15, 5);
  std::vector<CellWrite> writes = {{15, 0, false, true}};
  EXPECT_THROW(code.apply_writes(writes), std::out_of_range);
}

// ------------------------------------------------------------ HorizontalCode

TEST(HorizontalCode, ValidatesShape) {
  EXPECT_THROW(HorizontalCode(10, 3), std::invalid_argument);
  EXPECT_THROW(HorizontalCode(0, 1), std::invalid_argument);
  EXPECT_NO_THROW(HorizontalCode(16, 8));
}

TEST(HorizontalCode, EncodeAndDetect) {
  util::BitMatrix data = random_matrix(16, 16, 71);
  HorizontalCode code(16, 8);
  code.encode_all(data);
  EXPECT_TRUE(code.consistent_with(data));
  EXPECT_FALSE(code.group_has_error(data, 3, 1));
  data.flip(3, 12);
  EXPECT_TRUE(code.group_has_error(data, 3, 1));
  EXPECT_FALSE(code.consistent_with(data));
}

TEST(HorizontalCode, ContinuousUpdateMatchesReencode) {
  util::BitMatrix data = random_matrix(16, 16, 81);
  HorizontalCode code(16, 8);
  code.encode_all(data);
  util::Rng rng(82);
  for (int i = 0; i < 200; ++i) {
    const std::size_t r = rng.uniform_below(16);
    const std::size_t c = rng.uniform_below(16);
    const bool old_value = data.get(r, c);
    const bool new_value = rng.bernoulli(0.5);
    data.set(r, c, new_value);
    code.apply_writes({{r, c, old_value, new_value}});
  }
  EXPECT_TRUE(code.consistent_with(data));
}

TEST(HorizontalCode, UpdateCostIsThetaNForFullRowWrite) {
  // The Section III argument: a column-parallel op rewriting a whole row
  // costs n reads under horizontal grouping, but a single changed bit in a
  // group costs 1.
  const std::size_t n = 64;
  HorizontalCode code(n, 8);
  std::vector<CellWrite> full_row;
  for (std::size_t c = 0; c < n; ++c) full_row.push_back({0, c, false, true});
  EXPECT_EQ(code.update_cost_reads(full_row), n);

  std::vector<CellWrite> one_bit = {{0, 5, false, true}};
  EXPECT_EQ(code.update_cost_reads(one_bit), 1u);

  // A row-parallel op (one column, all rows) costs Theta(#writes), not n^2.
  std::vector<CellWrite> one_col;
  for (std::size_t r = 0; r < n; ++r) one_col.push_back({r, 5, false, true});
  EXPECT_EQ(code.update_cost_reads(one_col), n);
}

TEST(HorizontalCode, UnchangedWritesCostNothing) {
  HorizontalCode code(16, 8);
  std::vector<CellWrite> writes = {{0, 0, true, true}, {0, 1, false, false}};
  EXPECT_EQ(code.update_cost_reads(writes), 0u);
}

}  // namespace
}  // namespace pimecc::ecc
