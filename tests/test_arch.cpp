// Unit + property tests for src/arch: parameters, Table II device counts,
// barrel shifters, the XOR3 processing crossbar, check memory, the
// protocol scheduler, and the PimMachine facade.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/check_memory.hpp"
#include "arch/device_count.hpp"
#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "arch/processing_xbar.hpp"
#include "arch/scheduler.hpp"
#include "arch/shifter.hpp"
#include "core/geometry.hpp"
#include "util/rng.hpp"

namespace pimecc::arch {
namespace {

util::BitMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::BitMatrix mat(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) mat.set(r, c, rng.bernoulli(0.5));
  }
  return mat;
}

ArchParams small_params() {
  ArchParams p;
  p.n = 45;
  p.m = 9;
  p.num_pcs = 3;
  return p;
}

// -------------------------------------------------------------------- params

TEST(ArchParams, DefaultIsThePaperCaseStudy) {
  const ArchParams p;
  EXPECT_EQ(p.n, 1020u);
  EXPECT_EQ(p.m, 15u);
  EXPECT_EQ(p.xor3_cycles, 8u);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.blocks_per_side(), 68u);
  EXPECT_EQ(p.check_bits_total(), 2u * 15u * 68u * 68u);
}

TEST(ArchParams, RejectsInvalidCombinations) {
  ArchParams p;
  p.m = 14;  // even
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.m = 7;   // does not divide 1020
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ArchParams{};
  p.num_pcs = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ArchParams{};
  p.xor3_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- device counts

TEST(DeviceCounts, ReproducesTableTwoExactly) {
  ArchParams p;
  p.n = 1020;
  p.m = 15;
  p.num_pcs = 3;
  const DeviceCounts counts = count_devices(p);
  ASSERT_EQ(counts.rows.size(), 6u);
  EXPECT_EQ(counts.rows[0].memristors, 1040400u);   // 1.04e6, n^2
  EXPECT_EQ(counts.rows[1].memristors, 138720u);    // 1.39e5, 2m(n/m)^2
  EXPECT_EQ(counts.rows[2].memristors, 67320u);     // 6.73e4, 2*11*k*n
  EXPECT_EQ(counts.rows[3].memristors, 2040u);      // 2n
  EXPECT_EQ(counts.rows[4].transistors, 61200u);    // 6.12e4, 4nm
  EXPECT_EQ(counts.rows[5].transistors, 14280u);    // 1.43e4, 2n(k+4)
  EXPECT_EQ(counts.total_memristors, 1248480u);     // paper: 1.25e6
  EXPECT_EQ(counts.total_transistors, 75480u);      // paper: 7.55e4
  EXPECT_NEAR(counts.memristor_overhead_fraction(), 0.2, 0.001);
}

// ------------------------------------------------------------------ shifters

class ShifterRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(ShifterRoundTripTest, UnrouteInvertsRoute) {
  const auto [shift, reversed] = GetParam();
  const ShifterBank bank(45, 9);
  util::Rng rng(1000 + shift);
  util::BitVector line(45);
  for (std::size_t i = 0; i < 45; ++i) line.set(i, rng.bernoulli(0.5));
  const auto routed = bank.route(line, shift, reversed);
  ASSERT_EQ(routed.size(), 9u);
  for (const auto& v : routed) EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(bank.unroute(routed, shift, reversed), line);
}

INSTANTIATE_TEST_SUITE_P(
    ShiftsAndDirections, ShifterRoundTripTest,
    ::testing::Combine(::testing::Values(0, 1, 4, 8, 9, 17),
                       ::testing::Bool()));

TEST(ShifterBank, AlignsColumnLineToLeadingDiagonals) {
  // For a written column c, routing with shift = c mod m must place each
  // cell (r, c) into output vector (r + c) mod m -- the leading diagonal.
  const std::size_t n = 45, m = 9;
  const ShifterBank bank(n, m);
  const ecc::DiagonalGeometry geo(m);
  util::Rng rng(77);
  for (const std::size_t c : {std::size_t{0}, std::size_t{7}, std::size_t{23}}) {
    util::BitVector column(n);
    for (std::size_t r = 0; r < n; ++r) column.set(r, rng.bernoulli(0.5));
    const auto routed = bank.route(column, c % m, false);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t d = geo.leading(r % m, c % m);
      EXPECT_EQ(routed[d].get(r / m), column.get(r)) << "r=" << r << " c=" << c;
    }
  }
}

TEST(ShifterBank, ReversedRoutingAlignsRowLineToCounterDiagonals) {
  // For a written row r, reversed routing with shift = (-r) mod m places
  // each cell (r, c) into output vector (r - c) mod m.
  const std::size_t n = 45, m = 9;
  const ShifterBank bank(n, m);
  const ecc::DiagonalGeometry geo(m);
  util::Rng rng(78);
  for (const std::size_t r : {std::size_t{0}, std::size_t{5}, std::size_t{31}}) {
    util::BitVector row(n);
    for (std::size_t c = 0; c < n; ++c) row.set(c, rng.bernoulli(0.5));
    const auto routed = bank.route(row, (m - r % m) % m, true);
    for (std::size_t c = 0; c < n; ++c) {
      const std::size_t d = geo.counter(r % m, c % m);
      EXPECT_EQ(routed[d].get(c / m), row.get(c)) << "r=" << r << " c=" << c;
    }
  }
}

TEST(ShifterBank, TransistorCountMatchesTableTwoShare) {
  const ShifterBank bank(1020, 15);
  EXPECT_EQ(bank.transistor_count(), 2u * 1020u * 15u);  // half of 4nm
}

TEST(ShifterBank, ValidatesArguments) {
  EXPECT_THROW(ShifterBank(10, 3), std::invalid_argument);
  const ShifterBank bank(9, 3);
  EXPECT_THROW((void)bank.route(util::BitVector(8), 0), std::invalid_argument);
  EXPECT_THROW((void)bank.unroute({}, 0), std::invalid_argument);
}

// ---------------------------------------------------------- ProcessingXbar

TEST(ProcessingXbar, ComputesXor3ForAllOperandCombinations) {
  // Eight lanes enumerate every (a, b, c) combination.
  ProcessingXbar pc(8);
  util::BitVector a(8), b(8), c(8);
  for (std::size_t lane = 0; lane < 8; ++lane) {
    a.set(lane, (lane >> 2) & 1u);
    b.set(lane, (lane >> 1) & 1u);
    c.set(lane, lane & 1u);
  }
  pc.init_working_cells();
  pc.load_operand(ProcessingXbar::kA, a);
  pc.load_operand(ProcessingXbar::kB, b);
  pc.load_operand(ProcessingXbar::kC, c);
  pc.compute();
  const util::BitVector result = pc.writeback_values();
  for (std::size_t lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(result.get(lane), a.get(lane) ^ b.get(lane) ^ c.get(lane))
        << "lane " << lane;
  }
  // The raw stored value is the complement (write-back inverts once more).
  EXPECT_EQ(pc.result_raw(), ~result);
}

TEST(ProcessingXbar, UsesExactlyEightNors) {
  ProcessingXbar pc(4);
  pc.init_working_cells();
  pc.load_operand(ProcessingXbar::kA, util::BitVector(4));
  pc.load_operand(ProcessingXbar::kB, util::BitVector(4));
  pc.load_operand(ProcessingXbar::kC, util::BitVector(4));
  pc.compute();
  EXPECT_EQ(pc.nor_ops(), 8u);  // the paper's "XOR3 in 8 MAGIC NORs"
}

TEST(ProcessingXbar, ComputeWithoutInitThrows) {
  ProcessingXbar pc(2);
  pc.load_operand(ProcessingXbar::kA, util::BitVector(2, true));
  pc.load_operand(ProcessingXbar::kB, util::BitVector(2));
  pc.load_operand(ProcessingXbar::kC, util::BitVector(2));
  EXPECT_THROW(pc.compute(), std::logic_error);
}

TEST(ProcessingXbar, ValidatesOperands) {
  ProcessingXbar pc(4);
  EXPECT_THROW(pc.load_operand(ProcessingXbar::kN1, util::BitVector(4)),
               std::invalid_argument);
  EXPECT_THROW(pc.load_operand(ProcessingXbar::kA, util::BitVector(3)),
               std::invalid_argument);
  EXPECT_THROW(ProcessingXbar(0), std::invalid_argument);
}

TEST(ProcessingXbar, RandomLanesMatchReference) {
  const std::size_t lanes = 257;
  ProcessingXbar pc(lanes);
  util::Rng rng(31);
  util::BitVector a(lanes), b(lanes), c(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
    c.set(i, rng.bernoulli(0.5));
  }
  pc.init_working_cells();
  pc.load_operand(ProcessingXbar::kA, a);
  pc.load_operand(ProcessingXbar::kB, b);
  pc.load_operand(ProcessingXbar::kC, c);
  pc.compute();
  EXPECT_EQ(pc.writeback_values(), xor3_reference(a, b, c));
}

// -------------------------------------------------------------- CheckMemory

TEST(CheckMemory, StoreGatherRoundTrip) {
  CheckMemory cmem(small_params());
  ecc::CheckBits bits(9);
  bits.leading.set(3, true);
  bits.counter.set(7, true);
  cmem.store_block({2, 4}, bits);
  EXPECT_EQ(cmem.gather_block({2, 4}), bits);
  EXPECT_TRUE(cmem.get(Axis::kLeading, 3, {2, 4}));
  EXPECT_TRUE(cmem.get(Axis::kCounter, 7, {2, 4}));
  EXPECT_FALSE(cmem.get(Axis::kLeading, 7, {2, 4}));
}

TEST(CheckMemory, LoadFromAndMatchesArrayCode) {
  const ArchParams params = small_params();
  const util::BitMatrix data = random_matrix(params.n, 41);
  ecc::ArrayCode code(params.n, params.m);
  code.encode_all(data);
  CheckMemory cmem(params);
  cmem.load_from(code);
  EXPECT_TRUE(cmem.matches(code));
  cmem.flip(Axis::kCounter, 2, {0, 1});
  EXPECT_FALSE(cmem.matches(code));
  // store_to copies the (now corrupted) contents back out.
  ecc::ArrayCode out(params.n, params.m);
  cmem.store_to(out);
  EXPECT_TRUE(cmem.matches(out));
}

TEST(CheckMemory, DiagonalRowAndColumnVectors) {
  CheckMemory cmem(small_params());
  // Set leading diagonal 4 of every block in block-row 1.
  util::BitVector values(5, true);
  cmem.write_diagonal_row(Axis::kLeading, 4, 1, values);
  EXPECT_EQ(cmem.read_diagonal_row(Axis::kLeading, 4, 1), values);
  for (std::size_t bc = 0; bc < 5; ++bc) {
    EXPECT_TRUE(cmem.get(Axis::kLeading, 4, {1, bc}));
  }
  // Column variant.
  util::BitVector col_values(5);
  col_values.set(2, true);
  cmem.write_diagonal_col(Axis::kCounter, 0, 3, col_values);
  EXPECT_EQ(cmem.read_diagonal_col(Axis::kCounter, 0, 3), col_values);
  EXPECT_TRUE(cmem.get(Axis::kCounter, 0, {2, 3}));
}

TEST(CheckingXbar, FlagsNonZeroSyndromesAndCountsCycles) {
  const ArchParams params = small_params();
  CheckingXbar checker(params);
  EXPECT_EQ(checker.memristor_count(), 2u * params.n);
  std::vector<ecc::Syndrome> syndromes(5, ecc::Syndrome(params.m));
  syndromes[1].leading.set(0, true);
  syndromes[4].counter.set(8, true);
  const util::BitVector flags = checker.nonzero_flags(syndromes);
  EXPECT_EQ(flags.to_string(), "01001");
  EXPECT_EQ(checker.cycles(), 2u);
}

// ---------------------------------------------------------------- scheduler

TEST(Scheduler, FoldLevels) {
  EXPECT_EQ(xor3_fold_levels(1), 0u);
  EXPECT_EQ(xor3_fold_levels(2), 1u);
  EXPECT_EQ(xor3_fold_levels(3), 1u);
  EXPECT_EQ(xor3_fold_levels(4), 2u);
  EXPECT_EQ(xor3_fold_levels(9), 2u);
  EXPECT_EQ(xor3_fold_levels(16), 3u);
}

TEST(Scheduler, CalendarResourceInterleavesReservations) {
  CalendarResource cal;
  EXPECT_EQ(cal.reserve(10), 10u);
  EXPECT_EQ(cal.reserve(10), 11u);
  EXPECT_EQ(cal.reserve(3), 3u);  // early slot still free
  EXPECT_EQ(cal.reserve(3), 4u);
}

TEST(Scheduler, PlainOpsRunBackToBack) {
  ProtocolScheduler sched(small_params());
  EXPECT_EQ(sched.schedule_plain_op(), 0u);
  EXPECT_EQ(sched.schedule_plain_op(), 1u);
  EXPECT_EQ(sched.schedule_plain_op(), 2u);
  const ScheduleStats stats = sched.finish();
  EXPECT_EQ(stats.mem_cycles, 3u);
  EXPECT_EQ(stats.stall_cycles, 0u);
  EXPECT_EQ(stats.makespan, 3u);
}

TEST(Scheduler, CriticalOpAddsTwoMemCyclesWhenUncontended) {
  ArchParams params = small_params();
  params.wait_check_before_critical = false;
  ProtocolScheduler sched(params);
  sched.schedule_plain_op();          // cycle 0
  sched.schedule_critical_op(1);      // old@1, gate@2, new@3
  const std::uint64_t next = sched.schedule_plain_op();
  EXPECT_EQ(next, 4u);                // MEM consumed 3 cycles for the critical
  const ScheduleStats stats = sched.finish();
  EXPECT_EQ(stats.critical_ops, 1u);
  EXPECT_GT(stats.makespan, 4u);      // XOR3 + write-back retire later
}

TEST(Scheduler, CriticalWaitsForInputCheckWhenConfigured) {
  ArchParams params = small_params();
  params.wait_check_before_critical = true;
  ProtocolScheduler sched(params);
  sched.schedule_input_check();
  const std::uint64_t check_done = sched.check_done();
  EXPECT_GT(check_done, params.m);
  const std::uint64_t gate = sched.schedule_critical_op(1);
  EXPECT_GE(gate, check_done);
}

TEST(Scheduler, StallPolicySerializesSameCheckBit) {
  ArchParams forward = small_params();
  forward.num_pcs = 8;  // enough PCs that only the hazard can serialize
  forward.wait_check_before_critical = false;
  forward.hazard = HazardPolicy::kForward;
  ArchParams stall = forward;
  stall.hazard = HazardPolicy::kStall;

  ProtocolScheduler sf(forward), ss(stall);
  for (int i = 0; i < 5; ++i) {
    sf.schedule_critical_op(42);
    ss.schedule_critical_op(42);
  }
  EXPECT_GT(ss.finish().makespan, sf.finish().makespan);
}

TEST(Scheduler, MorePcsNeverSlower) {
  std::uint64_t prev = ~std::uint64_t{0};
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    ArchParams params = small_params();
    params.num_pcs = k;
    params.wait_check_before_critical = false;
    ProtocolScheduler sched(params);
    for (int i = 0; i < 50; ++i) sched.schedule_critical_op(i);
    const std::uint64_t makespan = sched.finish().makespan;
    EXPECT_LE(makespan, prev) << "k=" << k;
    prev = makespan;
  }
}

TEST(Scheduler, CancelBatchCostsOneMemCyclePerCell) {
  ArchParams params = small_params();
  ProtocolScheduler sched(params);
  std::vector<CheckCellKey> keys = {1, 2, 3, 4, 5, 6, 7};
  sched.schedule_cancel_batch(keys);
  const ScheduleStats stats = sched.finish();
  EXPECT_EQ(stats.cancel_ops, 7u);
  EXPECT_EQ(stats.mem_cycles, 7u);  // one transfer per canceled cell
  EXPECT_EQ(stats.stall_cycles, 0u);
}

TEST(Scheduler, EmptyCancelBatchIsFree) {
  ProtocolScheduler sched(small_params());
  sched.schedule_cancel_batch({});
  const ScheduleStats stats = sched.finish();
  EXPECT_EQ(stats.cancel_ops, 0u);
  EXPECT_EQ(stats.mem_cycles, 0u);
}


TEST(Scheduler, EventSinkRecordsTheProtocolShape) {
  ArchParams params = small_params();
  params.wait_check_before_critical = false;
  ProtocolScheduler sched(params);
  std::vector<ScheduledEvent> events;
  sched.set_event_sink(&events);
  sched.schedule_critical_op(5);
  // One critical op: 3 MEM cycles, 2 CBX touches, 2 PC passes.
  std::size_t mem = 0, pc = 0, cbx = 0;
  for (const ScheduledEvent& e : events) {
    switch (e.unit) {
      case ScheduledEvent::Unit::kMem: ++mem; break;
      case ScheduledEvent::Unit::kPc: ++pc; break;
      case ScheduledEvent::Unit::kCbx: ++cbx; break;
    }
  }
  EXPECT_EQ(mem, 3u);
  EXPECT_EQ(pc, 2u);
  EXPECT_EQ(cbx, 2u);
  EXPECT_STREQ(events.front().label, "xfer-old");
  EXPECT_STREQ(events.front().unit_name(), "MEM");
  sched.set_event_sink(nullptr);
  sched.schedule_plain_op();
  EXPECT_EQ(events.size(), 7u);  // detached sink stops recording
}

// --------------------------------------------------------------- PimMachine

TEST(PimMachine, LoadEstablishesConsistentEcc) {
  PimMachine machine(small_params());
  machine.load(random_matrix(45, 91));
  EXPECT_TRUE(machine.ecc_consistent());
  EXPECT_THROW(machine.load(util::BitMatrix(44, 45)), std::invalid_argument);
}

TEST(PimMachine, ProtectedRowParallelNorKeepsEccAndComputes) {
  PimMachine machine(small_params());
  const util::BitMatrix image = random_matrix(45, 92);
  machine.load(image);
  const std::size_t out[1] = {10};
  machine.magic_init_rows_protected(out);
  EXPECT_TRUE(machine.ecc_consistent());
  const std::size_t ins[2] = {3, 4};
  machine.magic_nor_rows_protected(ins, 10);
  EXPECT_TRUE(machine.ecc_consistent());
  for (std::size_t r = 0; r < 45; ++r) {
    EXPECT_EQ(machine.data().get(r, 10), !(image.get(r, 3) || image.get(r, 4)));
  }
  EXPECT_EQ(machine.counters().critical_ops, 2u);  // init + gate, one each
}

TEST(PimMachine, ProtectedColumnParallelNorKeepsEcc) {
  PimMachine machine(small_params());
  const util::BitMatrix image = random_matrix(45, 93);
  machine.load(image);
  const std::size_t out[1] = {20};
  machine.magic_init_cols_protected(out);
  const std::size_t ins[2] = {1, 2};
  machine.magic_nor_cols_protected(ins, 20);
  EXPECT_TRUE(machine.ecc_consistent());
  for (std::size_t c = 0; c < 45; ++c) {
    EXPECT_EQ(machine.data().get(20, c), !(image.get(1, c) || image.get(2, c)));
  }
}

TEST(PimMachine, RandomProtectedOpSequenceStaysConsistent) {
  PimMachine machine(small_params());
  machine.load(random_matrix(45, 94));
  util::Rng rng(95);
  for (int i = 0; i < 30; ++i) {
    const bool row_oriented = rng.bernoulli(0.5);
    const std::size_t out = rng.uniform_below(45);
    std::size_t in1 = rng.uniform_below(45);
    std::size_t in2 = rng.uniform_below(45);
    if (in1 == out) in1 = (in1 + 1) % 45;
    if (in2 == out) in2 = (in2 + 2) % 45;
    const std::size_t outs[1] = {out};
    const std::size_t ins[2] = {in1, in2};
    if (row_oriented) {
      machine.magic_init_rows_protected(outs);
      machine.magic_nor_rows_protected(ins, out);
    } else {
      machine.magic_init_cols_protected(outs);
      machine.magic_nor_cols_protected(ins, out);
    }
    ASSERT_TRUE(machine.ecc_consistent()) << "op " << i;
  }
}

TEST(PimMachine, WriteRowProtectedKeepsEcc) {
  PimMachine machine(small_params());
  machine.load(random_matrix(45, 96));
  util::BitVector row(45);
  row.set(0, true);
  row.set(44, true);
  machine.write_row_protected(13, row);
  EXPECT_TRUE(machine.ecc_consistent());
  EXPECT_EQ(machine.data().row(13), row);
}

TEST(PimMachine, SingleDataErrorIsFoundByBlockRowCheck) {
  PimMachine machine(small_params());
  const util::BitMatrix image = random_matrix(45, 97);
  machine.load(image);
  machine.inject_data_error(20, 33);
  EXPECT_FALSE(machine.ecc_consistent());
  const CheckReport report = machine.check_block_row(20);
  EXPECT_EQ(report.blocks_checked, 5u);
  EXPECT_EQ(report.corrected_data, 1u);
  EXPECT_TRUE(machine.ecc_consistent());
  EXPECT_EQ(machine.data(), image);
}

TEST(PimMachine, CheckBitErrorIsRepairedInCmem) {
  PimMachine machine(small_params());
  machine.load(random_matrix(45, 98));
  machine.inject_check_error(Axis::kLeading, 5, {2, 2});
  const CheckReport report = machine.check_block_col(2 * 9);
  EXPECT_EQ(report.corrected_check, 1u);
  EXPECT_TRUE(machine.ecc_consistent());
}

TEST(PimMachine, DoubleErrorInOneBlockIsDetectedUncorrectable) {
  PimMachine machine(small_params());
  machine.load(random_matrix(45, 99));
  machine.inject_data_error(0, 0);
  machine.inject_data_error(1, 1);  // same block, distinct diagonals
  const CheckReport report = machine.scrub();
  EXPECT_EQ(report.uncorrectable, 1u);
  EXPECT_EQ(report.corrected_data, 0u);
}

TEST(PimMachine, ScrubRepairsScatteredSingleErrors) {
  PimMachine machine(small_params());
  const util::BitMatrix image = random_matrix(45, 100);
  machine.load(image);
  machine.inject_data_error(2, 2);    // block (0,0)
  machine.inject_data_error(12, 40);  // block (1,4)
  machine.inject_data_error(44, 0);   // block (4,0)
  const CheckReport report = machine.scrub();
  EXPECT_EQ(report.blocks_checked, 25u);
  EXPECT_EQ(report.corrected_data, 3u);
  EXPECT_EQ(report.uncorrectable, 0u);
  EXPECT_EQ(machine.data(), image);
  EXPECT_EQ(machine.counters().scrubs, 1u);
}

}  // namespace
}  // namespace pimecc::arch
