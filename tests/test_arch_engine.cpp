// End-to-end differential machine tests: the word-parallel protected
// machine (PimMachine, diagword differential check updates, ArrayCode band
// walks) pinned to the retained bit-serial composition
// (ReferencePimMachine, shifter-bank + XOR3-microprogram datapath) across
// randomized protected-op programs with mid-run fault injection, full
// ProtectedVm circuit runs from bench_circuits, metamorphic consistency
// checks, cycle-count pinning, and the arch layer's validate-before-mutate
// regressions.  Tiny configurations double as the `smoke;arch` gate
// (ArchEngineSmoke suite).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "arch/pc_controller.hpp"
#include "arch/pim_machine.hpp"
#include "arch/reference_pim_machine.hpp"
#include "arch/scheduler.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/mapper.hpp"
#include "simpler/protected_vm.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

using arch::ArchParams;
using arch::Axis;
using arch::CheckReport;
using arch::PimMachine;
using arch::ReferencePimMachine;

ArchParams make_params(std::size_t n, std::size_t m) {
  ArchParams p;
  p.n = n;
  p.m = m;
  return p;
}

util::BitMatrix random_matrix(std::size_t n, util::Rng& rng) {
  return util::random_bit_matrix(n, n, rng);
}

util::BitVector random_vector(std::size_t n, util::Rng& rng) {
  util::BitVector v(n);
  util::fill_random(v, rng);
  return v;
}

/// The twin machines every differential test drives in lockstep.
struct MachinePair {
  PimMachine fast;
  ReferencePimMachine ref;

  explicit MachinePair(const ArchParams& params) : fast(params), ref(params) {}

  void load(const util::BitMatrix& image) {
    fast.load(image);
    ref.load(image);
  }
};

::testing::AssertionResult machines_agree(const MachinePair& pair) {
  if (!(pair.fast.data() == pair.ref.data())) {
    return ::testing::AssertionFailure() << "MEM contents diverge";
  }
  if (!pair.ref.check_memory().matches(pair.fast.check_code())) {
    return ::testing::AssertionFailure() << "check-bit state diverges";
  }
  const arch::MachineCounters& f = pair.fast.counters();
  const arch::MachineCounters& r = pair.ref.counters();
  if (!(f == r)) {
    return ::testing::AssertionFailure()
           << "counters diverge: mem " << f.mem_cycles << "/" << r.mem_cycles
           << " cmem " << f.cmem_cycles << "/" << r.cmem_cycles << " critical "
           << f.critical_ops << "/" << r.critical_ops << " checks " << f.checks
           << "/" << r.checks << " scrubs " << f.scrubs << "/" << r.scrubs;
  }
  return ::testing::AssertionSuccess();
}

/// A random subset of [0, n) (non-empty, distinct, ascending) -- explicit
/// SIMD lane lists for the protected NOR entry points.
std::vector<std::size_t> random_lanes(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> lanes;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) lanes.push_back(i);
  }
  if (lanes.empty()) lanes.push_back(rng.uniform_below(n));
  return lanes;
}

/// Drives a randomized sequence of protected operations, controller writes,
/// checks, scrubs, and mid-run fault injections through both machines,
/// asserting full lockstep (contents, check state, counters, reports) after
/// every public operation.
void run_differential_program(std::size_t n, std::size_t m, std::uint64_t seed,
                              int ops) {
  const ArchParams params = make_params(n, m);
  MachinePair pair(params);
  util::Rng rng(seed);
  pair.load(random_matrix(n, rng));
  ASSERT_TRUE(machines_agree(pair));

  for (int i = 0; i < ops; ++i) {
    const std::uint64_t kind = rng.uniform_below(10);
    switch (kind) {
      case 0:
      case 1: {  // row-parallel init + NOR, sometimes on explicit lanes
        const std::size_t out = rng.uniform_below(n);
        std::size_t in1 = rng.uniform_below(n);
        std::size_t in2 = rng.uniform_below(n);
        if (in1 == out) in1 = (in1 + 1) % n;
        if (in2 == out) in2 = (in2 + 2) % n;
        const std::vector<std::size_t> outs{out};
        const std::vector<std::size_t> ins{in1, in2};
        pair.fast.magic_init_rows_protected(outs);
        pair.ref.magic_init_rows_protected(outs);
        if (rng.bernoulli(0.3)) {
          const std::vector<std::size_t> lanes = random_lanes(n, rng);
          pair.fast.magic_nor_rows_protected(ins, out, lanes);
          pair.ref.magic_nor_rows_protected(ins, out, lanes);
        } else {
          pair.fast.magic_nor_rows_protected(ins, out);
          pair.ref.magic_nor_rows_protected(ins, out);
        }
        break;
      }
      case 2:
      case 3: {  // column-parallel init + NOR
        const std::size_t out = rng.uniform_below(n);
        std::size_t in1 = rng.uniform_below(n);
        if (in1 == out) in1 = (in1 + 1) % n;
        const std::vector<std::size_t> outs{out};
        const std::vector<std::size_t> ins{in1};
        pair.fast.magic_init_cols_protected(outs);
        pair.ref.magic_init_cols_protected(outs);
        if (rng.bernoulli(0.3)) {
          const std::vector<std::size_t> lanes = random_lanes(n, rng);
          pair.fast.magic_nor_cols_protected(ins, out, lanes);
          pair.ref.magic_nor_cols_protected(ins, out, lanes);
        } else {
          pair.fast.magic_nor_cols_protected(ins, out);
          pair.ref.magic_nor_cols_protected(ins, out);
        }
        break;
      }
      case 4: {  // controller row write
        const std::size_t r = rng.uniform_below(n);
        const util::BitVector values = random_vector(n, rng);
        pair.fast.write_row_protected(r, values);
        pair.ref.write_row_protected(r, values);
        break;
      }
      case 5: {  // soft data error; sometimes checked right away
        const std::size_t r = rng.uniform_below(n);
        const std::size_t c = rng.uniform_below(n);
        pair.fast.inject_data_error(r, c);
        pair.ref.inject_data_error(r, c);
        if (rng.bernoulli(0.5)) {
          const CheckReport fr = pair.fast.check_block_row(r);
          const CheckReport rr = pair.ref.check_block_row(r);
          EXPECT_EQ(fr, rr) << "op " << i;
        }
        break;
      }
      case 6: {  // soft check-bit error
        const Axis axis = rng.bernoulli(0.5) ? Axis::kLeading : Axis::kCounter;
        const std::size_t diag = rng.uniform_below(m);
        const ecc::BlockIndex block{rng.uniform_below(n / m),
                                    rng.uniform_below(n / m)};
        pair.fast.inject_check_error(axis, diag, block);
        pair.ref.inject_check_error(axis, diag, block);
        if (rng.bernoulli(0.5)) {
          const CheckReport fr = pair.fast.check_block_col(block.block_col * m);
          const CheckReport rr = pair.ref.check_block_col(block.block_col * m);
          EXPECT_EQ(fr, rr) << "op " << i;
        }
        break;
      }
      case 7: {  // periodic full scrub
        const CheckReport fr = pair.fast.scrub();
        const CheckReport rr = pair.ref.scrub();
        EXPECT_EQ(fr, rr) << "op " << i;
        break;
      }
      case 8: {  // double error in one block -> detected uncorrectable
        const std::size_t br = rng.uniform_below(n / m);
        const std::size_t bc = rng.uniform_below(n / m);
        const std::size_t r1 = br * m;
        const std::size_t c1 = bc * m;
        pair.fast.inject_data_error(r1, c1);
        pair.ref.inject_data_error(r1, c1);
        pair.fast.inject_data_error(r1 + 1, c1 + 1);
        pair.ref.inject_data_error(r1 + 1, c1 + 1);
        const CheckReport fr = pair.fast.scrub();
        const CheckReport rr = pair.ref.scrub();
        EXPECT_EQ(fr, rr) << "op " << i;
        break;
      }
      default: {  // before-use band check of a random line
        const std::size_t line = rng.uniform_below(n);
        if (rng.bernoulli(0.5)) {
          EXPECT_EQ(pair.fast.check_block_row(line), pair.ref.check_block_row(line));
        } else {
          EXPECT_EQ(pair.fast.check_block_col(line), pair.ref.check_block_col(line));
        }
        break;
      }
    }
    ASSERT_TRUE(machines_agree(pair)) << "op " << i << " kind " << kind;
  }
}

// ------------------------------------------------- randomized differential

TEST(ArchEngineDifferential, RandomProgramsAgreeN45M9) {
  run_differential_program(45, 9, 0xA1, 120);
}

TEST(ArchEngineDifferential, RandomProgramsAgreeN60M15) {
  // m = 15 (the paper's case study block size); segments straddle the
  // 64-bit word boundary inside every band walk.
  run_differential_program(60, 15, 0xB2, 100);
}

TEST(ArchEngineDifferential, RandomProgramsAgreeN66M3) {
  // Many small blocks; lines span two backing words.
  run_differential_program(66, 3, 0xC3, 100);
}

TEST(ArchEngineDifferential, RandomProgramsAgreeN45M5) {
  run_differential_program(45, 5, 0xD4, 100);
}

// ----------------------------------------------- ProtectedVm end to end

/// Maps `netlist` onto the smallest row width from an m-multiple ladder.
simpler::MappedProgram map_with_ladder(const simpler::Netlist& netlist,
                                       std::size_t m, std::size_t& n_out) {
  for (std::size_t cand = 7 * m; cand <= 35 * m; cand += 7 * m) {
    simpler::MapperOptions options;
    options.row_width = cand;
    try {
      simpler::MappedProgram program = simpler::map_to_row(netlist, options);
      n_out = cand;
      return program;
    } catch (const std::runtime_error&) {
    }
  }
  throw std::runtime_error("circuit does not fit the test ladder");
}

TEST(ArchEngineDifferential, ProtectedVmCircuitRunsAgree) {
  for (const char* name : {"ctrl", "int2float"}) {
    SCOPED_TRACE(name);
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    std::size_t n = 0;
    const simpler::MappedProgram program = map_with_ladder(spec.netlist, 9, n);
    const ArchParams params = make_params(n, 9);
    MachinePair pair(params);
    util::Rng rng(0xE5);
    pair.load(random_matrix(n, rng));

    util::BitMatrix inputs(n, spec.netlist.num_inputs());
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < inputs.cols(); ++i) {
        inputs.set(r, i, rng.bernoulli(0.5));
      }
    }
    const simpler::ProtectedRunResult fast_result = simpler::run_program_protected(
        pair.fast, spec.netlist, program, inputs);
    const simpler::ProtectedRunResult ref_result = simpler::run_program_protected(
        pair.ref, spec.netlist, program, inputs);

    EXPECT_EQ(fast_result.outputs, ref_result.outputs);
    EXPECT_EQ(fast_result.input_check_corrections, ref_result.input_check_corrections);
    EXPECT_TRUE(fast_result.ecc_consistent_after);
    EXPECT_TRUE(ref_result.ecc_consistent_after);
    EXPECT_TRUE(machines_agree(pair));
    for (std::size_t r = 0; r < n; ++r) {
      ASSERT_EQ(fast_result.outputs.row(r), spec.reference(inputs.row(r)))
          << "row " << r;
    }
  }
}

TEST(ArchEngineDifferential, ProtectedVmRepairsPreRunFaultIdentically) {
  const circuits::CircuitSpec spec = circuits::build_circuit("ctrl");
  std::size_t n = 0;
  const simpler::MappedProgram program = map_with_ladder(spec.netlist, 9, n);
  MachinePair pair(make_params(n, 9));
  util::Rng rng(0xF6);
  pair.load(random_matrix(n, rng));

  // A soft error lands on an input cell before the run; the VM's before-use
  // check must repair it on both machines and the computation proceed.
  pair.fast.inject_data_error(3, program.input_cells[0]);
  pair.ref.inject_data_error(3, program.input_cells[0]);

  util::BitMatrix inputs(n, spec.netlist.num_inputs());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs.set(r, i, rng.bernoulli(0.5));
    }
  }
  const simpler::ProtectedRunResult fast_result =
      simpler::run_program_protected(pair.fast, spec.netlist, program, inputs);
  const simpler::ProtectedRunResult ref_result =
      simpler::run_program_protected(pair.ref, spec.netlist, program, inputs);
  EXPECT_EQ(fast_result.input_check_corrections, 1u);
  EXPECT_EQ(ref_result.input_check_corrections, 1u);
  EXPECT_EQ(fast_result.outputs, ref_result.outputs);
  EXPECT_TRUE(machines_agree(pair));
}

// ---------------------------------------------------- cycle-count pinning

/// Table 1 guard: a full ProtectedVm run of a bench_circuits netlist must
/// cost the exact same cycle counters on the fast and reference machines --
/// any drift in either engine's protocol accounting fails the pin.
class CyclePinningTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CyclePinningTest, ProtectedVmCyclesAgreeExactly) {
  const circuits::CircuitSpec spec = circuits::build_circuit(GetParam());
  const std::size_t m = 15;
  std::size_t n = 0;
  const simpler::MappedProgram program = map_with_ladder(spec.netlist, m, n);
  MachinePair pair(make_params(n, m));
  util::Rng rng(0x715);
  pair.load(random_matrix(n, rng));

  util::BitMatrix inputs(n, spec.netlist.num_inputs());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < inputs.cols(); ++i) {
      inputs.set(r, i, rng.bernoulli(0.5));
    }
  }
  const simpler::ProtectedRunResult fast_result =
      simpler::run_program_protected(pair.fast, spec.netlist, program, inputs);
  const simpler::ProtectedRunResult ref_result =
      simpler::run_program_protected(pair.ref, spec.netlist, program, inputs);

  const arch::MachineCounters& f = pair.fast.counters();
  EXPECT_EQ(f, pair.ref.counters());
  // The run must have actually exercised the protocol: one critical op per
  // protected row load, init cycle, and gate.
  EXPECT_GE(f.critical_ops, n + program.ops.size());
  EXPECT_EQ(f.checks, n / m);  // the before-use check of every band
  EXPECT_EQ(fast_result.outputs, ref_result.outputs);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_EQ(fast_result.outputs.row(r), spec.reference(inputs.row(r)))
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(BenchCircuits, CyclePinningTest,
                         ::testing::Values("ctrl", "cavlc", "int2float", "dec"));

// ------------------------------------------------------------ metamorphic

/// After every public operation: the ECC invariant holds, and a forced
/// single-bit flip anywhere (data or check) is detected and repaired.
void run_metamorphic_program(std::size_t n, std::size_t m, std::uint64_t seed,
                             int ops) {
  PimMachine machine(make_params(n, m));
  util::Rng rng(seed);
  machine.load(random_matrix(n, rng));

  for (int i = 0; i < ops; ++i) {
    const std::uint64_t kind = rng.uniform_below(3);
    const std::size_t out = rng.uniform_below(n);
    std::size_t in1 = rng.uniform_below(n);
    if (in1 == out) in1 = (in1 + 1) % n;
    const std::vector<std::size_t> outs{out};
    const std::vector<std::size_t> ins{in1};
    if (kind == 0) {
      machine.magic_init_rows_protected(outs);
      machine.magic_nor_rows_protected(ins, out);
    } else if (kind == 1) {
      machine.magic_init_cols_protected(outs);
      machine.magic_nor_cols_protected(ins, out);
    } else {
      machine.write_row_protected(out, random_vector(n, rng));
    }
    ASSERT_TRUE(machine.ecc_consistent()) << "op " << i;

    if (rng.bernoulli(0.5)) {
      // Forced data flip anywhere: detected, located, repaired.
      const std::size_t r = rng.uniform_below(n);
      const std::size_t c = rng.uniform_below(n);
      const util::BitMatrix snapshot = machine.data();
      machine.inject_data_error(r, c);
      ASSERT_FALSE(machine.ecc_consistent());
      const CheckReport report = machine.check_block_row(r);
      EXPECT_EQ(report.corrected_data, 1u) << "op " << i;
      ASSERT_TRUE(machine.ecc_consistent()) << "op " << i;
      EXPECT_EQ(machine.data(), snapshot);
    } else {
      // Forced check-bit flip: repaired in the check store.
      const Axis axis = rng.bernoulli(0.5) ? Axis::kLeading : Axis::kCounter;
      const std::size_t diag = rng.uniform_below(m);
      const ecc::BlockIndex block{rng.uniform_below(n / m),
                                  rng.uniform_below(n / m)};
      machine.inject_check_error(axis, diag, block);
      ASSERT_FALSE(machine.ecc_consistent());
      const CheckReport report = machine.check_block_col(block.block_col * m);
      EXPECT_EQ(report.corrected_check, 1u) << "op " << i;
      ASSERT_TRUE(machine.ecc_consistent()) << "op " << i;
    }
  }
}

TEST(ArchEngineMetamorphic, ConsistencyAndSingleFlipRepairN45M9) {
  run_metamorphic_program(45, 9, 0x3117, 60);
}

TEST(ArchEngineMetamorphic, ConsistencyAndSingleFlipRepairN60M15) {
  run_metamorphic_program(60, 15, 0x3118, 50);
}

// ------------------------------------------------ validate-before-mutate

/// Every rejecting entry point must leave the machine -- contents, check
/// state, cycle counters -- exactly as it was (the PR 2/3 convention
/// applied to the arch layer).  Template: the contract is part of the
/// shared public API of both machines.
template <typename Machine>
void expect_rejects_without_mutating(Machine& machine) {
  const std::size_t n = machine.n();
  const util::BitMatrix data_before = machine.data();
  const arch::MachineCounters counters_before = machine.counters();

  EXPECT_THROW(machine.load(util::BitMatrix(n, n - 1)), std::invalid_argument);
  EXPECT_THROW(machine.write_row_protected(n, util::BitVector(n)),
               std::out_of_range);
  EXPECT_THROW(machine.write_row_protected(0, util::BitVector(n - 1)),
               std::invalid_argument);

  const std::vector<std::size_t> bad_line{n};
  const std::vector<std::size_t> ins{1, 2};
  const std::vector<std::size_t> dup{3, 3};
  EXPECT_THROW(machine.magic_nor_rows_protected(bad_line, 5), std::out_of_range);
  EXPECT_THROW(machine.magic_nor_rows_protected(ins, n), std::out_of_range);
  EXPECT_THROW(machine.magic_nor_rows_protected(ins, 5, dup),
               std::invalid_argument);
  EXPECT_THROW(machine.magic_nor_rows_protected(ins, 5, bad_line),
               std::out_of_range);
  EXPECT_THROW(machine.magic_nor_cols_protected(bad_line, 5), std::out_of_range);
  EXPECT_THROW(machine.magic_nor_cols_protected(ins, n), std::out_of_range);
  EXPECT_THROW(machine.magic_nor_cols_protected(ins, 5, dup),
               std::invalid_argument);
  // Duplicate init lines: before this engine, the second update cancelled
  // the first (both deltas were computed against the same pre-init
  // snapshot), silently corrupting the ECC; now the batch is rejected
  // up front.
  EXPECT_THROW(machine.magic_init_rows_protected(dup), std::invalid_argument);
  EXPECT_THROW(machine.magic_init_rows_protected(bad_line), std::out_of_range);
  EXPECT_THROW(machine.magic_init_cols_protected(dup), std::invalid_argument);
  EXPECT_THROW(machine.magic_init_cols_protected(bad_line), std::out_of_range);

  EXPECT_THROW((void)machine.check_block_row(n), std::out_of_range);
  EXPECT_THROW((void)machine.check_block_col(n), std::out_of_range);
  EXPECT_THROW(machine.inject_data_error(n, 0), std::out_of_range);
  EXPECT_THROW(machine.inject_data_error(0, n), std::out_of_range);
  EXPECT_THROW(machine.inject_check_error(Axis::kLeading, machine.m(), {0, 0}),
               std::out_of_range);
  EXPECT_THROW(machine.inject_check_error(Axis::kCounter, 0, {n, 0}),
               std::out_of_range);

  EXPECT_EQ(machine.data(), data_before);
  EXPECT_EQ(machine.counters(), counters_before);
  EXPECT_TRUE(machine.ecc_consistent());
}

TEST(ArchValidation, FastMachineRejectsBeforeMutating) {
  PimMachine machine(make_params(45, 9));
  util::Rng rng(0x7A11);
  machine.load(random_matrix(45, rng));
  expect_rejects_without_mutating(machine);
}

TEST(ArchValidation, ReferenceMachineRejectsBeforeMutating) {
  ReferencePimMachine machine(make_params(45, 9));
  util::Rng rng(0x7A12);
  machine.load(random_matrix(45, rng));
  expect_rejects_without_mutating(machine);
}

// --------------------------------------------------------- scheduler engine

TEST(SchedulerEngine, CalendarSkipChainMatchesNaiveLinearProbe) {
  arch::CalendarResource cal;
  std::set<std::uint64_t> naive;
  util::Rng rng(17);
  // Dense earliest-times force long occupied runs, exercising the skip
  // chain and its path compression.
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t earliest = rng.uniform_below(400);
    std::uint64_t expected = earliest;
    while (naive.contains(expected)) ++expected;
    naive.insert(expected);
    ASSERT_EQ(cal.reserve(earliest), expected) << "reservation " << i;
  }
}

TEST(SchedulerEngine, ConstructorValidatesParamsBeforeAnyState) {
  ArchParams p = make_params(45, 9);
  p.num_pcs = 0;
  EXPECT_THROW(arch::ProtocolScheduler{p}, std::invalid_argument);
  p = make_params(45, 9);
  p.xor3_cycles = 0;
  EXPECT_THROW(arch::ProtocolScheduler{p}, std::invalid_argument);
}

// ------------------------------------------------- PC controller batching

TEST(PcControllerBatch, QueuedUpdatesDrainBackToBack) {
  const std::size_t lanes = 48;
  const std::size_t updates = 5;
  util::Rng rng(0xBA7C);
  arch::PcController fsm(lanes);
  std::vector<util::BitVector> old_lines, checks, new_lines;
  for (std::size_t u = 0; u < updates; ++u) {
    old_lines.push_back(random_vector(lanes, rng));
    checks.push_back(random_vector(lanes, rng));
    new_lines.push_back(random_vector(lanes, rng));
    fsm.enqueue(old_lines.back(), checks.back(), new_lines.back());
  }
  EXPECT_TRUE(fsm.busy());
  EXPECT_EQ(fsm.pending(), updates - 1);  // first update armed immediately
  const arch::PcController::BatchResult batch = fsm.run_batch_to_completion();
  EXPECT_EQ(batch.cycles, 13u * updates);  // no idle cycles between updates
  ASSERT_EQ(batch.updated_checks.size(), updates);
  for (std::size_t u = 0; u < updates; ++u) {
    EXPECT_EQ(batch.updated_checks[u], old_lines[u] ^ new_lines[u] ^ checks[u])
        << "update " << u;
  }
  EXPECT_FALSE(fsm.busy());
  EXPECT_EQ(fsm.pending(), 0u);
}

TEST(PcControllerBatch, BatchMatchesSerialRuns) {
  const std::size_t lanes = 33;
  util::Rng rng(0xBA7D);
  std::vector<util::BitVector> old_lines, checks, new_lines;
  for (std::size_t u = 0; u < 4; ++u) {
    old_lines.push_back(random_vector(lanes, rng));
    checks.push_back(random_vector(lanes, rng));
    new_lines.push_back(random_vector(lanes, rng));
  }
  arch::PcController serial(lanes);
  std::vector<util::BitVector> serial_results;
  std::uint64_t serial_cycles = 0;
  for (std::size_t u = 0; u < 4; ++u) {
    serial.start(old_lines[u], checks[u], new_lines[u]);
    const arch::PcController::RunResult r = serial.run_to_completion();
    serial_results.push_back(r.updated_check);
    serial_cycles += r.cycles;
  }
  arch::PcController batched(lanes);
  for (std::size_t u = 0; u < 4; ++u) {
    batched.enqueue(old_lines[u], checks[u], new_lines[u]);
  }
  const arch::PcController::BatchResult batch = batched.run_batch_to_completion();
  EXPECT_EQ(batch.updated_checks, serial_results);
  EXPECT_EQ(batch.cycles, serial_cycles);
}

TEST(PcControllerBatch, EnqueueValidatesBeforeTouchingState) {
  arch::PcController fsm(8);
  EXPECT_THROW(fsm.enqueue(util::BitVector(7), util::BitVector(8),
                           util::BitVector(8)),
               std::invalid_argument);
  EXPECT_FALSE(fsm.busy());
  EXPECT_EQ(fsm.pending(), 0u);

  fsm.enqueue(util::BitVector(8), util::BitVector(8), util::BitVector(8));
  EXPECT_TRUE(fsm.busy());
  EXPECT_THROW(fsm.enqueue(util::BitVector(8), util::BitVector(9),
                           util::BitVector(8)),
               std::invalid_argument);
  EXPECT_EQ(fsm.pending(), 0u);  // the rejected update was not queued

  fsm.enqueue(util::BitVector(8), util::BitVector(8), util::BitVector(8));
  EXPECT_EQ(fsm.pending(), 1u);
  fsm.reset();  // controller abort drops the queue
  EXPECT_FALSE(fsm.busy());
  EXPECT_EQ(fsm.pending(), 0u);
}

// ------------------------------------------------------------- smoke gate

TEST(ArchEngineSmoke, TinyDifferentialProgram) {
  run_differential_program(12, 3, 0x5130, 40);
}

TEST(ArchEngineSmoke, TinyMetamorphicConsistency) {
  run_metamorphic_program(12, 3, 0x5131, 20);
}

}  // namespace
}  // namespace pimecc
