// Work-stealing executor suite: task-group nesting, the
// rethrow-after-join exception contract, steal-heavy skewed workloads,
// deterministic slot writes under parallel_for, and the trial-pool
// regression that pins the dynamic-ticket fix for the old contiguous
// partitioner (a slow head trial must not serialize its chunk).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "reliability/parallel.hpp"
#include "util/executor.hpp"

namespace pimecc::util {
namespace {

TEST(Executor, SharedPoolHasAtLeastOneWorker) {
  Executor& pool = Executor::shared();
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_EQ(pool.parallelism(), pool.worker_count() + 1);
}

TEST(Executor, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  TaskGroup group;
  for (std::size_t i = 0; i < kTasks; ++i) {
    group.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  group.wait();
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Executor, TaskGroupIsReusableAfterWait) {
  std::atomic<int> count{0};
  TaskGroup group;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) group.submit([&count] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
    EXPECT_EQ(group.pending(), 0u);
  }
}

TEST(Executor, NestedTaskGroupsDoNotDeadlock) {
  // Each outer task waits on its own inner group from inside a worker --
  // wait() must help rather than block the worker thread.
  std::atomic<int> inner_runs{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    outer.submit([&inner_runs] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) inner.submit([&inner_runs] { ++inner_runs; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_runs.load(), 64);
}

TEST(Executor, ExceptionIsRethrownAfterEveryTaskFinished) {
  // The throwing task must not cancel its siblings: all 40 tasks run, and
  // wait() rethrows the first captured exception after the join.
  std::atomic<int> runs{0};
  TaskGroup group;
  for (int i = 0; i < 40; ++i) {
    group.submit([&runs, i] {
      ++runs;
      if (i == 13) throw std::runtime_error("task 13 failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(runs.load(), 40);
  EXPECT_EQ(group.pending(), 0u);
  // The group is clean again after the rethrow.
  group.submit([&runs] { ++runs; });
  group.wait();
  EXPECT_EQ(runs.load(), 41);
}

TEST(Executor, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t kCount = 10'000;
  std::vector<unsigned char> slots(kCount, 0);
  parallel_for(Executor::shared(), kCount, 0,
               [&slots](std::size_t i) { ++slots[i]; });
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), std::size_t{0}),
            kCount);
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(slots[i], 1u) << i;
}

TEST(Executor, ParallelForSingleLaneRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(Executor::shared(), 16, 1,
               [&order](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, SkewedWorkloadKeepsAllIndicesCovered) {
  // One index carries ~1000x the work of the rest; dynamic tickets mean
  // the heavy index occupies one lane while the others drain the tail.
  constexpr std::size_t kCount = 256;
  std::vector<std::uint64_t> slots(kCount, 0);
  parallel_for(Executor::shared(), kCount, 0, [&slots](std::size_t i) {
    const std::size_t reps = (i == 0) ? 200'000 : 200;
    std::uint64_t acc = 0;
    for (std::size_t r = 0; r < reps; ++r) acc += (i + 1) * (r | 1);
    slots[i] = acc == 0 ? 1 : acc;  // data-dependent: defeats optimization
  });
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_NE(slots[i], 0u) << i;
}

TEST(TrialPool, LaneCountRespectsCapsAndTrialBound) {
  struct Lane {
    std::size_t trials = 0;
  };
  const auto lanes = rel::detail::run_trial_pool<Lane>(
      5, 16, [] { return Lane{}; },
      [](Lane& lane, std::size_t) { ++lane.trials; });
  // Lanes never exceed the trial count; every trial ran exactly once.
  EXPECT_LE(lanes.size(), 5u);
  std::size_t total = 0;
  for (const Lane& lane : lanes) total += lane.trials;
  EXPECT_EQ(total, 5u);
}

TEST(TrialPool, PerTrialSlotsAreThreadCountInvariant) {
  struct Lane {
    std::vector<std::pair<std::size_t, std::uint64_t>> results;
  };
  auto run = [](std::size_t threads) {
    std::vector<std::uint64_t> slots(200, 0);
    const auto lanes = rel::detail::run_trial_pool<Lane>(
        slots.size(), threads, [] { return Lane{}; },
        [](Lane& lane, std::size_t t) {
          lane.results.emplace_back(t, t * 2654435761u + 17);
        });
    for (const Lane& lane : lanes) {
      for (const auto& [t, v] : lane.results) slots[t] = v;
    }
    return slots;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(7), serial);
  EXPECT_EQ(run(0), serial);
}

TEST(TrialPool, SlowHeadTrialDoesNotSerializeTheRest) {
  // Regression for the contiguous partitioner this pool replaced: with
  // [0, trials) carved into contiguous chunks, trial 0 and trial 1 landed
  // in the same chunk, so a trial 0 that waits for every OTHER trial to
  // finish deadlocked.  Dynamic single-trial tickets run trial 0 on one
  // lane while the remaining lanes drain trials 1..N-1, so this completes.
  ASSERT_GE(Executor::shared().parallelism(), 2u);
  constexpr std::size_t kTrials = 32;
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t others_done = 0;
  struct Lane {};
  rel::detail::run_trial_pool<Lane>(
      kTrials, 2, [] { return Lane{}; },
      [&](Lane&, std::size_t t) {
        std::unique_lock<std::mutex> lock(mutex);
        if (t == 0) {
          done_cv.wait(lock, [&] { return others_done == kTrials - 1; });
        } else if (++others_done == kTrials - 1) {
          done_cv.notify_all();
        }
      });
  EXPECT_EQ(others_done, kTrials - 1);
}

TEST(Executor, PrivatePoolStartsAndDrainsIndependently) {
  Executor pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) group.submit([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace pimecc::util
