// Tests for the extension modules: netlist text I/O, the multi-crossbar
// memory system, burst injection, and the lifetime simulator.
#include <gtest/gtest.h>

#include <set>

#include "arch/memory_system.hpp"
#include "bench_circuits/circuits.hpp"
#include "core/array_code.hpp"
#include "fault/burst.hpp"
#include "reliability/lifetime.hpp"
#include "simpler/logic.hpp"
#include "simpler/netlist_io.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

// ---------------------------------------------------------------- netlist_io

TEST(NetlistIo, RoundTripsAHandBuiltNetlist) {
  simpler::Netlist nl("demo");
  simpler::LogicBuilder b(nl);
  const auto x = b.input_bus(3);
  b.output(b.xor3(x[0], x[1], x[2]));
  b.output(b.majority3(x[0], x[1], x[2]));

  const std::string text = simpler::write_netlist_text(nl);
  const simpler::Netlist back = simpler::read_netlist_text(text);
  EXPECT_EQ(back.name(), "demo");
  EXPECT_EQ(back.num_inputs(), nl.num_inputs());
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.num_outputs(), nl.num_outputs());
  for (int combo = 0; combo < 8; ++combo) {
    util::BitVector in(3);
    for (int i = 0; i < 3; ++i) in.set(i, (combo >> i) & 1);
    EXPECT_EQ(back.eval(in), nl.eval(in)) << "combo " << combo;
  }
}

TEST(NetlistIo, RoundTripsConstantsAndLateInputs) {
  simpler::Netlist nl("weird");
  const auto a = nl.add_input();
  const auto zero = nl.add_const(false);
  const auto one = nl.add_const(true);
  const auto late = nl.add_input();  // input after constants
  const auto g = nl.add_nor({a, zero, one, late});
  nl.mark_output(g);
  nl.mark_output(one);

  const simpler::Netlist back =
      simpler::read_netlist_text(simpler::write_netlist_text(nl));
  EXPECT_EQ(back.num_inputs(), 2u);
  for (int combo = 0; combo < 4; ++combo) {
    util::BitVector in(2);
    in.set(0, combo & 1);
    in.set(1, (combo >> 1) & 1);
    EXPECT_EQ(back.eval(in), nl.eval(in));
  }
}

TEST(NetlistIo, RoundTripsEveryBenchmarkCircuit) {
  for (const std::string& name : circuits::circuit_names()) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::Netlist back =
        simpler::read_netlist_text(simpler::write_netlist_text(spec.netlist));
    EXPECT_EQ(back.num_gates(), spec.netlist.num_gates()) << name;
    util::Rng rng(7);
    util::BitVector in(spec.netlist.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(back.eval(in), spec.netlist.eval(in)) << name;
  }
}

TEST(NetlistIo, RejectsMalformedDocuments) {
  EXPECT_THROW((void)simpler::read_netlist_text(""), std::runtime_error);
  EXPECT_THROW((void)simpler::read_netlist_text(".model a\n.inputs 1\n"),
               std::runtime_error);  // no .end
  EXPECT_THROW(
      (void)simpler::read_netlist_text(".model a\n.inputs 1\n.nor 5 0\n.end\n"),
      std::runtime_error);  // non-dense id
  EXPECT_THROW(
      (void)simpler::read_netlist_text(".model a\n.inputs 1\n.nor 1\n.end\n"),
      std::runtime_error);  // NOR without fanins
  EXPECT_THROW(
      (void)simpler::read_netlist_text(
          ".model a\n.inputs 1\n.outputs 7\n.end\n"),
      std::runtime_error);  // unknown output
  EXPECT_THROW(
      (void)simpler::read_netlist_text(".model a\n.bogus\n.end\n"),
      std::runtime_error);  // unknown directive
}

TEST(NetlistIo, IgnoresCommentsAndBlankLines) {
  const simpler::Netlist nl = simpler::read_netlist_text(
      "# header comment\n"
      ".model c\n"
      "\n"
      ".inputs 2   # two PIs\n"
      ".nor 2 0 1\n"
      ".outputs 2\n"
      ".end\n");
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_gates(), 1u);
}

// ------------------------------------------------------------- MemorySystem

arch::MemorySystemParams small_system() {
  arch::MemorySystemParams params;
  params.unit.n = 45;
  params.unit.m = 9;
  params.unit_rows = 2;
  params.unit_cols = 3;
  return params;
}

TEST(MemorySystem, ValidatesAndSizes) {
  arch::MemorySystemParams params = small_system();
  params.unit_rows = 0;
  EXPECT_THROW(arch::MemorySystem{params}, std::invalid_argument);
  const arch::MemorySystem system{small_system()};
  EXPECT_EQ(system.unit_count(), 6u);
  EXPECT_EQ(system.params().data_bits(), 6u * 45u * 45u);
}

TEST(MemorySystem, TranslateMapsLinearAddresses) {
  const arch::MemorySystem system{small_system()};
  const arch::GlobalAddress first = system.translate(0);
  EXPECT_EQ(first, (arch::GlobalAddress{0, 0, 0, 0}));
  // Last bit of the first unit.
  const arch::GlobalAddress last0 = system.translate(45 * 45 - 1);
  EXPECT_EQ(last0, (arch::GlobalAddress{0, 0, 44, 44}));
  // First bit of the second unit (unit index 1 -> row 0, col 1).
  const arch::GlobalAddress next = system.translate(45 * 45);
  EXPECT_EQ(next, (arch::GlobalAddress{0, 1, 0, 0}));
  // Unit index 4 -> row 1, col 1.
  const arch::GlobalAddress mid = system.translate(4u * 45 * 45 + 45 + 2);
  EXPECT_EQ(mid, (arch::GlobalAddress{1, 1, 1, 2}));
  EXPECT_THROW((void)system.translate(6u * 45 * 45), std::out_of_range);
}

TEST(MemorySystem, LoadInjectScrubRoundTrip) {
  arch::MemorySystem system{small_system()};
  util::Rng rng(5);
  system.load_random(rng);
  EXPECT_TRUE(system.all_consistent());

  const auto flipped = system.inject_random_errors(rng, 5);
  EXPECT_EQ(flipped.size(), 5u);
  EXPECT_FALSE(system.all_consistent());

  const arch::SystemScrubReport report = system.scrub_all();
  EXPECT_EQ(report.units_checked, 6u);
  EXPECT_EQ(report.blocks_checked, 6u * 25u);
  // 5 errors across 150 blocks: overwhelmingly 1 per block -> corrected.
  EXPECT_GE(report.corrected_data, 3u);
  EXPECT_EQ(report.corrected_data + 2 * report.uncorrectable, 5u);
}

TEST(MemorySystem, IncrementalScrubCoversEverythingInOnePass) {
  arch::MemorySystemParams params = small_system();
  arch::MemorySystem system{params};
  util::Rng rng(6);
  system.load_random(rng);
  system.inject_random_errors(rng, 3);
  EXPECT_EQ(system.ticks_per_pass(), 6u * 5u);
  std::size_t corrected = 0;
  for (std::size_t t = 0; t < system.ticks_per_pass(); ++t) {
    corrected += system.scrub_tick().corrected_data;
  }
  EXPECT_EQ(corrected, 3u);
  EXPECT_TRUE(system.all_consistent());
}


TEST(MemorySystem, AggregateDeviceCountsScaleWithUnits) {
  const arch::MemorySystem system{small_system()};
  const arch::DeviceCounts unit = arch::count_devices(small_system().unit);
  const arch::DeviceCounts bank = system.aggregate_device_counts();
  EXPECT_EQ(bank.total_memristors, 6u * unit.total_memristors);
  EXPECT_EQ(bank.total_transistors, 6u * unit.total_transistors);
  EXPECT_EQ(bank.rows.front().memristors, 6u * 45u * 45u);
}

TEST(EvenBlockSize, TwoCellsCanShareBothDiagonals) {
  // The reason for the paper's footnote-1 odd-m requirement, demonstrated:
  // with even m the raw diagonal formulas collide, so a flipped pair would
  // be indistinguishable from a different single error.
  const std::size_t m = 4;
  bool collision_found = false;
  for (std::size_t r1 = 0; r1 < m && !collision_found; ++r1) {
    for (std::size_t c1 = 0; c1 < m && !collision_found; ++c1) {
      for (std::size_t r2 = 0; r2 < m; ++r2) {
        for (std::size_t c2 = 0; c2 < m; ++c2) {
          if (r1 == r2 && c1 == c2) continue;
          const bool same_leading = (r1 + c1) % m == (r2 + c2) % m;
          const bool same_counter =
              (r1 + m - c1) % m == (r2 + m - c2) % m;
          if (same_leading && same_counter) {
            collision_found = true;
          }
        }
      }
    }
  }
  EXPECT_TRUE(collision_found);
}

// -------------------------------------------------------------------- burst

TEST(Burst, ShapesProduceExpectedCells) {
  const auto horizontal =
      fault::burst_cells(20, 20, 3, 17, 5, fault::BurstShape::kHorizontal);
  EXPECT_EQ(horizontal.size(), 3u);  // clipped at the right edge
  for (const auto& cell : horizontal) EXPECT_EQ(cell.r, 3u);

  const auto vertical =
      fault::burst_cells(20, 20, 5, 2, 4, fault::BurstShape::kVertical);
  EXPECT_EQ(vertical.size(), 4u);
  for (const auto& cell : vertical) EXPECT_EQ(cell.c, 2u);

  const auto square =
      fault::burst_cells(20, 20, 0, 0, 5, fault::BurstShape::kSquare);
  EXPECT_EQ(square.size(), 5u);  // 3x3 patch truncated to 5 cells

  EXPECT_THROW(
      (void)fault::burst_cells(4, 4, 4, 0, 1, fault::BurstShape::kVertical),
      std::out_of_range);
  EXPECT_THROW(
      (void)fault::burst_cells(4, 4, 0, 0, 0, fault::BurstShape::kVertical),
      std::invalid_argument);
}

TEST(Burst, InBlockBurstsNeverMiscorrect) {
  // Structural property: for every anchor and every shape with length < m,
  // the scrubbed data either returns to golden or the block flags
  // uncorrectable -- never a silent/miscorrected state.
  const std::size_t n = 30, m = 15;
  util::Rng rng(9);
  util::BitMatrix golden(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) golden.set(r, c, rng.bernoulli(0.5));
  }
  for (const auto shape : {fault::BurstShape::kHorizontal,
                           fault::BurstShape::kVertical,
                           fault::BurstShape::kSquare}) {
    for (const std::size_t length : {2u, 3u, 7u}) {
      for (std::size_t anchor = 0; anchor < n * n; anchor += 7) {
        util::BitMatrix data = golden;
        ecc::ArrayCode code(n, m);
        code.encode_all(data);
        const auto cells = fault::burst_cells(n, n, anchor / n, anchor % n,
                                              length, shape);
        for (const auto& cell : cells) data.flip(cell.r, cell.c);
        const ecc::ScrubReport report = code.scrub(data);
        if (data != golden) {
          EXPECT_GT(report.uncorrectable, 0u)
              << to_string(shape) << " len " << length << " anchor " << anchor;
        }
      }
    }
  }
}

TEST(Burst, InjectBurstFlipsReportedCells) {
  util::Rng rng(10);
  util::BitMatrix data(20, 20);
  const auto cells =
      fault::inject_burst(rng, data, 4, fault::BurstShape::kHorizontal);
  EXPECT_EQ(data.count(), cells.size());
  for (const auto& cell : cells) EXPECT_TRUE(data.get(cell.r, cell.c));
}

// ----------------------------------------------------------------- lifetime

TEST(Lifetime, ValidatesConfig) {
  rel::LifetimeConfig config;
  config.m = 14;
  util::Rng rng(1);
  EXPECT_THROW((void)rel::simulate_lifetime(config, rng), std::invalid_argument);
  config = rel::LifetimeConfig{};
  config.scrub_period_hours = 0.0;
  EXPECT_THROW((void)rel::simulate_lifetime(config, rng), std::invalid_argument);
}

TEST(Lifetime, ZeroRateNeverFails) {
  rel::LifetimeConfig config;
  config.fit_per_bit = 0.0;
  config.trials = 10;
  config.max_hours = 24.0 * 10;
  util::Rng rng(2);
  const rel::LifetimeResult result = rel::simulate_lifetime(config, rng);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.errors_corrected, 0u);
}

TEST(Lifetime, EmpiricalMttfTracksAnalytic) {
  rel::LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 4;
  config.fit_per_bit = 1e4;  // analytic MTTF ~ 221 h (~9 windows)
  config.trials = 300;
  config.max_hours = 24.0 * 2000;
  util::Rng rng(3);
  const rel::LifetimeResult result = rel::simulate_lifetime(config, rng);
  EXPECT_EQ(result.failures, 300u);
  const double empirical = result.empirical_mttf_hours(config.max_hours);
  const double analytic = rel::analytic_mttf_hours(config);
  EXPECT_NEAR(empirical / analytic, 1.0, 0.2);
}

TEST(Lifetime, HigherRateFailsSooner) {
  util::Rng rng(4);
  rel::LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.trials = 100;
  config.max_hours = 24.0 * 50000;
  config.fit_per_bit = 3e3;
  const double slow = rel::simulate_lifetime(config, rng)
                          .empirical_mttf_hours(config.max_hours);
  config.fit_per_bit = 3e4;
  const double fast = rel::simulate_lifetime(config, rng)
                          .empirical_mttf_hours(config.max_hours);
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace pimecc
