// Unit tests for src/xbar: the crossbar + MAGIC simulator.
#include <gtest/gtest.h>

#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/trace.hpp"

namespace pimecc::xbar {
namespace {

using util::BitVector;

TEST(Crossbar, RejectsEmptyDimensions) {
  EXPECT_THROW(Crossbar(0, 4), std::invalid_argument);
  EXPECT_THROW(Crossbar(4, 0), std::invalid_argument);
}

TEST(Crossbar, RowAndColumnReadWrite) {
  Crossbar xb(4, 6);
  xb.write_row(1, BitVector::from_string("010101"));
  EXPECT_TRUE(xb.peek(1, 1));
  EXPECT_FALSE(xb.peek(1, 0));
  BitVector col(4);
  col.set(0, true);
  col.set(3, true);
  xb.write_column(5, col);
  EXPECT_EQ(xb.read_column(5), col);
  // The column write replaced bit (1,5) of the earlier row image.
  EXPECT_EQ(xb.read_row(1).to_string(), "010100");
  EXPECT_THROW(xb.write_row(0, BitVector(5)), std::invalid_argument);
}

TEST(Crossbar, BitAccessorsCountCycles) {
  Crossbar xb(3, 3);
  xb.write_bit(2, 2, true);
  EXPECT_TRUE(xb.read_bit(2, 2));
  EXPECT_EQ(xb.cycles(), 2u);
  EXPECT_THROW(xb.write_bit(3, 0, true), std::out_of_range);
}

TEST(Crossbar, MagicInitSetsSelectedLinesAllLanes) {
  Crossbar xb(3, 5);
  const std::size_t lines[2] = {1, 4};
  xb.magic_init(Orientation::kRow, lines);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(xb.peek(r, 1));
    EXPECT_TRUE(xb.peek(r, 4));
    EXPECT_FALSE(xb.peek(r, 0));
  }
  EXPECT_EQ(xb.init_cycles(), 1u);
  EXPECT_EQ(xb.cycles(), 1u);
}

TEST(Crossbar, MagicInitRespectsLaneSubset) {
  Crossbar xb(4, 4);
  const std::size_t lines[1] = {2};
  const std::size_t lanes[2] = {0, 3};
  xb.magic_init(Orientation::kRow, lines, lanes);
  EXPECT_TRUE(xb.peek(0, 2));
  EXPECT_FALSE(xb.peek(1, 2));
  EXPECT_FALSE(xb.peek(2, 2));
  EXPECT_TRUE(xb.peek(3, 2));
}

TEST(Crossbar, RowParallelNorTruthTable) {
  // Four rows enumerate all (a, b) combinations at columns 0 and 1.
  Crossbar xb(4, 3);
  xb.poke(1, 1, true);               // (0,1)
  xb.poke(2, 0, true);               // (1,0)
  xb.poke(3, 0, true);
  xb.poke(3, 1, true);               // (1,1)
  const std::size_t out[1] = {2};
  xb.magic_init(Orientation::kRow, out);
  const std::size_t ins[2] = {0, 1};
  const OpResult r = xb.magic_nor(Orientation::kRow, ins, 2);
  EXPECT_EQ(r.lanes, 4u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(xb.peek(0, 2));   // NOR(0,0) = 1
  EXPECT_FALSE(xb.peek(1, 2));  // NOR(0,1) = 0
  EXPECT_FALSE(xb.peek(2, 2));  // NOR(1,0) = 0
  EXPECT_FALSE(xb.peek(3, 2));  // NOR(1,1) = 0
}

TEST(Crossbar, ColumnParallelNorMirrorsRowSemantics) {
  Crossbar xb(3, 4);
  xb.poke(1, 1, true);
  xb.poke(1, 3, true);
  xb.poke(0, 3, true);
  const std::size_t out[1] = {2};
  xb.magic_init(Orientation::kColumn, out);
  const std::size_t ins[2] = {0, 1};
  xb.magic_nor(Orientation::kColumn, ins, 2);
  for (std::size_t c = 0; c < 4; ++c) {
    const bool expected = !(xb.peek(0, c) || xb.peek(1, c));
    EXPECT_EQ(xb.peek(2, c), expected) << "column " << c;
  }
}

TEST(Crossbar, MagicNotIsOneInputNor) {
  Crossbar xb(2, 3);
  xb.poke(0, 0, true);
  const std::size_t out[1] = {1};
  xb.magic_init(Orientation::kRow, out);
  xb.magic_not(Orientation::kRow, 0, 1);
  EXPECT_FALSE(xb.peek(0, 1));
  EXPECT_TRUE(xb.peek(1, 1));
}

TEST(Crossbar, UninitializedOutputIsAViolationAndStaysHrs) {
  Crossbar xb(1, 3);
  // Inputs both 0 -> logical NOR is 1, but the output cell is HRS and a NOR
  // pulse can only switch LRS -> HRS, so it must stay 0.
  const std::size_t ins[2] = {0, 1};
  const OpResult r = xb.magic_nor(Orientation::kRow, ins, 2);
  EXPECT_EQ(r.violations, 1u);
  EXPECT_FALSE(xb.peek(0, 2));
}

TEST(Crossbar, NorRejectsOutputOverlappingInput) {
  Crossbar xb(2, 3);
  const std::size_t ins[2] = {0, 1};
  EXPECT_THROW(xb.magic_nor(Orientation::kRow, ins, 1), std::invalid_argument);
  EXPECT_THROW(xb.magic_nor(Orientation::kRow, {}, 2), std::invalid_argument);
}

TEST(Crossbar, NorRespectsLaneSubset) {
  Crossbar xb(3, 3);
  const std::size_t out[1] = {2};
  xb.magic_init(Orientation::kRow, out);
  const std::size_t ins[2] = {0, 1};
  const std::size_t lanes[1] = {1};
  const OpResult r = xb.magic_nor(Orientation::kRow, ins, 2, lanes);
  EXPECT_EQ(r.lanes, 1u);
  EXPECT_TRUE(xb.peek(1, 2));   // NOR(0,0)=1 in the selected lane
  EXPECT_TRUE(xb.peek(0, 2));   // untouched lanes keep their init value
}

TEST(Crossbar, CycleCountingAccumulatesPerKind) {
  Crossbar xb(2, 4);
  const std::size_t out[1] = {3};
  xb.magic_init(Orientation::kRow, out);
  const std::size_t ins[2] = {0, 1};
  xb.magic_nor(Orientation::kRow, ins, 3);
  xb.write_row(0, BitVector(4));
  EXPECT_EQ(xb.cycles(), 3u);
  EXPECT_EQ(xb.nor_ops(), 1u);
  EXPECT_EQ(xb.init_cycles(), 1u);
  xb.reset_counters();
  EXPECT_EQ(xb.cycles(), 0u);
}

TEST(Trace, RecordsAndCounts) {
  Trace trace;
  trace.record({.cycle = 1,
                .kind = OpKind::kNor,
                .orientation = Orientation::kRow,
                .in_lines = {0, 1},
                .out_line = 2,
                .lanes = 4});
  trace.record({.cycle = 2,
                .kind = OpKind::kInit,
                .orientation = Orientation::kColumn,
                .in_lines = {},
                .out_line = 5,
                .lanes = 1});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.count(OpKind::kNor), 1u);
  EXPECT_EQ(trace.count(OpKind::kInit), 1u);
  EXPECT_NE(trace.to_string().find("nor row in={0,1} out=2"), std::string::npos);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace pimecc::xbar
