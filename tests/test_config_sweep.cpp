// Cross-configuration property sweeps: the core invariants must hold for
// every legal (n, m) geometry, not just the defaults the other suites use.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

using Geometry = std::tuple<std::size_t, std::size_t>;  // (n, m)

util::BitMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::BitMatrix mat(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) mat.set(r, c, rng.bernoulli(0.5));
  }
  return mat;
}

class GeometrySweepTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweepTest, ContinuousUpdateStaysConsistentUnderRandomOps) {
  const auto [n, m] = GetParam();
  util::BitMatrix data = random_matrix(n, 1000 + n);
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  util::Rng rng(2000 + n * 31 + m);
  for (int op = 0; op < 25; ++op) {
    const bool row_parallel = rng.bernoulli(0.5);
    const std::size_t line = rng.uniform_below(n);
    std::vector<ecc::CellWrite> writes;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = row_parallel ? i : line;
      const std::size_t c = row_parallel ? line : i;
      const bool old_value = data.get(r, c);
      const bool new_value = rng.bernoulli(0.5);
      writes.push_back({r, c, old_value, new_value});
      data.set(r, c, new_value);
    }
    ASSERT_TRUE(code.writes_touch_each_diagonal_once(writes))
        << "n=" << n << " m=" << m;
    code.apply_writes(writes);
  }
  EXPECT_TRUE(code.consistent_with(data)) << "n=" << n << " m=" << m;
}

TEST_P(GeometrySweepTest, EverySingleErrorAnywhereIsRepairedByScrub) {
  const auto [n, m] = GetParam();
  util::BitMatrix data = random_matrix(n, 3000 + n);
  const util::BitMatrix golden = data;
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  util::Rng rng(4000 + n + m);
  // One error per scrub round, at scattered positions including block
  // corners and edges.
  const std::size_t probes[] = {0,
                                n - 1,
                                n * (n - 1),
                                n * n - 1,
                                n * (m - 1) + m,
                                (n + 1) * (n / 2)};
  for (const std::size_t flat : probes) {
    data.flip(flat / n, flat % n);
    const ecc::ScrubReport report = code.scrub(data);
    EXPECT_EQ(report.corrected_data, 1u) << "n=" << n << " m=" << m;
    EXPECT_EQ(report.uncorrectable, 0u);
    EXPECT_EQ(data, golden);
  }
}

TEST_P(GeometrySweepTest, PimMachineProtocolHoldsAcrossGeometries) {
  const auto [n, m] = GetParam();
  arch::ArchParams params;
  params.n = n;
  params.m = m;
  arch::PimMachine machine(params);
  machine.load(random_matrix(n, 5000 + n));
  util::Rng rng(6000 + n - m);
  for (int op = 0; op < 8; ++op) {
    const std::size_t out = rng.uniform_below(n);
    std::size_t in1 = (out + 1 + rng.uniform_below(n - 1)) % n;
    std::size_t in2 = (out + 1 + rng.uniform_below(n - 1)) % n;
    const std::size_t outs[1] = {out};
    const std::size_t ins[2] = {in1, in2};
    if (rng.bernoulli(0.5)) {
      machine.magic_init_rows_protected(outs);
      machine.magic_nor_rows_protected(ins, out);
    } else {
      machine.magic_init_cols_protected(outs);
      machine.magic_nor_cols_protected(ins, out);
    }
    ASSERT_TRUE(machine.ecc_consistent()) << "n=" << n << " m=" << m;
  }
  machine.inject_data_error(n / 2, n / 3);
  EXPECT_EQ(machine.scrub().corrected_data, 1u);
  EXPECT_TRUE(machine.ecc_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweepTest,
    ::testing::Values(Geometry{9, 3}, Geometry{15, 5}, Geometry{21, 7},
                      Geometry{27, 9}, Geometry{45, 9}, Geometry{55, 11},
                      Geometry{60, 15}, Geometry{75, 25}, Geometry{105, 21}),
    [](const auto& param_info) {
      // Append form: `"n" + std::to_string(...)` trips GCC 12's -Wrestrict
      // false positive (PR 105329) under -O2 -Werror.
      std::string name = "n";
      name += std::to_string(std::get<0>(param_info.param));
      name += 'm';
      name += std::to_string(std::get<1>(param_info.param));
      return name;
    });

class InjectionSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InjectionSweepTest, ScrubOutcomeAlwaysClassifiesEveryFlip) {
  // Accounting invariant at any injection volume: every flipped data bit
  // is either repaired or sits in a block reported uncorrectable.
  const std::size_t flips = GetParam();
  const std::size_t n = 45, m = 9;
  util::BitMatrix data = random_matrix(n, 7000 + flips);
  const util::BitMatrix golden = data;
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  util::Rng rng(8000 + flips);
  fault::inject_flips_everywhere(rng, data, code, flips);
  const ecc::ScrubReport report = code.scrub(data);
  const std::size_t residual = data.hamming_distance(golden);
  if (report.uncorrectable == 0) {
    EXPECT_EQ(residual, 0u) << flips << " flips";
  } else {
    // Residual wrong bits only in flagged blocks (each block holds at most
    // m*m wrong bits).
    EXPECT_LE(residual, report.uncorrectable * m * m + report.corrected_data);
    EXPECT_GT(residual, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Volumes, InjectionSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace pimecc
