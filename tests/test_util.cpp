// Unit tests for src/util: bit containers, RNG, modular math, statistics,
// table rendering, reliability units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "core/geometry.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/modmath.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pimecc::util {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, StartsAllZero) {
  const BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  EXPECT_FALSE(v.any());
}

TEST(BitVector, FillConstructorSetsEveryBit) {
  const BitVector v(70, true);
  EXPECT_EQ(v.count(), 70u);
  EXPECT_TRUE(v.all());
}

TEST(BitVector, SetGetFlipRoundTrip) {
  BitVector v(100);
  v.set(63, true);
  v.set(64, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(65));
  EXPECT_FALSE(v.flip(63));
  EXPECT_EQ(v.count(), 1u);
}

TEST(BitVector, FromStringParsesAndRejects) {
  const BitVector v = BitVector::from_string("01101");
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(4));
  EXPECT_EQ(v.to_string(), "01101");
  EXPECT_THROW(BitVector::from_string("01x"), std::invalid_argument);
}

TEST(BitVector, AtThrowsOutOfRange) {
  const BitVector v(10);
  EXPECT_NO_THROW((void)v.at(9));
  EXPECT_THROW((void)v.at(10), std::out_of_range);
}

TEST(BitVector, ParityMatchesCountParity) {
  BitVector v(200);
  EXPECT_FALSE(v.parity());
  v.set(3, true);
  EXPECT_TRUE(v.parity());
  v.set(150, true);
  EXPECT_FALSE(v.parity());
  v.set(199, true);
  EXPECT_TRUE(v.parity());
}

TEST(BitVector, FindFirstAndNextWalkSetBits) {
  BitVector v(150);
  v.set(5, true);
  v.set(64, true);
  v.set(149, true);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(5), 64u);
  EXPECT_EQ(v.find_next(64), 149u);
  EXPECT_EQ(v.find_next(149), 150u);
  EXPECT_EQ(v.set_bits(), (std::vector<std::size_t>{5, 64, 149}));
}

TEST(BitVector, FindFirstOnEmptyReturnsSize) {
  const BitVector v(33);
  EXPECT_EQ(v.find_first(), 33u);
}

TEST(BitVector, LogicOperatorsMatchSemantics) {
  const BitVector a = BitVector::from_string("0011");
  const BitVector b = BitVector::from_string("0101");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a | b).to_string(), "0111");
  EXPECT_EQ((a & b).to_string(), "0001");
  EXPECT_EQ((~a).to_string(), "1100");
  BitVector nor = a;
  nor.nor_assign(b);
  EXPECT_EQ(nor.to_string(), "1000");
}

TEST(BitVector, InvertKeepsPaddingClean) {
  BitVector v(67);
  v.invert();
  EXPECT_EQ(v.count(), 67u);  // padding bits must not leak into count
  v.invert();
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW(a ^= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a.nor_assign(b), std::invalid_argument);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(BitVector, HammingDistanceCountsDifferences) {
  const BitVector a = BitVector::from_string("110010");
  const BitVector b = BitVector::from_string("011010");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVector, ResizePreservesPrefix) {
  BitVector v(10);
  v.set(7, true);
  v.resize(80);
  EXPECT_TRUE(v.get(7));
  EXPECT_EQ(v.count(), 1u);
}

TEST(BitVector, WordSpansExposeBackingStorage) {
  BitVector v(70);
  EXPECT_EQ(v.word_count(), 2u);
  v.set(0, true);
  v.set(64, true);
  EXPECT_EQ(v.words()[0], 1ull);
  EXPECT_EQ(v.words()[1], 1ull);
  v.words_mutable()[1] = ~0ull;  // sets padding bits beyond size()
  v.sanitize();
  EXPECT_EQ(v.count(), 7u);  // bit 0 + bits 64..69
}

TEST(BitVector, LowWordReadsAndWritesWordZero) {
  BitVector v(7);
  EXPECT_EQ(v.low_word(), 0ull);
  v.set_low_word(0b101ull);
  EXPECT_EQ(v.low_word(), 0b101ull);
  EXPECT_EQ(v.to_string(), "1010000");
  // Stray bits beyond size() are discarded by the padding invariant.
  v.set_low_word(~0ull);
  EXPECT_EQ(v.count(), 7u);
  EXPECT_EQ(v.low_word(), 0x7Full);
  // On a multi-word vector, word 0 carries no padding and is kept whole.
  BitVector wide(70);
  wide.set_low_word(~0ull);
  EXPECT_EQ(wide.count(), 64u);
  EXPECT_EQ(wide.low_word(), ~0ull);
  EXPECT_EQ(BitVector().low_word(), 0ull);
}

TEST(BitVector, AssignMaskedMergesByMask) {
  BitVector dst = BitVector::from_string("110000");
  const BitVector src = BitVector::from_string("001111");
  const BitVector mask = BitVector::from_string("011110");
  dst.assign_masked(src, mask);
  EXPECT_EQ(dst.to_string(), "101110");
  BitVector wrong(5);
  EXPECT_THROW(dst.assign_masked(wrong, mask), std::invalid_argument);
}

TEST(BitVector, IntersectsAndCountAndNot) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("0110");
  const BitVector c = BitVector::from_string("0011");
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_EQ(a.count_and_not(b), 1u);  // bit 0
  EXPECT_EQ(a.count_and_not(c), 2u);
  BitVector wrong(5);
  EXPECT_THROW((void)a.intersects(wrong), std::invalid_argument);
  EXPECT_THROW((void)a.count_and_not(wrong), std::invalid_argument);
}

// ---------------------------------------------------------------- BitMatrix

TEST(BitMatrix, ShapeAndAccess) {
  BitMatrix m(4, 9);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 9u);
  m.set(2, 8, true);
  EXPECT_TRUE(m.get(2, 8));
  EXPECT_TRUE(m.at(2, 8));
  EXPECT_THROW((void)m.at(4, 0), std::out_of_range);
}

TEST(BitMatrix, ColumnExtractAndStore) {
  BitMatrix m(5, 5);
  BitVector col(5);
  col.set(1, true);
  col.set(4, true);
  m.set_column(3, col);
  EXPECT_EQ(m.column(3), col);
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_TRUE(m.get(4, 3));
  EXPECT_EQ(m.count(), 2u);
}

TEST(BitMatrix, RowReferenceIsLive) {
  BitMatrix m(3, 8);
  m.row(1).set(6, true);
  EXPECT_TRUE(m.get(1, 6));
}

TEST(BitMatrix, ColumnIntoMatchesBitSerialExtraction) {
  Rng rng(17);
  BitMatrix m(70, 130);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m.set(r, c, rng.bernoulli(0.5));
  }
  BitVector out;
  for (const std::size_t c : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{129}}) {
    m.column_into(c, out);
    ASSERT_EQ(out.size(), m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(out.get(r), m.get(r, c)) << "r=" << r << " c=" << c;
    }
  }
  EXPECT_THROW(m.column_into(130, out), std::out_of_range);
}

TEST(BitMatrix, ColumnIntoOverwritesDirtyReusedBuffer) {
  // The single-pass store must fully overwrite a reused scratch buffer --
  // stale set bits from a previous (larger) extraction must not survive,
  // including in the final partial word.
  BitMatrix m(70, 4);
  m.set(0, 1, true);
  m.set(69, 1, true);
  BitVector out(100, true);
  m.column_into(1, out);
  ASSERT_EQ(out.size(), 70u);
  EXPECT_EQ(out.count(), 2u);
  EXPECT_TRUE(out.get(0));
  EXPECT_TRUE(out.get(69));
  m.column_into(0, out);
  EXPECT_EQ(out.count(), 0u);
}

TEST(BitMatrix, OrColumnIntoAccumulates) {
  BitMatrix m(5, 5);
  m.set(1, 2, true);
  m.set(4, 3, true);
  BitVector acc(5);
  m.or_column_into(2, acc);
  m.or_column_into(3, acc);
  EXPECT_TRUE(acc.get(1));
  EXPECT_TRUE(acc.get(4));
  EXPECT_EQ(acc.count(), 2u);
  BitVector wrong(4);
  EXPECT_THROW(m.or_column_into(0, wrong), std::invalid_argument);
  EXPECT_THROW(m.or_column_into(5, acc), std::out_of_range);
}

TEST(BitMatrix, SetColumnRoundTripsAcrossWordBoundaries) {
  Rng rng(23);
  BitMatrix m(130, 70);
  BitVector col(130);
  for (std::size_t r = 0; r < 130; ++r) col.set(r, rng.bernoulli(0.5));
  m.set_column(64, col);
  EXPECT_EQ(m.column(64), col);
  EXPECT_EQ(m.count(), col.count());
}

TEST(BitMatrix, RowAssignMaskedMergesByMask) {
  BitMatrix m(3, 6);
  m.row(1) = BitVector::from_string("110000");
  m.row_assign_masked(1, BitVector::from_string("001111"),
                      BitVector::from_string("011110"));
  EXPECT_EQ(m.row(1).to_string(), "101110");
  EXPECT_THROW(m.row_assign_masked(3, BitVector(6), BitVector(6)),
               std::out_of_range);
}

TEST(BitMatrix, HammingDistanceAndEquality) {
  BitMatrix a(3, 3), b(3, 3);
  EXPECT_EQ(a, b);
  b.flip(2, 2);
  EXPECT_EQ(a.hamming_distance(b), 1u);
  EXPECT_NE(a, b);
  BitMatrix c(3, 4);
  EXPECT_THROW((void)a.hamming_distance(c), std::invalid_argument);
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(9);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(9);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_below(37), 37u);
  }
}

TEST(Rng, Uniform01IsInHalfOpenInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgesAreDeterministic) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BinomialEdgesAndMean) {
  Rng rng(8);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  double total = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.binomial(100, 0.3));
  }
  EXPECT_NEAR(total / trials, 30.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(10);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-2.0), 0u);
}

TEST(Rng, GeometricEdgesAndSentinel) {
  Rng rng(11);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  EXPECT_EQ(rng.geometric(1.5), 0u);
  // Success impossible: the saturating "beyond any horizon" sentinel.
  EXPECT_EQ(rng.geometric(0.0), ~std::uint64_t{0});
  EXPECT_EQ(rng.geometric(-0.5), ~std::uint64_t{0});
  // Vanishing success probability saturates rather than overflowing.
  EXPECT_EQ(rng.geometric(1e-300), ~std::uint64_t{0});
}

TEST(Rng, GeometricIsDeterministicAndMatchesItsMean) {
  Rng a(12), b(12);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.geometric(0.3), b.geometric(0.3));
  // E[G] = (1-p)/p = 3 at p = 0.25.
  Rng rng(13);
  double total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.geometric(0.25));
  }
  EXPECT_NEAR(total / trials, 3.0, 0.1);
}

TEST(Rng, JumpIsDeterministicAndDiverges) {
  Rng a(42), b(42);
  a.jump();
  b.jump();
  EXPECT_EQ(a.next(), b.next());  // same jump from same state
  Rng base(42);
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) diverged = a.next() != base.next();
  EXPECT_TRUE(diverged);  // jumped stream is a different substream
}

TEST(Rng, LongJumpDiffersFromJump) {
  Rng a(42), b(42);
  a.jump();
  b.long_jump();
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) diverged = a.next() != b.next();
  EXPECT_TRUE(diverged);
}

TEST(Rng, ForStreamYieldsIndependentDeterministicSubstreams) {
  Rng s0 = Rng::for_stream(123, 0);
  Rng s0_again = Rng::for_stream(123, 0);
  Rng s1 = Rng::for_stream(123, 1);
  Rng other_seed = Rng::for_stream(124, 0);
  EXPECT_EQ(s0.next(), s0_again.next());
  bool differs_by_stream = false, differs_by_seed = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t x = s0.next();
    differs_by_stream = differs_by_stream || x != s1.next();
    differs_by_seed = differs_by_seed || x != other_seed.next();
  }
  EXPECT_TRUE(differs_by_stream);
  EXPECT_TRUE(differs_by_seed);
  // Substream 0 must also differ from the plain seeded stream.
  Rng plain(123);
  Rng sub0 = Rng::for_stream(123, 0);
  bool differs_from_plain = false;
  for (int i = 0; i < 16 && !differs_from_plain; ++i) {
    differs_from_plain = plain.next() != sub0.next();
  }
  EXPECT_TRUE(differs_from_plain);
}

// ------------------------------------------------------------------- modmath

TEST(ModMath, FloorModHandlesNegatives) {
  EXPECT_EQ(floor_mod(7, 5), 2);
  EXPECT_EQ(floor_mod(-1, 5), 4);
  EXPECT_EQ(floor_mod(-5, 5), 0);
  EXPECT_EQ(floor_mod(-6, 5), 4);
}

TEST(ModMath, GcdBasics) {
  EXPECT_EQ(gcd_i64(12, 18), 6);
  EXPECT_EQ(gcd_i64(0, 7), 7);
  EXPECT_EQ(gcd_i64(-12, 18), 6);
}

TEST(ModMath, ModInverseExistsIffCoprime) {
  EXPECT_EQ(mod_inverse(3, 7).value(), 5);  // 3*5 = 15 = 1 mod 7
  EXPECT_FALSE(mod_inverse(6, 9).has_value());
  EXPECT_FALSE(mod_inverse(4, 0).has_value());
}

class InverseOfTwoTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(InverseOfTwoTest, IsTheModularInverseOfTwo) {
  const std::int64_t m = GetParam();
  const std::int64_t inv2 = inverse_of_two(m);
  EXPECT_EQ(floor_mod(2 * inv2, m), 1 % m);
  EXPECT_EQ(inv2, mod_inverse(2, m).value_or(-1));
}

INSTANTIATE_TEST_SUITE_P(OddModuli, InverseOfTwoTest,
                         ::testing::Values(3, 5, 7, 9, 15, 17, 51, 255, 1021));

TEST(ModMath, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
}

// --------------------------------------------------------------------- stats

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci_halfwidth(), 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, 4.0, 16.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, 0.0}), 0.0);
}

TEST(Stats, WilsonIntervalContainsProportion) {
  const ProportionInterval ci = wilson_interval(30, 100);
  EXPECT_GT(ci.center, 0.25);
  EXPECT_LT(ci.center, 0.35);
  EXPECT_LT(ci.low, 0.30);
  EXPECT_GT(ci.high, 0.30);
  const ProportionInterval empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.center, 0.0);
}

TEST(Stats, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

// --------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_pct(0.2623, 2), "26.23%");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

// ------------------------------------------------- simd rotate primitives

// Bit-by-bit reference rotation: bit j of seg's low m bits lands on
// (j + k) mod m.  Deliberately ignores bits of seg at positions >= m, the
// same hygiene the word kernels must have.
std::uint64_t naive_rotl(std::uint64_t seg, std::size_t k, std::size_t m) {
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if ((seg >> j) & 1u) out |= std::uint64_t{1} << ((j + k) % m);
  }
  return out;
}

// Bit-by-bit reference stride permutation: bit j -> (s * j) mod m.
std::uint64_t naive_stride(std::uint64_t seg, std::size_t s, std::size_t m) {
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if ((seg >> j) & 1u) out |= std::uint64_t{1} << ((s * j) % m);
  }
  return out;
}

// A mix of adversarial segments for one m: boundary patterns plus random
// words, each optionally poisoned above bit m (rotl/reflect must mask).
std::vector<std::uint64_t> rotate_probe_segments(std::size_t m, Rng& rng) {
  std::vector<std::uint64_t> segs = {
      0,
      simd::low_mask(m),
      std::uint64_t{1},
      std::uint64_t{1} << (m - 1),
      0xAAAAAAAAAAAAAAAAull & simd::low_mask(m),
      ~std::uint64_t{0},  // all 64 bits set: everything above m is stray
  };
  for (int i = 0; i < 24; ++i) segs.push_back(rng.next());
  return segs;
}

// Regression for the pre-fix kernel contract: the old diagword::rotl
// required k < m and computed `seg >> (m - k)` unmasked, which is
// shift-by-64 UB at m == 64, k == 0-via-wraparound (k == m), and silently
// wrong for stray bits above m.  Exhaustive over k in [0, 2m] including
// k == m at the word-width corners m in {1, 2, 63, 64}.
TEST(SimdRotl, MatchesNaiveExhaustivelyAtWordWidthCorners) {
  Rng rng(0x51D'901ull);
  for (const std::size_t m : {1u, 2u, 63u, 64u}) {
    for (const std::uint64_t seg : rotate_probe_segments(m, rng)) {
      for (std::size_t k = 0; k <= 2 * m; ++k) {
        EXPECT_EQ(simd::rotl(seg, k, m),
                  naive_rotl(seg & simd::low_mask(m), k, m))
            << "m=" << m << " k=" << k << " seg=" << seg;
      }
    }
  }
}

TEST(SimdRotl, RotationByZeroAndByMIsMaskedIdentity) {
  // rotl(seg, m, m) == rotl(seg, 0, m) == seg & low_mask(m); at m == 64
  // this is exactly the shift-by-64 corner.
  for (const std::size_t m : {1u, 7u, 63u, 64u}) {
    const std::uint64_t seg = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(simd::rotl(seg, 0, m), seg & simd::low_mask(m)) << m;
    EXPECT_EQ(simd::rotl(seg, m, m), seg & simd::low_mask(m)) << m;
  }
}

TEST(SimdRotl, AgreesWithDiagwordWrapper) {
  // core/geometry's diagword::rotl must stay a strict alias of the simd
  // primitive (the codecs call it on every row).
  Rng rng(0x51D'902ull);
  for (const std::size_t m : {3u, 31u, 63u, 64u}) {
    for (int t = 0; t < 50; ++t) {
      const std::uint64_t seg = rng.next();
      const std::size_t k = rng.uniform_below(m + 1);
      EXPECT_EQ(ecc::diagword::rotl(seg, k, m), simd::rotl(seg, k, m));
    }
  }
}

TEST(SimdBitReverse, KnownValuesAndInvolution) {
  EXPECT_EQ(simd::bit_reverse(0), 0u);
  EXPECT_EQ(simd::bit_reverse(~std::uint64_t{0}), ~std::uint64_t{0});
  EXPECT_EQ(simd::bit_reverse(1), std::uint64_t{1} << 63);
  EXPECT_EQ(simd::bit_reverse(std::uint64_t{0b1101}),
            std::uint64_t{0b1011} << 60);
  Rng rng(0x51D'903ull);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(simd::bit_reverse(simd::bit_reverse(v)), v);
  }
}

TEST(SimdReflect, MatchesCounterDiagonalMapForEveryM) {
  // reflect == bit j -> (m - j) mod m == stride_permute(seg, m-1, m), the
  // O(1) replacement for the codec's per-block counter reordering.
  Rng rng(0x51D'904ull);
  for (std::size_t m = 1; m <= 64; ++m) {
    for (int t = 0; t < 20; ++t) {
      const std::uint64_t seg = rng.next() & simd::low_mask(m);
      EXPECT_EQ(simd::reflect(seg, m), naive_stride(seg, m - 1, m))
          << "m=" << m;
    }
  }
}

TEST(DiagwordStridePermute, FastPathsMatchBitLoop) {
  // s == 1 (identity) and s == m-1 (reflect) short-circuit; other strides
  // still take the bit loop.  All must agree with the naive map.
  Rng rng(0x51D'905ull);
  for (const std::size_t m : {1u, 2u, 3u, 5u, 8u, 15u, 31u, 33u, 63u, 64u}) {
    for (int t = 0; t < 20; ++t) {
      const std::uint64_t seg = rng.next() & simd::low_mask(m);
      for (std::size_t s = 1; s <= std::min<std::size_t>(m, 6); ++s) {
        EXPECT_EQ(ecc::diagword::stride_permute(seg, s, m),
                  naive_stride(seg, s, m))
            << "m=" << m << " s=" << s;
      }
      if (m > 1) {
        EXPECT_EQ(ecc::diagword::stride_permute(seg, m - 1, m),
                  naive_stride(seg, m - 1, m))
            << "m=" << m;
      }
    }
  }
}

// --------------------------------------------------------------------- units

TEST(Units, ErrorProbabilityBasics) {
  EXPECT_DOUBLE_EQ(error_probability(0.0, 24.0), 0.0);
  EXPECT_DOUBLE_EQ(error_probability(1.0, 0.0), 0.0);
  // Tiny-rate regime: p ~ lambda*T/1e9.
  EXPECT_NEAR(error_probability(1e-3, 24.0), 2.4e-11, 1e-15);
  // Huge rate saturates at 1.
  EXPECT_NEAR(error_probability(1e12, 24.0), 1.0, 1e-9);
}

TEST(Units, FitMttfRoundTrip) {
  const double fit = probability_to_fit(0.5, 24.0);
  EXPECT_NEAR(fit, 0.5 * 1e9 / 24.0, 1e-6);
  EXPECT_NEAR(fit_to_mttf_hours(fit), 1e9 / fit, 1e-9);
  EXPECT_TRUE(std::isinf(fit_to_mttf_hours(0.0)));
}

}  // namespace
}  // namespace pimecc::util
