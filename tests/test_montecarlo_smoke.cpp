// Tiny-configuration Monte Carlo smoke test: exercises the full threaded
// reliability pipeline (seed derivation, injection, scrub, row-XOR block
// scan) in well under a second so it can run under the `smoke` ctest label
// on every CI invocation.
#include <gtest/gtest.h>

#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"

namespace pimecc::rel {
namespace {

TEST(MonteCarloSmoke, TinyConfigRunsThreadedPipeline) {
  MonteCarloConfig config;
  config.n = 20;
  config.m = 5;
  config.fit_per_bit = 1e6;  // p ~ 0.024/bit-day: flips are certain
  config.window_hours = 24.0;
  config.trials = 25;
  config.threads = 2;
  util::Rng rng(7);
  const MonteCarloResult result = run_montecarlo(config, rng);
  EXPECT_EQ(result.trials, 25u);
  EXPECT_EQ(result.blocks_total, 25u * 16u);
  EXPECT_GT(result.trials_with_errors, 0u);
  EXPECT_GT(result.flips_injected, 0u);
  // Every failed block must first have received an error.
  EXPECT_LE(result.blocks_failed, result.blocks_with_errors);
  EXPECT_LE(result.trials_failed, result.trials_with_errors);
}

TEST(MonteCarloSmoke, ThreadsCappedByTrialCount) {
  MonteCarloConfig config;
  config.n = 10;
  config.m = 5;
  config.fit_per_bit = 1e6;
  config.trials = 3;
  config.threads = 16;  // more workers than trials must still be exact
  util::Rng rng(11);
  const MonteCarloResult result = run_montecarlo(config, rng);
  EXPECT_EQ(result.trials, 3u);
  config.threads = 1;
  util::Rng rng2(11);
  EXPECT_EQ(run_montecarlo(config, rng2), result);
}

}  // namespace
}  // namespace pimecc::rel
