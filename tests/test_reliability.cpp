// Tests for src/reliability: closed-form Section V-A model and the Monte
// Carlo cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "reliability/analytic.hpp"
#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"

namespace pimecc::rel {
namespace {

TEST(Analytic, ValidatesQuery) {
  ReliabilityQuery q;
  q.m = 14;  // even
  EXPECT_THROW((void)evaluate_proposed(q), std::invalid_argument);
  q = ReliabilityQuery{};
  q.check_period_hours = 0.0;
  EXPECT_THROW((void)evaluate_baseline(q), std::invalid_argument);
  q = ReliabilityQuery{};
  q.fit_per_bit = -1.0;
  EXPECT_THROW((void)evaluate_proposed(q), std::invalid_argument);
}

TEST(Analytic, ZeroRateGivesInfiniteMttf) {
  ReliabilityQuery q;
  q.fit_per_bit = 0.0;
  EXPECT_TRUE(std::isinf(evaluate_baseline(q).mttf_hours));
  EXPECT_TRUE(std::isinf(evaluate_proposed(q).mttf_hours));
}

TEST(Analytic, BaselineMatchesFirstOrderApproximation) {
  // In the tiny-p regime, P(mem fail) ~ bits * p and FIT ~ bits * lambda.
  ReliabilityQuery q;
  q.fit_per_bit = 1e-3;
  const ReliabilityPoint pt = evaluate_baseline(q);
  const double bits = static_cast<double>(q.memory_bits);
  EXPECT_NEAR(pt.memory_fit, bits * 1e-3, bits * 1e-3 * 0.15);
}

TEST(Analytic, PaperHeadlineImprovementAtFlashSer) {
  // Paper Section V-A: at 1e-3 FIT/bit the improvement factor is ~3e8
  // ("over 3*10^8"); with check-bit memristors included in the vulnerable
  // population ours lands slightly lower.  Accept the decade.
  ReliabilityQuery q;
  q.fit_per_bit = 1e-3;
  const double base = evaluate_baseline(q).mttf_hours;
  const double prop = evaluate_proposed(q).mttf_hours;
  const double improvement = prop / base;
  EXPECT_GT(improvement, 1e8);
  EXPECT_LT(improvement, 1e9);
  // Without check-bit vulnerability (the paper's stricter reading) the
  // factor exceeds 3e8.
  q.include_check_bits = false;
  const double paper_reading = evaluate_proposed(q).mttf_hours / base;
  EXPECT_GT(paper_reading, 3e8);
}

TEST(Analytic, EightOrdersOfMagnitudeAcrossTheFigureSweep) {
  ReliabilityQuery q;
  for (const double fit : {1e-5, 1e-4, 1e-3}) {
    q.fit_per_bit = fit;
    const double improvement = evaluate_proposed(q).mttf_hours /
                               evaluate_baseline(q).mttf_hours;
    EXPECT_GT(improvement, 1e8) << "fit " << fit;
  }
}

TEST(Analytic, MttfDecreasesWithRate) {
  ReliabilityQuery q;
  double prev_base = std::numeric_limits<double>::infinity();
  double prev_prop = std::numeric_limits<double>::infinity();
  for (const double fit : {1e-5, 1e-3, 1e-1, 1e1, 1e3}) {
    q.fit_per_bit = fit;
    const double base = evaluate_baseline(q).mttf_hours;
    const double prop = evaluate_proposed(q).mttf_hours;
    EXPECT_LE(base, prev_base);
    EXPECT_LE(prop, prev_prop);
    EXPECT_GE(prop, base);  // ECC never hurts
    prev_base = base;
    prev_prop = prop;
  }
}

TEST(Analytic, SmallerBlocksAreMoreReliable) {
  // The Section III trade-off: smaller m -> higher reliability.
  ReliabilityQuery q;
  q.fit_per_bit = 1e-1;
  double prev = 0.0;
  for (const std::size_t m : {255u, 85u, 51u, 17u, 15u, 5u, 3u}) {
    q.m = m;
    const double mttf = evaluate_proposed(q).mttf_hours;
    EXPECT_GT(mttf, prev) << "m " << m;
    prev = mttf;
  }
}

TEST(Analytic, ShorterCheckPeriodImprovesMttf) {
  ReliabilityQuery q;
  q.fit_per_bit = 1e-1;
  q.check_period_hours = 24.0;
  const double day = evaluate_proposed(q).mttf_hours;
  q.check_period_hours = 1.0;
  const double hour = evaluate_proposed(q).mttf_hours;
  EXPECT_GT(hour, day);
}

TEST(Analytic, SweepCoversTheRequestedDecades) {
  const auto sweep = sweep_mttf(ReliabilityQuery{}, 1e-5, 1e3, 1);
  ASSERT_EQ(sweep.size(), 9u);  // 1e-5 .. 1e3 inclusive, one per decade
  EXPECT_NEAR(sweep.front().fit_per_bit, 1e-5, 1e-8);
  EXPECT_NEAR(sweep.back().fit_per_bit, 1e3, 1.0);
  EXPECT_THROW((void)sweep_mttf(ReliabilityQuery{}, 0.0, 1.0, 1),
               std::invalid_argument);
}

TEST(Analytic, BlockFailureFormulaMatchesDirectBinomial) {
  MonteCarloConfig config;
  config.m = 5;
  config.fit_per_bit = 1e7;
  config.window_hours = 24.0;
  config.include_check_bits = true;
  const double p = 1.0 - std::exp(-config.fit_per_bit * 24.0 / 1e9);
  const double cells = 5.0 * 5.0 + 10.0;
  // Direct: 1 - (1-p)^B - B p (1-p)^(B-1).
  const double direct = 1.0 - std::pow(1.0 - p, cells) -
                        cells * p * std::pow(1.0 - p, cells - 1.0);
  EXPECT_NEAR(analytic_block_failure(config), direct, 1e-12);
}

TEST(MonteCarlo, ValidatesConfig) {
  MonteCarloConfig config;
  config.n = 10;
  config.m = 3;
  util::Rng rng(1);
  EXPECT_THROW((void)run_montecarlo(config, rng), std::invalid_argument);
}

TEST(MonteCarlo, NoRateMeansNoFailures) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  config.fit_per_bit = 0.0;
  config.trials = 50;
  util::Rng rng(2);
  const MonteCarloResult result = run_montecarlo(config, rng);
  EXPECT_EQ(result.trials_with_errors, 0u);
  EXPECT_EQ(result.trials_failed, 0u);
  EXPECT_EQ(result.blocks_failed, 0u);
}

TEST(MonteCarlo, MeasuredBlockFailureTracksAnalytic) {
  MonteCarloConfig config;
  config.n = 60;
  config.m = 15;
  config.fit_per_bit = 3e6;  // p ~ 0.072 per bit-day: failures are common
  config.window_hours = 24.0;
  config.trials = 400;
  util::Rng rng(3);
  const MonteCarloResult result = run_montecarlo(config, rng);
  const double analytic = analytic_block_failure(config);
  const double measured = result.block_failure_rate();
  EXPECT_GT(measured, 0.0);
  // 400 trials x 16 blocks: expect agreement within ~25% relative.
  EXPECT_NEAR(measured, analytic, analytic * 0.25);
}

TEST(MonteCarlo, SingleErrorsAlwaysRepairedAtLowRate) {
  MonteCarloConfig config;
  config.n = 45;
  config.m = 9;
  config.fit_per_bit = 1e3;  // p ~ 2.4e-5: double hits in one block absent
  config.trials = 300;
  // Seed pinned to a stream with no same-block double hit (~2% of streams
  // have one; cross-checked against a per-bit scan when the per-trial
  // substream scheme landed) so the zero-failure premise actually holds.
  util::Rng rng(5);
  const MonteCarloResult result = run_montecarlo(config, rng);
  EXPECT_GT(result.corrected_data + result.corrected_check, 0u);
  EXPECT_EQ(result.blocks_failed, 0u);
}

TEST(MonteCarlo, CorrectionsAreCounted) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  config.fit_per_bit = 1e6;
  config.trials = 200;
  util::Rng rng(5);
  const MonteCarloResult result = run_montecarlo(config, rng);
  EXPECT_GT(result.flips_injected, 0u);
  EXPECT_GT(result.corrected_data + result.corrected_check +
                result.detected_uncorrectable,
            0u);
  EXPECT_EQ(result.blocks_total, 200u * 36u);
}

}  // namespace
}  // namespace pimecc::rel
