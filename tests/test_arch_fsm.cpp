// Tests for the PC controller FSM and the protected program VM -- the
// cycle-level and end-to-end compositions added on top of the base
// architecture model.
#include <gtest/gtest.h>

#include "arch/pc_controller.hpp"
#include "arch/pim_machine.hpp"
#include "simpler/logic.hpp"
#include "simpler/mapper.hpp"
#include "simpler/protected_vm.hpp"
#include "util/rng.hpp"

namespace pimecc {
namespace {

// ------------------------------------------------------------ PcController

TEST(PcController, WalksTheDocumentedStateSequence) {
  arch::PcController fsm(4);
  EXPECT_EQ(fsm.state(), arch::PcState::kIdle);
  EXPECT_FALSE(fsm.busy());
  EXPECT_EQ(fsm.step(), std::nullopt);  // idle clocks do nothing

  fsm.start(util::BitVector(4), util::BitVector(4), util::BitVector(4));
  EXPECT_TRUE(fsm.busy());
  const arch::PcState expected[] = {
      arch::PcState::kInit, arch::PcState::kLoadOld, arch::PcState::kLoadCheck,
      arch::PcState::kLoadNew, arch::PcState::kNor1, arch::PcState::kNor2,
      arch::PcState::kNor3, arch::PcState::kNor4, arch::PcState::kNor5,
      arch::PcState::kNor6, arch::PcState::kNor7, arch::PcState::kNor8,
      arch::PcState::kWriteBack};
  for (const arch::PcState s : expected) {
    EXPECT_EQ(fsm.state(), s);
    const auto wb = fsm.step();
    EXPECT_EQ(wb.has_value(), s == arch::PcState::kWriteBack);
  }
  EXPECT_EQ(fsm.state(), arch::PcState::kDone);
  EXPECT_FALSE(fsm.busy());
}

TEST(PcController, ComputesTheContinuousUpdate) {
  const std::size_t lanes = 64;
  util::Rng rng(3);
  util::BitVector old_line(lanes), check(lanes), new_line(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    old_line.set(i, rng.bernoulli(0.5));
    check.set(i, rng.bernoulli(0.5));
    new_line.set(i, rng.bernoulli(0.5));
  }
  arch::PcController fsm(lanes);
  fsm.start(old_line, check, new_line);
  const arch::PcController::RunResult result = fsm.run_to_completion();
  EXPECT_EQ(result.updated_check, old_line ^ new_line ^ check);
  EXPECT_EQ(result.cycles, 13u);  // init + 3 transfers + 8 NORs + write-back
}

TEST(PcController, RejectsStartWhileBusyAndBadLengths) {
  arch::PcController fsm(8);
  EXPECT_THROW(fsm.start(util::BitVector(7), util::BitVector(8),
                         util::BitVector(8)),
               std::invalid_argument);
  fsm.start(util::BitVector(8), util::BitVector(8), util::BitVector(8));
  EXPECT_THROW(fsm.start(util::BitVector(8), util::BitVector(8),
                         util::BitVector(8)),
               std::logic_error);
  fsm.reset();
  EXPECT_FALSE(fsm.busy());
  EXPECT_THROW(fsm.run_to_completion(), std::logic_error);
}

TEST(PcController, StateNamesAreHumanReadable) {
  EXPECT_STREQ(to_string(arch::PcState::kLoadCheck), "load-check");
  EXPECT_STREQ(to_string(arch::PcState::kNor8), "nor8");
}

// ------------------------------------------------------------ protected VM

simpler::Netlist build_add4() {
  simpler::Netlist nl("add4");
  simpler::LogicBuilder b(nl);
  const simpler::Bus x = b.input_bus(4);
  const simpler::Bus y = b.input_bus(4);
  const simpler::AddResult sum = b.ripple_add(x, y, b.constant(false));
  b.output_bus(sum.sum);
  b.output(sum.carry_out);
  return nl;
}

TEST(ProtectedVm, SimdExecutionMatchesNetlistPerRow) {
  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(45, 45));

  const simpler::Netlist nl = build_add4();
  simpler::MapperOptions options;
  options.row_width = 45;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);

  util::Rng rng(5);
  util::BitMatrix inputs(45, 8);
  for (std::size_t r = 0; r < 45; ++r) {
    for (std::size_t i = 0; i < 8; ++i) inputs.set(r, i, rng.bernoulli(0.5));
  }
  const simpler::ProtectedRunResult result = simpler::run_program_protected(
      machine, nl, program, inputs, /*check_inputs_first=*/true);
  EXPECT_TRUE(result.ecc_consistent_after);
  for (std::size_t r = 0; r < 45; ++r) {
    EXPECT_EQ(result.outputs.row(r), nl.eval(inputs.row(r))) << "row " << r;
  }
}

TEST(ProtectedVm, PreCheckRepairsInjectedInputError) {
  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(45, 45));

  const simpler::Netlist nl = build_add4();
  simpler::MapperOptions options;
  options.row_width = 45;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);

  util::BitMatrix inputs(45, 8);
  inputs.set(7, 0, true);  // row 7 computes 1 + 0

  // A soft error lands somewhere in the array before the run.  The VM's
  // pre-check (which runs *before* its protected loads -- otherwise the
  // load would trigger the Section III overwrite-before-check race) must
  // repair it, leaving the computation and the ECC state intact.
  machine.inject_data_error(7, program.input_cells[0]);
  const simpler::ProtectedRunResult result = simpler::run_program_protected(
      machine, nl, program, inputs, /*check_inputs_first=*/true);
  EXPECT_EQ(result.input_check_corrections, 1u);
  EXPECT_TRUE(result.ecc_consistent_after);
  EXPECT_EQ(result.outputs.row(7), nl.eval(inputs.row(7)));
}

TEST(ProtectedVm, ValidatesShapes) {
  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(45, 45));
  const simpler::Netlist nl = build_add4();
  simpler::MapperOptions options;
  options.row_width = 45;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);
  EXPECT_THROW(simpler::run_program_protected(machine, nl, program,
                                              util::BitMatrix(45, 7)),
               std::invalid_argument);
  simpler::MapperOptions wide;
  wide.row_width = 90;
  const simpler::MappedProgram too_wide = simpler::map_to_row(nl, wide);
  EXPECT_THROW(simpler::run_program_protected(machine, nl, too_wide,
                                              util::BitMatrix(45, 8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pimecc
