// Unit tests for src/fault: soft-error models, the fault injector (incl.
// the allocation-free sampling core, record/undo round-trips, and
// validate-before-mutate), and burst injection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/array_code.hpp"
#include "fault/burst.hpp"
#include "fault/injector.hpp"
#include "fault/models.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {
namespace {

// ----------------------------------------------------------- ConstantRate

TEST(ConstantRateModel, RejectsNegativeRate) {
  EXPECT_THROW(ConstantRateModel(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(ConstantRateModel(0.0));
}

TEST(ConstantRateModel, ProbabilityGrowsWithWindow) {
  const ConstantRateModel model(1e3);
  EXPECT_LT(model.flip_probability(1.0), model.flip_probability(24.0));
  EXPECT_DOUBLE_EQ(model.flip_probability(0.0), 0.0);
}

TEST(ConstantRateModel, SampleCountNearExpectation) {
  const ConstantRateModel model(1e6);  // p(24h) = 0.0237
  util::Rng rng(1);
  const std::size_t bits = 100000;
  double total = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(model.sample_flip_count(rng, bits, 24.0));
  }
  const double expected =
      model.flip_probability(24.0) * static_cast<double>(bits);
  EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

// ----------------------------------------------------------------- Drift

TEST(DriftModel, ValidatesParameters) {
  EXPECT_THROW(DriftModel(10, 1.0, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(DriftModel(10, -1.0, 0.1, 1.0), std::invalid_argument);
}

TEST(DriftModel, CellsFlipAfterCrossingThreshold) {
  DriftModel model(100, 1.0, 0.0, 10.0);  // deterministic drift 1/h
  util::Rng rng(3);
  EXPECT_TRUE(model.advance(rng, 5.0).empty());
  EXPECT_EQ(model.flipped_count(), 0u);
  const auto flipped = model.advance(rng, 5.0);  // total 10 >= threshold
  EXPECT_EQ(flipped.size(), 100u);
  EXPECT_EQ(model.flipped_count(), 100u);
}

TEST(DriftModel, RefreshResetsAccumulationButNotFlips) {
  DriftModel model(10, 1.0, 0.0, 10.0);
  util::Rng rng(4);
  model.advance(rng, 9.0);
  model.refresh();
  EXPECT_TRUE(model.advance(rng, 9.0).empty());  // accumulator restarted
  model.advance(rng, 2.0);                       // 11 > threshold
  EXPECT_EQ(model.flipped_count(), 10u);
  model.refresh();
  EXPECT_EQ(model.flipped_count(), 10u);  // already-flipped cells stay bad
}

TEST(DriftModel, ZeroOrNegativeWindowIsNoOp) {
  DriftModel model(5, 100.0, 0.0, 1.0);
  util::Rng rng(5);
  EXPECT_TRUE(model.advance(rng, 0.0).empty());
  EXPECT_TRUE(model.advance(rng, -1.0).empty());
}

TEST(DriftModel, DeterministicPathConsumesNoRandomness) {
  DriftModel model(50, 1.0, 0.0, 10.0);
  util::Rng rng(9);
  const util::Rng::State before = rng.state();
  (void)model.advance(rng, 5.0);
  EXPECT_EQ(rng.state(), before);
}

// Regression for the sqrt-of-time law: a Wiener accumulation advanced in
// one 8 h step must be distributed like eight 1 h steps (variance grows
// linearly with time, so the per-advance stddev scales with sqrt(hours)).
// The historical stddev * hours scaling made the single-shot path ~3x too
// noisy, which this flip-fraction band comfortably detects: with threshold
// 10 and mean drift 1/h, N(8, sqrt(8)) crosses with p ~ 0.24 while the
// buggy N(8, 8) crossed with p ~ 0.40.
// Regression for the sqrt-hours fix: one advance(8h) must be distributed
// like eight advance(1h) calls.  The historical stddev * hours scaling made
// the one-shot window far noisier than the chunked walk.  stddev is kept
// well below the mean so the per-step clamp at 0 (which keeps accumulation
// monotone but truncates the left tail when active) stays out of the
// comparison.
TEST(DriftModel, ChunkedAndUnchunkedAdvanceAgreeInDistribution) {
  constexpr std::size_t kCells = 20000;
  constexpr double kThreshold = 8.5;
  DriftModel one_shot(kCells, 1.0, 0.25, kThreshold);
  DriftModel chunked(kCells, 1.0, 0.25, kThreshold);
  util::Rng rng_one(101), rng_chunks(202);
  (void)one_shot.advance(rng_one, 8.0);
  for (int step = 0; step < 8; ++step) (void)chunked.advance(rng_chunks, 1.0);
  const double p_one =
      static_cast<double>(one_shot.flipped_count()) / kCells;
  const double p_chunks =
      static_cast<double>(chunked.flipped_count()) / kCells;
  // 5-sigma band on the difference of two binomial proportions.
  const double sigma = std::sqrt(
      (p_one * (1 - p_one) + p_chunks * (1 - p_chunks)) / kCells);
  EXPECT_NEAR(p_one, p_chunks, 5.0 * sigma + 1e-9)
      << "one-shot " << p_one << " vs chunked " << p_chunks;
  // Both must sit near the analytic N(8, 0.25 * sqrt(8)) crossing
  // probability over 8.5, 1 - Phi(0.707) ~ 0.2398; the buggy
  // stddev * hours scaling would put the one-shot run near 0.401.
  EXPECT_NEAR(p_one, 0.2398, 0.03);
  EXPECT_NEAR(p_chunks, 0.2398, 0.03);
}

// -------------------------------------------------------------- injector

TEST(Injector, FlipsExactlyTheRequestedDistinctCells) {
  util::Rng rng(6);
  util::BitMatrix data(20, 20);
  const InjectionRecord record = inject_data_flips(rng, data, 17);
  EXPECT_EQ(record.data_flips.size(), 17u);
  EXPECT_EQ(record.total(), 17u);
  EXPECT_EQ(data.count(), 17u);  // all flips 0 -> 1, all distinct
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const DataFlip& f : record.data_flips) {
    EXPECT_TRUE(seen.insert({f.r, f.c}).second);
    EXPECT_LT(f.r, 20u);
    EXPECT_LT(f.c, 20u);
  }
}

TEST(Injector, CountExceedingPopulationThrows) {
  util::Rng rng(7);
  util::BitMatrix data(3, 3);
  EXPECT_THROW(inject_data_flips(rng, data, 10), std::invalid_argument);
}

TEST(Injector, EverywhereInjectionHitsDataAndCheckBits) {
  util::Rng rng(8);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  // Flip every cell: 225 data + 9 blocks * 10 check bits = 315.
  const InjectionRecord record = inject_flips_everywhere(rng, data, code, 315);
  EXPECT_EQ(record.data_flips.size(), 225u);
  EXPECT_EQ(record.check_flips.size(), 90u);
  EXPECT_EQ(data.count(), 225u);
}

TEST(Injector, InjectedErrorsAreVisibleToTheCode) {
  util::Rng rng(9);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  EXPECT_TRUE(code.consistent_with(data));
  inject_flips_everywhere(rng, data, code, 3);
  EXPECT_FALSE(code.consistent_with(data));
}

TEST(Injector, BlockInjectionStaysInsideTheBlock) {
  util::Rng rng(10);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 1, 2, 5, /*include_check_bits=*/false);
  EXPECT_EQ(record.data_flips.size(), 5u);
  for (const DataFlip& f : record.data_flips) {
    EXPECT_GE(f.r, 5u);
    EXPECT_LT(f.r, 10u);
    EXPECT_GE(f.c, 10u);
    EXPECT_LT(f.c, 15u);
  }
}

TEST(Injector, BlockInjectionCanTargetCheckBits) {
  util::Rng rng(11);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  // 25 data cells + 10 check bits; request all 35.
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 0, 0, 35, /*include_check_bits=*/true);
  EXPECT_EQ(record.data_flips.size(), 25u);
  EXPECT_EQ(record.check_flips.size(), 10u);
  for (const CheckFlip& f : record.check_flips) {
    EXPECT_EQ(f.block_row, 0u);
    EXPECT_EQ(f.block_col, 0u);
    EXPECT_LT(f.index, 5u);
  }
}

TEST(Injector, DeterministicGivenSeed) {
  util::BitMatrix a(10, 10), b(10, 10);
  util::Rng rng_a(99), rng_b(99);
  inject_data_flips(rng_a, a, 7);
  inject_data_flips(rng_b, b, 7);
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------- sample_distinct

TEST(SampleDistinct, MatchesHashSetOracleAndStaysSorted) {
  // The sorted-vector Floyd implementation must reproduce the historical
  // hash-set algorithm exactly (same rng consumption, same sampled set) so
  // existing seeds keep producing the same injection records.
  std::vector<std::size_t> out;
  for (const auto& [population, count] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 0}, {10, 1}, {10, 10}, {97, 13}, {1000, 40}, {64, 63}}) {
    util::Rng rng(population * 1000 + count), oracle_rng(population * 1000 + count);
    sample_distinct(rng, population, count, out);
    // Oracle: the original hash-set Floyd loop.
    std::unordered_set<std::size_t> chosen;
    for (std::size_t j = population - count; j < population; ++j) {
      const auto t = static_cast<std::size_t>(oracle_rng.uniform_below(j + 1));
      if (!chosen.insert(t).second) chosen.insert(j);
    }
    ASSERT_EQ(out.size(), count);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::set<std::size_t>(out.begin(), out.end()),
              std::set<std::size_t>(chosen.begin(), chosen.end()));
    EXPECT_EQ(rng.next(), oracle_rng.next());  // identical consumption
  }
}

TEST(SampleDistinct, CountExceedingPopulationThrowsBeforeDrawing) {
  std::vector<std::size_t> out{1, 2, 3};
  util::Rng rng(1), fresh(1);
  EXPECT_THROW(sample_distinct(rng, 3, 4, out), std::invalid_argument);
  EXPECT_EQ(rng.next(), fresh.next());
}

// ----------------------------------------------------------------- undo

TEST(Injector, UndoRestoresDataAndCheckStateExactly) {
  util::Rng rng(21);
  const std::size_t n = 25, m = 5;
  util::BitMatrix data = util::random_bit_matrix(n, n, rng);
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  const util::BitMatrix golden = data;
  const ecc::ArrayCode golden_code = code;
  for (const std::size_t count : {1u, 3u, 17u, 120u}) {
    const InjectionRecord record =
        inject_flips_everywhere(rng, data, code, count);
    EXPECT_EQ(record.total(), count);
    EXPECT_FALSE(data == golden && code.consistent_with(golden));
    undo(record, data, code);
    EXPECT_EQ(data, golden);
    for (std::size_t br = 0; br < n / m; ++br) {
      for (std::size_t bc = 0; bc < n / m; ++bc) {
        EXPECT_EQ(code.check_bits({br, bc}), golden_code.check_bits({br, bc}));
      }
    }
  }
}

TEST(Injector, DataOnlyUndoRoundTripsAndRejectsCheckFlips) {
  util::Rng rng(22);
  util::BitMatrix data = util::random_bit_matrix(12, 12, rng);
  const util::BitMatrix golden = data;
  const InjectionRecord record = inject_data_flips(rng, data, 9);
  undo(record, data);
  EXPECT_EQ(data, golden);

  ecc::ArrayCode code(15, 5);
  util::BitMatrix coded(15, 15);
  code.encode_all(coded);
  const InjectionRecord with_checks =
      inject_block_flips(rng, coded, code, 0, 0, 30, true);
  EXPECT_FALSE(with_checks.check_flips.empty());
  EXPECT_THROW(undo(with_checks, coded), std::invalid_argument);
  undo(with_checks, coded, code);  // full undo still works
  EXPECT_EQ(coded.count(), 0u);
}

TEST(Injector, UndoValidatesRecordBeforeMutating) {
  util::BitMatrix data(10, 10);
  ecc::ArrayCode code(10, 5);
  InjectionRecord bad;
  bad.data_flips.push_back({0, 0});
  bad.data_flips.push_back({99, 0});  // out of range, listed second
  EXPECT_THROW(undo(bad, data), std::out_of_range);
  EXPECT_EQ(data.count(), 0u);  // the in-range flip must NOT have landed
  InjectionRecord bad_check;
  bad_check.check_flips.push_back({5, 0, true, 0});
  EXPECT_THROW(undo(bad_check, data, code), std::out_of_range);
  InjectionRecord bad_index;
  bad_index.check_flips.push_back({0, 0, false, 7});  // index >= m
  EXPECT_THROW(undo(bad_index, data, code), std::out_of_range);
}

// ------------------------------------------- inject_block_flips hardening

TEST(Injector, BlockInjectionValidatesBeforeMutating) {
  util::Rng rng(23), fresh(23);
  util::BitMatrix data(15, 15);
  ecc::ArrayCode code(15, 5);
  code.encode_all(data);
  EXPECT_THROW(inject_block_flips(rng, data, code, 3, 0, 2, true),
               std::out_of_range);
  EXPECT_THROW(inject_block_flips(rng, data, code, 0, 3, 2, true),
               std::out_of_range);
  util::BitMatrix wrong(10, 10);
  EXPECT_THROW(inject_block_flips(rng, wrong, code, 0, 0, 2, true),
               std::invalid_argument);
  EXPECT_EQ(data.count(), 0u);            // nothing mutated
  EXPECT_TRUE(code.consistent_with(data));
  EXPECT_EQ(rng.next(), fresh.next());    // nothing drawn either
}

TEST(Injector, BlockInjectionBoundaryBlockStaysInside) {
  util::Rng rng(24);
  const std::size_t n = 15, m = 5;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 2, 2, 25, false);  // last block, full
  EXPECT_EQ(record.data_flips.size(), 25u);
  for (const DataFlip& f : record.data_flips) {
    EXPECT_GE(f.r, 10u);
    EXPECT_LT(f.r, 15u);
    EXPECT_GE(f.c, 10u);
    EXPECT_LT(f.c, 15u);
  }
}

TEST(Injector, BlockInjectionCheckSlotAddressing) {
  // Request the full population of one block with check bits: slots
  // [0, m) must land on the leading axis, [m, 2m) on the counter axis,
  // each index exactly once, and every recorded flip must be observable in
  // the stored check bits (all-zero data keeps golden parities at zero).
  util::Rng rng(25);
  const std::size_t n = 15, m = 5;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, m);
  code.encode_all(data);
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 1, 2, m * m + 2 * m, true);
  ASSERT_EQ(record.check_flips.size(), 2 * m);
  std::set<std::size_t> leading, counter;
  for (const CheckFlip& f : record.check_flips) {
    EXPECT_EQ(f.block_row, 1u);
    EXPECT_EQ(f.block_col, 2u);
    ASSERT_LT(f.index, m);
    (f.on_leading_axis ? leading : counter).insert(f.index);
  }
  EXPECT_EQ(leading.size(), m);  // every leading diagonal exactly once
  EXPECT_EQ(counter.size(), m);  // every counter diagonal exactly once
  const ecc::CheckBits& bits = code.check_bits({1, 2});
  EXPECT_EQ(bits.leading.count(), m);  // all flipped away from zero
  EXPECT_EQ(bits.counter.count(), m);
}

// ----------------------------------------------------------------- burst

TEST(Burst, HorizontalVerticalAndSquareShapes) {
  const auto horizontal = burst_cells(20, 20, 3, 5, 4, BurstShape::kHorizontal);
  ASSERT_EQ(horizontal.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(horizontal[i].r, 3u);
    EXPECT_EQ(horizontal[i].c, 5 + i);
  }
  const auto vertical = burst_cells(20, 20, 3, 5, 4, BurstShape::kVertical);
  ASSERT_EQ(vertical.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(vertical[i].r, 3 + i);
    EXPECT_EQ(vertical[i].c, 5u);
  }
  // length 5 -> 3x3 patch truncated to the first 5 cells in row-major order.
  const auto square = burst_cells(20, 20, 3, 5, 5, BurstShape::kSquare);
  ASSERT_EQ(square.size(), 5u);
  EXPECT_EQ(square[0].r, 3u);
  EXPECT_EQ(square[0].c, 5u);
  EXPECT_EQ(square[2].c, 7u);  // third cell of the first patch row
  EXPECT_EQ(square[3].r, 4u);  // wraps to the second patch row
  EXPECT_EQ(square[3].c, 5u);
}

TEST(Burst, ClipsAtTheArrayEdge) {
  EXPECT_EQ(burst_cells(8, 8, 0, 6, 5, BurstShape::kHorizontal).size(), 2u);
  EXPECT_EQ(burst_cells(8, 8, 6, 0, 5, BurstShape::kVertical).size(), 2u);
  // Square anchored in the corner: only the in-bounds cells survive.
  const auto corner = burst_cells(8, 8, 7, 7, 9, BurstShape::kSquare);
  ASSERT_EQ(corner.size(), 1u);
  EXPECT_EQ(corner[0].r, 7u);
  EXPECT_EQ(corner[0].c, 7u);
}

TEST(Burst, ValidatesLengthAndAnchor) {
  EXPECT_THROW((void)burst_cells(8, 8, 0, 0, 0, BurstShape::kHorizontal),
               std::invalid_argument);
  EXPECT_THROW((void)burst_cells(8, 8, 8, 0, 1, BurstShape::kHorizontal),
               std::out_of_range);
  EXPECT_THROW((void)burst_cells(8, 8, 0, 8, 1, BurstShape::kVertical),
               std::out_of_range);
}

TEST(Burst, BurstExtentMatchesShapeGeometry) {
  EXPECT_EQ(burst_extent(4, BurstShape::kHorizontal),
            (std::pair<std::size_t, std::size_t>{1, 4}));
  EXPECT_EQ(burst_extent(4, BurstShape::kVertical),
            (std::pair<std::size_t, std::size_t>{4, 1}));
  // length 5 -> side 3, 2 rows (ceil(5/3)) x 3 cols.
  EXPECT_EQ(burst_extent(5, BurstShape::kSquare),
            (std::pair<std::size_t, std::size_t>{2, 3}));
  EXPECT_EQ(burst_extent(9, BurstShape::kSquare),
            (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_THROW((void)burst_extent(0, BurstShape::kSquare),
               std::invalid_argument);
}

// Regression for the anchor-clamp fix: the historical uniform-over-the-
// array anchor silently clipped bursts at the right/bottom edges, so a
// "length 5" burst often delivered fewer cells.  With the clamped anchor,
// every burst whose extent fits the array delivers exactly `length` cells,
// for every shape, on every draw.
TEST(Burst, InjectBurstDeliversFullLengthWheneverGeometryAdmits) {
  util::Rng rng(2024);
  for (const BurstShape shape :
       {BurstShape::kHorizontal, BurstShape::kVertical, BurstShape::kSquare}) {
    for (const std::size_t length : {1u, 4u, 5u, 7u, 8u}) {
      for (int draw = 0; draw < 200; ++draw) {
        util::BitMatrix data(8, 8);
        const auto cells = inject_burst(rng, data, length, shape);
        ASSERT_EQ(cells.size(), length)
            << to_string(shape) << " length " << length << " draw " << draw;
        EXPECT_EQ(data.count(), length);
        for (const DataFlip& f : cells) {
          EXPECT_LT(f.r, 8u);
          EXPECT_LT(f.c, 8u);
        }
      }
    }
  }
}

// The residual small-array clip: when the array itself is smaller than the
// burst's extent on an axis, anchors span the whole axis and the burst may
// clip -- but never to zero cells.
TEST(Burst, SmallerArrayThanExtentStillInjectsSomething) {
  util::Rng rng(7);
  for (int draw = 0; draw < 100; ++draw) {
    util::BitMatrix data(3, 3);
    const auto cells = inject_burst(rng, data, 5, BurstShape::kVertical);
    EXPECT_GE(cells.size(), 1u);
    EXPECT_LE(cells.size(), 3u);  // at most the column height
  }
}

TEST(Burst, CorrelatedBurstsStayDedupedAndInBounds) {
  util::Rng rng(99);
  for (int draw = 0; draw < 200; ++draw) {
    const auto cells =
        correlated_burst_cells(rng, 60, 60, 15, 4, BurstShape::kSquare, 0.8);
    ASSERT_GE(cells.size(), 4u);  // primary always delivers in a 60x60 array
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (const DataFlip& f : cells) {
      EXPECT_LT(f.r, 60u);
      EXPECT_LT(f.c, 60u);
      EXPECT_TRUE(seen.insert({f.r, f.c}).second) << "duplicate cell emitted";
    }
  }
  EXPECT_THROW((void)correlated_burst_cells(rng, 60, 60, 7, 4,
                                            BurstShape::kSquare, 0.5),
               std::invalid_argument);  // m must divide the dimensions
  EXPECT_THROW((void)correlated_burst_cells(rng, 60, 60, 15, 4,
                                            BurstShape::kSquare, 1.5),
               std::invalid_argument);  // probability out of range
}

TEST(Burst, InjectBurstIsDeterministicAndUndoable) {
  util::BitMatrix a(16, 16), b(16, 16);
  util::Rng rng_a(42), rng_b(42);
  const auto cells_a = inject_burst(rng_a, a, 6, BurstShape::kSquare);
  const auto cells_b = inject_burst(rng_b, b, 6, BurstShape::kSquare);
  EXPECT_EQ(a, b);
  ASSERT_EQ(cells_a.size(), cells_b.size());
  EXPECT_EQ(a.count(), cells_a.size());
  // Burst cell lists ride the same record machinery: wrap + undo.
  InjectionRecord record;
  record.data_flips = cells_a;
  undo(record, a);
  EXPECT_EQ(a.count(), 0u);
}

}  // namespace
}  // namespace pimecc::fault
