// Unit tests for src/fault: soft-error models and the fault injector.
#include <gtest/gtest.h>

#include <set>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "fault/models.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {
namespace {

// ----------------------------------------------------------- ConstantRate

TEST(ConstantRateModel, RejectsNegativeRate) {
  EXPECT_THROW(ConstantRateModel(-1.0), std::invalid_argument);
  EXPECT_NO_THROW(ConstantRateModel(0.0));
}

TEST(ConstantRateModel, ProbabilityGrowsWithWindow) {
  const ConstantRateModel model(1e3);
  EXPECT_LT(model.flip_probability(1.0), model.flip_probability(24.0));
  EXPECT_DOUBLE_EQ(model.flip_probability(0.0), 0.0);
}

TEST(ConstantRateModel, SampleCountNearExpectation) {
  const ConstantRateModel model(1e6);  // p(24h) = 0.0237
  util::Rng rng(1);
  const std::size_t bits = 100000;
  double total = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(model.sample_flip_count(rng, bits, 24.0));
  }
  const double expected =
      model.flip_probability(24.0) * static_cast<double>(bits);
  EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

// ----------------------------------------------------------------- Drift

TEST(DriftModel, ValidatesParameters) {
  EXPECT_THROW(DriftModel(10, 1.0, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(DriftModel(10, -1.0, 0.1, 1.0), std::invalid_argument);
}

TEST(DriftModel, CellsFlipAfterCrossingThreshold) {
  DriftModel model(100, 1.0, 0.0, 10.0);  // deterministic drift 1/h
  util::Rng rng(3);
  EXPECT_TRUE(model.advance(rng, 5.0).empty());
  EXPECT_EQ(model.flipped_count(), 0u);
  const auto flipped = model.advance(rng, 5.0);  // total 10 >= threshold
  EXPECT_EQ(flipped.size(), 100u);
  EXPECT_EQ(model.flipped_count(), 100u);
}

TEST(DriftModel, RefreshResetsAccumulationButNotFlips) {
  DriftModel model(10, 1.0, 0.0, 10.0);
  util::Rng rng(4);
  model.advance(rng, 9.0);
  model.refresh();
  EXPECT_TRUE(model.advance(rng, 9.0).empty());  // accumulator restarted
  model.advance(rng, 2.0);                       // 11 > threshold
  EXPECT_EQ(model.flipped_count(), 10u);
  model.refresh();
  EXPECT_EQ(model.flipped_count(), 10u);  // already-flipped cells stay bad
}

TEST(DriftModel, ZeroOrNegativeWindowIsNoOp) {
  DriftModel model(5, 100.0, 0.0, 1.0);
  util::Rng rng(5);
  EXPECT_TRUE(model.advance(rng, 0.0).empty());
  EXPECT_TRUE(model.advance(rng, -1.0).empty());
}

// -------------------------------------------------------------- injector

TEST(Injector, FlipsExactlyTheRequestedDistinctCells) {
  util::Rng rng(6);
  util::BitMatrix data(20, 20);
  const InjectionRecord record = inject_data_flips(rng, data, 17);
  EXPECT_EQ(record.data_flips.size(), 17u);
  EXPECT_EQ(record.total(), 17u);
  EXPECT_EQ(data.count(), 17u);  // all flips 0 -> 1, all distinct
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const DataFlip& f : record.data_flips) {
    EXPECT_TRUE(seen.insert({f.r, f.c}).second);
    EXPECT_LT(f.r, 20u);
    EXPECT_LT(f.c, 20u);
  }
}

TEST(Injector, CountExceedingPopulationThrows) {
  util::Rng rng(7);
  util::BitMatrix data(3, 3);
  EXPECT_THROW(inject_data_flips(rng, data, 10), std::invalid_argument);
}

TEST(Injector, EverywhereInjectionHitsDataAndCheckBits) {
  util::Rng rng(8);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  // Flip every cell: 225 data + 9 blocks * 10 check bits = 315.
  const InjectionRecord record = inject_flips_everywhere(rng, data, code, 315);
  EXPECT_EQ(record.data_flips.size(), 225u);
  EXPECT_EQ(record.check_flips.size(), 90u);
  EXPECT_EQ(data.count(), 225u);
}

TEST(Injector, InjectedErrorsAreVisibleToTheCode) {
  util::Rng rng(9);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  EXPECT_TRUE(code.consistent_with(data));
  inject_flips_everywhere(rng, data, code, 3);
  EXPECT_FALSE(code.consistent_with(data));
}

TEST(Injector, BlockInjectionStaysInsideTheBlock) {
  util::Rng rng(10);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 1, 2, 5, /*include_check_bits=*/false);
  EXPECT_EQ(record.data_flips.size(), 5u);
  for (const DataFlip& f : record.data_flips) {
    EXPECT_GE(f.r, 5u);
    EXPECT_LT(f.r, 10u);
    EXPECT_GE(f.c, 10u);
    EXPECT_LT(f.c, 15u);
  }
}

TEST(Injector, BlockInjectionCanTargetCheckBits) {
  util::Rng rng(11);
  const std::size_t n = 15;
  util::BitMatrix data(n, n);
  ecc::ArrayCode code(n, 5);
  code.encode_all(data);
  // 25 data cells + 10 check bits; request all 35.
  const InjectionRecord record =
      inject_block_flips(rng, data, code, 0, 0, 35, /*include_check_bits=*/true);
  EXPECT_EQ(record.data_flips.size(), 25u);
  EXPECT_EQ(record.check_flips.size(), 10u);
  for (const CheckFlip& f : record.check_flips) {
    EXPECT_EQ(f.block_row, 0u);
    EXPECT_EQ(f.block_col, 0u);
    EXPECT_LT(f.index, 5u);
  }
}

TEST(Injector, DeterministicGivenSeed) {
  util::BitMatrix a(10, 10), b(10, 10);
  util::Rng rng_a(99), rng_b(99);
  inject_data_flips(rng_a, a, 7);
  inject_data_flips(rng_b, b, 7);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pimecc::fault
