// Tests for the word-parallel ECC codec engine: differential equivalence of
// BlockCodec / ArrayCode / MultiSlopeCodec / HorizontalCode against the
// bit-serial reference implementations (reference_block_code.hpp),
// exhaustive small-m correction coverage, and the validate-before-mutate
// regressions of the ECC layer -- the codec-level twin of test_engine.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arch/check_memory.hpp"
#include "arch/params.hpp"
#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/geometry.hpp"
#include "core/horizontal_code.hpp"
#include "core/multislope_code.hpp"
#include "core/reference_block_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"

namespace pimecc::ecc {
namespace {

using util::BitMatrix;
using util::BitVector;
using util::Rng;

// 65 > diagword::kMaxM pins the bit-serial fallback branches of the fast
// codec (and ArrayCode's per-block slow paths) to the reference as well.
constexpr std::size_t kOddM[] = {3, 5, 7, 9, 31, 65};

BitMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  return util::random_bit_matrix(rows, cols, rng);
}

BitVector random_bits(std::size_t size, Rng& rng) {
  BitVector v(size);
  for (auto& word : v.words_mutable()) word = rng.next();
  v.sanitize();
  return v;
}

// Anchors biased toward 64-bit word boundaries, where diagword::extract
// must stitch a segment from two backing words.
std::size_t random_anchor(Rng& rng, std::size_t limit, std::size_t m) {
  if (rng.bernoulli(0.4)) {
    const std::size_t boundary = 64 * (1 + rng.uniform_below(2));
    const std::size_t wobble = rng.uniform_below(m + 1);
    const std::size_t anchor = boundary > wobble ? boundary - wobble : 0;
    if (anchor <= limit) return anchor;
  }
  return rng.uniform_below(limit + 1);
}

// ----------------------------------------------- BlockCodec differential

TEST(CodecDifferential, EncodeMatchesReferenceAtArbitraryAnchors) {
  Rng rng(0xC0DEC'01ull);
  const BitMatrix data = random_matrix(97, 193, rng);
  for (const std::size_t m : kOddM) {
    const BlockCodec fast(m);
    const ReferenceBlockCodec ref(m);
    for (int trial = 0; trial < 60; ++trial) {
      const std::size_t row0 = rng.uniform_below(data.rows() - m + 1);
      const std::size_t col0 = random_anchor(rng, data.cols() - m, m);
      EXPECT_EQ(fast.encode(data, row0, col0), ref.encode(data, row0, col0))
          << "m=" << m << " anchor (" << row0 << ", " << col0 << ")";
    }
  }
}

TEST(CodecDifferential, SyndromeAndClassifyMatchReference) {
  Rng rng(0xC0DEC'02ull);
  const BitMatrix data = random_matrix(80, 150, rng);
  for (const std::size_t m : kOddM) {
    const BlockCodec fast(m);
    const ReferenceBlockCodec ref(m);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t row0 = rng.uniform_below(data.rows() - m + 1);
      const std::size_t col0 = random_anchor(rng, data.cols() - m, m);
      CheckBits stored(m);
      stored.leading = random_bits(m, rng);
      stored.counter = random_bits(m, rng);
      const Syndrome sf = fast.compute_syndrome(data, row0, col0, stored);
      const Syndrome sr = ref.compute_syndrome(data, row0, col0, stored);
      EXPECT_EQ(sf, sr) << "m=" << m;
      EXPECT_EQ(fast.classify(sf), ref.classify(sr)) << "m=" << m;
    }
  }
}

TEST(CodecDifferential, CheckAndCorrectMatchesReferenceUnderInjectedErrors) {
  Rng rng(0xC0DEC'03ull);
  for (const std::size_t m : kOddM) {
    const BlockCodec fast(m);
    const ReferenceBlockCodec ref(m);
    for (int trial = 0; trial < 60; ++trial) {
      BitMatrix base = random_matrix(m + 17, m + 70, rng);
      const std::size_t row0 = rng.uniform_below(base.rows() - m + 1);
      const std::size_t col0 = random_anchor(rng, base.cols() - m, m);
      const CheckBits encoded = ref.encode(base, row0, col0);

      // 0..4 flips across the data window and both check-bit axes.
      const std::size_t flips = rng.uniform_below(5);
      BitMatrix data_f = base;
      CheckBits stored_f = encoded;
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t kind = rng.uniform_below(3);
        if (kind == 0) {
          data_f.flip(row0 + rng.uniform_below(m), col0 + rng.uniform_below(m));
        } else if (kind == 1) {
          stored_f.leading.flip(rng.uniform_below(m));
        } else {
          stored_f.counter.flip(rng.uniform_below(m));
        }
      }
      BitMatrix data_r = data_f;
      CheckBits stored_r = stored_f;

      const DecodeResult a = fast.check_and_correct(data_f, row0, col0, stored_f);
      const DecodeResult b = ref.check_and_correct(data_r, row0, col0, stored_r);
      EXPECT_EQ(a, b) << "m=" << m << " flips=" << flips;
      EXPECT_EQ(data_f, data_r) << "m=" << m;
      EXPECT_EQ(stored_f, stored_r) << "m=" << m;
    }
  }
}

// ------------------------------------------------ ArrayCode differential

TEST(CodecDifferential, EncodeAllMatchesReferenceBlockwise) {
  Rng rng(0xC0DEC'04ull);
  for (const std::size_t m : kOddM) {
    for (const std::size_t bps : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
      const std::size_t n = m * bps;
      const BitMatrix data = random_matrix(n, n, rng);
      ArrayCode code(n, m);
      code.encode_all(data);
      const ReferenceBlockCodec ref(m);
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          EXPECT_EQ(code.check_bits({br, bc}), ref.encode(data, br * m, bc * m))
              << "m=" << m << " block (" << br << ", " << bc << ")";
        }
      }
      EXPECT_TRUE(code.consistent_with(data));
    }
  }
}

TEST(CodecDifferential, ScrubMatchesReferenceBlockwise) {
  Rng rng(0xC0DEC'05ull);
  for (const std::size_t m : kOddM) {
    const std::size_t bps = 4;
    const std::size_t n = m * bps;
    const ReferenceBlockCodec ref(m);
    for (int trial = 0; trial < 20; ++trial) {
      const BitMatrix base = random_matrix(n, n, rng);
      ArrayCode code(n, m);
      code.encode_all(base);
      std::vector<CheckBits> stored_ref;
      stored_ref.reserve(bps * bps);
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          stored_ref.push_back(code.check_bits({br, bc}));
        }
      }

      // Inject identical random damage into both representations.
      BitMatrix data_f = base;
      const std::size_t flips = rng.uniform_below(2 * bps * bps);
      for (std::size_t i = 0; i < flips; ++i) {
        if (rng.bernoulli(0.7)) {
          data_f.flip(rng.uniform_below(n), rng.uniform_below(n));
        } else {
          const std::size_t block = rng.uniform_below(bps * bps);
          const std::size_t diag = rng.uniform_below(m);
          if (rng.bernoulli(0.5)) {
            stored_ref[block].leading.flip(diag);
            code.check_bits_mutable({block / bps, block % bps}).leading.flip(diag);
          } else {
            stored_ref[block].counter.flip(diag);
            code.check_bits_mutable({block / bps, block % bps}).counter.flip(diag);
          }
        }
      }
      BitMatrix data_r = data_f;

      const ScrubReport fast_report = code.scrub(data_f);
      const ScrubReport ref_report = reference_scrub(ref, data_r, stored_ref, bps);
      EXPECT_EQ(fast_report, ref_report) << "m=" << m << " trial " << trial;
      EXPECT_EQ(data_f, data_r) << "m=" << m << " trial " << trial;
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          EXPECT_EQ(code.check_bits({br, bc}), stored_ref[br * bps + bc])
              << "m=" << m << " block (" << br << ", " << bc << ")";
        }
      }
    }
  }
}

TEST(CodecDifferential, WriteBatchesMatchReferencePerWriteUpdates) {
  Rng rng(0xC0DEC'06ull);
  for (const std::size_t m : kOddM) {
    const std::size_t bps = 3;
    const std::size_t n = m * bps;
    BitMatrix data = random_matrix(n, n, rng);
    ArrayCode code(n, m);
    code.encode_all(data);
    const ReferenceBlockCodec ref(m);
    std::vector<CheckBits> stored_ref;
    for (std::size_t br = 0; br < bps; ++br) {
      for (std::size_t bc = 0; bc < bps; ++bc) {
        stored_ref.push_back(code.check_bits({br, bc}));
      }
    }

    for (int batch = 0; batch < 20; ++batch) {
      std::vector<CellWrite> writes;
      const std::size_t count = 1 + rng.uniform_below(n);
      for (std::size_t i = 0; i < count; ++i) {
        CellWrite w;
        w.r = rng.uniform_below(n);
        w.c = rng.uniform_below(n);
        w.old_value = data.get(w.r, w.c);
        w.new_value = rng.bernoulli(0.5);
        data.set(w.r, w.c, w.new_value);
        writes.push_back(w);
      }
      code.apply_writes(writes);
      for (const CellWrite& w : writes) {
        const BlockIndex b = code.block_of(w.r, w.c);
        ref.update_for_write(stored_ref[b.block_row * bps + b.block_col],
                             w.r % m, w.c % m, w.old_value, w.new_value);
      }
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          ASSERT_EQ(code.check_bits({br, bc}), stored_ref[br * bps + bc])
              << "m=" << m << " batch " << batch;
        }
      }
    }
    EXPECT_TRUE(code.consistent_with(data)) << "m=" << m;
  }
}

// --------------------------------- MultiSlopeCodec / HorizontalCode

TEST(CodecDifferential, MultislopeEncodeMatchesReference) {
  Rng rng(0xC0DEC'07ull);
  struct Config {
    std::size_t m;
    std::vector<std::size_t> slopes;
  };
  const Config configs[] = {
      {3, {1, 2}},          {5, {1, 2, 3, 4}}, {7, {1, 2, 5, 6}},
      {9, {1, 2, 7, 8}},    {31, {1, 2, 29, 30}},
      {8, {1, 3, 5, 7}},   // even m: the slope machinery has no odd-m premise
      {65, {1, 2, 63, 64}},  // > kMaxM: bit-serial fallback vs reference
  };
  for (const Config& config : configs) {
    const MultiSlopeCodec codec(config.m, config.slopes);
    const BitMatrix data = random_matrix(config.m + 9, config.m + 80, rng);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t row0 = rng.uniform_below(data.rows() - config.m + 1);
      const std::size_t col0 = random_anchor(rng, data.cols() - config.m, config.m);
      EXPECT_EQ(codec.encode(data, row0, col0),
                reference_multislope_encode(codec, data, row0, col0))
          << "m=" << config.m << " anchor (" << row0 << ", " << col0 << ")";
    }
  }
}

TEST(CodecDifferential, HorizontalParitiesMatchReference) {
  Rng rng(0xC0DEC'08ull);
  const std::size_t n = 96;
  const BitMatrix data = random_matrix(n, n, rng);
  for (const std::size_t group :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{32}, n}) {
    HorizontalCode code(n, group);
    code.encode_all(data);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t g = 0; g < n / group; ++g) {
        ASSERT_EQ(code.parity(r, g),
                  reference_horizontal_group_parity(data, r, g, group))
            << "group_size=" << group << " (" << r << ", " << g << ")";
      }
    }
    EXPECT_TRUE(code.consistent_with(data));
    BitMatrix damaged = data;
    damaged.flip(n / 2, n - 1);
    EXPECT_FALSE(code.consistent_with(damaged));
    EXPECT_TRUE(code.group_has_error(damaged, n / 2, (n - 1) / group));
  }
}

// --------------------------------------------- exhaustive small-m sweeps

// Every single data-bit flip and every single check-bit flip must be
// located and corrected exactly, by both engines.
template <typename Codec>
void exhaustive_single_error_sweep(const Codec& codec, std::size_t m,
                                   std::uint64_t seed) {
  Rng rng(seed);
  const BitMatrix base = random_matrix(m + 3, m + 5, rng);
  const std::size_t row0 = 2;
  const std::size_t col0 = 3;
  const CheckBits encoded = codec.encode(base, row0, col0);

  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      BitMatrix data = base;
      CheckBits stored = encoded;
      data.flip(row0 + r, col0 + c);
      const DecodeResult result = codec.check_and_correct(data, row0, col0, stored);
      ASSERT_EQ(result.status, DecodeStatus::kCorrectedData)
          << "m=" << m << " cell (" << r << ", " << c << ")";
      ASSERT_TRUE(result.data_error.has_value());
      EXPECT_EQ(*result.data_error, (Cell{r, c}));
      EXPECT_EQ(data, base) << "correction must restore the data bit";
      EXPECT_EQ(stored, encoded) << "check bits must be untouched";
    }
  }

  for (const bool on_leading : {true, false}) {
    for (std::size_t d = 0; d < m; ++d) {
      BitMatrix data = base;
      CheckBits stored = encoded;
      (on_leading ? stored.leading : stored.counter).flip(d);
      const DecodeResult result = codec.check_and_correct(data, row0, col0, stored);
      ASSERT_EQ(result.status, DecodeStatus::kCorrectedCheck)
          << "m=" << m << (on_leading ? " leading " : " counter ") << d;
      ASSERT_TRUE(result.check_error.has_value());
      EXPECT_EQ(*result.check_error, (CheckBitLocation{on_leading, d}));
      EXPECT_EQ(data, base) << "data must be untouched";
      EXPECT_EQ(stored, encoded) << "correction must restore the check bit";
    }
  }
}

TEST(CodecExhaustive, EverySingleErrorCorrectedExactly) {
  for (const std::size_t m : {std::size_t{3}, std::size_t{5}, std::size_t{7}}) {
    exhaustive_single_error_sweep(BlockCodec(m), m, 0xE0'0001ull + m);
    exhaustive_single_error_sweep(ReferenceBlockCodec(m), m, 0xE0'0001ull + m);
  }
}

// m = 3, full enumeration: every data content (2^9) x every 2-bit data
// error pattern (C(9,2) = 36) must be flagged uncorrectable -- never clean,
// never silently "corrected" into a third location.  Two distinct cells of
// an odd-m block can never share both diagonals, so two data errors always
// flag >= 2 diagonals on at least one axis.
TEST(CodecExhaustive, DoubleDataErrorsNeverMiscorrectedSilentlyM3) {
  const std::size_t m = 3;
  const BlockCodec fast(m);
  const ReferenceBlockCodec ref(m);
  for (std::uint32_t content = 0; content < 512; ++content) {
    BitMatrix base(m, m);
    for (std::size_t bit = 0; bit < 9; ++bit) {
      base.set(bit / m, bit % m, (content >> bit) & 1u);
    }
    const CheckBits encoded = ref.encode(base, 0, 0);
    for (std::size_t a = 0; a < 9; ++a) {
      for (std::size_t b = a + 1; b < 9; ++b) {
        BitMatrix data = base;
        data.flip(a / m, a % m);
        data.flip(b / m, b % m);
        const BitMatrix damaged = data;

        CheckBits stored = encoded;
        const DecodeResult result = fast.check_and_correct(data, 0, 0, stored);
        ASSERT_EQ(result.status, DecodeStatus::kDetectedUncorrectable)
            << "content=" << content << " pair (" << a << ", " << b << ")";
        ASSERT_EQ(data, damaged) << "uncorrectable blocks must not be touched";
        ASSERT_EQ(stored, encoded);

        CheckBits stored_ref = encoded;
        const DecodeResult ref_result =
            ref.check_and_correct(data, 0, 0, stored_ref);
        ASSERT_EQ(ref_result.status, DecodeStatus::kDetectedUncorrectable);
        ASSERT_EQ(data, damaged);
      }
    }
  }
}

// ------------------------------------- validate-before-mutate regressions

TEST(CodecValidation, ArrayCodeApplyWritesIsAtomicOnBadBatch) {
  const std::size_t n = 9, m = 3;
  Rng rng(0xC0DEC'09ull);
  const BitMatrix data = random_matrix(n, n, rng);
  ArrayCode code(n, m);
  code.encode_all(data);
  // A valid parity-changing write followed by an out-of-range one: the
  // batch must be rejected wholesale, leaving every check bit untouched.
  std::vector<CellWrite> batch;
  batch.push_back({0, 0, data.get(0, 0), !data.get(0, 0)});
  batch.push_back({n, 0, false, true});
  EXPECT_THROW(code.apply_writes(batch), std::out_of_range);
  EXPECT_TRUE(code.consistent_with(data));
}

TEST(CodecValidation, HorizontalApplyWritesIsAtomicOnBadBatch) {
  const std::size_t n = 16;
  Rng rng(0xC0DEC'0Aull);
  const BitMatrix data = random_matrix(n, n, rng);
  HorizontalCode code(n, 8);
  code.encode_all(data);
  std::vector<CellWrite> batch;
  batch.push_back({1, 1, data.get(1, 1), !data.get(1, 1)});
  batch.push_back({1, n, false, true});
  EXPECT_THROW(code.apply_writes(batch), std::out_of_range);
  EXPECT_TRUE(code.consistent_with(data));
}

TEST(CodecValidation, CheckMemoryRejectsOutOfRangeBlocks) {
  arch::ArchParams params;
  params.n = 15;
  params.m = 5;
  arch::CheckMemory cmem(params);
  const std::size_t bps = params.blocks_per_side();
  const ecc::BlockIndex bad_row{bps, 0};
  const ecc::BlockIndex bad_col{0, bps};
  // set/flip reach an unchecked poke, so the bounds must be enforced here
  // -- before any crossbar cell is touched.
  EXPECT_THROW(cmem.set(arch::Axis::kLeading, 0, bad_row, true), std::out_of_range);
  EXPECT_THROW(cmem.set(arch::Axis::kCounter, 0, bad_col, true), std::out_of_range);
  EXPECT_THROW((void)cmem.flip(arch::Axis::kLeading, 0, bad_row), std::out_of_range);
  EXPECT_THROW((void)cmem.get(arch::Axis::kCounter, 0, bad_row), std::out_of_range);
  EXPECT_THROW((void)cmem.gather_block(bad_col), std::out_of_range);
  // In-range accesses still work after the rejected calls.
  cmem.set(arch::Axis::kLeading, 0, {bps - 1, bps - 1}, true);
  EXPECT_TRUE(cmem.get(arch::Axis::kLeading, 0, {bps - 1, bps - 1}));
}

// ------------------------------------------------------- smoke subset
//
// Tiny configs registered under the `smoke` ctest label (see
// tests/CMakeLists.txt): every CI invocation pins the fast codec to the
// reference end to end in a few milliseconds.

TEST(CodecEngineSmoke, TinyDifferentialSweep) {
  Rng rng(0xC0DEC'0Bull);
  for (const std::size_t m : {std::size_t{3}, std::size_t{5}}) {
    const std::size_t n = 4 * m;
    const BlockCodec fast(m);
    const ReferenceBlockCodec ref(m);
    const BitMatrix base = random_matrix(n, n, rng);
    EXPECT_EQ(fast.encode(base, m, 2 * m), ref.encode(base, m, 2 * m));

    ArrayCode code(n, m);
    code.encode_all(base);
    EXPECT_TRUE(code.consistent_with(base));

    BitMatrix data = base;
    data.flip(1, 1);
    data.flip(n - 1, n - 2);
    BitMatrix data_r = data;
    std::vector<CheckBits> stored_ref;
    for (std::size_t br = 0; br < 4; ++br) {
      for (std::size_t bc = 0; bc < 4; ++bc) {
        stored_ref.push_back(code.check_bits({br, bc}));
      }
    }
    const ScrubReport fast_report = code.scrub(data);
    const ScrubReport ref_report = reference_scrub(ref, data_r, stored_ref, 4);
    EXPECT_EQ(fast_report, ref_report);
    EXPECT_EQ(fast_report.corrected_data, 2u);
    EXPECT_EQ(data, base);
    EXPECT_EQ(data, data_r);
  }
}

}  // namespace
}  // namespace pimecc::ecc
