// Integration tests: the full pipeline from logic synthesis through
// SIMPLER mapping to execution on the ECC-protected machine, with fault
// injection and repair -- the end-to-end story of the paper.
#include <gtest/gtest.h>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "bench_circuits/circuits.hpp"
#include "bench_circuits/ref_util.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/logic.hpp"
#include "simpler/mapper.hpp"
#include "simpler/row_vm.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc {
namespace {

/// Builds an 8+8-bit adder, small enough to execute through the protected
/// machine in reasonable test time.
simpler::Netlist build_add8() {
  simpler::Netlist nl("add8");
  simpler::LogicBuilder b(nl);
  const simpler::Bus x = b.input_bus(8);
  const simpler::Bus y = b.input_bus(8);
  const simpler::AddResult sum = b.ripple_add(x, y, b.constant(false));
  b.output_bus(sum.sum);
  b.output(sum.carry_out);
  return nl;
}

/// Executes a mapped program on row `row` of an ECC-protected PimMachine:
/// every init and gate goes through the critical-operation protocol.
util::BitVector run_protected(arch::PimMachine& machine,
                              const simpler::MappedProgram& program,
                              std::size_t row) {
  const std::size_t lanes[1] = {row};
  for (const simpler::MappedOp& op : program.ops) {
    if (op.kind == simpler::MappedOp::Kind::kInit) {
      std::vector<std::size_t> cols(op.init_cells.begin(), op.init_cells.end());
      machine.magic_init_rows_protected(cols);
    } else {
      std::vector<std::size_t> ins(op.in_cells.begin(), op.in_cells.end());
      machine.magic_nor_rows_protected(ins, op.cell, lanes);
    }
  }
  util::BitVector out(program.output_cells.size());
  for (std::size_t i = 0; i < program.output_cells.size(); ++i) {
    out.set(i, machine.data().get(row, program.output_cells[i]));
  }
  return out;
}

TEST(Integration, ProtectedExecutionComputesCorrectlyAndKeepsEcc) {
  arch::ArchParams params;
  params.n = 60;
  params.m = 15;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(60, 60));

  const simpler::Netlist nl = build_add8();
  simpler::MapperOptions options;
  options.row_width = 60;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);

  util::Rng rng(11);
  const std::size_t row = 7;
  util::BitVector inputs(16);
  const std::uint64_t xv = 0xA7, yv = 0x5C;
  for (std::size_t i = 0; i < 8; ++i) {
    inputs.set(i, (xv >> i) & 1u);
    inputs.set(8 + i, (yv >> i) & 1u);
  }
  // Load the inputs through the protected controller path.
  util::BitVector row_image(60);
  for (std::size_t i = 0; i < 16; ++i) {
    row_image.set(program.input_cells[i], inputs.get(i));
  }
  machine.write_row_protected(row, row_image);
  ASSERT_TRUE(machine.ecc_consistent());

  const util::BitVector outputs =
      run_protected(machine, program, row);
  EXPECT_TRUE(machine.ecc_consistent());
  EXPECT_EQ(outputs, nl.eval(inputs));
  EXPECT_EQ(circuits::get_bits(outputs, 0, 9), xv + yv);
}

TEST(Integration, PreExecutionCheckRepairsCorruptedInput) {
  arch::ArchParams params;
  params.n = 60;
  params.m = 15;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(60, 60));

  const simpler::Netlist nl = build_add8();
  simpler::MapperOptions options;
  options.row_width = 60;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);

  const std::size_t row = 3;
  util::BitVector inputs(16);
  const std::uint64_t xv = 0x3F, yv = 0x41;
  for (std::size_t i = 0; i < 8; ++i) {
    inputs.set(i, (xv >> i) & 1u);
    inputs.set(8 + i, (yv >> i) & 1u);
  }
  util::BitVector row_image(60);
  for (std::size_t i = 0; i < 16; ++i) {
    row_image.set(program.input_cells[i], inputs.get(i));
  }
  machine.write_row_protected(row, row_image);

  // A soft error flips input bit 0 before execution...
  machine.inject_data_error(row, program.input_cells[0]);
  // ...without the check the function would compute (xv^1) + yv.  The
  // paper's discipline: check the input block-row first.
  const arch::CheckReport repair = machine.check_block_row(row);
  EXPECT_EQ(repair.corrected_data, 1u);

  const util::BitVector outputs =
      run_protected(machine, program, row);
  EXPECT_EQ(circuits::get_bits(outputs, 0, 9), xv + yv);
  EXPECT_TRUE(machine.ecc_consistent());
}

TEST(Integration, UncheckedCorruptedInputPropagates) {
  // Negative control: without the pre-execution check the error silently
  // corrupts the sum -- demonstrating why checking inputs matters.
  arch::ArchParams params;
  params.n = 60;
  params.m = 15;
  arch::PimMachine machine(params);
  machine.load(util::BitMatrix(60, 60));

  const simpler::Netlist nl = build_add8();
  simpler::MapperOptions options;
  options.row_width = 60;
  const simpler::MappedProgram program = simpler::map_to_row(nl, options);

  const std::size_t row = 3;
  util::BitVector inputs(16);
  inputs.set(1, true);  // x = 2, y = 0
  util::BitVector row_image(60);
  for (std::size_t i = 0; i < 16; ++i) {
    row_image.set(program.input_cells[i], inputs.get(i));
  }
  machine.write_row_protected(row, row_image);
  machine.inject_data_error(row, program.input_cells[1]);  // x becomes 0

  const util::BitVector outputs =
      run_protected(machine, program, row);
  EXPECT_EQ(circuits::get_bits(outputs, 0, 9), 0u);  // wrong result: 0, not 2
}

TEST(Integration, BenchmarkCircuitsSurviveMappedExecutionWithEcc) {
  // The full Table I pipeline on the two smallest benchmarks: build,
  // map at n=1020, execute on a raw crossbar, and schedule under ECC.
  arch::ArchParams params;  // n = 1020, m = 15
  simpler::MapperOptions options;
  options.row_width = params.n;
  util::Rng rng(21);
  for (const std::string& name : {std::string("ctrl"), std::string("dec")}) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, options);

    xbar::Crossbar xb(1, params.n);
    util::BitVector in(spec.netlist.num_inputs());
    for (std::size_t i = 0; i < in.size(); ++i) in.set(i, rng.bernoulli(0.5));
    const simpler::RowRunResult run =
        simpler::run_single_row(spec.netlist, program, xb, 0, in);
    EXPECT_EQ(run.violations, 0u);
    EXPECT_EQ(run.outputs, spec.reference(in)) << name;

    const simpler::EccScheduleResult sched = simpler::schedule_with_ecc(
        program, params, simpler::CoveragePolicy::kInputsAndOutputs);
    EXPECT_GT(sched.proposed_cycles, sched.baseline_cycles) << name;
  }
}

TEST(Integration, ScrubbedMachineSurvivesBackgroundErrorsDuringCompute) {
  // Compute + periodic scrub interleaved with sparse injected errors: as
  // long as each block collects at most one error between scrubs, the
  // final state matches a golden unprotected run.
  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  arch::PimMachine machine(params);
  util::Rng rng(31);
  util::BitMatrix image(45, 45);
  for (std::size_t r = 0; r < 45; ++r) {
    for (std::size_t c = 0; c < 45; ++c) image.set(r, c, rng.bernoulli(0.5));
  }
  machine.load(image);

  util::BitMatrix golden = image;
  for (int round = 0; round < 10; ++round) {
    // One protected op...
    const std::size_t out = 30 + round;
    const std::size_t ins[2] = {static_cast<std::size_t>(round),
                                static_cast<std::size_t>(round + 1)};
    const std::size_t outs[1] = {out};
    machine.magic_init_rows_protected(outs);
    machine.magic_nor_rows_protected(ins, out);
    for (std::size_t r = 0; r < 45; ++r) {
      golden.set(r, out, !(golden.get(r, ins[0]) || golden.get(r, ins[1])));
    }
    // ...one background soft error far from previous ones...
    machine.inject_data_error((round * 9 + 4) % 45, (round * 17 + 2) % 45);
    // ...and the periodic scrub repairs it.
    const arch::CheckReport report = machine.scrub();
    EXPECT_EQ(report.uncorrectable, 0u) << "round " << round;
    ASSERT_TRUE(machine.ecc_consistent());
  }
  EXPECT_EQ(machine.data(), golden);
}

}  // namespace
}  // namespace pimecc
