// Build-system sanity checks: the generated version header is visible and
// coherent, feature macros exist, and invalid (n, m) ECC geometries are
// rejected at every public entry point that accepts one (paper footnote 1:
// m must be odd; the block grid requires m to divide n).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "arch/check_memory.hpp"
#include "arch/params.hpp"
#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/geometry.hpp"
#include "pimecc/version.hpp"

namespace {

// ----------------------------------------------------- version/feature macros

TEST(BuildSanity, VersionMacrosAreCoherent) {
  static_assert(PIMECC_VERSION_MAJOR >= 0);
  static_assert(PIMECC_VERSION_MINOR >= 0);
  static_assert(PIMECC_VERSION_PATCH >= 0);
  const std::string expected = std::to_string(PIMECC_VERSION_MAJOR) + "." +
                               std::to_string(PIMECC_VERSION_MINOR) + "." +
                               std::to_string(PIMECC_VERSION_PATCH);
  EXPECT_EQ(expected, PIMECC_VERSION_STRING);
  EXPECT_EQ(expected, pimecc::version());
}

TEST(BuildSanity, FeatureMacrosAreDefined) {
#if !defined(PIMECC_HAS_MULTISLOPE) || !defined(PIMECC_HAS_SIMPLER) || \
    !defined(PIMECC_HAS_RELIABILITY) || !defined(PIMECC_HAS_FAULT_INJECTION)
#error "feature macros missing from pimecc/version.hpp"
#endif
  EXPECT_EQ(PIMECC_HAS_MULTISLOPE, 1);
  EXPECT_EQ(PIMECC_HAS_SIMPLER, 1);
  EXPECT_EQ(PIMECC_HAS_RELIABILITY, 1);
  EXPECT_EQ(PIMECC_HAS_FAULT_INJECTION, 1);
}

TEST(BuildSanity, LanguageStandardIsCxx20) {
  static_assert(__cplusplus >= 202002L, "pimecc requires C++20");
  SUCCEED();
}

// ------------------------------------------- invalid (n, m) pair rejection

TEST(BuildSanity, ArrayCodeAcceptsPaperGeometry) {
  const pimecc::ecc::ArrayCode code(1020, 15);
  EXPECT_EQ(code.n(), 1020u);
  EXPECT_EQ(code.m(), 15u);
  EXPECT_EQ(code.blocks_per_side(), 68u);
}

TEST(BuildSanity, ArrayCodeRejectsEvenBlockSize) {
  EXPECT_THROW(pimecc::ecc::ArrayCode(16, 4), std::invalid_argument);
  EXPECT_THROW(pimecc::ecc::ArrayCode(1020, 10), std::invalid_argument);
}

TEST(BuildSanity, ArrayCodeRejectsNonDividingBlockSize) {
  EXPECT_THROW(pimecc::ecc::ArrayCode(16, 3), std::invalid_argument);
  EXPECT_THROW(pimecc::ecc::ArrayCode(1020, 7), std::invalid_argument);
}

TEST(BuildSanity, ArrayCodeRejectsZeroSizes) {
  EXPECT_THROW(pimecc::ecc::ArrayCode(0, 15), std::invalid_argument);
  EXPECT_THROW(pimecc::ecc::ArrayCode(15, 0), std::invalid_argument);
}

TEST(BuildSanity, DiagonalGeometryRejectsEvenOrZeroBlockSize) {
  EXPECT_THROW(pimecc::ecc::DiagonalGeometry(4), std::invalid_argument);
  EXPECT_THROW(pimecc::ecc::DiagonalGeometry(0), std::invalid_argument);
  EXPECT_NO_THROW(pimecc::ecc::DiagonalGeometry(15));
}

TEST(BuildSanity, BlockCodecRejectsEvenBlockSize) {
  EXPECT_THROW(pimecc::ecc::BlockCodec(8), std::invalid_argument);
  EXPECT_NO_THROW(pimecc::ecc::BlockCodec(15));
}

TEST(BuildSanity, ArchParamsValidateRejectsInvalidGeometry) {
  pimecc::arch::ArchParams p;
  EXPECT_NO_THROW(p.validate());  // paper defaults: n = 1020, m = 15

  p.m = 12;  // even
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.m = 7;  // odd but does not divide 1020
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.m = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BuildSanity, CheckMemoryRejectsInvalidParams) {
  pimecc::arch::ArchParams p;
  p.n = 60;
  p.m = 10;  // even
  EXPECT_THROW(pimecc::arch::CheckMemory{p}, std::invalid_argument);

  p.m = 7;  // does not divide 60
  EXPECT_THROW(pimecc::arch::CheckMemory{p}, std::invalid_argument);

  p.m = 0;  // must throw before blocks_per_side() divides by m
  EXPECT_THROW(pimecc::arch::CheckMemory{p}, std::invalid_argument);
}

}  // namespace
