// Tests for the serving front end: trace-line parsing, handler correctness
// against direct library calls, batching/lane-count determinism, the
// concurrent submit/drain/take queue, and registry caching.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "reliability/analytic.hpp"
#include "serve/registry.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace pimecc {
namespace {

using serve::Request;
using serve::RequestKind;
using serve::Response;
using serve::Server;
using serve::ServerConfig;

Request parse_ok(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_TRUE(serve::parse_request(line, request, error)) << error;
  return request;
}

std::string parse_error(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request(line, request, error));
  EXPECT_FALSE(error.empty()) << "expected a diagnostic for: " << line;
  return error;
}

TEST(ParseRequest, AcceptsEveryKindAndKey) {
  Request map = parse_ok(
      "map circuit=cavlc width=300 n=300 m=15 pcs=4 coverage=outputs "
      "minpcs=1");
  EXPECT_EQ(map.kind, RequestKind::kMap);
  EXPECT_EQ(map.circuit, "cavlc");
  EXPECT_EQ(map.row_width, 300u);
  EXPECT_EQ(map.pcs, 4u);
  EXPECT_EQ(map.coverage, simpler::CoveragePolicy::kOutputsOnly);
  EXPECT_TRUE(map.min_pcs);

  Request run = parse_ok("run circuit=ctrl n=60 m=15 seed=12345");
  EXPECT_EQ(run.kind, RequestKind::kRun);
  EXPECT_EQ(run.seed, 12345u);

  Request mttf = parse_ok("mttf fit=2.5e-3 period=12 n=510 m=15 gib=0.5");
  EXPECT_EQ(mttf.kind, RequestKind::kMttf);
  EXPECT_EQ(mttf.fit_per_bit, 2.5e-3);
  EXPECT_EQ(mttf.memory_gib, 0.5);

  Request sweep = parse_ok("sweep fit_low=1e-4 fit_high=1e-1 ppd=3");
  EXPECT_EQ(sweep.kind, RequestKind::kSweep);
  EXPECT_EQ(sweep.points_per_decade, 3u);
}

TEST(ParseRequest, SkipsBlanksAndComments) {
  Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request("", request, error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(serve::parse_request("   \t ", request, error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(serve::parse_request("# a comment line", request, error));
  EXPECT_TRUE(error.empty());
}

TEST(ParseRequest, HandlesCarriageReturns) {
  Request request = parse_ok("run circuit=ctrl seed=9\r");
  EXPECT_EQ(request.seed, 9u);
}

TEST(ParseRequest, RejectsDefectsWithDiagnostics) {
  EXPECT_NE(parse_error("frobnicate n=3").find("unknown request kind"),
            std::string::npos);
  EXPECT_NE(parse_error("map nonsense=1").find("unknown key"),
            std::string::npos);
  EXPECT_NE(parse_error("map n=bogus").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=0").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=-5").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("mttf fit=nan").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=3 n=4").find("duplicate key"),
            std::string::npos);
  EXPECT_NE(parse_error("map justakey").find("malformed token"),
            std::string::npos);
  EXPECT_NE(parse_error("map =5").find("malformed token"), std::string::npos);
  EXPECT_NE(parse_error("map circuit=").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map minpcs=maybe").find("bad value"),
            std::string::npos);
}

TEST(ServeHandler, MttfMatchesAnalyticModel) {
  Server server;
  const Request request = parse_ok("mttf fit=1e-3 period=24 n=1020 m=15 gib=1");
  const Response response = server.execute(request);
  ASSERT_TRUE(response.ok) << response.error;

  rel::ReliabilityQuery query;
  query.fit_per_bit = 1e-3;
  query.check_period_hours = 24.0;
  query.n = 1020;
  query.m = 15;
  query.memory_bits = 8ull * 1024 * 1024 * 1024;
  const double baseline = rel::evaluate_baseline(query).mttf_hours;
  const double proposed = rel::evaluate_proposed(query).mttf_hours;
  EXPECT_EQ(response.baseline_mttf_hours, baseline);
  EXPECT_EQ(response.proposed_mttf_hours, proposed);
  EXPECT_EQ(response.improvement, proposed / baseline);
}

TEST(ServeHandler, MapReportsScheduleAndMinPcs) {
  Server server;
  const Response response =
      server.execute(parse_ok("map circuit=ctrl coverage=both minpcs=1"));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_GT(response.baseline_cycles, 0u);
  EXPECT_GE(response.proposed_cycles, response.baseline_cycles);
  EXPECT_GT(response.min_pcs, 0u);
  EXPECT_NEAR(response.overhead,
              static_cast<double>(response.proposed_cycles) /
                      static_cast<double>(response.baseline_cycles) -
                  1.0,
              1e-12);
}

TEST(ServeHandler, RunExecutesCleanlyAndDeterministically) {
  Server server;
  const Request request = parse_ok("run circuit=ctrl n=60 m=15 seed=42");
  const Response first = server.execute(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.lanes, 60u);
  EXPECT_EQ(first.mismatches, 0u);
  EXPECT_TRUE(first.ecc_consistent);

  // Same request, same seed, machine now reused from the pool: the
  // response must be identical bit for bit.
  const Response second = server.execute(request);
  EXPECT_EQ(serve::format_response(first), serve::format_response(second));
  EXPECT_GE(server.registry().stats().machine_reuses, 1u);
}

TEST(ServeHandler, ErrorsBecomeResponsesNeverThrows) {
  Server server;
  Request request = parse_ok("map circuit=ctrl");
  request.circuit = "no-such-circuit";
  const Response bad_circuit = server.execute(request);
  EXPECT_FALSE(bad_circuit.ok);
  EXPECT_FALSE(bad_circuit.error.empty());

  Request bad_arch = parse_ok("run circuit=ctrl n=61 m=15");  // m must divide n
  const Response bad = server.execute(bad_arch);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  Request bad_gib = parse_ok("mttf gib=1e9");  // beyond the sane bound
  EXPECT_FALSE(server.execute(bad_gib).ok);
}

TEST(ServeBatch, LaneCountCannotChangeAnyResponse) {
  const std::vector<std::string> lines = {
      "map circuit=ctrl coverage=both",
      "run circuit=ctrl n=60 m=15 seed=1",
      "run circuit=ctrl n=60 m=15 seed=2",
      "mttf fit=1e-3 period=24",
      "sweep fit_low=1e-3 fit_high=1e-2 ppd=2",
      "map circuit=cavlc minpcs=1",
  };
  std::vector<Request> requests;
  for (const auto& line : lines) requests.push_back(parse_ok(line));

  auto run_with_lanes = [&](std::size_t lanes) {
    ServerConfig config;
    config.lanes = lanes;
    Server server(config);
    std::vector<std::string> formatted;
    for (const Response& r : server.execute_batch(requests)) {
      EXPECT_TRUE(r.ok) << r.error;
      formatted.push_back(serve::format_response(r));
    }
    return formatted;
  };

  const auto serial = run_with_lanes(1);
  EXPECT_EQ(run_with_lanes(2), serial);
  EXPECT_EQ(run_with_lanes(0), serial);  // full executor width
}

TEST(ServeQueue, TicketsMatchDirectExecution) {
  Server server;
  std::vector<Request> requests;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    requests.push_back(
        parse_ok("run circuit=ctrl n=60 m=15 seed=" + std::to_string(seed)));
  }

  std::vector<std::uint64_t> tickets;
  for (const Request& request : requests) {
    tickets.push_back(server.submit(request));
  }
  EXPECT_EQ(server.pending(), requests.size());
  EXPECT_EQ(server.drain(), requests.size());
  EXPECT_EQ(server.pending(), 0u);

  Server oracle;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Response via_queue = server.take(tickets[i]);
    const Response direct = oracle.execute(requests[i]);
    EXPECT_EQ(serve::format_response(via_queue),
              serve::format_response(direct))
        << "ticket " << tickets[i];
  }
}

TEST(ServeQueue, ConcurrentProducersAndDrainer) {
  ServerConfig config;
  config.max_batch = 4;
  Server server(config);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::atomic<std::size_t> taken{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const Request request = parse_ok(
            "mttf fit=1e-3 period=" + std::to_string(12 + p) + " n=60 m=15");
        const std::uint64_t ticket = server.submit(request);
        const Response response = server.take(ticket);
        EXPECT_TRUE(response.ok) << response.error;
        EXPECT_GT(response.improvement, 1.0);
        taken.fetch_add(1);
      }
    });
  }

  std::thread drainer([&] {
    while (!done.load()) {
      if (server.drain_once() == 0) std::this_thread::yield();
    }
    (void)server.drain();  // anything submitted before the flag flipped
  });

  for (auto& t : producers) t.join();
  done.store(true);
  drainer.join();
  EXPECT_EQ(taken.load(), kProducers * kPerProducer);
  EXPECT_EQ(server.pending(), 0u);
}

TEST(ServeQueue, CloseRejectsSubmitAndWakesTake) {
  Server server;
  const std::uint64_t ticket = server.submit(parse_ok("mttf fit=1e-3"));

  std::thread waiter([&] {
    // Served before close(): must be deliverable even afterwards.
    const Response response = server.take(ticket);
    EXPECT_TRUE(response.ok);
  });
  EXPECT_EQ(server.drain(), 1u);
  waiter.join();

  const std::uint64_t unserved = server.submit(parse_ok("mttf fit=1e-3"));
  std::thread blocked([&] {
    EXPECT_THROW((void)server.take(unserved), std::runtime_error);
  });
  server.close();  // wakes the blocked take() with no response published
  blocked.join();
  EXPECT_THROW((void)server.submit(parse_ok("mttf fit=1e-3")),
               std::runtime_error);
  EXPECT_THROW((void)server.take(9999), std::runtime_error);
}

TEST(ServeRegistry, CachesCircuitsProgramsAndMachines) {
  serve::Registry registry;
  const auto c1 = registry.circuit("ctrl");
  const auto c2 = registry.circuit("ctrl");
  EXPECT_EQ(c1.get(), c2.get());

  const auto p1 = registry.program("ctrl", 60);
  const auto p2 = registry.program("ctrl", 60);
  const auto p3 = registry.program("ctrl", 120);  // different width: distinct
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_NE(p1.get(), p3.get());

  {
    auto lease = registry.acquire_machine(60, 15);
    EXPECT_EQ(lease.machine().n(), 60u);
  }  // returned to the pool here
  { auto lease = registry.acquire_machine(60, 15); }

  const serve::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.circuit_hits, 1u + 2u);  // c2 + the two program() lookups
  EXPECT_EQ(stats.circuit_misses, 1u);
  EXPECT_EQ(stats.program_hits, 1u);
  EXPECT_EQ(stats.program_misses, 2u);
  EXPECT_EQ(stats.machine_builds, 1u);
  EXPECT_EQ(stats.machine_reuses, 1u);
}

}  // namespace
}  // namespace pimecc
