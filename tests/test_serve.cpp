// Tests for the serving front end: trace-line parsing, handler correctness
// against direct library calls, batching/lane-count determinism, the
// concurrent submit/drain/take queue, and registry caching.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "reliability/analytic.hpp"
#include "serve/error.hpp"
#include "serve/registry.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace pimecc {
namespace {

using serve::Request;
using serve::RequestKind;
using serve::Response;
using serve::Server;
using serve::ServerConfig;

Request parse_ok(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_TRUE(serve::parse_request(line, request, error)) << error;
  return request;
}

std::string parse_error(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request(line, request, error));
  EXPECT_FALSE(error.empty()) << "expected a diagnostic for: " << line;
  return error;
}

TEST(ParseRequest, AcceptsEveryKindAndKey) {
  Request map = parse_ok(
      "map circuit=cavlc width=300 n=300 m=15 pcs=4 coverage=outputs "
      "minpcs=1");
  EXPECT_EQ(map.kind, RequestKind::kMap);
  EXPECT_EQ(map.circuit, "cavlc");
  EXPECT_EQ(map.row_width, 300u);
  EXPECT_EQ(map.pcs, 4u);
  EXPECT_EQ(map.coverage, simpler::CoveragePolicy::kOutputsOnly);
  EXPECT_TRUE(map.min_pcs);

  Request run = parse_ok("run circuit=ctrl n=60 m=15 seed=12345");
  EXPECT_EQ(run.kind, RequestKind::kRun);
  EXPECT_EQ(run.seed, 12345u);

  Request mttf = parse_ok("mttf fit=2.5e-3 period=12 n=510 m=15 gib=0.5");
  EXPECT_EQ(mttf.kind, RequestKind::kMttf);
  EXPECT_EQ(mttf.fit_per_bit, 2.5e-3);
  EXPECT_EQ(mttf.memory_gib, 0.5);

  Request sweep = parse_ok("sweep fit_low=1e-4 fit_high=1e-1 ppd=3");
  EXPECT_EQ(sweep.kind, RequestKind::kSweep);
  EXPECT_EQ(sweep.points_per_decade, 3u);
}

TEST(ParseRequest, SkipsBlanksAndComments) {
  Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request("", request, error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(serve::parse_request("   \t ", request, error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(serve::parse_request("# a comment line", request, error));
  EXPECT_TRUE(error.empty());
}

TEST(ParseRequest, HandlesCarriageReturns) {
  Request request = parse_ok("run circuit=ctrl seed=9\r");
  EXPECT_EQ(request.seed, 9u);
}

TEST(ParseRequest, RejectsDefectsWithDiagnostics) {
  EXPECT_NE(parse_error("frobnicate n=3").find("unknown request kind"),
            std::string::npos);
  EXPECT_NE(parse_error("map nonsense=1").find("unknown key"),
            std::string::npos);
  EXPECT_NE(parse_error("map n=bogus").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=0").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=-5").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("mttf fit=nan").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map n=3 n=4").find("duplicate key"),
            std::string::npos);
  EXPECT_NE(parse_error("map justakey").find("malformed token"),
            std::string::npos);
  EXPECT_NE(parse_error("map =5").find("malformed token"), std::string::npos);
  EXPECT_NE(parse_error("map circuit=").find("bad value"), std::string::npos);
  EXPECT_NE(parse_error("map minpcs=maybe").find("bad value"),
            std::string::npos);
}

TEST(ServeHandler, MttfMatchesAnalyticModel) {
  Server server;
  const Request request = parse_ok("mttf fit=1e-3 period=24 n=1020 m=15 gib=1");
  const Response response = server.execute(request);
  ASSERT_TRUE(response.ok) << response.error;

  rel::ReliabilityQuery query;
  query.fit_per_bit = 1e-3;
  query.check_period_hours = 24.0;
  query.n = 1020;
  query.m = 15;
  query.memory_bits = 8ull * 1024 * 1024 * 1024;
  const double baseline = rel::evaluate_baseline(query).mttf_hours;
  const double proposed = rel::evaluate_proposed(query).mttf_hours;
  EXPECT_EQ(response.baseline_mttf_hours, baseline);
  EXPECT_EQ(response.proposed_mttf_hours, proposed);
  EXPECT_EQ(response.improvement, proposed / baseline);
}

TEST(ServeHandler, MapReportsScheduleAndMinPcs) {
  Server server;
  const Response response =
      server.execute(parse_ok("map circuit=ctrl coverage=both minpcs=1"));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_GT(response.baseline_cycles, 0u);
  EXPECT_GE(response.proposed_cycles, response.baseline_cycles);
  EXPECT_GT(response.min_pcs, 0u);
  EXPECT_NEAR(response.overhead,
              static_cast<double>(response.proposed_cycles) /
                      static_cast<double>(response.baseline_cycles) -
                  1.0,
              1e-12);
}

TEST(ServeHandler, RunExecutesCleanlyAndDeterministically) {
  Server server;
  const Request request = parse_ok("run circuit=ctrl n=60 m=15 seed=42");
  const Response first = server.execute(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.lanes, 60u);
  EXPECT_EQ(first.mismatches, 0u);
  EXPECT_TRUE(first.ecc_consistent);

  // Same request, same seed, machine now reused from the pool: the
  // response must be identical bit for bit.
  const Response second = server.execute(request);
  EXPECT_EQ(serve::format_response(first), serve::format_response(second));
  EXPECT_GE(server.registry().stats().machine_reuses, 1u);
}

TEST(ServeHandler, ErrorsBecomeResponsesNeverThrows) {
  Server server;
  Request request = parse_ok("map circuit=ctrl");
  request.circuit = "no-such-circuit";
  const Response bad_circuit = server.execute(request);
  EXPECT_FALSE(bad_circuit.ok);
  EXPECT_FALSE(bad_circuit.error.empty());

  Request bad_arch = parse_ok("run circuit=ctrl n=61 m=15");  // m must divide n
  const Response bad = server.execute(bad_arch);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  Request bad_gib = parse_ok("mttf gib=1e9");  // beyond the sane bound
  EXPECT_FALSE(server.execute(bad_gib).ok);
}

TEST(ServeBatch, LaneCountCannotChangeAnyResponse) {
  const std::vector<std::string> lines = {
      "map circuit=ctrl coverage=both",
      "run circuit=ctrl n=60 m=15 seed=1",
      "run circuit=ctrl n=60 m=15 seed=2",
      "mttf fit=1e-3 period=24",
      "sweep fit_low=1e-3 fit_high=1e-2 ppd=2",
      "map circuit=cavlc minpcs=1",
  };
  std::vector<Request> requests;
  for (const auto& line : lines) requests.push_back(parse_ok(line));

  auto run_with_lanes = [&](std::size_t lanes) {
    ServerConfig config;
    config.lanes = lanes;
    Server server(config);
    std::vector<std::string> formatted;
    for (const Response& r : server.execute_batch(requests)) {
      EXPECT_TRUE(r.ok) << r.error;
      formatted.push_back(serve::format_response(r));
    }
    return formatted;
  };

  const auto serial = run_with_lanes(1);
  EXPECT_EQ(run_with_lanes(2), serial);
  EXPECT_EQ(run_with_lanes(0), serial);  // full executor width
}

TEST(ServeQueue, TicketsMatchDirectExecution) {
  Server server;
  std::vector<Request> requests;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    requests.push_back(
        parse_ok("run circuit=ctrl n=60 m=15 seed=" + std::to_string(seed)));
  }

  std::vector<std::uint64_t> tickets;
  for (const Request& request : requests) {
    tickets.push_back(server.submit(request));
  }
  EXPECT_EQ(server.pending(), requests.size());
  EXPECT_EQ(server.drain(), requests.size());
  EXPECT_EQ(server.pending(), 0u);

  Server oracle;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Response via_queue = server.take(tickets[i]);
    const Response direct = oracle.execute(requests[i]);
    EXPECT_EQ(serve::format_response(via_queue),
              serve::format_response(direct))
        << "ticket " << tickets[i];
  }
}

TEST(ServeQueue, ConcurrentProducersAndDrainer) {
  ServerConfig config;
  config.max_batch = 4;
  Server server(config);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::atomic<std::size_t> taken{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const Request request = parse_ok(
            "mttf fit=1e-3 period=" + std::to_string(12 + p) + " n=60 m=15");
        const std::uint64_t ticket = server.submit(request);
        const Response response = server.take(ticket);
        EXPECT_TRUE(response.ok) << response.error;
        EXPECT_GT(response.improvement, 1.0);
        taken.fetch_add(1);
      }
    });
  }

  std::thread drainer([&] {
    while (!done.load()) {
      if (server.drain_once() == 0) std::this_thread::yield();
    }
    (void)server.drain();  // anything submitted before the flag flipped
  });

  for (auto& t : producers) t.join();
  done.store(true);
  drainer.join();
  EXPECT_EQ(taken.load(), kProducers * kPerProducer);
  EXPECT_EQ(server.pending(), 0u);
}

TEST(ServeQueue, CloseRejectsSubmitAndWakesTake) {
  Server server;
  const std::uint64_t ticket = server.submit(parse_ok("mttf fit=1e-3"));

  std::thread waiter([&] {
    // Served before close(): must be deliverable even afterwards.
    const Response response = server.take(ticket);
    EXPECT_TRUE(response.ok);
  });
  EXPECT_EQ(server.drain(), 1u);
  waiter.join();

  const std::uint64_t unserved = server.submit(parse_ok("mttf fit=1e-3"));
  std::thread blocked([&] {
    EXPECT_THROW((void)server.take(unserved), std::runtime_error);
  });
  server.close();  // wakes the blocked take() with no response published
  blocked.join();
  EXPECT_THROW((void)server.submit(parse_ok("mttf fit=1e-3")),
               std::runtime_error);
  EXPECT_THROW((void)server.take(9999), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Robustness: typed errors, admission control, deadlines, shutdown

using serve::ErrorCode;
using serve::ServeError;

TEST(ServeRobustness, TakeSameTicketTwiceThrowsImmediately) {
  // Regression: a consumed ticket used to re-wait on the response condition
  // forever (the response was already erased, so nothing could ever wake
  // it).  A double take must throw immediately instead of hanging.
  Server server;
  const std::uint64_t ticket = server.submit(parse_ok("mttf fit=1e-3"));
  EXPECT_EQ(server.drain(), 1u);
  EXPECT_TRUE(server.take(ticket).ok);
  try {
    (void)server.take(ticket);
    FAIL() << "second take of the same ticket must throw";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
  // Unknown (never-issued) tickets are typed the same way.
  try {
    (void)server.take(ticket + 1000);
    FAIL() << "unknown ticket must throw";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(ServeRobustness, DoubleTakeDetectionSurvivesManyTickets) {
  // taken-ticket tracking is floor + sparse set; consume out of order to
  // exercise both representations.
  Server server;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(server.submit(parse_ok("mttf fit=1e-3")));
  }
  EXPECT_EQ(server.drain(), tickets.size());
  const std::size_t order[] = {7, 0, 3, 1, 2, 6, 4, 5};
  for (const std::size_t i : order) {
    EXPECT_TRUE(server.take(tickets[i]).ok);
    EXPECT_THROW((void)server.take(tickets[i]), ServeError);
  }
  for (const std::uint64_t t : tickets) {
    EXPECT_THROW((void)server.take(t), ServeError);
  }
}

TEST(ServeRobustness, BoundedQueueRejectsWithTypedError) {
  ServerConfig config;
  config.max_pending = 2;
  Server server(config);
  const Request request = parse_ok("mttf fit=1e-3");

  const serve::Admission a1 = server.try_submit(request);
  const serve::Admission a2 = server.try_submit(request);
  ASSERT_TRUE(a1.admitted);
  ASSERT_TRUE(a2.admitted);

  // Queue full: try_submit reports, submit throws -- both kRejected.
  const serve::Admission full = server.try_submit(request);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.code, ErrorCode::kRejected);
  EXPECT_NE(full.message.find("max_pending=2"), std::string::npos);
  try {
    (void)server.submit(request);
    FAIL() << "submit over a full queue must throw";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRejected);
  }

  // Draining frees capacity; admission resumes with fresh tickets.
  EXPECT_EQ(server.drain(), 2u);
  const serve::Admission again = server.try_submit(request);
  EXPECT_TRUE(again.admitted);
  EXPECT_GT(again.ticket, a2.ticket);
  EXPECT_EQ(server.drain(), 1u);
  EXPECT_TRUE(server.take(a1.ticket).ok);
  EXPECT_TRUE(server.take(a2.ticket).ok);
  EXPECT_TRUE(server.take(again.ticket).ok);
}

TEST(ServeRobustness, TrySubmitAfterCloseIsRejectedNotThrown) {
  Server server;
  server.close();
  const serve::Admission refused = server.try_submit(parse_ok("mttf fit=1e-3"));
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.code, ErrorCode::kRejected);
}

TEST(ServeRobustness, ExecuteTagsFailuresWithErrorCodes) {
  Server server;

  Request bad_circuit = parse_ok("map circuit=ctrl");
  bad_circuit.circuit = "no-such-circuit";
  const Response r1 = server.execute(bad_circuit);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.code, ErrorCode::kInvalidArgument);

  const Response r2 = server.execute(parse_ok("run circuit=ctrl n=61 m=15"));
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, ErrorCode::kInvalidArgument);

  const Response ok = server.execute(parse_ok("mttf fit=1e-3"));
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.code, ErrorCode::kNone);

  // The wire format carries the code so clients can dispatch without
  // parsing prose.
  EXPECT_NE(serve::format_response(r1).find("code=invalid_argument"),
            std::string::npos);
}

TEST(ServeRobustness, DeadlineAlreadyExpiredProducesTypedResponse) {
  Server server;
  Request urgent = parse_ok("mttf fit=1e-3 deadline_ms=0.000001");
  const std::uint64_t ticket = server.submit(urgent);
  // The deadline (1ns past admission) has certainly expired by now; the
  // drain lane must refuse to execute and publish kDeadlineExceeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.drain(), 1u);
  const Response late = server.take(ticket);
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(serve::format_response(late).find("code=deadline_exceeded"),
            std::string::npos);

  // A generous deadline is met normally.
  const std::uint64_t relaxed =
      server.submit(parse_ok("mttf fit=1e-3 deadline_ms=60000"));
  EXPECT_EQ(server.drain(), 1u);
  EXPECT_TRUE(server.take(relaxed).ok);
}

TEST(ParseRequest, DeadlineKeyParsesAndRejectsNegatives) {
  const Request request = parse_ok("mttf fit=1e-3 deadline_ms=250.5");
  EXPECT_EQ(request.deadline_ms, 250.5);
  EXPECT_NE(parse_error("mttf fit=1e-3 deadline_ms=-1").find("bad value"),
            std::string::npos);
}

TEST(ServeRobustness, ShutdownCancelsQueuedAndReportsCount) {
  ServerConfig config;
  config.max_batch = 1;
  Server server(config);
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(server.submit(parse_ok("mttf fit=1e-3")));
  }
  EXPECT_EQ(server.drain_once(), 1u);  // one served before the stop arrives

  EXPECT_EQ(server.shutdown(), 2u);  // the two still queued
  EXPECT_EQ(server.pending(), 0u);
  EXPECT_EQ(server.shutdown(), 0u);  // idempotent

  const Response served = server.take(tickets[0]);
  EXPECT_TRUE(served.ok);
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    const Response cancelled = server.take(tickets[i]);
    EXPECT_FALSE(cancelled.ok);
    EXPECT_EQ(cancelled.code, ErrorCode::kCancelled);
  }
  // And the server is closed: no further admission.
  EXPECT_FALSE(server.try_submit(parse_ok("mttf fit=1e-3")).admitted);
}

TEST(ServeRobustness, ShutdownWhileDrainingLosesNoTicket) {
  // Raced against a live drainer (the tsan-audited path): every submitted
  // ticket must resolve to exactly one response -- served or cancelled --
  // and take() must never hang.
  Server server;
  constexpr std::size_t kRequests = 24;
  std::vector<std::uint64_t> tickets;
  for (std::size_t i = 0; i < kRequests; ++i) {
    tickets.push_back(server.submit(parse_ok("mttf fit=1e-3")));
  }

  std::thread drainer([&] {
    while (server.drain_once() != 0) {
    }
  });
  (void)server.shutdown();  // races the drainer mid-queue
  drainer.join();

  std::size_t served = 0;
  std::size_t cancelled = 0;
  for (const std::uint64_t ticket : tickets) {
    const Response response = server.take(ticket);
    if (response.ok) {
      ++served;
    } else {
      EXPECT_EQ(response.code, ErrorCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_EQ(served + cancelled, kRequests);
}

TEST(ServeRegistry, CachesCircuitsProgramsAndMachines) {
  serve::Registry registry;
  const auto c1 = registry.circuit("ctrl");
  const auto c2 = registry.circuit("ctrl");
  EXPECT_EQ(c1.get(), c2.get());

  const auto p1 = registry.program("ctrl", 60);
  const auto p2 = registry.program("ctrl", 60);
  const auto p3 = registry.program("ctrl", 120);  // different width: distinct
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_NE(p1.get(), p3.get());

  {
    auto lease = registry.acquire_machine(60, 15);
    EXPECT_EQ(lease.machine().n(), 60u);
  }  // returned to the pool here
  { auto lease = registry.acquire_machine(60, 15); }

  const serve::RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.circuit_hits, 1u + 2u);  // c2 + the two program() lookups
  EXPECT_EQ(stats.circuit_misses, 1u);
  EXPECT_EQ(stats.program_hits, 1u);
  EXPECT_EQ(stats.program_misses, 2u);
  EXPECT_EQ(stats.machine_builds, 1u);
  EXPECT_EQ(stats.machine_reuses, 1u);
}

}  // namespace
}  // namespace pimecc
