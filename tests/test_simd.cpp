// Tests for the runtime SIMD dispatch layer (util/simd): level enumeration
// and switching, kernel-vs-scalar differential equivalence at every level
// the CPU offers, the codec/crossbar engines pinned across levels and to
// their bit-serial references, tail-word poison immunity, and the
// single-word (m = 63/64) block paths the stride-permutation bypass enables.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/multislope_code.hpp"
#include "core/reference_block_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/reference_crossbar.hpp"

namespace pimecc {
namespace {

namespace simd = util::simd;
using util::BitMatrix;
using util::BitVector;
using util::Rng;

/// Restores the dispatch level the process had before the test, whatever a
/// test body switched to.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::active_level()) {}
  ~LevelGuard() { simd::set_level(saved_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::Level saved_;
};

// ------------------------------------------------------------- dispatch

TEST(SimdDispatch, LevelEnumerationIsConsistent) {
  const std::vector<simd::Level> levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  EXPECT_EQ(levels.back(), simd::detected_level());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<unsigned>(levels[i - 1]),
              static_cast<unsigned>(levels[i]));
  }
  bool active_listed = false;
  for (const simd::Level l : levels) {
    if (l == simd::active_level()) active_listed = true;
  }
  EXPECT_TRUE(active_listed);
}

TEST(SimdDispatch, EveryAvailableLevelHasACompleteKernelTable) {
  for (const simd::Level l : simd::available_levels()) {
    const simd::KernelTable& t = simd::kernels_for(l);
    EXPECT_NE(t.band_accumulate, nullptr) << simd::to_string(l);
    EXPECT_NE(t.block_peel, nullptr) << simd::to_string(l);
    EXPECT_NE(t.nor_column_pass, nullptr) << simd::to_string(l);
  }
}

TEST(SimdDispatch, SetLevelRoundTripsAndRejectsUnsupported) {
  LevelGuard guard;
  for (const simd::Level l : simd::available_levels()) {
    simd::set_level(l);
    EXPECT_EQ(simd::active_level(), l);
  }
  if (simd::detected_level() != simd::Level::kAvx512) {
    const auto next = static_cast<simd::Level>(
        static_cast<unsigned>(simd::detected_level()) + 1);
    EXPECT_THROW(simd::set_level(next), std::invalid_argument);
    EXPECT_THROW((void)simd::kernels_for(next), std::invalid_argument);
  }
}

TEST(SimdDispatch, LevelNamesAreDistinct) {
  EXPECT_STREQ(simd::to_string(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(simd::Level::kAvx512), "avx512");
}

// -------------------------------------------------- raw kernel differential

/// Rows with an extra backing word whose content is deliberate garbage --
/// within reach of a sloppy wide load, so any kernel that forgets to mask
/// diverges from scalar here.
struct DirtyRows {
  std::vector<std::vector<std::uint64_t>> storage;
  std::vector<const std::uint64_t*> ptrs;

  DirtyRows(std::size_t m, std::size_t n_bits, Rng& rng) {
    const std::size_t n_words = (n_bits + 63) / 64;
    storage.assign(m, {});
    ptrs.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
      storage[r].resize(n_words + 1);
      for (auto& w : storage[r]) w = rng.next();
      ptrs[r] = storage[r].data();
    }
  }
};

constexpr std::size_t kKernelMs[] = {1, 3, 5, 7, 31, 33, 63, 64};

TEST(SimdKernels, BandAccumulateMatchesScalarAtEveryLevel) {
  Rng rng(0x51D'1001ull);
  for (const std::size_t m : kKernelMs) {
    for (const std::size_t bps : {1u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
      const DirtyRows rows(m, bps * m, rng);
      std::vector<std::uint64_t> lead_ref(bps), cnt_ref(bps);
      simd::detail::band_accumulate_scalar(rows.ptrs.data(), m, bps,
                                           lead_ref.data(), cnt_ref.data());
      for (const simd::Level l : simd::available_levels()) {
        std::vector<std::uint64_t> lead(bps, ~std::uint64_t{0});
        std::vector<std::uint64_t> cnt(bps, ~std::uint64_t{0});
        simd::kernels_for(l).band_accumulate(rows.ptrs.data(), m, bps,
                                             lead.data(), cnt.data());
        EXPECT_EQ(lead, lead_ref) << simd::to_string(l) << " m=" << m
                                  << " bps=" << bps;
        EXPECT_EQ(cnt, cnt_ref) << simd::to_string(l) << " m=" << m
                                << " bps=" << bps;
      }
    }
  }
}

TEST(SimdKernels, BlockPeelMatchesScalarAtEveryLevel) {
  Rng rng(0x51D'1002ull);
  for (const std::size_t m : kKernelMs) {
    // Anchors swept across word boundaries: every (bit0 % 64, straddle)
    // combination the engines can produce.
    const std::size_t n_bits = 4 * 64 + m;
    const DirtyRows rows(m, n_bits, rng);
    for (std::size_t bit0 = 0; bit0 + m <= n_bits; bit0 += 7) {
      std::uint64_t lead_ref = 0;
      std::uint64_t cnt_ref = 0;
      simd::detail::block_peel_scalar(rows.ptrs.data(), m, bit0, &lead_ref,
                                      &cnt_ref);
      for (const simd::Level l : simd::available_levels()) {
        std::uint64_t lead = ~std::uint64_t{0};
        std::uint64_t cnt = ~std::uint64_t{0};
        simd::kernels_for(l).block_peel(rows.ptrs.data(), m, bit0, &lead, &cnt);
        EXPECT_EQ(lead, lead_ref) << simd::to_string(l) << " m=" << m
                                  << " bit0=" << bit0;
        EXPECT_EQ(cnt, cnt_ref) << simd::to_string(l) << " m=" << m
                                << " bit0=" << bit0;
      }
    }
  }
}

TEST(SimdKernels, NorColumnPassMatchesScalarAtEveryLevel) {
  Rng rng(0x51D'1003ull);
  for (const std::size_t n_words : {1u, 2u, 3u, 4u, 7u, 8u, 9u, 17u, 40u}) {
    for (const std::size_t n_ins : {1u, 2u, 3u, 5u, 9u}) {
      std::vector<std::vector<std::uint64_t>> ins(
          n_ins, std::vector<std::uint64_t>(n_words));
      std::vector<const std::uint64_t*> ptrs(n_ins);
      for (std::size_t i = 0; i < n_ins; ++i) {
        for (auto& w : ins[i]) w = rng.next();
        ptrs[i] = ins[i].data();
      }
      std::vector<std::uint64_t> mask(n_words), out0(n_words);
      for (auto& w : mask) w = rng.next();
      for (auto& w : out0) w = rng.next();
      std::vector<std::uint64_t> out_ref = out0;
      const std::size_t viol_ref = simd::detail::nor_column_pass_scalar(
          ptrs.data(), n_ins, mask.data(), out_ref.data(), n_words);
      for (const simd::Level l : simd::available_levels()) {
        std::vector<std::uint64_t> out = out0;
        const std::size_t viol = simd::kernels_for(l).nor_column_pass(
            ptrs.data(), n_ins, mask.data(), out.data(), n_words);
        EXPECT_EQ(viol, viol_ref) << simd::to_string(l) << " nw=" << n_words;
        EXPECT_EQ(out, out_ref) << simd::to_string(l) << " nw=" << n_words;
      }
    }
  }
}

// --------------------------------------------- engine-level dispatch matrix

/// Shapes chosen so the dispatch matrix covers the m = 63 single-word path,
/// n % 64 != 0 tails, small odd m, and multi-chunk bands.
struct ArrayShape {
  std::size_t n;
  std::size_t m;
};
constexpr ArrayShape kArrayShapes[] = {{15, 3}, {70, 7}, {93, 31}, {126, 63}};

/// One full ArrayCode exercise at the given level: encode, inject faults,
/// scrub whole-array / band / block, apply a line delta, verify
/// consistency.  Returns every observable output for cross-level pinning.
struct ArrayRun {
  std::vector<ecc::CheckBits> after_encode;
  ecc::ScrubReport scrub_report;
  BitMatrix data_after_scrub{1, 1};
  ecc::ScrubReport band_report;
  ecc::BlockRepair block_repair;
  std::vector<ecc::CheckBits> after_delta;
  bool consistent_after_encode = false;

  bool operator==(const ArrayRun&) const = default;
};

ArrayRun run_array_code(simd::Level level, ArrayShape shape,
                        std::uint64_t seed) {
  LevelGuard guard;
  simd::set_level(level);
  Rng rng(seed);
  const std::size_t bps = shape.n / shape.m;
  ArrayRun run;

  BitMatrix data = util::random_bit_matrix(shape.n, shape.n, rng);
  ecc::ArrayCode code(shape.n, shape.m);
  code.encode_all(data);
  run.consistent_after_encode = code.consistent_with(data);
  for (std::size_t br = 0; br < bps; ++br) {
    for (std::size_t bc = 0; bc < bps; ++bc) {
      run.after_encode.push_back(code.check_bits({br, bc}));
    }
  }

  // A scattering of data faults (some blocks 0, some 1, some 2 flips).
  for (int i = 0; i < 12; ++i) {
    data.flip(rng.uniform_below(shape.n), rng.uniform_below(shape.n));
  }
  BitMatrix band_data = data;   // same faults, scrubbed band-wise below
  BitMatrix block_data = data;  // and block-wise
  run.scrub_report = code.scrub(data);
  run.data_after_scrub = data;

  run.band_report = code.scrub_band(band_data, rng.bernoulli(0.5),
                                    rng.uniform_below(bps));
  run.block_repair = code.scrub_block(
      block_data, {rng.uniform_below(bps), rng.uniform_below(bps)});

  // Line-delta bookkeeping (both orientations).  Re-encode first: blocks
  // that took two faults above are *correctly* left inconsistent by scrub,
  // and the consistency assertion below needs a clean baseline.
  code.encode_all(data);
  for (const bool is_column : {false, true}) {
    BitVector delta(shape.n);
    for (auto& w : delta.words_mutable()) w = rng.next();
    delta.sanitize();
    const std::size_t line = rng.uniform_below(shape.n);
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (!delta.get(i)) continue;
      const std::size_t r = is_column ? i : line;
      const std::size_t c = is_column ? line : i;
      data.flip(r, c);
    }
    code.apply_line_delta(is_column, line, delta);
  }
  for (std::size_t br = 0; br < bps; ++br) {
    for (std::size_t bc = 0; bc < bps; ++bc) {
      run.after_delta.push_back(code.check_bits({br, bc}));
    }
  }
  EXPECT_TRUE(code.consistent_with(data))
      << "line-delta bookkeeping diverged at " << simd::to_string(level);
  return run;
}

TEST(SimdLevels, ArrayCodeIsBitIdenticalAcrossDispatchLevels) {
  for (const ArrayShape shape : kArrayShapes) {
    const std::uint64_t seed = 0x51D'2000ull + shape.n;
    const ArrayRun scalar_run =
        run_array_code(simd::Level::kScalar, shape, seed);
    EXPECT_TRUE(scalar_run.consistent_after_encode);
    for (const simd::Level l : simd::available_levels()) {
      if (l == simd::Level::kScalar) continue;
      const ArrayRun run = run_array_code(l, shape, seed);
      EXPECT_EQ(run, scalar_run)
          << simd::to_string(l) << " n=" << shape.n << " m=" << shape.m;
    }
  }
}

TEST(SimdLevels, EncodeAllMatchesBitSerialReferenceAtEveryLevel) {
  Rng rng(0x51D'2100ull);
  for (const ArrayShape shape : kArrayShapes) {
    const BitMatrix data = util::random_bit_matrix(shape.n, shape.n, rng);
    const ecc::ReferenceBlockCodec ref(shape.m);
    const std::size_t bps = shape.n / shape.m;
    for (const simd::Level l : simd::available_levels()) {
      LevelGuard guard;
      simd::set_level(l);
      ecc::ArrayCode code(shape.n, shape.m);
      code.encode_all(data);
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          EXPECT_EQ(code.check_bits({br, bc}),
                    ref.encode(data, br * shape.m, bc * shape.m))
              << simd::to_string(l) << " block (" << br << "," << bc << ")";
        }
      }
    }
  }
}

/// The same randomized MAGIC program on Crossbar vs ReferenceCrossbar,
/// executed once per dispatch level.  Odd row/column counts leave a ragged
/// tail word in every row, the shape the vector NOR pass must mask.
TEST(SimdLevels, CrossbarMatchesReferenceAtEveryLevel) {
  constexpr std::size_t kRowsXbar = 37;
  constexpr std::size_t kColsXbar = 101;
  for (const simd::Level level : simd::available_levels()) {
    LevelGuard guard;
    simd::set_level(level);
    Rng rng(0x51D'2200ull);
    xbar::Crossbar fast(kRowsXbar, kColsXbar);
    xbar::ReferenceCrossbar ref(kRowsXbar, kColsXbar);
    for (std::size_t r = 0; r < kRowsXbar; ++r) {
      for (std::size_t c = 0; c < kColsXbar; ++c) {
        const bool v = rng.bernoulli(0.5);
        fast.poke(r, c, v);
        ref.poke(r, c, v);
      }
    }
    for (int step = 0; step < 120; ++step) {
      const xbar::Orientation o = rng.bernoulli(0.5)
                                      ? xbar::Orientation::kRow
                                      : xbar::Orientation::kColumn;
      const std::size_t line_limit =
          o == xbar::Orientation::kRow ? kColsXbar : kRowsXbar;
      std::vector<std::size_t> ins;
      const std::size_t fan_in = 1 + rng.uniform_below(3);
      const std::size_t out_line = rng.uniform_below(line_limit);
      for (std::size_t i = 0; i < fan_in; ++i) {
        std::size_t line = rng.uniform_below(line_limit);
        if (line == out_line) line = (line + 1) % line_limit;
        bool dup = false;
        for (const std::size_t seen : ins) dup |= seen == line;
        if (!dup) ins.push_back(line);
      }
      const std::size_t out_arr[1] = {out_line};
      fast.magic_init(o, out_arr);
      ref.magic_init(o, out_arr);
      const xbar::OpResult rf = fast.magic_nor(o, ins, out_line);
      const xbar::OpResult rr = ref.magic_nor(o, ins, out_line);
      ASSERT_EQ(rf.lanes, rr.lanes) << simd::to_string(level);
      ASSERT_EQ(rf.violations, rr.violations)
          << simd::to_string(level) << " step " << step;
    }
    ASSERT_EQ(fast.contents(), ref.contents()) << simd::to_string(level);
    EXPECT_EQ(fast.cycles(), ref.cycles());
  }
}

// ------------------------------------------------------- tail-word poison

/// Sets every bit above `bits.size()` in the last backing word, bypassing
/// sanitize() -- the stray-high-bit state a buggy raw-word writer could
/// leave behind, and exactly what a sloppy wide kernel would read.
void poison_tail(BitVector& bits) {
  if (bits.size() % 64 == 0 || bits.word_count() == 0) return;
  auto words = bits.words_mutable();
  words[bits.word_count() - 1] |= ~((std::uint64_t{1} << (bits.size() % 64)) - 1);
}

void poison_matrix(BitMatrix& mat) {
  for (std::size_t r = 0; r < mat.rows(); ++r) poison_tail(mat.row(r));
}

/// Logical equality ignoring padding garbage.
bool logically_equal(const BitMatrix& a, const BitMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (a.get(r, c) != b.get(r, c)) return false;
    }
  }
  return true;
}

TEST(SimdTailPoison, CodecResultsAreImmuneToPaddingGarbage) {
  // n % 64 != 0 so every row has a ragged tail word.  The check bits,
  // scrub reports, and corrected data of the poisoned run must match the
  // clean run at every dispatch level: no kernel may read tail bits.
  constexpr ArrayShape kShape{93, 31};
  Rng rng(0x51D'3000ull);
  const BitMatrix clean = util::random_bit_matrix(kShape.n, kShape.n, rng);
  const std::size_t bps = kShape.n / kShape.m;
  for (const simd::Level l : simd::available_levels()) {
    LevelGuard guard;
    simd::set_level(l);

    ecc::ArrayCode code_clean(kShape.n, kShape.m);
    ecc::ArrayCode code_poisoned(kShape.n, kShape.m);
    BitMatrix data_clean = clean;
    BitMatrix data_poisoned = clean;
    poison_matrix(data_poisoned);

    code_clean.encode_all(data_clean);
    code_poisoned.encode_all(data_poisoned);
    for (std::size_t br = 0; br < bps; ++br) {
      for (std::size_t bc = 0; bc < bps; ++bc) {
        ASSERT_EQ(code_poisoned.check_bits({br, bc}),
                  code_clean.check_bits({br, bc}))
            << simd::to_string(l) << " encode_all read tail bits";
      }
    }

    data_clean.flip(5, 92);  // last column: the tail word's top data bit
    data_poisoned.flip(5, 92);
    const ecc::ScrubReport rep_clean = code_clean.scrub(data_clean);
    const ecc::ScrubReport rep_poisoned = code_poisoned.scrub(data_poisoned);
    EXPECT_EQ(rep_poisoned, rep_clean) << simd::to_string(l);
    EXPECT_TRUE(logically_equal(data_poisoned, data_clean))
        << simd::to_string(l) << " scrub corrupted by tail bits";
  }
}

TEST(SimdTailPoison, MagicNorIsImmuneToPaddingGarbage) {
  constexpr std::size_t kRowsXbar = 33;
  constexpr std::size_t kColsXbar = 93;
  for (const simd::Level l : simd::available_levels()) {
    LevelGuard guard;
    simd::set_level(l);
    Rng rng(0x51D'3100ull);
    xbar::Crossbar clean(kRowsXbar, kColsXbar);
    xbar::Crossbar poisoned(kRowsXbar, kColsXbar);
    for (std::size_t r = 0; r < kRowsXbar; ++r) {
      for (std::size_t c = 0; c < kColsXbar; ++c) {
        const bool v = rng.bernoulli(0.5);
        clean.poke(r, c, v);
        poisoned.poke(r, c, v);
      }
    }
    poison_matrix(poisoned.contents_mutable());
    for (int step = 0; step < 40; ++step) {
      const xbar::Orientation o = rng.bernoulli(0.5)
                                      ? xbar::Orientation::kRow
                                      : xbar::Orientation::kColumn;
      const std::size_t limit =
          o == xbar::Orientation::kRow ? kColsXbar : kRowsXbar;
      const std::size_t in0 = rng.uniform_below(limit);
      const std::size_t in1 = (in0 + 1 + rng.uniform_below(limit - 2)) % limit;
      std::size_t out = (in1 + 1) % limit;
      if (out == in0) out = (out + 1) % limit;
      const std::size_t ins[2] = {in0, in1};
      const std::size_t outs[1] = {out};
      clean.magic_init(o, outs);
      poisoned.magic_init(o, outs);
      const xbar::OpResult rc = clean.magic_nor(o, ins, out);
      const xbar::OpResult rp = poisoned.magic_nor(o, ins, out);
      ASSERT_EQ(rp.violations, rc.violations)
          << simd::to_string(l) << " step " << step
          << ": violation count read tail bits";
    }
    EXPECT_TRUE(logically_equal(clean.contents(), poisoned.contents()))
        << simd::to_string(l);
    EXPECT_EQ(clean.cycles(), poisoned.cycles());
  }
}

// --------------------------------------- single-word blocks (m = 63 / 64)

TEST(SimdSingleWord, MultiSlopeCodecHandlesM63AndM64) {
  // ArrayCode requires odd m, so m = 64 single-word blocks are reachable
  // only through MultiSlopeCodec (slopes must be odd to be coprime to 64).
  Rng rng(0x51D'4000ull);
  for (const std::size_t m : {63u, 64u}) {
    const ecc::MultiSlopeCodec codec(m, {1, m - 1});
    for (const simd::Level l : simd::available_levels()) {
      LevelGuard guard;
      simd::set_level(l);
      BitMatrix data = util::random_bit_matrix(m + 9, m + 70, rng);
      const std::size_t row0 = rng.uniform_below(10);
      const std::size_t col0 = rng.uniform_below(71);
      const ecc::MultiCheckBits encoded = codec.encode(data, row0, col0);

      // Ground truth straight from line_of, bit by bit.
      for (std::size_t f = 0; f < codec.families(); ++f) {
        BitVector expect(m);
        for (std::size_t r = 0; r < m; ++r) {
          for (std::size_t c = 0; c < m; ++c) {
            if (data.get(row0 + r, col0 + c)) {
              expect.flip(codec.line_of(f, r, c));
            }
          }
        }
        EXPECT_EQ(encoded.family_parity[f], expect)
            << simd::to_string(l) << " m=" << m << " family " << f;
      }

      // Single-bit error.  Odd m: unique correction.  Even m (64): every
      // slope coprime to m is odd, and shifting a cell by (m/2, m/2) moves
      // line (r + s*c) by (1 + s) * m/2 = 0 mod m for odd s -- so (r, c)
      // and (r + m/2, c + m/2) are indistinguishable in *every* family and
      // a single error is detectable but inherently ambiguous (the paper's
      // footnote-1 odd-m condition, generalized).
      ecc::MultiCheckBits stored = encoded;
      const std::size_t er = rng.uniform_below(m);
      const std::size_t ec = rng.uniform_below(m);
      data.flip(row0 + er, col0 + ec);
      const ecc::MultiDecodeResult result =
          codec.check_and_correct(data, row0, col0, stored);
      if (m % 2 == 1) {
        EXPECT_EQ(result.status, ecc::MultiDecodeStatus::kCorrected)
            << simd::to_string(l) << " m=" << m;
        EXPECT_EQ(codec.encode(data, row0, col0), encoded);
      } else {
        EXPECT_EQ(result.status, ecc::MultiDecodeStatus::kDetectedUncorrectable)
            << simd::to_string(l) << " m=" << m;
        data.flip(row0 + er, col0 + ec);  // undo by hand for the next phase
      }

      const bool old_v = data.get(row0 + er, col0 + ec);
      data.set(row0 + er, col0 + ec, !old_v);
      codec.update_for_write(stored, er, ec, old_v, !old_v);
      EXPECT_EQ(codec.encode(data, row0, col0), stored)
          << simd::to_string(l) << " m=" << m;
    }
  }
}

TEST(SimdSingleWord, ArrayCodeM63EndToEnd) {
  // n = 126, m = 63: two-block bands whose segments are word-misaligned
  // (63, 126, ... bit offsets) -- the straddling single-word path.
  for (const simd::Level l : simd::available_levels()) {
    LevelGuard guard;
    simd::set_level(l);
    Rng rng(0x51D'4100ull);
    BitMatrix data = util::random_bit_matrix(126, 126, rng);
    ecc::ArrayCode code(126, 63);
    code.encode_all(data);
    EXPECT_TRUE(code.consistent_with(data)) << simd::to_string(l);
    const BitMatrix pristine = data;
    data.flip(63, 0);     // second band, first block, word-aligned corner
    data.flip(100, 125);  // last column, straddled segment
    const ecc::ScrubReport report = code.scrub(data);
    EXPECT_EQ(report.corrected_data, 2u) << simd::to_string(l);
    EXPECT_EQ(report.uncorrectable, 0u) << simd::to_string(l);
    EXPECT_EQ(data, pristine) << simd::to_string(l);
  }
}

}  // namespace
}  // namespace pimecc
