// Tests for the checkpoint/resume stack: Rng stream-position round-trips,
// machine checkpoints (arch/checkpoint) restoring bit-identically and
// rejecting every defect class without mutating the target machine, and the
// resumable lifetime campaign (begin/advance/save/load) being bit-identical
// to an uninterrupted simulate_lifetime at any chunking and thread count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/pim_machine.hpp"
#include "reliability/lifetime.hpp"
#include "util/chaos.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace pimecc {
namespace {

using util::SerializeError;

// ---------------------------------------------------------------------------
// Rng stream position

TEST(RngState, RoundTripResumesIdentically) {
  util::Rng rng(0xDEADBEEFull);
  for (int i = 0; i < 17; ++i) (void)rng.next();

  const util::Rng::State saved = rng.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.next());

  util::Rng resumed(1);  // unrelated seed; state restore must fully override
  resumed.set_state(saved);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(resumed.next(), expected[i]) << "draw " << i;
  }
}

TEST(RngState, ForStreamIdentityAcrossSaveRestore) {
  // Substream derivation depends only on (seed, stream), never on the
  // parent's position -- the property that makes trial-boundary resume
  // exact.  A restored parent must spawn bit-identical substreams.
  util::Rng parent(42);
  const util::Rng::State saved = parent.state();
  for (int i = 0; i < 5; ++i) (void)parent.next();

  util::Rng restored(7);
  restored.set_state(saved);
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    util::Rng a = util::Rng::for_stream(42, stream);
    util::Rng b = util::Rng::for_stream(42, stream);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a.next(), b.next()) << "stream " << stream;
    }
  }
}

TEST(RngState, AllZeroStateRejected) {
  util::Rng rng(3);
  const util::Rng::State before = rng.state();
  EXPECT_THROW(rng.set_state(util::Rng::State{0, 0, 0, 0}),
               std::invalid_argument);
  EXPECT_EQ(rng.state(), before);  // failed restore leaves position alone
}

// ---------------------------------------------------------------------------
// Machine checkpoints

arch::ArchParams small_params() {
  arch::ArchParams params;
  params.n = 60;
  params.m = 15;
  return params;
}

/// A deterministic work segment whose operations depend on `rng` draws, so
/// continuation identity also exercises the saved RNG position.
void run_segment(arch::PimMachine& machine, util::Rng& rng) {
  const std::size_t n = machine.n();
  util::BitVector row(n);
  util::fill_random(row, rng);
  machine.write_row_protected(rng.next() % n, row);

  // Inputs from the left half, output from the right half: distinct columns,
  // as magic_nor requires.
  const std::size_t base = rng.next() % (n / 2 - 1);
  const std::array<std::size_t, 2> ins = {base, base + 1};
  const std::array<std::size_t, 1> out = {n / 2 + rng.next() % (n / 2)};
  machine.magic_init_rows_protected(out);
  machine.magic_nor_rows_protected(ins, out[0]);

  machine.inject_data_error(rng.next() % n, rng.next() % n);
  (void)machine.scrub();
}

/// Full-state equality: MEM image, every block's check bits, both counter
/// sets.  (No operator== on PimMachine by design; the comparison is a test
/// concern.)
void expect_machines_equal(const arch::PimMachine& a,
                           const arch::PimMachine& b) {
  EXPECT_TRUE(a.data() == b.data());
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(a.mem_counters(), b.mem_counters());
  const std::size_t blocks = a.check_code().blocks_per_side();
  ASSERT_EQ(blocks, b.check_code().blocks_per_side());
  for (std::size_t br = 0; br < blocks; ++br) {
    for (std::size_t bc = 0; bc < blocks; ++bc) {
      const auto& ca = a.check_code().check_bits({br, bc});
      const auto& cb = b.check_code().check_bits({br, bc});
      EXPECT_TRUE(ca.leading == cb.leading) << "block " << br << "," << bc;
      EXPECT_TRUE(ca.counter == cb.counter) << "block " << br << "," << bc;
    }
  }
}

TEST(MachineCheckpoint, RoundTripRestoresEveryField) {
  arch::PimMachine machine(small_params());
  util::Rng rng(11);
  machine.load(util::random_bit_matrix(60, 60, rng));
  run_segment(machine, rng);

  std::stringstream stream;
  arch::save_machine_checkpoint(stream, machine);

  // Scramble a second machine thoroughly, then restore the snapshot into it.
  arch::PimMachine other(small_params());
  util::Rng scramble(99);
  other.load(util::random_bit_matrix(60, 60, scramble));
  run_segment(other, scramble);

  arch::load_machine_checkpoint(stream, other);
  expect_machines_equal(machine, other);
}

TEST(MachineCheckpoint, ContinuationIsBitIdentical) {
  // Checkpoint mid-program with the RNG riding along; the resumed machine
  // replaying the identical remaining segments must land in the identical
  // final state -- the property that makes long runs resumable.
  arch::PimMachine machine(small_params());
  util::Rng rng(2026);
  machine.load(util::random_bit_matrix(60, 60, rng));
  run_segment(machine, rng);

  std::stringstream stream;
  arch::save_machine_checkpoint(stream, machine, &rng);

  // Original continues...
  run_segment(machine, rng);
  run_segment(machine, rng);

  // ...and the restored copy follows from the checkpoint.
  arch::PimMachine resumed(small_params());
  util::Rng resumed_rng(1);
  arch::load_machine_checkpoint(stream, resumed, &resumed_rng);
  run_segment(resumed, resumed_rng);
  run_segment(resumed, resumed_rng);

  expect_machines_equal(machine, resumed);
  EXPECT_EQ(rng.state(), resumed_rng.state());
}

TEST(MachineCheckpoint, PreservesInconsistentCheckState) {
  // Check bits are restored verbatim, not re-encoded: an injected check
  // error pending at save time must still be pending after load.
  arch::PimMachine machine(small_params());
  util::Rng rng(5);
  machine.load(util::random_bit_matrix(60, 60, rng));
  machine.inject_data_error(7, 23);
  ASSERT_FALSE(machine.ecc_consistent());

  std::stringstream stream;
  arch::save_machine_checkpoint(stream, machine);
  arch::PimMachine other(small_params());
  arch::load_machine_checkpoint(stream, other);
  EXPECT_FALSE(other.ecc_consistent());

  const arch::CheckReport report = other.scrub();
  EXPECT_EQ(report.corrected_data, 1u);
  EXPECT_TRUE(other.ecc_consistent());
}

TEST(MachineCheckpoint, LoadWithoutSavedRngThrows) {
  arch::PimMachine machine(small_params());
  std::stringstream stream;
  arch::save_machine_checkpoint(stream, machine);  // no RNG in the file
  util::Rng rng(4);
  EXPECT_THROW(arch::load_machine_checkpoint(stream, machine, &rng),
               SerializeError);
}

class MachineCheckpointDefects : public ::testing::Test {
 protected:
  void SetUp() override {
    arch::PimMachine source(small_params());
    util::Rng rng(77);
    source.load(util::random_bit_matrix(60, 60, rng));
    run_segment(source, rng);
    std::stringstream stream;
    arch::save_machine_checkpoint(stream, source, &rng);
    encoded_ = stream.str();

    target_ = std::make_unique<arch::PimMachine>(small_params());
    util::Rng fill(123);
    target_->load(util::random_bit_matrix(60, 60, fill));
    std::stringstream pristine;
    arch::save_machine_checkpoint(pristine, *target_);
    pristine_ = pristine.str();
  }

  /// Asserts the load throws AND the target machine is byte-for-byte
  /// untouched (re-serializing it reproduces the pristine snapshot).
  void expect_rejected(const std::string& bytes) {
    std::istringstream stream(bytes);
    EXPECT_THROW(arch::load_machine_checkpoint(stream, *target_),
                 SerializeError);
    std::stringstream after;
    arch::save_machine_checkpoint(after, *target_);
    EXPECT_EQ(after.str(), pristine_);
  }

  std::string encoded_;
  std::string pristine_;
  std::unique_ptr<arch::PimMachine> target_;
};

TEST_F(MachineCheckpointDefects, TruncatedFileRejected) {
  expect_rejected(encoded_.substr(0, encoded_.size() / 2));
  expect_rejected(encoded_.substr(0, 3));
  expect_rejected("");
}

TEST_F(MachineCheckpointDefects, BadMagicRejected) {
  std::string bad = encoded_;
  bad[2] = static_cast<char>(bad[2] ^ 0xFF);
  expect_rejected(bad);
}

TEST_F(MachineCheckpointDefects, CorruptPayloadRejected) {
  std::string bad = encoded_;
  bad[encoded_.size() / 2] = static_cast<char>(bad[encoded_.size() / 2] ^ 0x01);
  expect_rejected(bad);
}

TEST_F(MachineCheckpointDefects, GeometryMismatchRejected) {
  // A valid checkpoint of a DIFFERENT machine shape must be refused: a
  // checkpoint is a continuation, not a migration.
  arch::ArchParams params;
  params.n = 30;
  params.m = 15;
  arch::PimMachine small(params);
  std::stringstream stream;
  arch::save_machine_checkpoint(stream, small);
  expect_rejected(stream.str());

  arch::ArchParams tweaked = small_params();
  tweaked.num_pcs += 1;
  arch::PimMachine pcs_machine(tweaked);
  std::stringstream stream2;
  arch::save_machine_checkpoint(stream2, pcs_machine);
  expect_rejected(stream2.str());
}

// The chunk frame is |magic u64|version u32|payload_size u64|payload|crc64|
// (util/serialize.hpp), all little-endian: header is 20 bytes, the machine
// chunk ends at 20 + payload_size + 8.  The fixture's file carries an RNG
// chunk after the machine chunk, and a no-rng load ignores trailing bytes,
// so defect sweeps stay strictly inside [0, machine chunk end).

std::uint64_t le_u64_at(const std::string& bytes, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

std::span<const std::uint8_t> byte_span(const std::string& bytes) {
  return {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()};
}

std::string to_string(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

TEST_F(MachineCheckpointDefects, TruncationAtEveryChunkBoundaryRejected) {
  ASSERT_GE(encoded_.size(), 20u);
  const std::uint64_t payload = le_u64_at(encoded_, 12);
  const std::size_t chunk_end = 20 + payload + 8;
  ASSERT_LE(chunk_end, encoded_.size());

  // Every structural boundary of the frame, each probed exactly, one byte
  // short, and one byte long: end of magic (8), of version (12), of the
  // size field / start of payload (20), end of payload (20 + payload), and
  // every prefix of the trailing CRC.  A cut ANYWHERE inside the machine
  // chunk must reject without mutating the target.
  std::set<std::size_t> cuts;
  for (const std::size_t base : {std::size_t{0}, std::size_t{8},
                                 std::size_t{12}, std::size_t{20},
                                 static_cast<std::size_t>(20 + payload),
                                 chunk_end}) {
    for (const int delta : {-1, 0, 1}) {
      if (delta < 0 && base == 0) continue;
      const std::size_t cut = base + static_cast<std::size_t>(delta);
      if (cut < chunk_end) cuts.insert(cut);  // == chunk_end is a VALID file
    }
  }
  cuts.insert(20 + payload + 3);  // a cut mid-CRC
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_rejected(
        to_string(util::chaos::truncated(byte_span(encoded_), cut)));
  }
}

TEST_F(MachineCheckpointDefects, SingleBitFlipAnywhereInChunkRejected) {
  // Bit-flip fuzz over the whole machine chunk -- magic, version, size
  // field, payload, CRC -- via the chaos corruption helper.  Offsets come
  // from a dedicated substream plus the structural corners, so the sweep
  // is reproducible and covers every frame region.
  const std::uint64_t payload = le_u64_at(encoded_, 12);
  const std::uint64_t chunk_bits = (20 + payload + 8) * 8;

  std::set<std::uint64_t> bits = {0,           63,                // magic
                                  8 * 8,       12 * 8 - 1,        // version
                                  12 * 8,      20 * 8 - 1,        // size
                                  20 * 8,      (20 + payload) * 8 - 1,
                                  (20 + payload) * 8, chunk_bits - 1};  // crc
  util::Rng fuzz = util::Rng::for_stream(0xF1195u, 3);
  while (bits.size() < 48) bits.insert(fuzz.next() % chunk_bits);

  for (const std::uint64_t bit : bits) {
    SCOPED_TRACE("bit=" + std::to_string(bit));
    expect_rejected(
        to_string(util::chaos::bit_flipped(byte_span(encoded_), bit)));
  }
}

// ---------------------------------------------------------------------------
// Resumable lifetime campaigns

rel::LifetimeConfig lifetime_config() {
  rel::LifetimeConfig config;
  config.n = 60;
  config.m = 15;
  config.crossbars = 2;
  config.fit_per_bit = 5e4;  // high SER so most trials fail in-horizon
  config.scrub_period_hours = 24.0;
  config.trials = 40;
  config.max_hours = 1e6;
  return config;
}

void expect_results_equal(const rel::LifetimeResult& a,
                          const rel::LifetimeResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.scrubs_performed, b.scrubs_performed);
  EXPECT_EQ(a.errors_corrected, b.errors_corrected);
  EXPECT_EQ(a.time_to_failure_hours.count(), b.time_to_failure_hours.count());
  EXPECT_EQ(a.time_to_failure_hours.sum(), b.time_to_failure_hours.sum());
  EXPECT_EQ(a.time_to_failure_hours.min(), b.time_to_failure_hours.min());
  EXPECT_EQ(a.time_to_failure_hours.max(), b.time_to_failure_hours.max());
}

TEST(LifetimeResume, ChunkedSerializedRunIsBitIdentical) {
  const rel::LifetimeConfig config = lifetime_config();

  util::Rng straight_rng(31337);
  const rel::LifetimeResult straight =
      rel::simulate_lifetime(config, straight_rng);
  ASSERT_GT(straight.failures, 0u);

  // Same campaign in uneven chunks, serialized to bytes and reloaded
  // between every chunk, each chunk at a different thread count.
  util::Rng chunked_rng(31337);
  rel::LifetimeProgress progress = rel::begin_lifetime(config, chunked_rng);
  const std::size_t chunks[] = {1, 7, 2, 13, 0};  // 0 = all remaining
  const std::size_t threads[] = {1, 3, 2, 4, 0};
  std::size_t step = 0;
  while (!rel::lifetime_complete(config, progress)) {
    rel::LifetimeConfig chunk_config = config;
    chunk_config.threads = threads[step % 5];
    (void)rel::advance_lifetime(chunk_config, progress, chunks[step % 5]);
    ++step;

    std::stringstream stream;
    rel::save_lifetime_checkpoint(stream, config, progress);
    progress = rel::load_lifetime_checkpoint(stream, config);
  }
  expect_results_equal(straight, rel::lifetime_result(progress));
  // Both paths drew exactly one base seed from their RNG.
  EXPECT_EQ(straight_rng.state(), chunked_rng.state());
}

TEST(LifetimeResume, ThreadsFieldIsNotPartOfTheFingerprint) {
  const rel::LifetimeConfig config = lifetime_config();
  util::Rng rng(9);
  rel::LifetimeProgress progress = rel::begin_lifetime(config, rng);
  (void)rel::advance_lifetime(config, progress, 5);

  std::stringstream stream;
  rel::save_lifetime_checkpoint(stream, config, progress);
  rel::LifetimeConfig reloaded_config = config;
  reloaded_config.threads = 8;  // pure perf knob: must still load
  const rel::LifetimeProgress reloaded =
      rel::load_lifetime_checkpoint(stream, reloaded_config);
  EXPECT_EQ(reloaded.trials_done, progress.trials_done);
  EXPECT_EQ(reloaded.base_seed, progress.base_seed);
}

TEST(LifetimeResume, ConfigMismatchRejected) {
  const rel::LifetimeConfig config = lifetime_config();
  util::Rng rng(9);
  rel::LifetimeProgress progress = rel::begin_lifetime(config, rng);
  (void)rel::advance_lifetime(config, progress, 5);
  std::stringstream stream;
  rel::save_lifetime_checkpoint(stream, config, progress);
  const std::string encoded = stream.str();

  auto expect_mismatch = [&](rel::LifetimeConfig bad) {
    std::istringstream in(encoded);
    EXPECT_THROW((void)rel::load_lifetime_checkpoint(in, bad), SerializeError);
  };
  rel::LifetimeConfig bad = config;
  bad.trials += 1;
  expect_mismatch(bad);
  bad = config;
  bad.fit_per_bit *= 2.0;
  expect_mismatch(bad);
  bad = config;
  bad.crossbars += 1;
  expect_mismatch(bad);
  bad = config;
  bad.include_check_bits = !bad.include_check_bits;
  expect_mismatch(bad);
}

TEST(LifetimeResume, CorruptProgressRejected) {
  const rel::LifetimeConfig config = lifetime_config();
  util::Rng rng(9);
  rel::LifetimeProgress progress = rel::begin_lifetime(config, rng);
  (void)rel::advance_lifetime(config, progress, 10);
  std::stringstream stream;
  rel::save_lifetime_checkpoint(stream, config, progress);
  const std::string encoded = stream.str();

  // Any byte flip anywhere must be caught (CRC or semantic validation).
  for (std::size_t i = 0; i < encoded.size(); i += 9) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x04);
    std::istringstream in(bad);
    EXPECT_THROW((void)rel::load_lifetime_checkpoint(in, config),
                 SerializeError)
        << "byte " << i;
  }
}

}  // namespace
}  // namespace pimecc
