// Tests for the word-parallel execution engine: differential equivalence of
// Crossbar against the bit-serial ReferenceCrossbar golden model, uniform
// validation across external entry points, and thread-count determinism of
// the Monte Carlo reliability engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "reliability/montecarlo.hpp"
#include "util/bitvector.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/reference_crossbar.hpp"

namespace pimecc::xbar {
namespace {

using util::BitVector;
using util::Rng;

// Chooses `k` distinct values in [0, limit) (partial Fisher-Yates).
std::vector<std::size_t> choose_distinct(Rng& rng, std::size_t limit,
                                         std::size_t k) {
  std::vector<std::size_t> pool(limit);
  for (std::size_t i = 0; i < limit; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k && i < limit; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_below(limit - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

// Executes the same randomized MAGIC program (init/NOR/NOT, both
// orientations, random lane subsets) on both engines and asserts identical
// contents, cycle counts, and per-op results after every operation.
void run_differential_program(std::uint64_t seed, std::size_t rows,
                              std::size_t cols, std::size_t steps) {
  Rng rng(seed);
  Crossbar fast(rows, cols);
  ReferenceCrossbar ref(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const bool v = rng.bernoulli(0.5);
      fast.poke(r, c, v);
      ref.poke(r, c, v);
    }
  }

  for (std::size_t step = 0; step < steps; ++step) {
    const Orientation o =
        rng.bernoulli(0.5) ? Orientation::kRow : Orientation::kColumn;
    const std::size_t line_limit = o == Orientation::kRow ? cols : rows;
    const std::size_t lane_limit = o == Orientation::kRow ? rows : cols;

    std::vector<std::size_t> lanes;  // empty = all lanes
    if (rng.bernoulli(0.6)) {
      lanes = choose_distinct(
          rng, lane_limit, 1 + static_cast<std::size_t>(rng.uniform_below(lane_limit)));
    }

    if (rng.bernoulli(0.3)) {
      const std::vector<std::size_t> lines = choose_distinct(
          rng, line_limit,
          1 + static_cast<std::size_t>(rng.uniform_below(std::min<std::size_t>(3, line_limit))));
      fast.magic_init(o, lines, lanes);
      ref.magic_init(o, lines, lanes);
    } else if (line_limit >= 2) {
      const std::size_t fan_in = std::min<std::size_t>(
          1 + static_cast<std::size_t>(rng.uniform_below(3)), line_limit - 1);
      std::vector<std::size_t> picks = choose_distinct(rng, line_limit, fan_in + 1);
      const std::size_t out_line = picks.back();
      picks.pop_back();
      // Initialize the output most of the time; the rest exercises the
      // violation-counting path.
      if (rng.bernoulli(0.7)) {
        const std::size_t out_lines[1] = {out_line};
        fast.magic_init(o, out_lines, lanes);
        ref.magic_init(o, out_lines, lanes);
      }
      const OpResult a = fast.magic_nor(o, picks, out_line, lanes);
      const OpResult b = ref.magic_nor(o, picks, out_line, lanes);
      EXPECT_EQ(a.lanes, b.lanes) << "step " << step;
      EXPECT_EQ(a.violations, b.violations) << "step " << step;
    }

    ASSERT_EQ(fast.contents(), ref.contents())
        << "divergence at step " << step << " seed " << seed << " (" << rows
        << "x" << cols << ")";
  }
  EXPECT_EQ(fast.cycles(), ref.cycles());
  EXPECT_EQ(fast.nor_ops(), ref.nor_ops());
  EXPECT_EQ(fast.init_cycles(), ref.init_cycles());
}

TEST(EngineDifferential, RandomProgramsMatchReference) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {9, 13}, {64, 64}, {70, 3}, {3, 70}, {33, 129}};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const auto& [rows, cols] : shapes) {
      run_differential_program(seed, rows, cols, 120);
    }
  }
}

TEST(EngineDifferential, MagicNotMatchesReference) {
  Crossbar fast(5, 7);
  ReferenceCrossbar ref(5, 7);
  for (std::size_t r = 0; r < 5; ++r) {
    fast.poke(r, 2, r % 2 == 0);
    ref.poke(r, 2, r % 2 == 0);
  }
  const std::size_t out[1] = {4};
  fast.magic_init(Orientation::kRow, out);
  ref.magic_init(Orientation::kRow, out);
  const OpResult a = fast.magic_not(Orientation::kRow, 2, 4);
  const OpResult b = ref.magic_not(Orientation::kRow, 2, 4);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(fast.contents(), ref.contents());
}

// ---------------------------------------------------- uniform validation

TEST(CrossbarValidation, WriteColumnChecksIndexAndSize) {
  Crossbar xb(4, 6);
  EXPECT_THROW(xb.write_column(6, BitVector(4)), std::out_of_range);
  EXPECT_THROW(xb.write_column(0, BitVector(5)), std::invalid_argument);
  EXPECT_EQ(xb.cycles(), 0u);  // failed calls must not count cycles
}

TEST(CrossbarValidation, WriteRowChecksIndexBeforeSize) {
  Crossbar xb(4, 6);
  EXPECT_THROW(xb.write_row(4, BitVector(6)), std::out_of_range);
  EXPECT_THROW(xb.write_row(0, BitVector(7)), std::invalid_argument);
  EXPECT_EQ(xb.cycles(), 0u);
}

TEST(CrossbarValidation, ReadsValidateBeforeCountingCycles) {
  Crossbar xb(4, 6);
  EXPECT_THROW((void)xb.read_row(4), std::out_of_range);
  EXPECT_THROW((void)xb.read_column(6), std::out_of_range);
  EXPECT_THROW((void)xb.read_bit(4, 0), std::out_of_range);
  EXPECT_THROW((void)xb.read_bit(0, 6), std::out_of_range);
  EXPECT_EQ(xb.cycles(), 0u);
}

TEST(CrossbarValidation, DuplicateLanesRejectedByBothEngines) {
  Crossbar fast(4, 4);
  ReferenceCrossbar ref(4, 4);
  const std::size_t ins[1] = {0};
  const std::size_t dup_lanes[2] = {1, 1};
  EXPECT_THROW(fast.magic_nor(Orientation::kRow, ins, 2, dup_lanes),
               std::invalid_argument);
  EXPECT_THROW(ref.magic_nor(Orientation::kRow, ins, 2, dup_lanes),
               std::invalid_argument);
  EXPECT_EQ(fast.cycles(), 0u);
  EXPECT_EQ(ref.cycles(), 0u);
}

TEST(CrossbarValidation, ReferenceMatchesCrossbarOnBadArguments) {
  Crossbar fast(3, 3);
  ReferenceCrossbar ref(3, 3);
  const std::size_t ins[1] = {5};
  EXPECT_THROW(fast.magic_nor(Orientation::kRow, ins, 1), std::out_of_range);
  EXPECT_THROW(ref.magic_nor(Orientation::kRow, ins, 1), std::out_of_range);
  EXPECT_THROW(fast.write_column(3, BitVector(3)), std::out_of_range);
  EXPECT_THROW(ref.write_column(3, BitVector(3)), std::out_of_range);
  EXPECT_THROW(ref.write_column(0, BitVector(2)), std::invalid_argument);
}

}  // namespace
}  // namespace pimecc::xbar

namespace pimecc::rel {
namespace {

TEST(MonteCarloDeterminism, ResultIndependentOfThreadCount) {
  MonteCarloConfig config;
  config.n = 60;
  config.m = 15;
  config.fit_per_bit = 3e6;
  config.window_hours = 24.0;
  config.trials = 64;

  std::vector<MonteCarloResult> results;
  std::vector<std::uint64_t> next_draws;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    util::Rng rng(0xDE7E12'11ull);
    results.push_back(run_montecarlo(config, rng));
    next_draws.push_back(rng.next());  // caller stream must advance identically
  }
  EXPECT_GT(results[0].trials_with_errors, 0u);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_EQ(next_draws[0], next_draws[1]);
  EXPECT_EQ(next_draws[0], next_draws[2]);
}

TEST(MonteCarloDeterminism, ZeroThreadsMeansHardwareConcurrency) {
  MonteCarloConfig config;
  config.n = 30;
  config.m = 5;
  config.fit_per_bit = 1e6;
  config.trials = 16;
  config.threads = 0;  // auto
  util::Rng auto_rng(99), one_rng(99);
  const MonteCarloResult auto_result = run_montecarlo(config, auto_rng);
  config.threads = 1;
  const MonteCarloResult one_result = run_montecarlo(config, one_rng);
  EXPECT_EQ(auto_result, one_result);
}

}  // namespace
}  // namespace pimecc::rel
