# Helper functions shared by every pimecc CMakeLists.  New tests and benches
# register with a single line:
#
#   pimecc_add_test(test_foo LABELS unit TIMEOUT 60)
#   pimecc_add_bench(bench_foo)
#
include_guard(GLOBAL)

# Apply the project-wide warning flags and include paths to a target.
function(pimecc_compile_options target)
  target_compile_options(${target} PRIVATE ${PIMECC_WARNING_FLAGS})
endfunction()

# pimecc_add_test(<name> [SOURCES <files...>] [LABELS <labels...>] [TIMEOUT <sec>])
#
# Builds tests/<name>.cpp (unless SOURCES overrides), links it against the
# pimecc library and GoogleTest, and registers every TEST() in it with ctest
# via gtest_discover_tests.  LABELS default to "unit"; TIMEOUT defaults to
# 120 seconds and is applied per discovered test.
function(pimecc_add_test name)
  cmake_parse_arguments(PAT "" "TIMEOUT" "SOURCES;LABELS" ${ARGN})
  if(NOT PAT_SOURCES)
    set(PAT_SOURCES ${name}.cpp)
  endif()
  if(NOT PAT_LABELS)
    set(PAT_LABELS unit)
  endif()
  if(NOT PAT_TIMEOUT)
    set(PAT_TIMEOUT 120)
  endif()

  add_executable(${name} ${PAT_SOURCES})
  target_link_libraries(${name} PRIVATE pimecc GTest::gtest GTest::gtest_main)
  pimecc_compile_options(${name})

  gtest_discover_tests(${name}
    TEST_LIST ${name}_TESTS
    DISCOVERY_TIMEOUT 60)

  # gtest_discover_tests flattens list-valued PROPERTIES (its serializer
  # re-splits every value), so multi-label sets cannot be passed through it.
  # Instead, append our own ctest include file that runs after discovery and
  # stamps LABELS/TIMEOUT onto the discovered tests via TEST_LIST.
  set(fixup "${CMAKE_CURRENT_BINARY_DIR}/${name}_props.cmake")
  file(WRITE "${fixup}"
    "if(${name}_TESTS)\n"
    "  set_tests_properties(\${${name}_TESTS} PROPERTIES\n"
    "    LABELS [==[${PAT_LABELS}]==] TIMEOUT ${PAT_TIMEOUT})\n"
    "endif()\n")
  set_property(DIRECTORY APPEND PROPERTY TEST_INCLUDE_FILES "${fixup}")
endfunction()

# pimecc_add_bench(<name> [SOURCES <files...>])
#
# Builds bench/<name>.cpp as a standalone executable linked against pimecc.
# Benches are not registered with ctest (they are long-running by design);
# use the aggregate `benches` target to build them all.
function(pimecc_add_bench name)
  cmake_parse_arguments(PAB "" "" "SOURCES" ${ARGN})
  if(NOT PAB_SOURCES)
    set(PAB_SOURCES ${name}.cpp)
  endif()
  add_executable(${name} ${PAB_SOURCES})
  target_link_libraries(${name} PRIVATE pimecc)
  pimecc_compile_options(${name})
  if(NOT TARGET benches)
    add_custom_target(benches)
  endif()
  add_dependencies(benches ${name})
endfunction()

# pimecc_add_cli_test(<name> EXIT <code> [MATCH <regex>] COMMAND <target> [args...])
#
# Registers a ctest entry (labels "unit;cli") that runs the target binary
# with the given arguments and asserts the exact exit status -- a crash
# (signal death) never matches a numeric code, unlike WILL_FAIL -- plus an
# optional regex over combined stdout+stderr.  See cmake/RunCliTest.cmake.
function(pimecc_add_cli_test name)
  cmake_parse_arguments(PCT "" "EXIT;MATCH" "COMMAND" ${ARGN})
  if(NOT DEFINED PCT_EXIT OR NOT PCT_COMMAND)
    message(FATAL_ERROR "pimecc_add_cli_test: EXIT and COMMAND are required")
  endif()
  list(POP_FRONT PCT_COMMAND cli_target)
  add_test(NAME cli.${name} COMMAND ${CMAKE_COMMAND}
    -DCLI_COMMAND=$<TARGET_FILE:${cli_target}>
    "-DCLI_ARGS=${PCT_COMMAND}"
    -DEXPECT_EXIT=${PCT_EXIT}
    "-DEXPECT_MATCH=${PCT_MATCH}"
    -P "${PROJECT_SOURCE_DIR}/cmake/RunCliTest.cmake")
  set_tests_properties(cli.${name} PROPERTIES LABELS "unit;cli" TIMEOUT 120)
endfunction()

# pimecc_add_example(<name> [SOURCES <files...>] [SMOKE] [SMOKE_ARGS <args...>])
#
# Builds examples/<name>.cpp.  With SMOKE, also registers the binary as a
# ctest smoke test (label "smoke integration") so examples cannot silently rot.
function(pimecc_add_example name)
  cmake_parse_arguments(PAE "SMOKE" "" "SOURCES;SMOKE_ARGS" ${ARGN})
  if(NOT PAE_SOURCES)
    set(PAE_SOURCES ${name}.cpp)
  endif()
  add_executable(${name} ${PAE_SOURCES})
  target_link_libraries(${name} PRIVATE pimecc)
  pimecc_compile_options(${name})
  if(PAE_SMOKE)
    add_test(NAME example.${name} COMMAND ${name} ${PAE_SMOKE_ARGS})
    set_tests_properties(example.${name} PROPERTIES
      LABELS "smoke;integration" TIMEOUT 120)
  endif()
endfunction()
