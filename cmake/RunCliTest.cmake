# Runs one CLI invocation and asserts its exact exit status (and optionally
# a regex over combined stdout+stderr).  ctest's WILL_FAIL cannot express
# "must exit 1, not crash": a SIGABRT also 'fails', so the input-validation
# regression this guards (std::terminate on garbage flags) would pass.
# Driven by pimecc_add_cli_test() in PimeccHelpers.cmake:
#
#   cmake -DCLI_COMMAND=<binary> -DCLI_ARGS=<;-list> -DEXPECT_EXIT=<code>
#         [-DEXPECT_MATCH=<regex>] -P RunCliTest.cmake
if(NOT DEFINED CLI_COMMAND OR NOT DEFINED EXPECT_EXIT)
  message(FATAL_ERROR "RunCliTest: CLI_COMMAND and EXPECT_EXIT are required")
endif()

execute_process(
  COMMAND "${CLI_COMMAND}" ${CLI_ARGS}
  OUTPUT_VARIABLE cli_stdout
  ERROR_VARIABLE cli_stderr
  RESULT_VARIABLE cli_code)

string(CONCAT cli_output "${cli_stdout}" "${cli_stderr}")

# On a signal death RESULT_VARIABLE is a message ("Subprocess aborted"),
# never a number, so a crash can never satisfy a numeric expectation.
if(NOT cli_code STREQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "expected exit ${EXPECT_EXIT}, got '${cli_code}'\n"
    "command: ${CLI_COMMAND} ${CLI_ARGS}\n"
    "output:\n${cli_output}")
endif()

if(DEFINED EXPECT_MATCH AND NOT EXPECT_MATCH STREQUAL "")
  string(REGEX MATCH "${EXPECT_MATCH}" cli_match "${cli_output}")
  if(cli_match STREQUAL "")
    message(FATAL_ERROR
      "output does not match '${EXPECT_MATCH}'\n"
      "command: ${CLI_COMMAND} ${CLI_ARGS}\n"
      "output:\n${cli_output}")
  endif()
endif()
