# Provide GTest::gtest / GTest::gtest_main and the gtest_discover_tests()
# helper.  Resolution order:
#
#   1. find_package(GTest) -- distro package (libgtest-dev) or prior install.
#   2. /usr/src/googletest -- Debian/Ubuntu ship the sources even when the
#      static libs are absent; build them in-tree.
#   3. FetchContent download -- only reached when online.
#
# FetchContent's FIND_PACKAGE_ARGS (CMake >= 3.24) gives us 1 and 3 in one
# declaration; step 2 is wired in via FETCHCONTENT_SOURCE_DIR_GOOGLETEST so
# fully offline machines still configure.
include_guard(GLOBAL)

include(FetchContent)
include(GoogleTest)

if(NOT DEFINED FETCHCONTENT_SOURCE_DIR_GOOGLETEST
   AND EXISTS "/usr/src/googletest/CMakeLists.txt")
  # Pre-seed the offline fallback; only consulted if find_package fails.
  set(FETCHCONTENT_SOURCE_DIR_GOOGLETEST "/usr/src/googletest"
      CACHE PATH "Local googletest source fallback")
endif()

set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)  # MSVC runtime match
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)

FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  FIND_PACKAGE_ARGS NAMES GTest)
FetchContent_MakeAvailable(googletest)

# The in-tree build exports gtest/gtest_main without the GTest:: namespace.
if(NOT TARGET GTest::gtest AND TARGET gtest)
  add_library(GTest::gtest ALIAS gtest)
  add_library(GTest::gtest_main ALIAS gtest_main)
endif()
