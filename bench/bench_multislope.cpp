// Extension of the paper's Section III trade-off bullet 1 ("the code used
// for check-bits along a diagonal: increased complexity leads to increased
// reliability at the cost of ... more overhead"): slope-family count K as
// the complexity knob.  K = 2 is the paper's leading+counter design; K = 3
// and 4 add slope-2 families, keeping the Θ(1) continuous-update property
// (every slope coprime to m touches each line once per parallel op) while
// making double errors correctable.
//
// Measured: outcome of exhaustively many random k-error patterns per block
// under each K, plus the storage cost.
#include <iostream>

#include <cmath>

#include "core/multislope_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  constexpr std::size_t kM = 15;
  constexpr std::size_t kTrials = 500;
  util::Rng rng(0x51093ull);

  const std::vector<std::pair<std::string, std::vector<std::size_t>>> configs = {
      {"K=2 (paper: +1,-1)", {1, kM - 1}},
      {"K=3 (+1,-1,+2)", {1, kM - 1, 2}},
      {"K=4 (+1,-1,+2,-2)", {1, kM - 1, 2, kM - 2}},
  };

  util::Table table({"Code", "Storage ovh", "Errors", "Corrected", "Detected",
                     "Miscorrected"});
  for (const auto& [label, slopes] : configs) {
    const ecc::MultiSlopeCodec codec(kM, slopes);
    for (const std::size_t errors : {1u, 2u, 3u}) {
      std::size_t corrected = 0, detected = 0, miscorrected = 0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        util::BitMatrix golden(kM, kM);
        for (std::size_t r = 0; r < kM; ++r) {
          for (std::size_t c = 0; c < kM; ++c) {
            golden.set(r, c, rng.bernoulli(0.5));
          }
        }
        util::BitMatrix data = golden;
        ecc::MultiCheckBits check = codec.encode(data, 0, 0);
        // Inject `errors` distinct flips.
        std::size_t placed = 0;
        while (placed < errors) {
          const std::size_t r = rng.uniform_below(kM);
          const std::size_t c = rng.uniform_below(kM);
          if (data.get(r, c) != golden.get(r, c)) continue;
          data.flip(r, c);
          ++placed;
        }
        const ecc::MultiDecodeResult result =
            codec.check_and_correct(data, 0, 0, check);
        if (data == golden) {
          ++corrected;
        } else if (result.status == ecc::MultiDecodeStatus::kDetectedUncorrectable) {
          ++detected;
        } else {
          ++miscorrected;
        }
      }
      table.add_row({label, util::format_pct(codec.storage_overhead()),
                     std::to_string(errors), std::to_string(corrected),
                     std::to_string(detected), std::to_string(miscorrected)});
    }
  }
  std::cout << "Slope-family ablation (m=15, " << kTrials
            << " random error patterns per point)\n\n"
            << table << '\n'
            << "K=2 corrects all singles and detects all doubles (the "
               "paper's design point); K>=3 corrects most doubles for "
               "proportionally more check-bit storage -- the Section III "
               "complexity/reliability trade-off, quantified.\n\n";

  // MTTF projection: block survives <= 1 error (K = 2) vs <= 2 errors
  // scaled by the measured double-correction fraction (K = 3, 4), in the
  // Figure 6 model at the Flash-like SER.
  const double kFit = 1e-3, kT = 24.0;
  const double p = -std::expm1(-kFit * kT / 1e9);
  const std::uint64_t kMemoryBits = std::uint64_t{1} << 33;
  const std::uint64_t kXbars = (kMemoryBits + 1020ull * 1020ull - 1) /
                               (1020ull * 1020ull);
  const double blocks_per_xbar = (1020.0 / kM) * (1020.0 / kM);
  util::Table mttf({"Code", "Cells/block", "MTTF (h)", "vs paper K=2"});
  double k2_mttf = 0.0;
  const double double_fraction[3] = {0.0, 402.0 / 500.0, 487.0 / 500.0};
  for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
    const double cells = kM * kM + (2.0 + cfg) * kM;
    // Tail probabilities kept in series form: 1 - P(block ok) would round
    // to zero in double precision at these rates.
    const double log1mp = std::log1p(-p);
    const double p_exactly2 = cells * (cells - 1.0) / 2.0 * p * p *
                              std::exp((cells - 2.0) * log1mp);
    const double p_exactly3 = cells * (cells - 1.0) * (cells - 2.0) / 6.0 *
                              p * p * p * std::exp((cells - 3.0) * log1mp);
    const double block_fail =
        (1.0 - double_fraction[cfg]) * p_exactly2 + p_exactly3;
    const double log_mem_ok = blocks_per_xbar *
                              static_cast<double>(kXbars) *
                              std::log1p(-block_fail);
    const double p_fail = -std::expm1(log_mem_ok);
    const double mttf_h = 1e9 / (p_fail * 1e9 / kT);
    if (cfg == 0) k2_mttf = mttf_h;
    mttf.add_row({configs[cfg].first, util::format_sig(cells, 4),
                  util::format_sci(mttf_h, 3),
                  util::format_sig(mttf_h / k2_mttf, 3) + "x"});
  }
  std::cout << "Projected 1GB MTTF at SER 1e-3 FIT/bit (Figure 6 model, "
               "double-correction fraction from the table above)\n\n"
            << mttf;
  return 0;
}
