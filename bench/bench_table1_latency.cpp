// Reproduces paper Table I: per-benchmark latency (clock cycles) of the
// baseline SIMPLER schedule vs the proposed ECC-extended schedule, the
// overhead percentage, and the minimal number of processing crossbars.
//
// Paper reference values (DAC 2021, Table I) are printed alongside for
// comparison; see EXPERIMENTS.md for the paper-vs-measured discussion.
#include <iostream>
#include <map>
#include <vector>

#include "arch/params.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  double overhead_pct;
  int pcs;
};

const std::map<std::string, PaperRow>& paper_values() {
  static const std::map<std::string, PaperRow> kPaper = {
      {"adder", {34.0, 3}},   {"arbiter", {4.05, 2}},  {"bar", {11.3, 4}},
      {"cavlc", {4.5, 3}},    {"ctrl", {50.0, 5}},     {"dec", {205.8, 8}},
      {"int2float", {9.83, 3}}, {"max", {21.5, 4}},    {"priority", {20.0, 3}},
      {"sin", {0.96, 3}},     {"voter", {7.81, 2}},
  };
  return kPaper;
}

}  // namespace

int main() {
  using namespace pimecc;

  arch::ArchParams params;  // n = 1020, m = 15 (the paper's case study)
  simpler::MapperOptions map_options;
  map_options.row_width = params.n;
  const auto policy = simpler::CoveragePolicy::kInputsAndOutputs;

  util::Table table({"Benchmark", "Baseline", "Proposed", "Overhead (%)",
                     "PC (#)", "Paper ovh (%)", "Paper PC"});
  std::vector<double> overhead_ratios;
  std::vector<double> pc_counts;

  for (const std::string& name : circuits::circuit_names()) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, map_options);
    const std::size_t min_pcs = simpler::find_min_pcs(program, params, policy);
    arch::ArchParams with_pcs = params;
    with_pcs.num_pcs = min_pcs;
    const simpler::EccScheduleResult result =
        simpler::schedule_with_ecc(program, with_pcs, policy);

    const double overhead_pct = result.overhead_fraction() * 100.0;
    overhead_ratios.push_back(1.0 + result.overhead_fraction());
    pc_counts.push_back(static_cast<double>(min_pcs));
    const PaperRow paper = paper_values().at(name);
    table.add_row({name, std::to_string(result.baseline_cycles),
                   std::to_string(result.proposed_cycles),
                   util::format_sig(overhead_pct, 4), std::to_string(min_pcs),
                   util::format_sig(paper.overhead_pct, 4),
                   std::to_string(paper.pcs)});
  }
  const double geo_overhead_pct =
      (util::geometric_mean(overhead_ratios) - 1.0) * 100.0;
  const double geo_pcs = util::geometric_mean(pc_counts);
  table.add_row({"Geo. Mean", "", "", util::format_sig(geo_overhead_pct, 4),
                 util::format_sig(geo_pcs, 3), "26.23", "3.36"});

  std::cout << "Table I -- latency (clock cycles), n=" << params.n
            << ", m=" << params.m << ", XOR3=" << params.xor3_cycles
            << " cycles, coverage=inputs+outputs\n\n"
            << table << '\n';
  return 0;
}
