// Codec throughput harness: measures the word-parallel ECC codec against
// the bit-serial reference on the three hot paths and emits machine-readable
// BENCH_codec.json -- the codec-layer companion of bench_engine_throughput.
//
//   1. encode_all: whole-array check-bit recomputation -- ArrayCode's batch
//      band path vs a per-block ReferenceBlockCodec::encode loop.
//   2. scrub: whole-array check-and-correct on clean data (the Monte Carlo
//      engine's dominant per-trial cost) -- ArrayCode::scrub vs a per-block
//      ReferenceBlockCodec::check_and_correct loop.
//   3. syndrome: per-block compute_syndrome across every block, fast
//      BlockCodec vs ReferenceBlockCodec.
//
// Grid: n in {256, 512, 1024} x m in {3, 5, 7, 9, 31, 63}; n is rounded down
// to the nearest multiple of m (n_eff) since the array code requires m | n.
// m = 63 exercises the single-word fast path in the SIMD kernels, and its
// n_eff values (252, 504, 1008) keep a non-multiple-of-64 row width in the
// grid so the tail-word masking stays covered.  Every timed configuration is
// first cross-checked at EVERY runtime dispatch level (scalar, AVX2, ...):
// the fast engine's check bits and scrub report must equal the bit-serial
// reference's, or the run exits non-zero.
//
// Each metric reports three engines: the bit-serial reference, the scalar
// word-parallel kernels, and the widest SIMD kernel level the CPU offers
// (the two coincide on scalar-only hardware or under PIMECC_FORCE_SCALAR).
//
// Usage: bench_codec_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (n = 256, m in {3, 31, 63})
//   --out=PATH where to write the JSON (default: BENCH_codec.json in cwd)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/reference_block_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pimecc::ecc::ArrayCode;
using pimecc::ecc::CheckBits;
using pimecc::ecc::DecodeStatus;
using pimecc::ecc::ReferenceBlockCodec;
using pimecc::ecc::ScrubReport;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

pimecc::util::BitMatrix random_matrix(std::size_t n, pimecc::util::Rng& rng) {
  return pimecc::util::random_bit_matrix(n, n, rng);
}

/// Runs `pass` repeatedly until at least `min_seconds` elapsed; returns
/// data cells processed per second (n_eff^2 per pass).
template <typename Pass>
double measure_cells_per_sec(std::size_t n_eff, double min_seconds, Pass&& pass) {
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(passes) * static_cast<double>(n_eff) *
         static_cast<double>(n_eff) / elapsed;
}

struct MetricResult {
  double ref_cells_per_sec = 0.0;
  double scalar_cells_per_sec = 0.0;
  double simd_cells_per_sec = 0.0;
  /// Headline speedup: widest SIMD level vs the bit-serial reference.
  [[nodiscard]] double speedup() const { return simd_cells_per_sec / ref_cells_per_sec; }
  /// Vectorization gain alone: SIMD kernels vs the scalar word-parallel ones.
  [[nodiscard]] double simd_vs_scalar() const {
    return simd_cells_per_sec / scalar_cells_per_sec;
  }
};

struct ConfigResult {
  std::size_t n = 0;
  std::size_t n_eff = 0;
  std::size_t m = 0;
  MetricResult encode;
  MetricResult scrub;
  MetricResult syndrome;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_codec.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_codec_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{256, 512, 1024};
  // m = 63 must stay in the smoke grid: it is the configuration that drives
  // the kernels' single-word (m >= 63) path and a row width with
  // n_eff mod 64 != 0, so CI exercises both edge paths on every run.
  const std::vector<std::size_t> ms =
      smoke ? std::vector<std::size_t>{3, 31, 63}
            : std::vector<std::size_t>{3, 5, 7, 9, 31, 63};
  const double min_seconds = smoke ? 0.02 : 0.2;

  namespace simd = util::simd;
  // The level the process dispatched to at startup (the widest the CPU
  // offers, unless PIMECC_FORCE_SCALAR pinned it down).
  const simd::Level native_level = simd::active_level();
  const std::vector<simd::Level> levels = simd::available_levels();

  bool differential_ok = true;
  std::vector<ConfigResult> results;
  for (const std::size_t n : ns) {
    for (const std::size_t m : ms) {
      const std::size_t bps = n / m;
      const std::size_t n_eff = bps * m;
      util::Rng rng(0xC0DEC'BE7Cull ^ (n * 131) ^ m);
      util::BitMatrix data = random_matrix(n_eff, rng);

      ArrayCode code(n_eff, m);
      const ReferenceBlockCodec ref(m);
      std::vector<CheckBits> ref_stored(bps * bps, CheckBits(m));

      // Cross-check before timing, at every dispatch level the CPU offers:
      // the fast engine's check bits must agree with the bit-serial
      // reference's, and a clean scrub must report every block clean.
      for (std::size_t br = 0; br < bps; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          ref_stored[br * bps + bc] = ref.encode(data, br * m, bc * m);
        }
      }
      const ScrubReport ref_clean = reference_scrub(ref, data, ref_stored, bps);
      for (const simd::Level level : levels) {
        simd::set_level(level);
        code.encode_all(data);
        for (std::size_t br = 0; br < bps && differential_ok; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            if (!(ref_stored[br * bps + bc] == code.check_bits({br, bc}))) {
              std::cerr << "encode mismatch at level " << simd::to_string(level)
                        << " n_eff=" << n_eff << " m=" << m << "\n";
              differential_ok = false;
              break;
            }
          }
        }
        const ScrubReport fast_clean = code.scrub(data);
        if (!(fast_clean == ref_clean) || fast_clean.clean != bps * bps) {
          std::cerr << "scrub mismatch at level " << simd::to_string(level)
                    << " n_eff=" << n_eff << " m=" << m << "\n";
          differential_ok = false;
        }
      }
      simd::set_level(native_level);

      ConfigResult r;
      r.n = n;
      r.n_eff = n_eff;
      r.m = m;

      r.encode.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            ref_stored[br * bps + bc] = ref.encode(data, br * m, bc * m);
          }
        }
      });

      r.scrub.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        (void)reference_scrub(ref, data, ref_stored, bps);
      });

      const ecc::BlockCodec& fast_codec = code.codec();
      r.syndrome.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            (void)ref.compute_syndrome(data, br * m, bc * m,
                                       ref_stored[br * bps + bc]);
          }
        }
      });

      // Time the word-parallel engine twice: once pinned to the scalar
      // kernel table, once at the widest SIMD level.  The engines route
      // every hot loop through util::simd::kernels(), so set_level swaps
      // the machinery under the same ArrayCode object.
      simd::set_level(simd::Level::kScalar);
      r.encode.scalar_cells_per_sec = measure_cells_per_sec(
          n_eff, min_seconds, [&] { code.encode_all(data); });
      r.scrub.scalar_cells_per_sec = measure_cells_per_sec(
          n_eff, min_seconds, [&] { (void)code.scrub(data); });
      r.syndrome.scalar_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            (void)fast_codec.compute_syndrome(data, br * m, bc * m,
                                              code.check_bits({br, bc}));
          }
        }
      });

      simd::set_level(native_level);
      if (native_level == simd::Level::kScalar) {
        r.encode.simd_cells_per_sec = r.encode.scalar_cells_per_sec;
        r.scrub.simd_cells_per_sec = r.scrub.scalar_cells_per_sec;
        r.syndrome.simd_cells_per_sec = r.syndrome.scalar_cells_per_sec;
      } else {
        r.encode.simd_cells_per_sec = measure_cells_per_sec(
            n_eff, min_seconds, [&] { code.encode_all(data); });
        r.scrub.simd_cells_per_sec = measure_cells_per_sec(
            n_eff, min_seconds, [&] { (void)code.scrub(data); });
        r.syndrome.simd_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
          for (std::size_t br = 0; br < bps; ++br) {
            for (std::size_t bc = 0; bc < bps; ++bc) {
              (void)fast_codec.compute_syndrome(data, br * m, bc * m,
                                                code.check_bits({br, bc}));
            }
          }
        });
      }

      results.push_back(r);
      std::cout << "n=" << n_eff << " m=" << m << ": encode_all "
                << fmt(r.encode.speedup()) << "x, scrub " << fmt(r.scrub.speedup())
                << "x, syndrome " << fmt(r.syndrome.speedup())
                << "x vs reference; simd-vs-scalar encode "
                << fmt(r.encode.simd_vs_scalar()) << "x, scrub "
                << fmt(r.scrub.simd_vs_scalar()) << "x, syndrome "
                << fmt(r.syndrome.simd_vs_scalar()) << "x ("
                << simd::to_string(native_level) << " encode "
                << fmt(r.encode.simd_cells_per_sec / 1e6) << " Mcells/s)\n";
    }
  }
  std::cout << "differential cross-check: "
            << (differential_ok ? "ok" : "FAILED -- BUG") << "\n";

  const ConfigResult& largest = results.back();
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-codec/2\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"simd_level\": \"" << simd::to_string(native_level) << "\",\n"
       << "  \"dispatch_levels_checked\": [";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    json << "\"" << simd::to_string(levels[i]) << "\""
         << (i + 1 < levels.size() ? ", " : "");
  }
  json << "],\n"
       << "  \"differential_ok\": " << (differential_ok ? "true" : "false") << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    auto metric = [&](const char* name, const MetricResult& mr, bool last) {
      json << "      \"" << name << "\": {\"reference_cells_per_sec\": "
           << fmt(mr.ref_cells_per_sec) << ", \"scalar_cells_per_sec\": "
           << fmt(mr.scalar_cells_per_sec) << ", \"simd_cells_per_sec\": "
           << fmt(mr.simd_cells_per_sec) << ", \"speedup\": "
           << fmt(mr.speedup()) << ", \"simd_vs_scalar\": "
           << fmt(mr.simd_vs_scalar()) << "}" << (last ? "" : ",") << "\n";
    };
    json << "    {\n"
         << "      \"n\": " << r.n << ", \"n_eff\": " << r.n_eff
         << ", \"m\": " << r.m << ",\n";
    metric("encode_all", r.encode, false);
    metric("scrub", r.scrub, false);
    metric("syndrome", r.syndrome, true);
    json << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"largest_config\": {\"n_eff\": " << largest.n_eff << ", \"m\": "
       << largest.m << ", \"encode_all_speedup\": " << fmt(largest.encode.speedup())
       << ", \"scrub_speedup\": " << fmt(largest.scrub.speedup())
       << ", \"syndrome_speedup\": " << fmt(largest.syndrome.speedup())
       << ", \"encode_all_simd_vs_scalar\": " << fmt(largest.encode.simd_vs_scalar())
       << ", \"scrub_simd_vs_scalar\": " << fmt(largest.scrub.simd_vs_scalar())
       << ", \"syndrome_simd_vs_scalar\": " << fmt(largest.syndrome.simd_vs_scalar())
       << "}\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return differential_ok ? 0 : 1;
}
