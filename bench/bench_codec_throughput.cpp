// Codec throughput harness: measures the word-parallel ECC codec against
// the bit-serial reference on the three hot paths and emits machine-readable
// BENCH_codec.json -- the codec-layer companion of bench_engine_throughput.
//
//   1. encode_all: whole-array check-bit recomputation -- ArrayCode's batch
//      band path vs a per-block ReferenceBlockCodec::encode loop.
//   2. scrub: whole-array check-and-correct on clean data (the Monte Carlo
//      engine's dominant per-trial cost) -- ArrayCode::scrub vs a per-block
//      ReferenceBlockCodec::check_and_correct loop.
//   3. syndrome: per-block compute_syndrome across every block, fast
//      BlockCodec vs ReferenceBlockCodec.
//
// Grid: n in {256, 512, 1024} x m in {3, 5, 7, 9, 31}; n is rounded down to
// the nearest multiple of m (n_eff) since the array code requires m | n.
// Every timed configuration is first cross-checked: the fast engine's check
// bits and scrub report must equal the reference's, or the run fails.
//
// Usage: bench_codec_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (n = 256, m in {3, 31})
//   --out=PATH where to write the JSON (default: BENCH_codec.json in cwd)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "core/reference_block_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pimecc::ecc::ArrayCode;
using pimecc::ecc::CheckBits;
using pimecc::ecc::DecodeStatus;
using pimecc::ecc::ReferenceBlockCodec;
using pimecc::ecc::ScrubReport;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

pimecc::util::BitMatrix random_matrix(std::size_t n, pimecc::util::Rng& rng) {
  return pimecc::util::random_bit_matrix(n, n, rng);
}

/// Runs `pass` repeatedly until at least `min_seconds` elapsed; returns
/// data cells processed per second (n_eff^2 per pass).
template <typename Pass>
double measure_cells_per_sec(std::size_t n_eff, double min_seconds, Pass&& pass) {
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(passes) * static_cast<double>(n_eff) *
         static_cast<double>(n_eff) / elapsed;
}

struct MetricResult {
  double ref_cells_per_sec = 0.0;
  double fast_cells_per_sec = 0.0;
  [[nodiscard]] double speedup() const { return fast_cells_per_sec / ref_cells_per_sec; }
};

struct ConfigResult {
  std::size_t n = 0;
  std::size_t n_eff = 0;
  std::size_t m = 0;
  MetricResult encode;
  MetricResult scrub;
  MetricResult syndrome;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_codec.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_codec_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{256} : std::vector<std::size_t>{256, 512, 1024};
  const std::vector<std::size_t> ms =
      smoke ? std::vector<std::size_t>{3, 31} : std::vector<std::size_t>{3, 5, 7, 9, 31};
  const double min_seconds = smoke ? 0.02 : 0.2;

  bool differential_ok = true;
  std::vector<ConfigResult> results;
  for (const std::size_t n : ns) {
    for (const std::size_t m : ms) {
      const std::size_t bps = n / m;
      const std::size_t n_eff = bps * m;
      util::Rng rng(0xC0DEC'BE7Cull ^ (n * 131) ^ m);
      util::BitMatrix data = random_matrix(n_eff, rng);

      ArrayCode code(n_eff, m);
      const ReferenceBlockCodec ref(m);
      std::vector<CheckBits> ref_stored(bps * bps, CheckBits(m));

      // Cross-check before timing: fast and reference encodes must agree,
      // and a clean scrub must report every block clean on both engines.
      code.encode_all(data);
      for (std::size_t br = 0; br < bps && differential_ok; ++br) {
        for (std::size_t bc = 0; bc < bps; ++bc) {
          ref_stored[br * bps + bc] = ref.encode(data, br * m, bc * m);
          if (!(ref_stored[br * bps + bc] == code.check_bits({br, bc}))) {
            differential_ok = false;
            break;
          }
        }
      }
      const ScrubReport fast_clean = code.scrub(data);
      const ScrubReport ref_clean = reference_scrub(ref, data, ref_stored, bps);
      if (!(fast_clean == ref_clean) || fast_clean.clean != bps * bps) {
        differential_ok = false;
      }

      ConfigResult r;
      r.n = n;
      r.n_eff = n_eff;
      r.m = m;

      r.encode.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            ref_stored[br * bps + bc] = ref.encode(data, br * m, bc * m);
          }
        }
      });
      r.encode.fast_cells_per_sec = measure_cells_per_sec(
          n_eff, min_seconds, [&] { code.encode_all(data); });

      r.scrub.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        (void)reference_scrub(ref, data, ref_stored, bps);
      });
      r.scrub.fast_cells_per_sec = measure_cells_per_sec(
          n_eff, min_seconds, [&] { (void)code.scrub(data); });

      const ecc::BlockCodec& fast_codec = code.codec();
      r.syndrome.ref_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            (void)ref.compute_syndrome(data, br * m, bc * m,
                                       ref_stored[br * bps + bc]);
          }
        }
      });
      r.syndrome.fast_cells_per_sec = measure_cells_per_sec(n_eff, min_seconds, [&] {
        for (std::size_t br = 0; br < bps; ++br) {
          for (std::size_t bc = 0; bc < bps; ++bc) {
            (void)fast_codec.compute_syndrome(data, br * m, bc * m,
                                              code.check_bits({br, bc}));
          }
        }
      });

      results.push_back(r);
      std::cout << "n=" << n_eff << " m=" << m << ": encode_all "
                << fmt(r.encode.speedup()) << "x, scrub " << fmt(r.scrub.speedup())
                << "x, syndrome " << fmt(r.syndrome.speedup())
                << "x (fast encode " << fmt(r.encode.fast_cells_per_sec / 1e6)
                << " Mcells/s)\n";
    }
  }
  std::cout << "differential cross-check: "
            << (differential_ok ? "ok" : "FAILED -- BUG") << "\n";

  const ConfigResult& largest = results.back();
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-codec/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"differential_ok\": " << (differential_ok ? "true" : "false") << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    auto metric = [&](const char* name, const MetricResult& mr, bool last) {
      json << "      \"" << name << "\": {\"reference_cells_per_sec\": "
           << fmt(mr.ref_cells_per_sec) << ", \"word_parallel_cells_per_sec\": "
           << fmt(mr.fast_cells_per_sec) << ", \"speedup\": "
           << fmt(mr.speedup()) << "}" << (last ? "" : ",") << "\n";
    };
    json << "    {\n"
         << "      \"n\": " << r.n << ", \"n_eff\": " << r.n_eff
         << ", \"m\": " << r.m << ",\n";
    metric("encode_all", r.encode, false);
    metric("scrub", r.scrub, false);
    metric("syndrome", r.syndrome, true);
    json << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"largest_config\": {\"n_eff\": " << largest.n_eff << ", \"m\": "
       << largest.m << ", \"encode_all_speedup\": " << fmt(largest.encode.speedup())
       << ", \"scrub_speedup\": " << fmt(largest.scrub.speedup())
       << ", \"syndrome_speedup\": " << fmt(largest.syndrome.speedup()) << "}\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return differential_ok ? 0 : 1;
}
