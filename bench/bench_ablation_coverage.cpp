// Ablation over the ECC coverage policy during function execution.  The
// paper covers function inputs (checked before use, their cells' parity
// canceled when recycled) and outputs (updated after each critical write);
// kOutputsOnly shows how much of the Table I overhead each part causes.
#include <iostream>

#include "arch/params.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  arch::ArchParams params;
  params.num_pcs = 8;  // enough PCs that coverage, not PC stalls, dominates
  simpler::MapperOptions map_options;
  map_options.row_width = params.n;

  util::Table table({"Benchmark", "Baseline", "Outputs-only ovh (%)",
                     "Inputs+outputs ovh (%)", "Cancel ops"});
  std::vector<double> ratios_out, ratios_both;
  for (const std::string& name : circuits::circuit_names()) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, map_options);
    const auto outputs_only = simpler::schedule_with_ecc(
        program, params, simpler::CoveragePolicy::kOutputsOnly);
    const auto both = simpler::schedule_with_ecc(
        program, params, simpler::CoveragePolicy::kInputsAndOutputs);
    ratios_out.push_back(1.0 + outputs_only.overhead_fraction());
    ratios_both.push_back(1.0 + both.overhead_fraction());
    table.add_row({name, std::to_string(outputs_only.baseline_cycles),
                   util::format_sig(outputs_only.overhead_fraction() * 100.0, 4),
                   util::format_sig(both.overhead_fraction() * 100.0, 4),
                   std::to_string(both.cancel_ops)});
  }
  table.add_row({"Geo. Mean", "",
                 util::format_sig((util::geometric_mean(ratios_out) - 1.0) * 100.0, 4),
                 util::format_sig((util::geometric_mean(ratios_both) - 1.0) * 100.0, 4),
                 ""});
  std::cout << "Ablation -- ECC coverage policy (n=1020, m=15, k=8)\n\n"
            << table << '\n';
  return 0;
}
