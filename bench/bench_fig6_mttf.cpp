// Reproduces paper Figure 6: 1 GB memory mean-time-to-failure sensitivity
// to the memristor soft error rate, baseline (no ECC) vs the proposed
// diagonal-ECC design.  n = 1020, m = 15, full-memory checks every T = 24 h.
//
// The paper's headline: at the Flash-like SER of 1e-3 FIT/bit the proposed
// design improves MTTF by a factor of over 3e8 (and by >8 orders of
// magnitude across the sweep).
#include <cmath>
#include <iostream>

#include "reliability/analytic.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  rel::ReliabilityQuery query;  // n=1020, m=15, T=24h, 1 GB
  const auto sweep = rel::sweep_mttf(query, 1e-5, 1e3, 1);

  util::Table table({"SER (FIT/bit)", "Baseline MTTF (h)", "Proposed MTTF (h)",
                     "Improvement (x)"});
  for (const rel::SweepPoint& pt : sweep) {
    table.add_row({util::format_sci(pt.fit_per_bit, 0),
                   util::format_sci(pt.baseline_mttf_hours, 3),
                   util::format_sci(pt.proposed_mttf_hours, 3),
                   util::format_sci(pt.improvement(), 2)});
  }
  std::cout << "Figure 6 -- 1GB memory MTTF vs memristor SER (n=" << query.n
            << ", m=" << query.m << ", T=" << query.check_period_hours
            << "h)\n\n"
            << table << '\n';

  query.fit_per_bit = 1e-3;
  const double base = rel::evaluate_baseline(query).mttf_hours;
  const double prop = rel::evaluate_proposed(query).mttf_hours;
  std::cout << "At the Flash-like SER 1e-3 FIT/bit: baseline "
            << util::format_sci(base, 3) << " h, proposed "
            << util::format_sci(prop, 3) << " h -> improvement "
            << util::format_sci(prop / base, 3)
            << "x (paper: over 3e8x)\n";
  return 0;
}
