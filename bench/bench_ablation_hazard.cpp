// Ablation over the check-bit read-after-write hazard policy (paper
// footnote 3): processing-crossbar forwarding vs stalling until the
// in-flight write-back retires.  Measures how much the forwarding path the
// paper assumes is actually worth.
#include <iostream>

#include "arch/params.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  simpler::MapperOptions map_options;
  map_options.row_width = 1020;
  const auto policy = simpler::CoveragePolicy::kInputsAndOutputs;

  util::Table table({"Benchmark", "Forwarding (cycles)", "Stalling (cycles)",
                     "Stall penalty (%)"});
  for (const std::string& name : circuits::circuit_names()) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, map_options);
    arch::ArchParams forward;
    forward.hazard = arch::HazardPolicy::kForward;
    arch::ArchParams stall;
    stall.hazard = arch::HazardPolicy::kStall;
    const auto f = simpler::schedule_with_ecc(program, forward, policy);
    const auto s = simpler::schedule_with_ecc(program, stall, policy);
    const double penalty =
        (static_cast<double>(s.proposed_cycles) /
             static_cast<double>(f.proposed_cycles) -
         1.0) *
        100.0;
    table.add_row({name, std::to_string(f.proposed_cycles),
                   std::to_string(s.proposed_cycles),
                   util::format_sig(penalty, 3)});
  }
  std::cout << "Ablation -- hazard policy on in-flight check-bit updates "
               "(n=1020, m=15, k=3)\n\n"
            << table << '\n';
  return 0;
}
