// Serving harness: measures the batched request engine behind `pimecc
// serve` and emits machine-readable BENCH_serving.json.
//
//   latency_matrix: requests/second plus p50/p99 per-request latency of the
//   submit -> drain -> take path across a batch-size x lane-count grid, on
//   a mixed map/run/mttf/sweep workload.  Latency is stamped around the
//   queue (submit to publication), never inside the engine, which stays
//   clock-free.
//
// Every run first executes the cross-check gate and the process exit
// status reflects it:
//   - serve determinism: the formatted responses of the full workload must
//     be BIT-IDENTICAL at every lane count and batch size tested (a
//     response is a pure function of its request);
//   - machine checkpoint continuation: a PimMachine checkpointed
//     mid-program with its RNG and resumed in a fresh machine must replay
//     to the identical final state, field for field;
//   - lifetime resume: a campaign advanced in uneven chunks, serialized
//     and reloaded between chunks at varying thread counts, must be
//     bit-identical to the uninterrupted simulate_lifetime run;
//   - admission control + deadlines: a bounded queue must reject overflow
//     with the typed kRejected admission, an expired deadline must surface
//     as a kDeadlineExceeded response instead of executing, and shutdown
//     must publish kCancelled responses for every queued ticket.
//
// Usage: bench_serving [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (small workload, short measurements)
//   --out=PATH where to write the JSON (default: BENCH_serving.json)
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/checkpoint.hpp"
#include "arch/pim_machine.hpp"
#include "reliability/lifetime.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::vector<pimecc::serve::Request> build_workload(std::size_t count,
                                                   std::size_t run_n) {
  using pimecc::serve::Request;
  using pimecc::serve::RequestKind;
  std::vector<Request> workload;
  workload.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Request request;
    switch (i % 4) {
      case 0:
        request.kind = RequestKind::kRun;
        request.circuit = "ctrl";
        request.n = run_n;
        request.m = 15;
        request.seed = 1 + i;
        break;
      case 1:
        request.kind = RequestKind::kMap;
        request.circuit = (i % 8 == 1) ? "ctrl" : "cavlc";
        break;
      case 2:
        request.kind = RequestKind::kMttf;
        request.fit_per_bit = 1e-3 * static_cast<double>(1 + i % 5);
        break;
      default:
        request.kind = RequestKind::kSweep;
        request.fit_low = 1e-4;
        request.fit_high = 1e-2;
        request.points_per_decade = 2;
        break;
    }
    workload.push_back(request);
  }
  return workload;
}

std::vector<std::string> formatted_batch_responses(
    pimecc::serve::Server& server,
    const std::vector<pimecc::serve::Request>& workload) {
  std::vector<std::string> formatted;
  for (const pimecc::serve::Response& r : server.execute_batch(workload)) {
    formatted.push_back(pimecc::serve::format_response(r));
  }
  return formatted;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_serving [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  bool cross_checks_ok = true;
  const double min_seconds = smoke ? 0.05 : 1.0;
  const std::size_t workers = util::Executor::shared().worker_count();
  const std::size_t run_n = smoke ? 60 : 120;
  const std::size_t workload_size = smoke ? 16 : 64;
  const std::vector<serve::Request> workload =
      build_workload(workload_size, run_n);

  // ---------------------------------------- cross-check gate: determinism
  // Identical formatted responses at every lane count and batch size the
  // matrix below will time, each server instance cold (own caches).
  {
    std::vector<std::string> pinned;
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0}}) {
      serve::ServerConfig config;
      config.lanes = lanes;
      serve::Server server(config);
      const auto formatted = formatted_batch_responses(server, workload);
      for (std::size_t i = 0; i < formatted.size(); ++i) {
        if (formatted[i].rfind("ok ", 0) != 0) {
          std::cerr << "workload request " << i
                    << " FAILED: " << formatted[i] << "\n";
          cross_checks_ok = false;
        }
      }
      if (pinned.empty()) {
        pinned = formatted;
      } else if (formatted != pinned) {
        std::cerr << "serve determinism cross-check FAILED at lanes=" << lanes
                  << "\n";
        cross_checks_ok = false;
      }
    }
    // Batched-through-the-queue path, varying admission size.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
      serve::ServerConfig config;
      config.max_batch = batch;
      serve::Server server(config);
      std::vector<std::uint64_t> tickets;
      for (const serve::Request& request : workload) {
        tickets.push_back(server.submit(request));
      }
      (void)server.drain();
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        if (serve::format_response(server.take(tickets[i])) != pinned[i]) {
          std::cerr << "queue determinism cross-check FAILED at batch="
                    << batch << " request " << i << "\n";
          cross_checks_ok = false;
        }
      }
    }
  }

  // --------------------------- cross-check gate: machine checkpoint resume
  // Checkpoint mid-program with the RNG riding along; the resumed machine
  // replaying identical remaining work must land in the identical state.
  {
    arch::ArchParams params;
    params.n = 60;
    params.m = 15;
    auto segment = [](arch::PimMachine& machine, util::Rng& rng) {
      const std::size_t n = machine.n();
      util::BitVector row(n);
      for (int step = 0; step < 8; ++step) {
        util::fill_random(row, rng);
        machine.write_row_protected(rng.next() % n, row);
        machine.inject_data_error(rng.next() % n, rng.next() % n);
        (void)machine.scrub();
      }
    };
    arch::PimMachine machine(params);
    util::Rng rng(0x5E41ull);
    machine.load(util::random_bit_matrix(params.n, params.n, rng));
    segment(machine, rng);
    std::stringstream snapshot;
    arch::save_machine_checkpoint(snapshot, machine, &rng);
    segment(machine, rng);

    arch::PimMachine resumed(params);
    util::Rng resumed_rng(1);
    arch::load_machine_checkpoint(snapshot, resumed, &resumed_rng);
    segment(resumed, resumed_rng);

    std::stringstream a, b;
    arch::save_machine_checkpoint(a, machine, &rng);
    arch::save_machine_checkpoint(b, resumed, &resumed_rng);
    if (a.str() != b.str()) {
      std::cerr << "machine checkpoint continuation cross-check FAILED\n";
      cross_checks_ok = false;
    }
  }

  // ------------------------------- cross-check gate: lifetime resume
  // Uneven serialized chunks at varying thread counts vs one straight run.
  {
    rel::LifetimeConfig config;
    config.n = 60;
    config.m = 15;
    config.crossbars = 2;
    config.fit_per_bit = 5e4;
    config.trials = smoke ? 24 : 96;
    config.max_hours = 1e6;
    util::Rng straight_rng(0xC4EC ^ 0x12ull);
    const rel::LifetimeResult straight =
        rel::simulate_lifetime(config, straight_rng);

    util::Rng chunked_rng(0xC4EC ^ 0x12ull);
    rel::LifetimeProgress progress = rel::begin_lifetime(config, chunked_rng);
    const std::array<std::size_t, 4> chunks = {5, 1, 11, 0};
    const std::array<std::size_t, 4> threads = {1, 0, 2, 3};
    std::size_t step = 0;
    while (!rel::lifetime_complete(config, progress)) {
      rel::LifetimeConfig chunk_config = config;
      chunk_config.threads = threads[step % threads.size()];
      (void)rel::advance_lifetime(chunk_config, progress,
                                  chunks[step % chunks.size()]);
      std::stringstream stream;
      rel::save_lifetime_checkpoint(stream, config, progress);
      progress = rel::load_lifetime_checkpoint(stream, config);
      ++step;
    }
    const rel::LifetimeResult resumed = rel::lifetime_result(progress);
    const auto& s = straight.time_to_failure_hours;
    const auto& r = resumed.time_to_failure_hours;
    if (straight.trials != resumed.trials ||
        straight.failures != resumed.failures ||
        straight.scrubs_performed != resumed.scrubs_performed ||
        straight.errors_corrected != resumed.errors_corrected ||
        s.count() != r.count() || s.sum() != r.sum() || s.min() != r.min() ||
        s.max() != r.max()) {
      std::cerr << "lifetime resume cross-check FAILED\n";
      cross_checks_ok = false;
    }
  }
  // ----------------------- cross-check gate: admission control + deadlines
  // The robustness contract the serving tests pin, re-proven in the bench
  // binary so the committed BENCH_serving.json can only come from a build
  // whose rejection/deadline/shutdown paths behave.
  {
    serve::ServerConfig config;
    config.max_pending = 4;
    serve::Server server(config);
    std::size_t admitted = 0;
    std::size_t rejected = 0;
    std::vector<std::uint64_t> tickets;
    for (std::size_t i = 0; i < 10; ++i) {
      const serve::Admission admission = server.try_submit(workload[i]);
      if (admission.admitted) {
        ++admitted;
        tickets.push_back(admission.ticket);
      } else {
        if (admission.code != serve::ErrorCode::kRejected) {
          std::cerr << "admission rejection carries the wrong code\n";
          cross_checks_ok = false;
        }
        ++rejected;
      }
    }
    if (admitted != 4 || rejected != 6) {
      std::cerr << "admission control cross-check FAILED: admitted="
                << admitted << " rejected=" << rejected << "\n";
      cross_checks_ok = false;
    }
    (void)server.drain();
    for (const std::uint64_t ticket : tickets) {
      if (!server.take(ticket).ok) {
        std::cerr << "admitted request failed to serve\n";
        cross_checks_ok = false;
      }
    }

    // An expired deadline must surface as a typed response, not execute.
    serve::Request urgent = workload[0];
    urgent.deadline_ms = 1e-6;
    const std::uint64_t late_ticket = server.submit(urgent);
    (void)server.drain();
    const serve::Response late = server.take(late_ticket);
    if (late.ok || late.code != serve::ErrorCode::kDeadlineExceeded) {
      std::cerr << "deadline expiry cross-check FAILED\n";
      cross_checks_ok = false;
    }
    // A generous deadline must not interfere.
    serve::Request relaxed = workload[0];
    relaxed.deadline_ms = 60000.0;
    const std::uint64_t ok_ticket = server.submit(relaxed);
    (void)server.drain();
    if (!server.take(ok_ticket).ok) {
      std::cerr << "relaxed deadline cross-check FAILED\n";
      cross_checks_ok = false;
    }

    // Shutdown publishes a cancelled response for every queued ticket.
    const std::uint64_t abandoned = server.submit(workload[1]);
    if (server.shutdown() != 1) {
      std::cerr << "shutdown cancellation count cross-check FAILED\n";
      cross_checks_ok = false;
    }
    const serve::Response cancelled = server.take(abandoned);
    if (cancelled.ok || cancelled.code != serve::ErrorCode::kCancelled) {
      std::cerr << "shutdown cancellation code cross-check FAILED\n";
      cross_checks_ok = false;
    }
  }
  std::cout << "cross-checks: " << (cross_checks_ok ? "ok" : "FAILED -- BUG")
            << "\n";

  // -------------------------------------------------------- latency matrix
  struct MatrixPoint {
    std::size_t batch = 0;
    std::size_t lanes = 0;
    double requests_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  const std::vector<std::size_t> batch_sweep = {1, 8, 32};
  const std::vector<std::size_t> lane_sweep =
      smoke ? std::vector<std::size_t>{1, 0}
            : std::vector<std::size_t>{1, 2, 0};
  std::vector<MatrixPoint> matrix;
  for (const std::size_t batch : batch_sweep) {
    for (const std::size_t lanes : lane_sweep) {
      serve::ServerConfig config;
      config.max_batch = batch;
      config.lanes = lanes;
      serve::Server server(config);
      // Warm the caches once so the matrix measures serving, not the
      // first-touch circuit/program builds.
      (void)server.execute_batch(workload);

      std::vector<double> latencies_ms;
      std::size_t served = 0;
      const auto start = Clock::now();
      double elapsed = 0.0;
      std::size_t cursor = 0;
      do {
        std::vector<std::uint64_t> tickets;
        std::vector<Clock::time_point> submitted;
        for (std::size_t b = 0; b < batch; ++b) {
          submitted.push_back(Clock::now());
          tickets.push_back(
              server.submit(workload[cursor++ % workload.size()]));
        }
        (void)server.drain_once();
        const auto published = Clock::now();
        for (std::size_t b = 0; b < batch; ++b) {
          (void)server.take(tickets[b]);
          latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(published -
                                                        submitted[b])
                  .count());
        }
        served += batch;
        elapsed = seconds_since(start);
      } while (elapsed < min_seconds);

      MatrixPoint point;
      point.batch = batch;
      point.lanes = lanes;
      point.requests_per_sec = static_cast<double>(served) / elapsed;
      point.p50_ms = util::percentile(latencies_ms, 50.0);
      point.p99_ms = util::percentile(latencies_ms, 99.0);
      matrix.push_back(point);
      std::cout << "serve batch=" << batch << " lanes=" << lanes << ": "
                << fmt(point.requests_per_sec) << " req/s, p50 "
                << fmt(point.p50_ms) << " ms, p99 " << fmt(point.p99_ms)
                << " ms\n";
    }
  }

  // ------------------------------------------------------------------ JSON
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-serving/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"cross_checks_ok\": " << (cross_checks_ok ? "true" : "false")
       << ",\n"
       << "  \"executor\": {\"workers\": " << workers
       << ", \"parallelism\": " << (workers + 1) << "},\n"
       << "  \"workload\": {\"requests\": " << workload.size()
       << ", \"run_n\": " << run_n << "},\n"
       << "  \"latency_matrix\": [\n";
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const MatrixPoint& point = matrix[i];
    json << "    {\"batch\": " << point.batch << ", \"lanes\": " << point.lanes
         << ", \"requests_per_sec\": " << fmt(point.requests_per_sec)
         << ", \"p50_ms\": " << fmt(point.p50_ms)
         << ", \"p99_ms\": " << fmt(point.p99_ms) << "}"
         << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return cross_checks_ok ? 0 : 1;
}
