// The title's "high-throughput" claim, quantified: MAGIC executes the same
// mapped program in every crossbar row simultaneously, so SIMD throughput
// is rows / cycles.  The ECC mechanism preserves this: the critical-op
// protocol transfers whole lines, so its cycle cost is independent of how
// many rows compute.  Functions per kilocycle, baseline vs proposed, as
// SIMD width grows.
#include <iostream>

#include "arch/params.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  arch::ArchParams params;  // n = 1020
  simpler::MapperOptions options;
  options.row_width = params.n;

  util::Table table({"Benchmark", "Baseline cyc", "Proposed cyc",
                     "SIMD width", "Baseline fn/kcyc", "Proposed fn/kcyc",
                     "Throughput kept"});
  for (const std::string& name : {std::string("adder"), std::string("bar"),
                                  std::string("sin")}) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, options);
    const std::size_t min_pcs = simpler::find_min_pcs(
        program, params, simpler::CoveragePolicy::kInputsAndOutputs);
    arch::ArchParams with_pcs = params;
    with_pcs.num_pcs = min_pcs;
    const simpler::EccScheduleResult sched = simpler::schedule_with_ecc(
        program, with_pcs, simpler::CoveragePolicy::kInputsAndOutputs);
    for (const std::size_t rows : {std::size_t{1}, std::size_t{64},
                                   std::size_t{1020}}) {
      const double base = static_cast<double>(rows) * 1000.0 /
                          static_cast<double>(sched.baseline_cycles);
      const double prop = static_cast<double>(rows) * 1000.0 /
                          static_cast<double>(sched.proposed_cycles);
      table.add_row({name, std::to_string(sched.baseline_cycles),
                     std::to_string(sched.proposed_cycles),
                     std::to_string(rows), util::format_sig(base, 4),
                     util::format_sig(prop, 4),
                     util::format_pct(prop / base)});
    }
  }
  std::cout << "SIMD throughput with and without the ECC mechanism "
               "(n=1020, m=15, k=min per benchmark)\n\n"
            << table << '\n'
            << "The overhead ratio is SIMD-width-independent: the protocol "
               "moves whole wordlines/bitlines, so one update covers all "
               "1020 parallel instances at once -- the property Section III "
               "designed for.\n";
  return 0;
}
