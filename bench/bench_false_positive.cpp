// The Section III false-positive scenario, which the paper defers to
// future work (locally decodable codes): when a cell suffers a soft error
// and is *overwritten by a critical operation before any check*, the
// continuous update cancels the corrupted value instead of the value the
// check bits remember.  The parity is then permanently offset at exactly
// that cell's diagonal pair, so a later scrub "corrects" -- i.e. corrupts
// -- the freshly-written good bit.
//
// This bench (a) demonstrates the mechanism end-to-end on the full
// architecture model, and (b) measures the miscorrection probability as a
// function of write pressure, with and without the natural mitigation of
// checking the target block-band before every critical operation.
#include <iostream>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pimecc;

util::BitMatrix random_image(util::Rng& rng, std::size_t n) {
  util::BitMatrix image(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) image.set(r, c, rng.bernoulli(0.5));
  }
  return image;
}

}  // namespace

int main() {
  using namespace pimecc;

  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  util::Rng rng(0xFA15Eull);

  // (a) Deterministic demonstration.
  {
    arch::PimMachine machine(params);
    machine.load(random_image(rng, params.n));
    machine.inject_data_error(7, 3);  // soft error strikes cell (7,3)...
    // ...and a protected write overwrites row 7 before any check ran.
    util::BitVector fresh(params.n);
    for (std::size_t c = 0; c < params.n; ++c) fresh.set(c, (c % 3) == 0);
    machine.write_row_protected(7, fresh);
    const util::BitVector before_scrub = machine.data().row(7);
    const arch::CheckReport report = machine.check_block_row(7);
    const util::BitVector after_scrub = machine.data().row(7);
    std::cout << "Demonstration: error at (7,3) overwritten before check -> "
              << "scrub 'corrected' " << report.corrected_data
              << " bit(s); row 7 changed by "
              << before_scrub.hamming_distance(after_scrub)
              << " bit(s) (miscorrection of a good value: "
              << (after_scrub.get(3) != fresh.get(3) ? "yes" : "no") << ")\n\n";
  }

  // (b) Rate measurement: per window, E[errors] soft errors land at random;
  // W random protected row-writes execute; then the periodic check runs.
  // A trial is a false positive if the post-check data differs from the
  // intended contents.
  util::Table table({"Writes/window", "Mitigation", "False positives",
                     "Trials", "Rate"});
  constexpr std::size_t kTrials = 150;
  for (const std::size_t writes : {1u, 4u, 16u}) {
    for (const bool mitigate : {false, true}) {
      std::size_t false_positives = 0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        arch::PimMachine machine(params);
        util::BitMatrix intended = random_image(rng, params.n);
        machine.load(intended);
        // One soft error somewhere.
        const std::size_t er = rng.uniform_below(params.n);
        const std::size_t ec = rng.uniform_below(params.n);
        machine.inject_data_error(er, ec);
        bool repaired_before_overwrite = false;
        for (std::size_t w = 0; w < writes; ++w) {
          const std::size_t row = rng.uniform_below(params.n);
          if (mitigate) {
            // Check the target band before the critical write (the paper's
            // check-inputs-before-use discipline applied to updates).
            const arch::CheckReport pre = machine.check_block_row(row);
            repaired_before_overwrite =
                repaired_before_overwrite || pre.corrected_data > 0;
          }
          util::BitVector fresh(params.n);
          for (std::size_t c = 0; c < params.n; ++c) {
            fresh.set(c, rng.bernoulli(0.5));
          }
          machine.write_row_protected(row, fresh);
          for (std::size_t c = 0; c < params.n; ++c) {
            intended.set(row, c, fresh.get(c));
          }
        }
        machine.scrub();
        // Undo the injected error in `intended` if it was never overwritten
        // or repaired (the scrub fixes it in the machine).
        if (machine.data() != intended) {
          const std::size_t diff =
              machine.data().hamming_distance(intended);
          // Any residual difference traces back to the overwrite-before-
          // check race; count the trial.
          (void)diff;
          ++false_positives;
        }
      }
      table.add_row({std::to_string(writes), mitigate ? "check-before-write" : "none",
                     std::to_string(false_positives), std::to_string(kTrials),
                     util::format_pct(static_cast<double>(false_positives) /
                                      static_cast<double>(kTrials))});
    }
  }
  std::cout << "False-positive (overwrite-before-check) measurement "
               "(n=45, m=9, one injected error per trial)\n\n"
            << table << '\n'
            << "Checking the target band before each critical write removes "
               "the race, at the cost of one block-row check per write -- "
               "the locally-decodable-code alternative the paper leaves to "
               "future work would remove it without that cost.\n";
  return 0;
}
