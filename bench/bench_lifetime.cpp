// System-level lifetime simulation: many complete memory lifetimes
// (continuous error arrivals + periodic scrubs, failure = first block with
// two errors in one window) measured empirically and compared against the
// Figure 6 closed form applied to the same (scaled-down) memory.  This
// validates the full chain p -> block -> crossbar -> memory -> MTTF, not
// just the per-block term.
#include <iostream>

#include "reliability/lifetime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  util::Rng rng(0x11FE7ull);
  util::Table table({"SER (FIT/bit)", "Empirical MTTF (h)", "Analytic MTTF (h)",
                     "Ratio", "Failures/Trials"});
  for (const double fit : {1e3, 3e3, 1e4}) {
    rel::LifetimeConfig config;
    config.n = 60;
    config.m = 15;
    config.crossbars = 4;
    config.fit_per_bit = fit;
    config.scrub_period_hours = 24.0;
    config.trials = 250;
    config.max_hours = 24.0 * 100000;
    const rel::LifetimeResult result = rel::simulate_lifetime(config, rng);
    const double empirical = result.empirical_mttf_hours(config.max_hours);
    const double analytic = rel::analytic_mttf_hours(config);
    table.add_row({util::format_sci(fit, 1), util::format_sci(empirical, 3),
                   util::format_sci(analytic, 3),
                   util::format_sig(empirical / analytic, 3),
                   std::to_string(result.failures) + "/" +
                       std::to_string(result.trials)});
  }
  std::cout << "Whole-memory lifetime simulation vs the Figure 6 closed "
               "form (4 crossbars of 60x60, m=15, T=24h)\n\n"
            << table << '\n'
            << "Ratios near 1 validate the block->crossbar->memory "
               "composition, not just the per-block failure term.\n";
  return 0;
}
