// Ablation over the block size m (the Section III trade-off bullet:
// "smaller blocks increase overall reliability at the cost of more data
// overhead").  For each odd m dividing n = 1020: MTTF at the Flash-like
// SER, check-bit storage overhead, and total added memristors.
#include <iostream>

#include "arch/device_count.hpp"
#include "arch/params.hpp"
#include "reliability/analytic.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  util::Table table({"m", "Proposed MTTF (h)", "Improvement (x)",
                     "Check-bit overhead", "Added memristors"});
  rel::ReliabilityQuery query;
  query.fit_per_bit = 1e-3;
  const double baseline = rel::evaluate_baseline(query).mttf_hours;

  for (const std::size_t m : {std::size_t{3}, std::size_t{5}, std::size_t{15},
                              std::size_t{17}, std::size_t{51}, std::size_t{85},
                              std::size_t{255}}) {
    query.m = m;
    const double mttf = rel::evaluate_proposed(query).mttf_hours;
    arch::ArchParams params;
    params.m = m;
    const arch::DeviceCounts counts = arch::count_devices(params);
    const double check_overhead = 2.0 / static_cast<double>(m);
    table.add_row({std::to_string(m), util::format_sci(mttf, 3),
                   util::format_sci(mttf / baseline, 2),
                   util::format_pct(check_overhead),
                   util::format_sci(static_cast<double>(counts.total_memristors -
                                                        params.n * params.n),
                                    2)});
  }
  std::cout << "Ablation -- block size m (n=1020, SER=1e-3 FIT/bit, T=24h; "
               "baseline MTTF "
            << util::format_sci(baseline, 3) << " h)\n\n"
            << table << '\n'
            << "Smaller m: higher reliability, more check-bit storage -- the "
               "paper's stated trade-off.\n";
  return 0;
}
