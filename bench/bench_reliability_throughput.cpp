// Reliability throughput harness: measures the sparse event-driven engine
// against its dense reference on both reliability hot paths and emits
// machine-readable BENCH_reliability.json -- the reliability-layer
// companion of bench_engine/codec/arch_throughput.
//
//   1. montecarlo: trials/second, run_montecarlo (O(flips) sparse trials:
//      inject -> scrub_block on touched blocks -> exact residual -> undo-log
//      rollback) vs reference_run_montecarlo (per-trial golden copies +
//      whole-array scrub + row-XOR scan).  SERs are chosen so a trial
//      carries ~3 flips on average, the paper's rare-event regime.
//   2. lifetime: scrub windows/second, simulate_lifetime (geometric
//      skip-ahead over empty windows + conditioned hit counts) vs
//      reference_simulate_lifetime (one binomial per window) across a
//      multi-year horizon where most windows are empty.
//
// Every run first executes the cross-check gate and the process exit
// status reflects it:
//   - montecarlo: fast and reference counters must be EQUAL on a shared
//     seed for every timed configuration (miscorrected excluded: the
//     sparse engine is exact where the reference approximates, so it is
//     gated by <= instead);
//   - lifetime: exact scrub-count equality at zero rate, and on a hot
//     configuration matched failure counts within a 5-sigma binomial band
//     plus empirical-vs-analytic MTTF agreement for both engines.
//
// Usage: bench_reliability_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (small arrays, short measurements)
//   --out=PATH where to write the JSON (default: BENCH_reliability.json)
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "reliability/lifetime.hpp"
#include "reliability/montecarlo.hpp"
#include "reliability/reference_reliability.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pimecc::rel::LifetimeConfig;
using pimecc::rel::LifetimeResult;
using pimecc::rel::MonteCarloConfig;
using pimecc::rel::MonteCarloResult;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// FIT/bit that makes the expected flip count per window equal `mean_flips`
/// over a `population`-cell array: p = mean/population, fit = p * 1e9 / T.
double fit_for_mean_flips(double mean_flips, std::size_t population,
                          double window_hours) {
  const double p = mean_flips / static_cast<double>(population);
  return p * 1e9 / window_hours;
}

MonteCarloResult without_miscorrected(MonteCarloResult r) {
  r.miscorrected = 0;
  return r;
}

struct MetricResult {
  double ref_per_sec = 0.0;
  double fast_per_sec = 0.0;
  [[nodiscard]] double speedup() const { return fast_per_sec / ref_per_sec; }
};

struct McConfigResult {
  std::size_t n = 0, m = 0;
  double fit = 0.0;
  double mean_flips = 0.0;
  MetricResult trials;
};

struct LtConfigResult {
  std::size_t n = 0, m = 0, crossbars = 0;
  double fit = 0.0;
  double horizon_hours = 0.0;
  std::uint64_t windows_per_trial = 0;
  MetricResult windows;
};

/// Runs `campaign(trials)` repeatedly until `min_seconds` elapsed; returns
/// units/second where `campaign` reports how many units one call covered.
template <typename Campaign>
double measure_rate(double min_seconds, Campaign&& campaign) {
  double units = 0.0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    units += campaign();
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return units / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_reliability.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_reliability_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  bool cross_checks_ok = true;
  const double min_seconds = smoke ? 0.05 : 1.0;

  // ------------------------------------------------------------ montecarlo
  struct McCase {
    std::size_t n, m;
  };
  const std::vector<McCase> mc_cases =
      smoke ? std::vector<McCase>{{120, 15}}
            : std::vector<McCase>{{510, 15}, {1020, 15}};
  std::vector<McConfigResult> mc_results;
  for (const McCase& c : mc_cases) {
    MonteCarloConfig config;
    config.n = c.n;
    config.m = c.m;
    config.window_hours = 24.0;
    config.threads = 1;
    const std::size_t blocks = (c.n / c.m) * (c.n / c.m);
    const std::size_t population = c.n * c.n + blocks * 2 * c.m;
    const double mean_flips = 3.0;
    config.fit_per_bit = fit_for_mean_flips(mean_flips, population, 24.0);

    // Cross-check gate: shared seed, counter equality per substream.
    config.trials = smoke ? 30 : 40;
    util::Rng fast_rng(0xBE7C'7E57ull), ref_rng(0xBE7C'7E57ull);
    const MonteCarloResult fast = rel::run_montecarlo(config, fast_rng);
    const MonteCarloResult ref = rel::reference_run_montecarlo(config, ref_rng);
    if (!(without_miscorrected(fast) == without_miscorrected(ref)) ||
        fast.miscorrected > ref.miscorrected ||
        fast.miscorrected > fast.blocks_failed) {
      std::cerr << "montecarlo cross-check FAILED at n=" << c.n << " m=" << c.m
                << "\n";
      cross_checks_ok = false;
    }

    McConfigResult r;
    r.n = c.n;
    r.m = c.m;
    r.fit = config.fit_per_bit;
    r.mean_flips = mean_flips;

    const std::size_t fast_trials = smoke ? 2000 : 20000;
    const std::size_t ref_trials = smoke ? 50 : 100;
    std::uint64_t stamp = 1;
    r.trials.fast_per_sec = measure_rate(min_seconds, [&] {
      config.trials = fast_trials;
      util::Rng rng(stamp++);
      (void)rel::run_montecarlo(config, rng);
      return static_cast<double>(fast_trials);
    });
    r.trials.ref_per_sec = measure_rate(min_seconds, [&] {
      config.trials = ref_trials;
      util::Rng rng(stamp++);
      (void)rel::reference_run_montecarlo(config, rng);
      return static_cast<double>(ref_trials);
    });
    mc_results.push_back(r);
    std::cout << "montecarlo n=" << c.n << " m=" << c.m << ": sparse "
              << fmt(r.trials.fast_per_sec) << " trials/s, reference "
              << fmt(r.trials.ref_per_sec) << " trials/s -> "
              << fmt(r.trials.speedup()) << "x\n";
  }

  // -------------------------------------------------------------- lifetime
  struct LtCase {
    std::size_t n, m, crossbars;
    double horizon_hours;
  };
  const std::vector<LtCase> lt_cases =
      smoke ? std::vector<LtCase>{{60, 15, 1, 24.0 * 365 * 10}}
            : std::vector<LtCase>{{1020, 15, 1, 24.0 * 365 * 20}};
  std::vector<LtConfigResult> lt_results;
  for (const LtCase& c : lt_cases) {
    LifetimeConfig config;
    config.n = c.n;
    config.m = c.m;
    config.crossbars = c.crossbars;
    config.scrub_period_hours = 24.0;
    config.max_hours = c.horizon_hours;
    config.threads = 1;
    const std::size_t blocks = (c.n / c.m) * (c.n / c.m) * c.crossbars;
    const std::uint64_t cells =
        static_cast<std::uint64_t>(blocks) * (c.m * c.m + 2 * c.m);
    // Rare-event regime: ~1 non-empty window per hundred, the setting the
    // skip-ahead is built for (Fig. 6 rates are far rarer still).
    config.fit_per_bit =
        fit_for_mean_flips(0.01, static_cast<std::size_t>(cells), 24.0);

    LtConfigResult r;
    r.n = c.n;
    r.m = c.m;
    r.crossbars = c.crossbars;
    r.fit = config.fit_per_bit;
    r.horizon_hours = c.horizon_hours;
    r.windows_per_trial = static_cast<std::uint64_t>(
        std::ceil(c.horizon_hours / config.scrub_period_hours));

    // Exact gate: at zero rate both engines must scrub every window of
    // every trial -- pins the skip-ahead's window accounting to the walker.
    {
      LifetimeConfig zero = config;
      zero.fit_per_bit = 0.0;
      zero.trials = 3;
      util::Rng fz(1), rz(1);
      const LifetimeResult a = rel::simulate_lifetime(zero, fz);
      const LifetimeResult b = rel::reference_simulate_lifetime(zero, rz);
      if (a.scrubs_performed != b.scrubs_performed || a.failures != 0 ||
          b.failures != 0) {
        std::cerr << "lifetime zero-rate cross-check FAILED at n=" << c.n << "\n";
        cross_checks_ok = false;
      }
    }

    std::uint64_t stamp = 1000;
    const std::size_t fast_trials = smoke ? 50 : 200;
    const std::size_t ref_trials = smoke ? 5 : 10;
    r.windows.fast_per_sec = measure_rate(min_seconds, [&] {
      config.trials = fast_trials;
      util::Rng rng(stamp++);
      return static_cast<double>(rel::simulate_lifetime(config, rng).scrubs_performed);
    });
    r.windows.ref_per_sec = measure_rate(min_seconds, [&] {
      config.trials = ref_trials;
      util::Rng rng(stamp++);
      return static_cast<double>(
          rel::reference_simulate_lifetime(config, rng).scrubs_performed);
    });
    lt_results.push_back(r);
    std::cout << "lifetime n=" << c.n << " m=" << c.m << " x" << c.crossbars
              << " horizon=" << fmt(c.horizon_hours / 8760.0)
              << "y: skip-ahead " << fmt(r.windows.fast_per_sec)
              << " windows/s, reference " << fmt(r.windows.ref_per_sec)
              << " windows/s -> " << fmt(r.windows.speedup()) << "x\n";
  }

  // Hot-configuration distribution gate: the skip-ahead resamples the
  // stream, so the pinning is matched failure counts (binomial band) and
  // analytic-model agreement, not bit equality.
  {
    LifetimeConfig hot;
    hot.n = 60;
    hot.m = 15;
    hot.crossbars = 4;
    hot.fit_per_bit = 1e4;  // analytic MTTF ~ 221 h
    hot.scrub_period_hours = 24.0;
    hot.max_hours = 240.0;
    hot.trials = smoke ? 200 : 600;
    util::Rng fast_rng(0x11FE'7'BE11ull), ref_rng(0x11FE'7'BE11ull);
    const LifetimeResult fast = rel::simulate_lifetime(hot, fast_rng);
    const LifetimeResult ref = rel::reference_simulate_lifetime(hot, ref_rng);
    const double n = static_cast<double>(hot.trials);
    const double pf = static_cast<double>(fast.failures) / n;
    const double pr = static_cast<double>(ref.failures) / n;
    const double sigma = std::sqrt((pf * (1 - pf) + pr * (1 - pr)) / n);
    if (fast.failures == 0 || ref.failures == 0 ||
        std::abs(pf - pr) > 5.0 * sigma + 1e-9) {
      std::cerr << "lifetime failure-count cross-check FAILED: fast "
                << fast.failures << "/" << hot.trials << " vs reference "
                << ref.failures << "/" << hot.trials << "\n";
      cross_checks_ok = false;
    }
    const double analytic = rel::analytic_mttf_hours(hot);
    for (const auto& [name, result] :
         {std::pair<const char*, const LifetimeResult*>{"skip-ahead", &fast},
          {"reference", &ref}}) {
      const double empirical = result->empirical_mttf_hours(hot.max_hours);
      if (std::abs(empirical / analytic - 1.0) > 0.35) {
        std::cerr << "lifetime analytic cross-check FAILED (" << name << "): "
                  << fmt(empirical) << " h vs analytic " << fmt(analytic)
                  << " h\n";
        cross_checks_ok = false;
      }
    }
  }

  std::cout << "cross-checks: " << (cross_checks_ok ? "ok" : "FAILED -- BUG")
            << "\n";

  // ------------------------------------------------------------------ JSON
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-reliability/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"cross_checks_ok\": " << (cross_checks_ok ? "true" : "false")
       << ",\n"
       << "  \"montecarlo\": [\n";
  for (std::size_t i = 0; i < mc_results.size(); ++i) {
    const McConfigResult& r = mc_results[i];
    json << "    {\"n\": " << r.n << ", \"m\": " << r.m
         << ", \"fit_per_bit\": " << fmt(r.fit)
         << ", \"mean_flips_per_trial\": " << fmt(r.mean_flips)
         << ", \"reference_trials_per_sec\": " << fmt(r.trials.ref_per_sec)
         << ", \"sparse_trials_per_sec\": " << fmt(r.trials.fast_per_sec)
         << ", \"speedup\": " << fmt(r.trials.speedup()) << "}"
         << (i + 1 < mc_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"lifetime\": [\n";
  for (std::size_t i = 0; i < lt_results.size(); ++i) {
    const LtConfigResult& r = lt_results[i];
    json << "    {\"n\": " << r.n << ", \"m\": " << r.m << ", \"crossbars\": "
         << r.crossbars << ", \"fit_per_bit\": " << fmt(r.fit)
         << ", \"horizon_hours\": " << fmt(r.horizon_hours)
         << ", \"windows_per_trial\": " << r.windows_per_trial
         << ", \"reference_windows_per_sec\": " << fmt(r.windows.ref_per_sec)
         << ", \"skip_ahead_windows_per_sec\": " << fmt(r.windows.fast_per_sec)
         << ", \"speedup\": " << fmt(r.windows.speedup()) << "}"
         << (i + 1 < lt_results.size() ? "," : "") << "\n";
  }
  const McConfigResult& mc_largest = mc_results.back();
  const LtConfigResult& lt_largest = lt_results.back();
  json << "  ],\n"
       << "  \"largest_config\": {\"montecarlo_n\": " << mc_largest.n
       << ", \"montecarlo_m\": " << mc_largest.m
       << ", \"montecarlo_speedup\": " << fmt(mc_largest.trials.speedup())
       << ", \"lifetime_n\": " << lt_largest.n
       << ", \"lifetime_horizon_years\": "
       << fmt(lt_largest.horizon_hours / 8760.0)
       << ", \"lifetime_speedup\": " << fmt(lt_largest.windows.speedup())
       << "}\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return cross_checks_ok ? 0 : 1;
}
