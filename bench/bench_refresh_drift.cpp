// Drift-accumulation experiment (paper Section II-B): oxygen-vacancy drift
// causes state flips that accumulate over time; the refresh mechanism of
// [6] periodically resets accumulated drift but "does not address abrupt
// soft errors" and cannot undo flips that already happened between
// refreshes.  The paper notes refresh composes with the proposed ECC --
// this bench quantifies the composition: flips remaining after a one-week
// horizon under none / refresh-only / ECC-only / both.
#include <iostream>

#include "core/array_code.hpp"
#include "fault/models.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pimecc;

struct Scenario {
  bool refresh = false;
  bool ecc = false;
};

std::size_t run_scenario(Scenario scenario, std::uint64_t seed) {
  constexpr std::size_t kN = 60;
  constexpr std::size_t kM = 15;
  constexpr double kHorizonHours = 168.0;     // one week
  constexpr double kStepHours = 1.0;
  constexpr double kRefreshPeriod = 12.0;
  constexpr double kScrubPeriod = 24.0;

  util::Rng rng(seed);
  util::BitMatrix golden(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) golden.set(r, c, rng.bernoulli(0.5));
  }
  util::BitMatrix data = golden;
  ecc::ArrayCode code(kN, kM);
  code.encode_all(data);

  // Drift: mean 1/h toward a threshold of 30, so unrefreshed cells flip
  // after ~30 h while a 12 h refresh keeps accumulation far below
  // threshold.  Abrupt upsets (ion strikes, ~1e4 FIT/bit here) arrive on
  // top; refresh cannot touch those.
  fault::DriftModel drift(kN * kN, 1.0, 1.0, 30.0);
  const fault::ConstantRateModel abrupt(1e4);

  // Integer step counts: the refresh/scrub cadences are exact multiples of
  // the step, so boundary detection is a modulus, not the old
  // floating-point static_cast<int>(hours / period) comparison (which
  // drifts once the accumulated `hours` picks up rounding error, and which
  // was topped off by an extra unscheduled scrub after the loop).
  constexpr std::size_t kSteps = static_cast<std::size_t>(kHorizonHours / kStepHours);
  constexpr std::size_t kRefreshEvery =
      static_cast<std::size_t>(kRefreshPeriod / kStepHours);
  constexpr std::size_t kScrubEvery =
      static_cast<std::size_t>(kScrubPeriod / kStepHours);
  for (std::size_t step = 0; step < kSteps; ++step) {
    for (const std::size_t cell : drift.advance(rng, kStepHours)) {
      data.flip(cell / kN, cell % kN);
    }
    const std::size_t strikes =
        abrupt.sample_flip_count(rng, kN * kN, kStepHours);
    for (std::size_t s = 0; s < strikes; ++s) {
      data.flip(rng.uniform_below(kN), rng.uniform_below(kN));
    }
    if (scenario.refresh && (step + 1) % kRefreshEvery == 0) drift.refresh();
    if (scenario.ecc && (step + 1) % kScrubEvery == 0) code.scrub(data);
  }
  return data.hamming_distance(golden);
}

}  // namespace

int main() {
  using namespace pimecc;

  util::Table table({"Mitigation", "Residual flipped bits (of 3600)"});
  const Scenario scenarios[4] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  const char* labels[4] = {"none", "refresh only", "ECC only",
                           "refresh + ECC (the paper's composition)"};
  for (int s = 0; s < 4; ++s) {
    // Same seed for comparability (trajectories diverge once mitigation
    // alters which cells remain live, but magnitudes stay comparable).
    table.add_row({labels[s], std::to_string(run_scenario(scenarios[s], 77))});
  }
  std::cout << "Drift + refresh + ECC composition (60x60 crossbar, m=15, "
               "1-week horizon, refresh/12h, scrub/24h)\n\n"
            << table << '\n'
            << "Refresh suppresses the drift *source*; ECC repairs the "
               "flips that still slip through (and abrupt upsets refresh "
               "cannot touch).  Together they dominate either alone.\n";
  return 0;
}
