// Engine throughput harness: measures the word-parallel execution engine
// against the bit-serial reference on both hot paths and emits
// machine-readable BENCH_engine.json so the perf trajectory is tracked
// from PR 2 onward.
//
//   1. Crossbar MAGIC NOR, all lanes, both orientations: init+NOR pairs on
//      an n x n array, word-parallel Crossbar vs bit-serial
//      ReferenceCrossbar, reported as lanes/second and speedup.
//   2. Monte Carlo reliability: run_montecarlo trials/second across a
//      thread-count sweep, with the determinism cross-check (results must
//      be bit-identical for every thread count) recorded in the output.
//
// Usage: bench_engine_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (small array, few trials)
//   --out=PATH where to write the JSON (default: BENCH_engine.json in cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/reference_crossbar.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Xbar>
void randomize(Xbar& xb, pimecc::util::Rng& rng) {
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      xb.poke(r, c, rng.bernoulli(0.5));
    }
  }
}

/// Runs batches of all-lane ops until at least `min_seconds` elapsed and
/// returns NOR lanes per second.  With `with_init`, each NOR is preceded by
/// the LRS initialization of its output line (the full gate sequence);
/// without it, a pure magic_nor stream is measured.  The output line cycles
/// so successive gates touch different cells, like a real mapped netlist.
template <typename Xbar>
double measure_nor_lanes_per_sec(Xbar& xb, pimecc::xbar::Orientation o,
                                 bool with_init, double min_seconds,
                                 std::size_t batch) {
  using pimecc::xbar::Orientation;
  const std::size_t lines = o == Orientation::kRow ? xb.cols() : xb.rows();
  const std::size_t lanes = o == Orientation::kRow ? xb.rows() : xb.cols();
  const std::size_t ins[2] = {0, 1};
  std::size_t nors = 0;
  std::size_t next_out = 2;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t i = 0; i < batch; ++i) {
      if (with_init) {
        const std::size_t out[1] = {next_out};
        xb.magic_init(o, out);
      }
      (void)xb.magic_nor(o, ins, next_out);
      if (++next_out == lines) next_out = 2;
    }
    nors += batch;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(nors) * static_cast<double>(lanes) / elapsed;
}

struct McPoint {
  std::size_t threads = 0;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;
  using xbar::Orientation;

  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_engine_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  const std::size_t n = smoke ? 256 : 1024;
  const double min_seconds = smoke ? 0.02 : 0.25;
  const std::size_t batch = smoke ? 8 : 32;

  // ---------------------------------------------------------------- xbar
  struct OrientationResult {
    const char* name;
    double ref_nor_lanes_per_sec;
    double fast_nor_lanes_per_sec;
    double nor_speedup;
    double ref_pair_lanes_per_sec;
    double fast_pair_lanes_per_sec;
    double pair_speedup;
  };
  std::vector<OrientationResult> xbar_results;
  for (const Orientation o : {Orientation::kRow, Orientation::kColumn}) {
    util::Rng rng(0xBE7C'11ull);
    xbar::Crossbar fast(n, n);
    randomize(fast, rng);
    rng.reseed(0xBE7C'11ull);
    xbar::ReferenceCrossbar ref(n, n);
    randomize(ref, rng);

    OrientationResult r;
    r.name = o == Orientation::kRow ? "row" : "column";
    r.ref_nor_lanes_per_sec =
        measure_nor_lanes_per_sec(ref, o, false, min_seconds, batch);
    r.fast_nor_lanes_per_sec =
        measure_nor_lanes_per_sec(fast, o, false, min_seconds, batch);
    r.nor_speedup = r.fast_nor_lanes_per_sec / r.ref_nor_lanes_per_sec;
    r.ref_pair_lanes_per_sec =
        measure_nor_lanes_per_sec(ref, o, true, min_seconds, batch);
    r.fast_pair_lanes_per_sec =
        measure_nor_lanes_per_sec(fast, o, true, min_seconds, batch);
    r.pair_speedup = r.fast_pair_lanes_per_sec / r.ref_pair_lanes_per_sec;
    xbar_results.push_back(r);
    std::cout << "magic_nor " << n << "x" << n << " all-lane (" << r.name
              << " orientation): reference " << fmt(r.ref_nor_lanes_per_sec)
              << " lanes/s, word-parallel " << fmt(r.fast_nor_lanes_per_sec)
              << " lanes/s, speedup " << fmt(r.nor_speedup) << "x (init+nor pair: "
              << fmt(r.pair_speedup) << "x)\n";
  }

  // ---------------------------------------------------------- monte carlo
  rel::MonteCarloConfig config;
  config.n = smoke ? 60 : 120;
  config.m = 15;
  config.fit_per_bit = 1e6;
  config.window_hours = 24.0;
  config.trials = smoke ? 200 : 2000;

  std::vector<McPoint> mc_points;
  bool deterministic = true;
  rel::MonteCarloResult baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    config.threads = threads;
    util::Rng rng(0xF16'6ull);
    const auto start = Clock::now();
    const rel::MonteCarloResult result = rel::run_montecarlo(config, rng);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      baseline = result;
    } else if (!(result == baseline)) {
      deterministic = false;
    }
    McPoint point;
    point.threads = threads;
    point.seconds = elapsed;
    point.trials_per_sec = static_cast<double>(config.trials) / elapsed;
    point.speedup_vs_1 =
        mc_points.empty() ? 1.0 : point.trials_per_sec / mc_points[0].trials_per_sec;
    mc_points.push_back(point);
    std::cout << "montecarlo n=" << config.n << " trials=" << config.trials
              << " threads=" << threads << ": " << fmt(point.trials_per_sec)
              << " trials/s (speedup " << fmt(point.speedup_vs_1) << "x)\n";
  }
  std::cout << "deterministic across thread counts: "
            << (deterministic ? "yes" : "NO -- BUG") << "\n";

  // ----------------------------------------------------------------- json
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-engine/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"xbar\": {\n"
       << "    \"n\": " << n << ",\n";
  for (std::size_t i = 0; i < xbar_results.size(); ++i) {
    const OrientationResult& r = xbar_results[i];
    json << "    \"" << r.name << "\": {\n"
         << "      \"nor\": {\"reference_lanes_per_sec\": "
         << fmt(r.ref_nor_lanes_per_sec) << ", \"word_parallel_lanes_per_sec\": "
         << fmt(r.fast_nor_lanes_per_sec) << ", \"speedup\": "
         << fmt(r.nor_speedup) << "},\n"
         << "      \"init_nor_pair\": {\"reference_lanes_per_sec\": "
         << fmt(r.ref_pair_lanes_per_sec) << ", \"word_parallel_lanes_per_sec\": "
         << fmt(r.fast_pair_lanes_per_sec) << ", \"speedup\": "
         << fmt(r.pair_speedup) << "}\n"
         << "    },\n";
  }
  const double min_speedup =
      std::min(xbar_results[0].nor_speedup, xbar_results[1].nor_speedup);
  json << "    \"min_nor_speedup\": " << fmt(min_speedup) << "\n"
       << "  },\n"
       << "  \"montecarlo\": {\n"
       << "    \"n\": " << config.n << ",\n"
       << "    \"m\": " << config.m << ",\n"
       << "    \"fit_per_bit\": " << fmt(config.fit_per_bit) << ",\n"
       << "    \"trials\": " << config.trials << ",\n"
       << "    \"deterministic_across_threads\": "
       << (deterministic ? "true" : "false") << ",\n"
       << "    \"thread_sweep\": [\n";
  for (std::size_t i = 0; i < mc_points.size(); ++i) {
    const McPoint& p = mc_points[i];
    json << "      {\"threads\": " << p.threads << ", \"seconds\": "
         << fmt(p.seconds) << ", \"trials_per_sec\": " << fmt(p.trials_per_sec)
         << ", \"speedup_vs_1\": " << fmt(p.speedup_vs_1) << "}"
         << (i + 1 < mc_points.size() ? "," : "") << "\n";
  }
  json << "    ]\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return deterministic ? 0 : 1;
}
