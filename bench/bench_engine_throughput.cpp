// Engine throughput harness: measures the word-parallel execution engine
// against the bit-serial reference on both hot paths and emits
// machine-readable BENCH_engine.json so the perf trajectory is tracked
// from PR 2 onward.
//
//   1. Crossbar MAGIC NOR, all lanes, both orientations: init+NOR pairs on
//      an n x n array, bit-serial ReferenceCrossbar vs the word-parallel
//      engine pinned to its scalar kernels vs the widest SIMD dispatch
//      level, reported as lanes/second and speedups.  Two array sizes per
//      mode, one of them with n mod 64 != 0 so the tail-word masking path
//      is always timed and cross-checked.  Row-orientation NOR stays scalar
//      at every dispatch level (its lanes are scattered single-word
//      accesses, nothing contiguous to vectorize), so its scalar and SIMD
//      columns coincide by design.
//   2. Monte Carlo reliability: run_montecarlo trials/second across a
//      thread-count sweep, with the determinism cross-check (results must
//      be bit-identical for every thread count) recorded in the output.
//
// Before any timing, a deterministic random gate program is replayed on the
// word-parallel crossbar at EVERY runtime dispatch level and compared
// against the bit-serial reference (violations and final contents); any
// divergence makes the run exit non-zero, same as the MC determinism gate.
//
// Usage: bench_engine_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (small arrays, few trials)
//   --out=PATH where to write the JSON (default: BENCH_engine.json in cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/reference_crossbar.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Xbar>
void randomize(Xbar& xb, pimecc::util::Rng& rng) {
  for (std::size_t r = 0; r < xb.rows(); ++r) {
    for (std::size_t c = 0; c < xb.cols(); ++c) {
      xb.poke(r, c, rng.bernoulli(0.5));
    }
  }
}

/// Runs batches of all-lane ops until at least `min_seconds` elapsed and
/// returns NOR lanes per second.  With `with_init`, each NOR is preceded by
/// the LRS initialization of its output line (the full gate sequence);
/// without it, a pure magic_nor stream is measured.  The output line cycles
/// so successive gates touch different cells, like a real mapped netlist.
template <typename Xbar>
double measure_nor_lanes_per_sec(Xbar& xb, pimecc::xbar::Orientation o,
                                 bool with_init, double min_seconds,
                                 std::size_t batch) {
  using pimecc::xbar::Orientation;
  const std::size_t lines = o == Orientation::kRow ? xb.cols() : xb.rows();
  const std::size_t lanes = o == Orientation::kRow ? xb.rows() : xb.cols();
  const std::size_t ins[2] = {0, 1};
  std::size_t nors = 0;
  std::size_t next_out = 2;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    for (std::size_t i = 0; i < batch; ++i) {
      if (with_init) {
        const std::size_t out[1] = {next_out};
        xb.magic_init(o, out);
      }
      (void)xb.magic_nor(o, ins, next_out);
      if (++next_out == lines) next_out = 2;
    }
    nors += batch;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(nors) * static_cast<double>(lanes) / elapsed;
}

/// Replays a deterministic random init+NOR program on the word-parallel
/// crossbar at dispatch level `level` and on the bit-serial reference;
/// returns false (after a diagnostic) on any violation-count or final
/// contents divergence.
bool crossbar_matches_reference(std::size_t n, pimecc::util::simd::Level level,
                                std::size_t steps) {
  namespace simd = pimecc::util::simd;
  using pimecc::xbar::Orientation;
  simd::set_level(level);
  pimecc::util::Rng rng(0x5EED'0CB5ull ^ n);
  pimecc::xbar::Crossbar fast(n, n);
  pimecc::xbar::ReferenceCrossbar ref(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const bool v = rng.bernoulli(0.5);
      fast.poke(r, c, v);
      ref.poke(r, c, v);
    }
  }
  for (std::size_t step = 0; step < steps; ++step) {
    const Orientation o =
        rng.bernoulli(0.5) ? Orientation::kRow : Orientation::kColumn;
    const std::size_t out_line = rng.uniform_below(n);
    std::vector<std::size_t> ins;
    const std::size_t fan_in = 1 + rng.uniform_below(3);
    for (std::size_t i = 0; i < fan_in; ++i) {
      std::size_t line = rng.uniform_below(n);
      if (line == out_line) line = (line + 1) % n;
      bool dup = false;
      for (const std::size_t seen : ins) dup |= seen == line;
      if (!dup) ins.push_back(line);
    }
    const std::size_t out_arr[1] = {out_line};
    fast.magic_init(o, out_arr);
    ref.magic_init(o, out_arr);
    const auto rf = fast.magic_nor(o, ins, out_line);
    const auto rr = ref.magic_nor(o, ins, out_line);
    if (rf.violations != rr.violations) {
      std::cerr << "magic_nor violation mismatch at level "
                << simd::to_string(level) << " n=" << n << " step=" << step
                << "\n";
      return false;
    }
  }
  if (!(fast.contents() == ref.contents())) {
    std::cerr << "crossbar contents mismatch at level " << simd::to_string(level)
              << " n=" << n << "\n";
    return false;
  }
  return true;
}

struct McPoint {
  std::size_t threads = 0;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;
  using xbar::Orientation;

  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_engine_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  // One power-of-two size and one with n mod 64 != 0, so the tail-word
  // masking in the column-NOR kernel is always part of the timed (and
  // cross-checked) surface.
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{250, 256}
            : std::vector<std::size_t>{1000, 1024};
  const double min_seconds = smoke ? 0.02 : 0.25;
  const std::size_t batch = smoke ? 8 : 32;

  namespace simd = util::simd;
  const simd::Level native_level = simd::active_level();

  // ------------------------------------------------- xbar cross-check gate
  bool xbar_ok = true;
  const std::size_t check_steps = smoke ? 48 : 96;
  for (const std::size_t n : sizes) {
    for (const simd::Level level : simd::available_levels()) {
      xbar_ok = crossbar_matches_reference(n, level, check_steps) && xbar_ok;
    }
  }
  simd::set_level(native_level);

  // ---------------------------------------------------------------- xbar
  struct OrientationResult {
    const char* name;
    double ref_nor_lanes_per_sec;
    double scalar_nor_lanes_per_sec;
    double simd_nor_lanes_per_sec;
    double nor_speedup;
    double nor_simd_vs_scalar;
    double ref_pair_lanes_per_sec;
    double scalar_pair_lanes_per_sec;
    double simd_pair_lanes_per_sec;
    double pair_speedup;
    double pair_simd_vs_scalar;
  };
  struct SizeResult {
    std::size_t n;
    std::vector<OrientationResult> orients;
  };
  std::vector<SizeResult> xbar_results;
  for (const std::size_t n : sizes) {
    SizeResult sr;
    sr.n = n;
    for (const Orientation o : {Orientation::kRow, Orientation::kColumn}) {
      util::Rng rng(0xBE7C'11ull);
      xbar::Crossbar fast(n, n);
      randomize(fast, rng);
      rng.reseed(0xBE7C'11ull);
      xbar::ReferenceCrossbar ref(n, n);
      randomize(ref, rng);

      OrientationResult r;
      r.name = o == Orientation::kRow ? "row" : "column";
      r.ref_nor_lanes_per_sec =
          measure_nor_lanes_per_sec(ref, o, false, min_seconds, batch);
      r.ref_pair_lanes_per_sec =
          measure_nor_lanes_per_sec(ref, o, true, min_seconds, batch);

      simd::set_level(simd::Level::kScalar);
      r.scalar_nor_lanes_per_sec =
          measure_nor_lanes_per_sec(fast, o, false, min_seconds, batch);
      r.scalar_pair_lanes_per_sec =
          measure_nor_lanes_per_sec(fast, o, true, min_seconds, batch);

      simd::set_level(native_level);
      if (native_level == simd::Level::kScalar || o == Orientation::kRow) {
        // Row-orientation NOR never routes through the dispatch table (it
        // stays scalar at every level), so re-timing it would only record
        // clock noise: report the scalar numbers for both columns.
        r.simd_nor_lanes_per_sec = r.scalar_nor_lanes_per_sec;
        r.simd_pair_lanes_per_sec = r.scalar_pair_lanes_per_sec;
      } else {
        r.simd_nor_lanes_per_sec =
            measure_nor_lanes_per_sec(fast, o, false, min_seconds, batch);
        r.simd_pair_lanes_per_sec =
            measure_nor_lanes_per_sec(fast, o, true, min_seconds, batch);
      }
      r.nor_speedup = r.simd_nor_lanes_per_sec / r.ref_nor_lanes_per_sec;
      r.nor_simd_vs_scalar =
          r.simd_nor_lanes_per_sec / r.scalar_nor_lanes_per_sec;
      r.pair_speedup = r.simd_pair_lanes_per_sec / r.ref_pair_lanes_per_sec;
      r.pair_simd_vs_scalar =
          r.simd_pair_lanes_per_sec / r.scalar_pair_lanes_per_sec;
      sr.orients.push_back(r);
      std::cout << "magic_nor " << n << "x" << n << " all-lane (" << r.name
                << " orientation): reference " << fmt(r.ref_nor_lanes_per_sec)
                << " lanes/s, scalar " << fmt(r.scalar_nor_lanes_per_sec)
                << " lanes/s, " << simd::to_string(native_level) << " "
                << fmt(r.simd_nor_lanes_per_sec) << " lanes/s, speedup "
                << fmt(r.nor_speedup) << "x vs reference, "
                << fmt(r.nor_simd_vs_scalar) << "x vs scalar (init+nor pair: "
                << fmt(r.pair_speedup) << "x)\n";
    }
    xbar_results.push_back(sr);
  }
  std::cout << "crossbar dispatch-level cross-check: "
            << (xbar_ok ? "ok" : "FAILED -- BUG") << "\n";

  // ---------------------------------------------------------- monte carlo
  rel::MonteCarloConfig config;
  config.n = smoke ? 60 : 120;
  config.m = 15;
  config.fit_per_bit = 1e6;
  config.window_hours = 24.0;
  config.trials = smoke ? 200 : 2000;

  std::vector<McPoint> mc_points;
  bool deterministic = true;
  rel::MonteCarloResult baseline;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    config.threads = threads;
    util::Rng rng(0xF16'6ull);
    const auto start = Clock::now();
    const rel::MonteCarloResult result = rel::run_montecarlo(config, rng);
    const double elapsed = seconds_since(start);
    if (threads == 1) {
      baseline = result;
    } else if (!(result == baseline)) {
      deterministic = false;
    }
    McPoint point;
    point.threads = threads;
    point.seconds = elapsed;
    point.trials_per_sec = static_cast<double>(config.trials) / elapsed;
    point.speedup_vs_1 =
        mc_points.empty() ? 1.0 : point.trials_per_sec / mc_points[0].trials_per_sec;
    mc_points.push_back(point);
    std::cout << "montecarlo n=" << config.n << " trials=" << config.trials
              << " threads=" << threads << ": " << fmt(point.trials_per_sec)
              << " trials/s (speedup " << fmt(point.speedup_vs_1) << "x)\n";
  }
  std::cout << "deterministic across thread counts: "
            << (deterministic ? "yes" : "NO -- BUG") << "\n";

  // ----------------------------------------------------------------- json
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-engine/2\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"simd_level\": \"" << simd::to_string(native_level) << "\",\n"
       << "  \"xbar_cross_check_ok\": " << (xbar_ok ? "true" : "false") << ",\n"
       << "  \"xbar\": [\n";
  double min_speedup = 0.0;
  bool min_speedup_set = false;
  for (std::size_t s = 0; s < xbar_results.size(); ++s) {
    const SizeResult& sr = xbar_results[s];
    json << "    {\n"
         << "      \"n\": " << sr.n << ",\n";
    for (std::size_t i = 0; i < sr.orients.size(); ++i) {
      const OrientationResult& r = sr.orients[i];
      if (!min_speedup_set || r.nor_speedup < min_speedup) {
        min_speedup = r.nor_speedup;
        min_speedup_set = true;
      }
      json << "      \"" << r.name << "\": {\n"
           << "        \"nor\": {\"reference_lanes_per_sec\": "
           << fmt(r.ref_nor_lanes_per_sec) << ", \"scalar_lanes_per_sec\": "
           << fmt(r.scalar_nor_lanes_per_sec) << ", \"simd_lanes_per_sec\": "
           << fmt(r.simd_nor_lanes_per_sec) << ", \"speedup\": "
           << fmt(r.nor_speedup) << ", \"simd_vs_scalar\": "
           << fmt(r.nor_simd_vs_scalar) << "},\n"
           << "        \"init_nor_pair\": {\"reference_lanes_per_sec\": "
           << fmt(r.ref_pair_lanes_per_sec) << ", \"scalar_lanes_per_sec\": "
           << fmt(r.scalar_pair_lanes_per_sec) << ", \"simd_lanes_per_sec\": "
           << fmt(r.simd_pair_lanes_per_sec) << ", \"speedup\": "
           << fmt(r.pair_speedup) << ", \"simd_vs_scalar\": "
           << fmt(r.pair_simd_vs_scalar) << "}\n"
           << "      }" << (i + 1 < sr.orients.size() ? "," : "") << "\n";
    }
    json << "    }" << (s + 1 < xbar_results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"min_nor_speedup\": " << fmt(min_speedup) << ",\n"
       << "  \"montecarlo\": {\n"
       << "    \"n\": " << config.n << ",\n"
       << "    \"m\": " << config.m << ",\n"
       << "    \"fit_per_bit\": " << fmt(config.fit_per_bit) << ",\n"
       << "    \"trials\": " << config.trials << ",\n"
       << "    \"deterministic_across_threads\": "
       << (deterministic ? "true" : "false") << ",\n"
       << "    \"thread_sweep\": [\n";
  for (std::size_t i = 0; i < mc_points.size(); ++i) {
    const McPoint& p = mc_points[i];
    json << "      {\"threads\": " << p.threads << ", \"seconds\": "
         << fmt(p.seconds) << ", \"trials_per_sec\": " << fmt(p.trials_per_sec)
         << ", \"speedup_vs_1\": " << fmt(p.speedup_vs_1) << "}"
         << (i + 1 < mc_points.size() ? "," : "") << "\n";
  }
  json << "    ]\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return (deterministic && xbar_ok) ? 0 : 1;
}
