// Fleet engine harness: measures the sharded multi-crossbar fleet on the
// work-stealing executor and emits machine-readable BENCH_fleet.json.
//
//   1. montecarlo: trials/second of run_fleet_montecarlo across a
//      shard-count sweep (full executor width) and a worker-count sweep at
//      a fixed fleet size -- the scaling surface of the tentpole.
//   2. scrub: blocks/second of CrossbarFleet::scrub_all across the same
//      shard and worker sweeps (each shard's contiguous image streaming
//      through the SIMD band walks).
//   3. mttf_grid: the paper-scale Figure 6 surface -- lifetime campaigns
//      over banks of up to ~1 GB (8259 shards of 1020 x 1020 at m = 15)
//      across an SER sweep, empirical MTTF next to the Section V-A closed
//      form in every cell.
//
// Every run first executes the cross-check gate and the process exit
// status reflects it:
//   - fleet Monte Carlo totals must be BIT-IDENTICAL, counter for counter,
//     to the flat single-crossbar run_montecarlo on a shared seed at EVERY
//     tested shard count and EVERY tested worker count (the shared
//     sparse-trial substream contract), with identical per-shard slots
//     across worker counts and an identically advanced caller stream;
//   - fleet scrub_all must agree, shard for shard and in aggregate, with a
//     serial loop over independent single-crossbar ArrayCode engines on
//     the same images and injected faults, at serial and full width.
//
// Usage: bench_fleet_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (small fleets, short measurements)
//   --out=PATH where to write the JSON (default: BENCH_fleet.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/fleet.hpp"
#include "core/array_code.hpp"
#include "reliability/fleet_reliability.hpp"
#include "reliability/montecarlo.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// FIT/bit giving `mean_flips` expected flips per window over `population`.
double fit_for_mean_flips(double mean_flips, std::uint64_t population,
                          double window_hours) {
  const double p = mean_flips / static_cast<double>(population);
  return p * 1e9 / window_hours;
}

template <typename Campaign>
double measure_rate(double min_seconds, Campaign&& campaign) {
  double units = 0.0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    units += campaign();
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return units / elapsed;
}

struct SweepPoint {
  std::size_t shards = 0;
  std::size_t threads = 0;  // 0 = full executor width
  double per_sec = 0.0;
};

void emit_sweep(std::ofstream& json, const char* key, const char* unit,
                const std::vector<SweepPoint>& sweep, bool last = false) {
  json << "  \"" << key << "\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << "    {\"shards\": " << sweep[i].shards
         << ", \"threads\": " << sweep[i].threads << ", \"" << unit
         << "\": " << fmt(sweep[i].per_sec) << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ]" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_fleet_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  bool cross_checks_ok = true;
  const double min_seconds = smoke ? 0.05 : 1.0;
  const std::size_t workers = util::Executor::shared().worker_count();

  // Per-shard geometry: the paper's n = 510 case in full, a tiny shard in
  // smoke; mean ~3 flips per trial (the rare-event regime).
  const std::size_t shard_n = smoke ? 60 : 510;
  const std::size_t shard_m = 15;
  const std::vector<std::size_t> shard_sweep =
      smoke ? std::vector<std::size_t>{4, 16}
            : std::vector<std::size_t>{16, 64, 256};
  const std::vector<std::size_t> worker_sweep =
      smoke ? std::vector<std::size_t>{1, 2, 0}
            : std::vector<std::size_t>{1, 2, 4, 0};
  const std::size_t fixed_shards = shard_sweep[shard_sweep.size() / 2];

  auto fleet_mc_config = [&](std::size_t shards, std::size_t trials_per_shard,
                             std::size_t threads) {
    rel::FleetMonteCarloConfig config;
    config.n = shard_n;
    config.m = shard_m;
    config.window_hours = 24.0;
    const std::size_t blocks = (shard_n / shard_m) * (shard_n / shard_m);
    config.fit_per_bit = fit_for_mean_flips(
        3.0, shard_n * shard_n + blocks * 2 * shard_m, 24.0);
    config.shards = shards;
    config.trials_per_shard = trials_per_shard;
    config.threads = threads;
    return config;
  };

  // ---------------------------------------------- cross-check gate: fleet MC
  // Bit-identity against the flat engine at every shard count and worker
  // count the sweeps below will time; shard slots invariant across workers.
  {
    const std::size_t gate_trials_per_shard = smoke ? 3 : 5;
    for (const std::size_t shards : shard_sweep) {
      std::vector<rel::FleetShardOutcome> pinned_slots;
      for (const std::size_t threads : worker_sweep) {
        util::Rng fleet_rng(0xF1EE7ull + shards);
        const rel::FleetMonteCarloResult fleet = rel::run_fleet_montecarlo(
            fleet_mc_config(shards, gate_trials_per_shard, threads),
            fleet_rng);
        util::Rng flat_rng(0xF1EE7ull + shards);
        const rel::MonteCarloResult flat = rel::run_montecarlo(
            fleet_mc_config(shards, gate_trials_per_shard, threads).flat(),
            flat_rng);
        if (!(fleet.total == flat) || fleet_rng.next() != flat_rng.next()) {
          std::cerr << "fleet-vs-flat cross-check FAILED at shards=" << shards
                    << " threads=" << threads << "\n";
          cross_checks_ok = false;
        }
        if (pinned_slots.empty()) {
          pinned_slots = fleet.shards;
        } else if (fleet.shards != pinned_slots) {
          std::cerr << "shard-slot invariance FAILED at shards=" << shards
                    << " threads=" << threads << "\n";
          cross_checks_ok = false;
        }
      }
    }
  }

  // -------------------------------------------- cross-check gate: fleet scrub
  // Fleet bulk scrub vs a serial loop of independent single-crossbar
  // engines on identical images and faults, serial and full width.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    arch::FleetParams params;
    params.n = shard_n;
    params.m = shard_m;
    params.shards = smoke ? 8 : 32;
    params.threads = threads;
    arch::CrossbarFleet fleet(params);
    util::Rng rng(0x5C4Bull);
    fleet.load_random(rng);
    std::vector<util::BitMatrix> mirror_data;
    std::vector<ecc::ArrayCode> mirror_codes;
    for (std::size_t s = 0; s < params.shards; ++s) {
      mirror_data.push_back(fleet.data(s));
      mirror_codes.emplace_back(shard_n, shard_m);
      mirror_codes.back().encode_all(mirror_data.back());
    }
    const auto flips =
        fleet.inject_random_errors(rng, 4 * params.shards);
    for (const arch::FleetAddress& f : flips) {
      mirror_data[f.shard].flip(f.row, f.col);
    }
    const arch::FleetScrubReport report = fleet.scrub_all();
    arch::FleetScrubReport expect;
    for (std::size_t s = 0; s < params.shards; ++s) {
      const ecc::ScrubReport r = mirror_codes[s].scrub(mirror_data[s]);
      ++expect.shards_checked;
      expect.blocks_checked += r.blocks_checked;
      expect.clean += r.clean;
      expect.corrected_data += r.corrected_data;
      expect.corrected_check += r.corrected_check;
      expect.uncorrectable += r.uncorrectable;
    }
    bool images_match = true;
    for (std::size_t s = 0; s < params.shards; ++s) {
      if (!(fleet.data(s) == mirror_data[s])) images_match = false;
    }
    if (!(report == expect) || !images_match) {
      std::cerr << "fleet-vs-single scrub cross-check FAILED at threads="
                << threads << "\n";
      cross_checks_ok = false;
    }
  }
  std::cout << "cross-checks: " << (cross_checks_ok ? "ok" : "FAILED -- BUG")
            << "\n";

  // -------------------------------------------------- montecarlo throughput
  const std::size_t bench_trials_per_shard = smoke ? 3 : 10;
  std::vector<SweepPoint> mc_shard_sweep;
  for (const std::size_t shards : shard_sweep) {
    std::uint64_t stamp = 1;
    SweepPoint point{shards, 0, 0.0};
    point.per_sec = measure_rate(min_seconds, [&] {
      util::Rng rng(stamp++);
      (void)rel::run_fleet_montecarlo(
          fleet_mc_config(shards, bench_trials_per_shard, 0), rng);
      return static_cast<double>(shards * bench_trials_per_shard);
    });
    mc_shard_sweep.push_back(point);
    std::cout << "montecarlo shards=" << shards << ": "
              << fmt(point.per_sec) << " trials/s\n";
  }
  std::vector<SweepPoint> mc_worker_sweep;
  for (const std::size_t threads : worker_sweep) {
    std::uint64_t stamp = 100;
    SweepPoint point{fixed_shards, threads, 0.0};
    point.per_sec = measure_rate(min_seconds, [&] {
      util::Rng rng(stamp++);
      (void)rel::run_fleet_montecarlo(
          fleet_mc_config(fixed_shards, bench_trials_per_shard, threads), rng);
      return static_cast<double>(fixed_shards * bench_trials_per_shard);
    });
    mc_worker_sweep.push_back(point);
    std::cout << "montecarlo shards=" << fixed_shards << " threads=" << threads
              << ": " << fmt(point.per_sec) << " trials/s\n";
  }

  // ------------------------------------------------------- scrub throughput
  auto scrub_rate = [&](std::size_t shards, std::size_t threads) {
    arch::FleetParams params;
    params.n = shard_n;
    params.m = shard_m;
    params.shards = shards;
    params.threads = threads;
    arch::CrossbarFleet fleet(params);
    util::Rng rng(0xB10C'5ull);
    fleet.load_random(rng);
    const double blocks_per_pass = static_cast<double>(
        shards * (shard_n / shard_m) * (shard_n / shard_m));
    return measure_rate(min_seconds, [&] {
      (void)fleet.scrub_all();
      return blocks_per_pass;
    });
  };
  std::vector<SweepPoint> scrub_shard_sweep;
  for (const std::size_t shards : shard_sweep) {
    SweepPoint point{shards, 0, scrub_rate(shards, 0)};
    scrub_shard_sweep.push_back(point);
    std::cout << "scrub shards=" << shards << ": " << fmt(point.per_sec)
              << " blocks/s\n";
  }
  std::vector<SweepPoint> scrub_worker_sweep;
  for (const std::size_t threads : worker_sweep) {
    SweepPoint point{fixed_shards, threads, scrub_rate(fixed_shards, threads)};
    scrub_worker_sweep.push_back(point);
    std::cout << "scrub shards=" << fixed_shards << " threads=" << threads
              << ": " << fmt(point.per_sec) << " blocks/s\n";
  }

  // ------------------------------------------------- Figure 6 MTTF surface
  // Full mode: banks up to 8259 shards of 1020 x 1020 at m = 15 -- the
  // paper's 1 GB memory -- daily scrubbing, a 20-year horizon, and an SER
  // sweep high enough that failures are observable within the horizon.
  rel::FleetMttfGridConfig grid_config;
  grid_config.n = smoke ? 60 : 1020;
  grid_config.m = 15;
  grid_config.scrub_period_hours = 24.0;
  grid_config.max_hours = 24.0 * 365 * (smoke ? 1 : 20);
  grid_config.trials = smoke ? 4 : 20;
  grid_config.threads = 0;
  grid_config.fit_points =
      smoke ? std::vector<double>{1e5, 1e6}
            : std::vector<double>{0.5, 1.0, 5.0};
  grid_config.shard_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{64, 1024, 8259};
  util::Rng grid_rng(0xF16'6ull);
  const std::vector<rel::FleetMttfPoint> grid =
      rel::run_fleet_mttf_grid(grid_config, grid_rng);
  for (const rel::FleetMttfPoint& point : grid) {
    std::cout << "mttf fit=" << fmt(point.fit_per_bit)
              << " shards=" << point.shards << ": empirical "
              << fmt(point.empirical_mttf_hours) << " h ("
              << point.failures << "/" << point.trials
              << " failed), analytic " << fmt(point.analytic_mttf_hours)
              << " h\n";
  }

  // ------------------------------------------------------------------ JSON
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-fleet/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"cross_checks_ok\": " << (cross_checks_ok ? "true" : "false")
       << ",\n"
       << "  \"executor\": {\"workers\": " << workers
       << ", \"parallelism\": " << (workers + 1) << "},\n"
       << "  \"shard_n\": " << shard_n << ",\n"
       << "  \"shard_m\": " << shard_m << ",\n";
  emit_sweep(json, "montecarlo_shard_sweep", "trials_per_sec", mc_shard_sweep);
  emit_sweep(json, "montecarlo_worker_sweep", "trials_per_sec",
             mc_worker_sweep);
  emit_sweep(json, "scrub_shard_sweep", "blocks_per_sec", scrub_shard_sweep);
  emit_sweep(json, "scrub_worker_sweep", "blocks_per_sec", scrub_worker_sweep);
  json << "  \"mttf_grid\": {\n"
       << "    \"n\": " << grid_config.n << ", \"m\": " << grid_config.m
       << ", \"scrub_period_hours\": " << fmt(grid_config.scrub_period_hours)
       << ", \"horizon_hours\": " << fmt(grid_config.max_hours)
       << ", \"trials_per_cell\": " << grid_config.trials << ",\n"
       << "    \"cells\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const rel::FleetMttfPoint& point = grid[i];
    json << "      {\"fit_per_bit\": " << fmt(point.fit_per_bit)
         << ", \"shards\": " << point.shards
         << ", \"failures\": " << point.failures
         << ", \"trials\": " << point.trials
         << ", \"empirical_mttf_hours\": " << fmt(point.empirical_mttf_hours)
         << ", \"analytic_mttf_hours\": " << fmt(point.analytic_mttf_hours)
         << ", \"scrub_windows\": " << point.scrub_windows << "}"
         << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  json << "    ]\n"
       << "  }\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return cross_checks_ok ? 0 : 1;
}
