// Ablation over the full-memory check period T (Section V-A: "T = 24 hours
// chosen to have negligible performance impact while still providing
// adequate reliability").  Shorter periods shrink the per-bit exposure
// window and raise MTTF; the scrub-bandwidth column shows why arbitrarily
// small T is not free.
#include <iostream>

#include "reliability/analytic.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  util::Table table({"T (h)", "Baseline MTTF (h)", "Proposed MTTF (h)",
                     "Improvement (x)", "Scrubs/year"});
  for (const double t : {1.0, 6.0, 12.0, 24.0, 72.0, 168.0, 720.0}) {
    rel::ReliabilityQuery query;
    query.fit_per_bit = 1e-3;
    query.check_period_hours = t;
    const double base = rel::evaluate_baseline(query).mttf_hours;
    const double prop = rel::evaluate_proposed(query).mttf_hours;
    table.add_row({util::format_sig(t, 4), util::format_sci(base, 3),
                   util::format_sci(prop, 3), util::format_sci(prop / base, 2),
                   util::format_sig(24.0 * 365.0 / t, 4)});
  }
  std::cout << "Ablation -- full-memory check period T "
               "(n=1020, m=15, SER=1e-3 FIT/bit)\n\n"
            << table << '\n'
            << "Note: the baseline has no scrub; its MTTF depends on T only "
               "through the worst-case exposure-window assumption shared by "
               "both designs in the paper's model.\n";
  return 0;
}
