// Monte Carlo validation of the Figure 6 analytic model: injects binomially
// sampled soft errors into a real simulated crossbar (data + check bits),
// runs the architecture's scrub, and compares the measured per-block
// failure probability against the closed-form P(block fails) = P(>= 2
// errors among its m^2 + 2m cells).
//
// SERs here are far above physical rates so failures are observable within
// a tractable trial count; the analytic model is rate-agnostic, so
// agreement at high rates validates the same formula used at 1e-3 FIT/bit.
#include <iostream>
#include <string>

#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  util::Rng rng(0xF16'6ull);
  util::Table table({"SER (FIT/bit)", "p(bit)", "Block fail (measured)",
                     "Block fail (analytic)", "95% CI", "Corrected", "Uncorrectable"});

  for (const double fit : {2e5, 1e6, 5e6}) {
    rel::MonteCarloConfig config;
    config.n = 120;
    config.m = 15;
    config.fit_per_bit = fit;
    config.window_hours = 24.0;
    config.trials = 1500;
    const rel::MonteCarloResult result = rel::run_montecarlo(config, rng);
    const double analytic = rel::analytic_block_failure(config);
    const auto ci = util::wilson_interval(
        static_cast<std::size_t>(result.blocks_failed),
        static_cast<std::size_t>(result.blocks_total));
    // Append form: `"[" + ...` trips GCC 12's -Wrestrict false positive
    // (PR 105329) under -O2 -Werror.
    std::string interval = "[";
    interval += util::format_sci(ci.low, 2);
    interval += ", ";
    interval += util::format_sci(ci.high, 2);
    interval += ']';
    table.add_row(
        {util::format_sci(fit, 1),
         util::format_sci(fit * 24.0 / 1e9, 2),
         util::format_sci(result.block_failure_rate(), 3),
         util::format_sci(analytic, 3),
         interval,
         std::to_string(result.corrected_data + result.corrected_check),
         std::to_string(result.detected_uncorrectable)});
  }
  std::cout << "Monte Carlo vs analytic block-failure probability "
               "(n=120, m=15, T=24h, 1500 trials each)\n\n"
            << table << '\n'
            << "The analytic value should fall inside (or near) each Wilson "
               "95% interval.\n";
  return 0;
}
