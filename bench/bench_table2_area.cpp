// Reproduces paper Table II: memristor/transistor counts of the proposed
// architecture for the case study n = 1020, m = 15, k = 3.
#include <iostream>

#include "arch/device_count.hpp"
#include "arch/params.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  arch::ArchParams params;
  params.n = 1020;
  params.m = 15;
  params.num_pcs = 3;

  const arch::DeviceCounts counts = arch::count_devices(params);

  util::Table table({"Unit", "# Memristor", "# Transistor", "Expression"});
  for (const arch::DeviceCountRow& row : counts.rows) {
    table.add_row({row.unit,
                   row.memristors == 0 ? "0" : util::format_sci(
                                                   static_cast<double>(row.memristors), 2),
                   row.transistors == 0 ? "0" : util::format_sci(
                                                    static_cast<double>(row.transistors), 2),
                   row.expression});
  }
  table.add_row({"Total",
                 util::format_sci(static_cast<double>(counts.total_memristors), 2),
                 util::format_sci(static_cast<double>(counts.total_transistors), 2),
                 ""});

  std::cout << "Table II -- device counts, n=" << params.n << ", m=" << params.m
            << ", k=" << params.num_pcs << "\n\n"
            << table << '\n'
            << "Memristor overhead over the data array: "
            << util::format_pct(counts.memristor_overhead_fraction()) << '\n'
            << "Paper totals: 1.25e6 memristors, 7.55e4 transistors\n";
  return 0;
}
