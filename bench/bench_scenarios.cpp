// Scenario-diversity frontier: Monte Carlo MTTF vs scrub overhead for every
// fault-model preset x scrub-policy preset combination of the scenario
// engine (reliability/scenario.hpp), emitting machine-readable
// BENCH_scenarios.json.  The interesting output is the *frontier*: adaptive
// policies (activation-triggered, hot-row priority) buy their MTTF gains
// under workload-coupled fault models (disturbance) by scrubbing more
// cells per hour; under workload-blind models (iid) they pay the same
// overhead for little gain.
//
// Every run first executes the cross-check gate and the process exit
// status reflects it:
//   - thread determinism: one campaign run at threads=1 and threads=4 from
//     the same seed must agree on every counter and every TTF statistic
//     bit (the substream contract);
//   - repeatability: the same seed twice must reproduce exactly;
//   - zero-rate accounting: with every fault mechanism disabled, the
//     scenario engine under the periodic policy must perform exactly the
//     same number of scrubs as simulate_lifetime on the matched
//     configuration (pins the policy's window-emission rule to the
//     lifetime engine's walker), with zero failures on both sides;
//   - iid hot configuration: scenario(iid, periodic) and simulate_lifetime
//     are the same experiment up to the hit-to-block assignment
//     approximation, so failure proportions must agree within a 5-sigma
//     binomial band and empirical MTTFs within a ratio band;
//   - stuck-at semantics: a stuck-heavy campaign must observe stuck
//     repairs and spare replacements, and every replacement must have
//     consumed exactly `replace_after_repairs` repairs
//     (stuck_repairs >= cells_replaced * replace_after_repairs).
//
// Usage: bench_scenarios [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (fewer trials)
//   --out=PATH where to write the JSON (default: BENCH_scenarios.json)
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "reliability/lifetime.hpp"
#include "reliability/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace pimecc;
using rel::ScenarioConfig;
using rel::ScenarioResult;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Full result equality, including the TTF distribution moments -- the
/// thread-determinism and repeatability gates compare every observable.
bool identical(const ScenarioResult& a, const ScenarioResult& b) {
  const util::RunningStats& sa = a.time_to_failure_hours;
  const util::RunningStats& sb = b.time_to_failure_hours;
  return a.trials == b.trials && a.failures == b.failures &&
         a.scrub_events == b.scrub_events &&
         a.blocks_scrubbed == b.blocks_scrubbed &&
         a.cells_scrubbed == b.cells_scrubbed &&
         a.faults_injected == b.faults_injected &&
         a.errors_corrected == b.errors_corrected &&
         a.stuck_repairs == b.stuck_repairs &&
         a.cells_replaced == b.cells_replaced && sa.count() == sb.count() &&
         sa.mean() == sb.mean() && sa.variance() == sb.variance() &&
         sa.min() == sb.min() && sa.max() == sb.max();
}

struct FrontierPoint {
  std::string model;
  std::string policy;
  ScenarioResult result;
  double horizon = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scenarios.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_scenarios [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  bool cross_checks_ok = true;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "cross-check FAILED: " << what << "\n";
      cross_checks_ok = false;
    }
  };

  // Shared campaign shape for the gates.
  ScenarioConfig base;
  base.n = 60;
  base.m = 15;
  base.max_hours = 240.0;
  base.workload = rel::canonical_workload();

  // --- thread determinism + repeatability (mixed model, adaptive policy:
  // --- exercises every mechanism and the band-subset scrub path) ---------
  {
    ScenarioConfig config = base;
    config.trials = smoke ? 48 : 200;
    rel::apply_fault_preset("mixed", 1.5e4, config.faults);
    rel::apply_policy_preset("hotrow", config.policy);
    util::Rng r1(42), r4(42), r1b(42);
    config.threads = 1;
    const ScenarioResult serial = rel::run_scenario(config, r1);
    const ScenarioResult serial_again = rel::run_scenario(config, r1b);
    config.threads = 4;
    const ScenarioResult threaded = rel::run_scenario(config, r4);
    gate(identical(serial, threaded), "thread determinism (1 vs 4 lanes)");
    gate(identical(serial, serial_again), "same-seed repeatability");
    gate(serial.faults_injected > 0 && serial.stuck_repairs > 0,
         "mixed campaign exercised its mechanisms");
  }

  // --- zero-rate scrub accounting vs simulate_lifetime -------------------
  {
    ScenarioConfig config = base;
    config.trials = 7;
    config.faults = rel::FaultMix{};  // every mechanism off
    rel::apply_policy_preset("periodic", config.policy);
    rel::LifetimeConfig lt;
    lt.n = base.n;
    lt.m = base.m;
    lt.crossbars = 1;
    lt.fit_per_bit = 0.0;
    lt.scrub_period_hours = config.policy.period_hours;
    lt.trials = config.trials;
    lt.max_hours = config.max_hours;
    util::Rng sr(7), lr(7);
    const ScenarioResult sc = rel::run_scenario(config, sr);
    const rel::LifetimeResult lf = rel::simulate_lifetime(lt, lr);
    gate(sc.failures == 0 && lf.failures == 0,
         "zero-rate campaigns cannot fail");
    gate(sc.scrub_events == lf.scrubs_performed,
         "zero-rate scrub count equals simulate_lifetime exactly");
  }

  // --- iid + periodic vs simulate_lifetime (statistical band) ------------
  {
    ScenarioConfig config = base;
    config.trials = smoke ? 200 : 600;
    config.threads = 0;
    rel::apply_fault_preset("iid", 1.5e4, config.faults);
    rel::apply_policy_preset("periodic", config.policy);
    rel::LifetimeConfig lt;
    lt.n = base.n;
    lt.m = base.m;
    lt.crossbars = 1;
    lt.fit_per_bit = config.faults.fit_per_bit;
    lt.scrub_period_hours = config.policy.period_hours;
    lt.trials = config.trials;
    lt.max_hours = config.max_hours;
    lt.threads = 0;
    util::Rng sr(0x5CE2'A210ull), lr(0x5CE2'A210ull);
    const ScenarioResult sc = rel::run_scenario(config, sr);
    const rel::LifetimeResult lf = rel::simulate_lifetime(lt, lr);
    const double n = static_cast<double>(config.trials);
    const double ps = static_cast<double>(sc.failures) / n;
    const double pl = static_cast<double>(lf.failures) / n;
    const double sigma = std::sqrt((ps * (1 - ps) + pl * (1 - pl)) / n);
    gate(sc.failures > 0 && lf.failures > 0,
         "iid hot configuration produces failures on both engines");
    gate(std::abs(ps - pl) <= 5.0 * sigma + 1e-9,
         "iid failure proportions within the 5-sigma band");
    const double mttf_sc = sc.empirical_mttf_hours(config.max_hours);
    const double mttf_lf = lf.empirical_mttf_hours(lt.max_hours);
    gate(std::abs(mttf_sc / mttf_lf - 1.0) <= 0.5,
         "iid empirical MTTFs within the ratio band");
    std::cout << "iid gate: scenario " << sc.failures << "/" << config.trials
              << " failures (mttf " << fmt(mttf_sc) << " h), lifetime "
              << lf.failures << "/" << lt.trials << " (mttf " << fmt(mttf_lf)
              << " h)\n";
  }

  // --- stuck-at semantics -------------------------------------------------
  {
    ScenarioConfig config = base;
    config.trials = smoke ? 100 : 300;
    config.threads = 0;
    config.max_hours = 480.0;
    rel::apply_fault_preset("iid", 8e3, config.faults);
    config.faults.stuck_probability = 0.5;
    config.faults.replace_after_repairs = 2;
    rel::apply_policy_preset("periodic", config.policy);
    util::Rng rng(0x57'0C'CA'7Eull);
    const ScenarioResult sc = rel::run_scenario(config, rng);
    gate(sc.stuck_repairs > 0, "stuck-heavy campaign observes stuck repairs");
    gate(sc.cells_replaced > 0, "stuck-heavy campaign replaces cells");
    gate(sc.stuck_repairs >=
             sc.cells_replaced * config.faults.replace_after_repairs,
         "every replacement consumed replace_after_repairs repairs");
  }

  std::cout << "cross-checks: " << (cross_checks_ok ? "ok" : "FAILED -- BUG")
            << "\n";

  // ------------------------------------------------------------- frontier
  // MTTF vs scrub overhead across every model x policy cell.  The fault
  // rate is chosen so the periodic baseline fails a moderate fraction of
  // trials within the horizon -- hot enough to resolve policy differences,
  // cold enough that adaptive scrubbing has something to save.
  const double frontier_fit = 2000.0;
  const double frontier_horizon = 480.0;
  const std::size_t frontier_trials = smoke ? 40 : 400;
  std::vector<FrontierPoint> frontier;
  for (const std::string_view model : rel::fault_preset_names()) {
    for (const std::string_view policy : rel::scrub_policy_preset_names()) {
      ScenarioConfig config = base;
      config.trials = frontier_trials;
      config.max_hours = frontier_horizon;
      config.threads = 0;
      rel::apply_fault_preset(model, frontier_fit, config.faults);
      rel::apply_policy_preset(policy, config.policy);
      // Deterministic per-cell seed so cells can be reproduced standalone.
      util::Rng rng(0xF07'117E2ull ^ (std::hash<std::string_view>{}(model) * 31 +
                                      std::hash<std::string_view>{}(policy)));
      FrontierPoint point;
      point.model = std::string(model);
      point.policy = std::string(policy);
      point.horizon = frontier_horizon;
      point.result = rel::run_scenario(config, rng);
      std::cout << "frontier model=" << model << " policy=" << policy
                << ": failures " << point.result.failures << "/"
                << frontier_trials << ", mttf "
                << fmt(point.result.empirical_mttf_hours(frontier_horizon))
                << " h, scrub "
                << fmt(point.result.scrub_cells_per_hour(frontier_horizon))
                << " cells/h\n";
      frontier.push_back(std::move(point));
    }
  }

  // ------------------------------------------------------------------ JSON
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  const rel::WorkloadModel workload = rel::canonical_workload();
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-scenarios/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"cross_checks_ok\": " << (cross_checks_ok ? "true" : "false")
       << ",\n"
       << "  \"config\": {\"n\": " << base.n << ", \"m\": " << base.m
       << ", \"fit_per_bit\": " << fmt(frontier_fit)
       << ", \"horizon_hours\": " << fmt(frontier_horizon)
       << ", \"trials\": " << frontier_trials << "},\n"
       << "  \"workload\": {\"activations_per_hour\": "
       << fmt(workload.activations_per_hour)
       << ", \"hot_row_fraction\": " << fmt(workload.hot_row_fraction)
       << ", \"hot_multiplier\": " << fmt(workload.hot_multiplier) << "},\n"
       << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const FrontierPoint& p = frontier[i];
    const ScenarioResult& r = p.result;
    json << "    {\"model\": \"" << p.model << "\", \"policy\": \"" << p.policy
         << "\", \"trials\": " << r.trials << ", \"failures\": " << r.failures
         << ", \"mttf_hours\": " << fmt(r.empirical_mttf_hours(p.horizon))
         << ", \"scrub_cells_per_hour\": "
         << fmt(r.scrub_cells_per_hour(p.horizon))
         << ", \"scrub_events\": " << r.scrub_events
         << ", \"faults_injected\": " << r.faults_injected
         << ", \"errors_corrected\": " << r.errors_corrected
         << ", \"stuck_repairs\": " << r.stuck_repairs
         << ", \"cells_replaced\": " << r.cells_replaced << "}"
         << (i + 1 < frontier.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return cross_checks_ok ? 0 : 1;
}
