// Arch-layer throughput harness: measures the word-parallel protected
// machine (PimMachine: differential diagword check updates, ArrayCode band
// walks) against the bit-serial ReferencePimMachine on the three end-to-end
// hot paths and emits machine-readable BENCH_arch.json -- the machine-level
// companion of bench_engine_throughput and bench_codec_throughput.
//
//   1. init: PimMachine::load (controller row writes + whole-array check
//      encode) -- the Table 1 input-setup bandwidth.
//   2. verify: PimMachine::scrub on clean data (the paper's periodic
//      full-memory check).
//   3. simd_gates: protected row-parallel stateful logic -- alternating
//      magic_init_rows_protected / magic_nor_rows_protected pairs, each
//      running the full Section IV critical-operation protocol across all
//      n rows.
//
// Every configuration is first cross-checked: the two machines run an
// identical protected program with mid-run fault injection and must agree
// on memory contents, check state, cycle counters, and check reports, or
// the run fails (non-zero exit) -- the same fast-vs-reference gate the
// differential test suite applies, wired into CI via tools/ci.sh.
//
// Usage: bench_arch_throughput [--smoke] [--out=PATH]
//   --smoke    fast CI configuration (n = 60, m in {3, 15})
//   --out=PATH where to write the JSON (default: BENCH_arch.json in cwd)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/pim_machine.hpp"
#include "arch/reference_pim_machine.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pimecc::arch::ArchParams;
using pimecc::arch::CheckReport;
using pimecc::arch::PimMachine;
using pimecc::arch::ReferencePimMachine;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

ArchParams make_params(std::size_t n, std::size_t m) {
  ArchParams p;
  p.n = n;
  p.m = m;
  return p;
}

/// Runs `pass` repeatedly until at least `min_seconds` elapsed; returns
/// `units_per_pass` units per second.
template <typename Pass>
double measure_rate(double units_per_pass, double min_seconds, Pass&& pass) {
  std::size_t passes = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    pass();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(passes) * units_per_pass / elapsed;
}

/// The fixed protected-gate program both machines execute: `pairs`
/// init+NOR pairs over a deterministic column walk, SIMD across all rows.
template <typename Machine>
void run_gate_program(Machine& machine, std::size_t pairs) {
  const std::size_t n = machine.n();
  for (std::size_t k = 0; k < pairs; ++k) {
    const std::size_t out = (7 + 13 * k) % n;
    std::size_t in1 = (out + 1) % n;
    std::size_t in2 = (out + 5) % n;
    const std::size_t outs[1] = {out};
    const std::size_t ins[2] = {in1, in2};
    machine.magic_init_rows_protected(outs);
    machine.magic_nor_rows_protected(ins, out);
  }
}

/// Fast-vs-reference cross-check: identical protected program with mid-run
/// fault injection; any divergence in contents, check state, counters, or
/// reports fails the run.
bool cross_check(const ArchParams& params, const pimecc::util::BitMatrix& image) {
  PimMachine fast(params);
  ReferencePimMachine ref(params);
  fast.load(image);
  ref.load(image);
  run_gate_program(fast, 8);
  run_gate_program(ref, 8);
  fast.inject_data_error(params.n / 2, params.n / 3);
  ref.inject_data_error(params.n / 2, params.n / 3);
  const CheckReport fr = fast.check_block_row(params.n / 2);
  const CheckReport rr = ref.check_block_row(params.n / 2);
  if (!(fr == rr)) return false;
  const CheckReport fs = fast.scrub();
  const CheckReport rs = ref.scrub();
  if (!(fs == rs)) return false;
  if (!(fast.data() == ref.data())) return false;
  if (!ref.check_memory().matches(fast.check_code())) return false;
  if (!(fast.counters() == ref.counters())) return false;
  return fast.ecc_consistent() && ref.ecc_consistent();
}

struct MetricResult {
  double ref_rate = 0.0;   // units per second on the reference machine
  double fast_rate = 0.0;  // units per second on the word-parallel machine
  [[nodiscard]] double speedup() const { return fast_rate / ref_rate; }
};

struct ConfigResult {
  std::size_t n = 0;
  std::size_t m = 0;
  MetricResult init;       // cells/s through load (write + encode)
  MetricResult verify;     // cells/s through scrub
  MetricResult simd_gates; // protected line-bits/s (n per protected op)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  bool smoke = false;
  std::string out_path = "BENCH_arch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_arch_throughput [--smoke] [--out=PATH]\n";
      return 2;
    }
  }

  struct Config {
    std::size_t n;
    std::size_t m;
  };
  const std::vector<Config> configs =
      smoke ? std::vector<Config>{{60, 3}, {60, 15}}
            : std::vector<Config>{{255, 15}, {510, 15}, {1020, 3}, {1020, 15}};
  const double min_seconds = smoke ? 0.02 : 0.2;
  const std::size_t gate_pairs = smoke ? 8 : 32;

  bool differential_ok = true;
  std::vector<ConfigResult> results;
  for (const Config& config : configs) {
    const ArchParams params = make_params(config.n, config.m);
    util::Rng rng(0xA2C4'BE7Cull ^ (config.n * 131) ^ config.m);
    const util::BitMatrix image =
        util::random_bit_matrix(config.n, config.n, rng);

    if (!cross_check(params, image)) {
      differential_ok = false;
      std::cerr << "cross-check FAILED at n=" << config.n << " m=" << config.m
                << "\n";
    }

    ConfigResult r;
    r.n = config.n;
    r.m = config.m;
    const double cells = static_cast<double>(config.n) * config.n;
    const double gate_line_bits =
        static_cast<double>(2 * gate_pairs) * config.n;

    {
      ReferencePimMachine machine(params);
      r.init.ref_rate =
          measure_rate(cells, min_seconds, [&] { machine.load(image); });
      r.verify.ref_rate =
          measure_rate(cells, min_seconds, [&] { (void)machine.scrub(); });
      r.simd_gates.ref_rate = measure_rate(gate_line_bits, min_seconds, [&] {
        run_gate_program(machine, gate_pairs);
      });
    }
    {
      PimMachine machine(params);
      r.init.fast_rate =
          measure_rate(cells, min_seconds, [&] { machine.load(image); });
      r.verify.fast_rate =
          measure_rate(cells, min_seconds, [&] { (void)machine.scrub(); });
      r.simd_gates.fast_rate = measure_rate(gate_line_bits, min_seconds, [&] {
        run_gate_program(machine, gate_pairs);
      });
    }

    results.push_back(r);
    std::cout << "n=" << r.n << " m=" << r.m << ": init "
              << fmt(r.init.speedup()) << "x, verify " << fmt(r.verify.speedup())
              << "x, simd_gates " << fmt(r.simd_gates.speedup())
              << "x (fast gates " << fmt(r.simd_gates.fast_rate / 1e6)
              << " Mline-bits/s)\n";
  }
  std::cout << "differential cross-check: "
            << (differential_ok ? "ok" : "FAILED -- BUG") << "\n";

  const ConfigResult& largest = results.back();
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"schema\": \"pimecc-bench-arch/1\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"differential_ok\": " << (differential_ok ? "true" : "false")
       << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    auto metric = [&](const char* name, const char* unit, const MetricResult& mr,
                      bool last) {
      json << "      \"" << name << "\": {\"reference_" << unit << "\": "
           << fmt(mr.ref_rate) << ", \"word_parallel_" << unit << "\": "
           << fmt(mr.fast_rate) << ", \"speedup\": " << fmt(mr.speedup()) << "}"
           << (last ? "" : ",") << "\n";
    };
    json << "    {\n"
         << "      \"n\": " << r.n << ", \"m\": " << r.m << ",\n";
    metric("init", "cells_per_sec", r.init, false);
    metric("verify", "cells_per_sec", r.verify, false);
    metric("simd_gates", "line_bits_per_sec", r.simd_gates, true);
    json << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"largest_config\": {\"n\": " << largest.n << ", \"m\": "
       << largest.m << ", \"init_speedup\": " << fmt(largest.init.speedup())
       << ", \"verify_speedup\": " << fmt(largest.verify.speedup())
       << ", \"simd_gates_speedup\": " << fmt(largest.simd_gates.speedup())
       << "}\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return differential_ok ? 0 : 1;
}
