// Reproduces the Section III / Figure 2 motivating comparison: the cost of
// bringing check bits up to date after one maximally-parallel MAGIC
// operation, for horizontally-grouped parity vs the proposed wrap-around
// diagonal parity.
//
// A column-parallel operation (Figure 1(b)) rewrites an entire row at once.
// Horizontal parity then needs Theta(n) data-bit reads (a whole group
// changed under each spanned check bit), while the diagonal placement
// guarantees each check bit saw at most one changed data bit, so one
// fixed-length protocol (2 transfers + XOR3 + write-back) suffices --
// Theta(1) in n.
#include <iostream>
#include <vector>

#include "core/array_code.hpp"
#include "core/horizontal_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  constexpr std::size_t kBlock = 15;
  constexpr std::size_t kProtocolCycles = 1 + 1 + 8 + 1;  // old+new+XOR3+wb
  util::Rng rng(2021);

  util::Table table({"n", "Horizontal: update reads", "Diagonal: update cycles",
                     "Diagonal touches/diag (max)"});
  // n must be divisible by both the block size (15) and the horizontal
  // group size (4).
  for (const std::size_t n : {std::size_t{60}, std::size_t{120}, std::size_t{300},
                              std::size_t{480}, std::size_t{1020}}) {
    util::BitMatrix data(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) data.set(r, c, rng.bernoulli(0.5));
    }
    ecc::HorizontalCode horizontal(n, 4);
    horizontal.encode_all(data);
    ecc::ArrayCode diagonal(n, kBlock);
    diagonal.encode_all(data);

    // One column-parallel op rewriting row 0 entirely (worst case: every
    // bit flips).
    std::vector<ecc::CellWrite> writes;
    writes.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      const bool old_value = data.get(0, c);
      writes.push_back({0, c, old_value, !old_value});
    }
    const std::size_t horizontal_cost = horizontal.update_cost_reads(writes);
    const bool theta1 = diagonal.writes_touch_each_diagonal_once(writes);

    table.add_row({std::to_string(n), std::to_string(horizontal_cost),
                   std::to_string(kProtocolCycles), theta1 ? "1" : ">1"});
  }
  std::cout << "Figure 2 / Section III -- ECC update cost after one "
               "column-parallel MAGIC op rewriting a full row\n\n"
            << table << '\n'
            << "Horizontal parity scales Theta(n); the diagonal code's "
               "fixed protocol does not grow with n.\n";
  return 0;
}
