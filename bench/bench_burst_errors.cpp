// Multi-bit-upset experiment (Section II-B refs [7][8]): clustered flips
// from ion strikes vs the diagonal code.  For each burst shape and length,
// injects bursts at random anchors, scrubs, and classifies the outcome:
//   repaired       -- all bits back to golden (burst fit in single-error
//                     budget per block, e.g. split across blocks)
//   detected       -- some block flagged uncorrectable (no silent loss)
//   silent/miscorrected -- data wrong with no uncorrectable flag (the
//                     failure mode ECC exists to prevent)
// Structural claim measured here: in-block bursts shorter than m never go
// silent -- adjacent cells cannot share both diagonals.
#include <iostream>

#include "core/array_code.hpp"
#include "fault/burst.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  constexpr std::size_t kN = 120;
  constexpr std::size_t kM = 15;
  constexpr std::size_t kTrials = 400;
  util::Rng rng(0xB0057ull);

  util::BitMatrix golden(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) golden.set(r, c, rng.bernoulli(0.5));
  }

  util::Table table({"Shape", "Length", "Repaired", "Detected", "Silent"});
  for (const fault::BurstShape shape :
       {fault::BurstShape::kHorizontal, fault::BurstShape::kVertical,
        fault::BurstShape::kSquare}) {
    for (const std::size_t length : {2u, 3u, 5u, 9u}) {
      std::size_t repaired = 0, detected = 0, silent = 0;
      for (std::size_t t = 0; t < kTrials; ++t) {
        util::BitMatrix data = golden;
        ecc::ArrayCode code(kN, kM);
        code.encode_all(data);
        fault::inject_burst(rng, data, length, shape);
        const ecc::ScrubReport report = code.scrub(data);
        const bool clean = data == golden;
        if (clean) {
          ++repaired;
        } else if (report.uncorrectable > 0) {
          ++detected;
        } else {
          ++silent;
        }
      }
      table.add_row({to_string(shape), std::to_string(length),
                     std::to_string(repaired), std::to_string(detected),
                     std::to_string(silent)});
    }
  }
  std::cout << "Burst (multi-bit upset) injection vs the diagonal code "
               "(n=120, m=15, " << kTrials << " trials per point)\n\n"
            << table << '\n'
            << "Bursts shorter than m never corrupt silently: adjacent "
               "cells cannot share both wrap-around diagonals.  Bursts "
               "split across block boundaries can even repair fully (one "
               "error per block).\n";
  return 0;
}
