// Ablation over the number of processing crossbars k (Section IV-A-3 /
// Table I "PC (#)"): proposed latency for k = 1..8 on every benchmark.
// Dense-output circuits (dec) keep gaining from more PCs; sparse ones
// saturate at 2 (the two diagonal-axis passes of a single update).
#include <iostream>
#include <vector>

#include "arch/params.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "util/table.hpp"

int main() {
  using namespace pimecc;

  arch::ArchParams params;
  simpler::MapperOptions map_options;
  map_options.row_width = params.n;
  const auto policy = simpler::CoveragePolicy::kInputsAndOutputs;

  std::vector<std::string> headers = {"Benchmark", "Baseline"};
  for (std::size_t k = 1; k <= 8; ++k) headers.push_back("k=" + std::to_string(k));
  util::Table table(headers);

  for (const std::string& name : circuits::circuit_names()) {
    const circuits::CircuitSpec spec = circuits::build_circuit(name);
    const simpler::MappedProgram program =
        simpler::map_to_row(spec.netlist, map_options);
    std::vector<std::string> row = {name,
                                    std::to_string(program.baseline_cycles())};
    for (std::size_t k = 1; k <= 8; ++k) {
      arch::ArchParams trial = params;
      trial.num_pcs = k;
      row.push_back(std::to_string(
          simpler::schedule_with_ecc(program, trial, policy).proposed_cycles));
    }
    table.add_row(std::move(row));
  }
  std::cout << "Ablation -- proposed latency (cycles) vs number of "
               "processing crossbars k\n\n"
            << table << '\n';
  return 0;
}
