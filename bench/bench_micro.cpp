// Simulator microbenchmarks (google-benchmark): throughput of the core
// primitives -- parallel MAGIC ops, block encode/decode, continuous parity
// update, the PC XOR3 microprogram, fault injection, and mapping.
#include <benchmark/benchmark.h>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "arch/processing_xbar.hpp"
#include "bench_circuits/circuits.hpp"
#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "simpler/mapper.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace {

using namespace pimecc;

util::BitMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  util::BitMatrix mat(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) mat.set(r, c, rng.bernoulli(0.5));
  }
  return mat;
}

void BM_MagicNorAllRows(benchmark::State& state) {
  xbar::Crossbar xb(1020, 1020);
  const std::size_t ins[2] = {0, 1};
  for (auto _ : state) {
    xb.magic_init(xbar::Orientation::kRow, std::span<const std::size_t>(&ins[0], 1));
    benchmark::DoNotOptimize(
        xb.magic_nor(xbar::Orientation::kRow, ins, 2));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1020);
}
BENCHMARK(BM_MagicNorAllRows);

void BM_BlockEncode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const util::BitMatrix data = random_matrix(m, 7);
  ecc::BlockCodec codec(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(data, 0, 0));
  }
}
BENCHMARK(BM_BlockEncode)->Arg(5)->Arg(15)->Arg(51);

void BM_ScrubCrossbar(benchmark::State& state) {
  const std::size_t n = 510;
  util::BitMatrix data = random_matrix(n, 11);
  ecc::ArrayCode code(n, 15);
  code.encode_all(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.scrub(data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(code.block_count()));
}
BENCHMARK(BM_ScrubCrossbar);

void BM_ContinuousUpdate(benchmark::State& state) {
  const std::size_t n = 1020;
  util::BitMatrix data = random_matrix(n, 13);
  ecc::ArrayCode code(n, 15);
  code.encode_all(data);
  std::vector<ecc::CellWrite> writes;
  for (std::size_t r = 0; r < n; ++r) {
    writes.push_back({r, 3, data.get(r, 3), !data.get(r, 3)});
  }
  for (auto _ : state) {
    code.apply_writes(writes);  // self-inverse over two iterations
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(writes.size()));
}
BENCHMARK(BM_ContinuousUpdate);

void BM_ProcessingXbarXor3(benchmark::State& state) {
  arch::ProcessingXbar pc(1020);
  util::Rng rng(17);
  util::BitVector a(1020), b(1020), c(1020);
  for (std::size_t i = 0; i < 1020; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
    c.set(i, rng.bernoulli(0.5));
  }
  for (auto _ : state) {
    pc.init_working_cells();
    pc.load_operand(arch::ProcessingXbar::kA, a);
    pc.load_operand(arch::ProcessingXbar::kB, b);
    pc.load_operand(arch::ProcessingXbar::kC, c);
    pc.compute();
    benchmark::DoNotOptimize(pc.writeback_values());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1020);
}
BENCHMARK(BM_ProcessingXbarXor3);

void BM_ProtectedNor(benchmark::State& state) {
  arch::ArchParams params;
  params.n = 255;
  params.m = 15;
  arch::PimMachine machine(params);
  machine.load(random_matrix(params.n, 23));
  const std::size_t ins[2] = {0, 1};
  std::size_t out_col = 2;
  for (auto _ : state) {
    const std::size_t cols[1] = {out_col};
    machine.magic_init_rows_protected(cols);
    machine.magic_nor_rows_protected(ins, out_col);
    out_col = 2 + (out_col - 1) % (params.n - 2);
  }
}
BENCHMARK(BM_ProtectedNor);

void BM_InjectAndScrub(benchmark::State& state) {
  util::Rng rng(29);
  const std::size_t n = 255;
  util::BitMatrix golden = random_matrix(n, 31);
  ecc::ArrayCode code(n, 15);
  for (auto _ : state) {
    util::BitMatrix data = golden;
    code.encode_all(data);
    fault::inject_flips_everywhere(rng, data, code, 8);
    benchmark::DoNotOptimize(code.scrub(data));
  }
}
BENCHMARK(BM_InjectAndScrub);

void BM_MapCircuit(benchmark::State& state) {
  const circuits::CircuitSpec spec = circuits::build_circuit("adder");
  simpler::MapperOptions options;
  options.row_width = 1020;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simpler::map_to_row(spec.netlist, options));
  }
}
BENCHMARK(BM_MapCircuit);

}  // namespace

BENCHMARK_MAIN();
