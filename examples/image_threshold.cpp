// Domain scenario: in-memory image morphology under ECC protection.  A
// bitmap lives in the protected crossbar; left-edge detection
//   edge(r, c) = img(r, c) AND NOT img(r, c-1) = NOR(NOT img(r,c), img(r,c-1))
// runs as column-parallel MAGIC NOR operations (each covering a whole
// crossbar row in one cycle), with every write maintained by the
// critical-operation protocol.  A soft error strikes mid-computation and
// the before-use block check repairs it before it can corrupt the result.
#include <iostream>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "util/bitmatrix.hpp"

namespace {

// 15 rows x 45 columns of ASCII art ('#' = 1).
const std::vector<std::string> kArt = {
    "                                             ",
    "   ####      ###   #   #                     ",
    "   #   #      #    ## ##                     ",
    "   ####       #    # # #                     ",
    "   #          #    #   #                     ",
    "   #         ###   #   #   ### ###  ###      ",
    "                           #   #   #         ",
    "                           ##  #   #         ",
    "                           #   #   #         ",
    "                           ### ### ###       ",
    "        #############################        ",
    "                                             ",
    "     ##   ##   ##   ##   ##   ##   ##   #    ",
    "     ##   ##   ##   ##   ##   ##   ##   #    ",
    "                                             ",
};

constexpr std::size_t kImgRows = 15;
constexpr std::size_t kImgCols = 45;

void print(const pimecc::util::BitMatrix& data, std::size_t row0,
           const char* title) {
  std::cout << title << '\n';
  for (std::size_t r = 0; r < kImgRows; ++r) {
    std::string line;
    for (std::size_t c = 0; c < kImgCols; ++c) {
      line += data.get(row0 + r, c) ? '#' : '.';
    }
    std::cout << "  " << line << '\n';
  }
}

}  // namespace

int main() {
  using namespace pimecc;

  // 60 x 60 crossbar, 15 x 15 ECC blocks.  Row bands: image 0..14,
  // inverted copy 15..29, shifted copy 30..44, edge result 45..59.
  arch::ArchParams params;
  params.n = 60;
  params.m = 15;
  arch::PimMachine machine(params);

  util::BitMatrix image(params.n, params.n);
  for (std::size_t r = 0; r < kImgRows; ++r) {
    for (std::size_t c = 0; c < kImgCols; ++c) {
      image.set(r, c, kArt[r][c] == '#');
    }
  }
  machine.load(image);
  print(machine.data(), 0, "input bitmap (ECC-protected):");

  // Step 1: inverted copy -- one column-parallel MAGIC NOT per image row
  // (60 cells each, one cycle each), ECC updated continuously.
  for (std::size_t r = 0; r < kImgRows; ++r) {
    const std::size_t inv_row = 15 + r;
    const std::size_t init_rows[1] = {inv_row};
    machine.magic_init_cols_protected(init_rows);
    const std::size_t in_rows[1] = {r};
    machine.magic_nor_cols_protected(in_rows, inv_row);
  }

  // A stray soft error hits the inverted copy.  Before using that band as
  // gate inputs, the architecture checks its block-row and repairs it
  // (the paper's check-before-use discipline).
  machine.inject_data_error(17, 8);
  const arch::CheckReport repair = machine.check_block_row(17);
  std::cout << "\nsoft error injected at (17,8); block-row check corrected "
            << repair.corrected_data << " bit(s)\n\n";

  // Step 2: left-neighbor copy.  Shifting crosses column boundaries, which
  // MAGIC alone cannot do inside the array, so the controller writes the
  // shifted rows (each write ECC-maintained through the same protocol).
  for (std::size_t r = 0; r < kImgRows; ++r) {
    util::BitVector shifted(params.n);
    for (std::size_t c = 1; c < kImgCols; ++c) {
      shifted.set(c, machine.data().get(r, c - 1));
    }
    machine.write_row_protected(30 + r, shifted);
  }

  // Step 3: edge rows -- one column-parallel MAGIC NOR per image row:
  // edge = NOR(NOT img, left neighbor) = img AND NOT left.
  for (std::size_t r = 0; r < kImgRows; ++r) {
    const std::size_t edge_row = 45 + r;
    const std::size_t init_rows[1] = {edge_row};
    machine.magic_init_cols_protected(init_rows);
    const std::size_t in_rows[2] = {15 + r, 30 + r};
    machine.magic_nor_cols_protected(in_rows, edge_row);
  }
  print(machine.data(), 45, "left-edge map (computed in-memory):");

  // Verify against a host-side reference.
  bool correct = true;
  for (std::size_t r = 0; r < kImgRows; ++r) {
    for (std::size_t c = 0; c < kImgCols; ++c) {
      const bool img = image.get(r, c);
      const bool left = c > 0 && image.get(r, c - 1);
      correct = correct && machine.data().get(45 + r, c) == (img && !left);
    }
  }
  std::cout << "\nedge map correct: " << std::boolalpha << correct
            << "; ECC consistent: " << machine.ecc_consistent()
            << "; MEM cycles " << machine.counters().mem_cycles
            << ", critical ops " << machine.counters().critical_ops << '\n';
  return correct && machine.ecc_consistent() && repair.corrected_data == 1 ? 0 : 1;
}
