// SIMD processing-in-memory: one mapped adder program executes in every
// crossbar row simultaneously (paper Figure 1 / SIMPLER's throughput
// model), so 64 independent 16-bit additions cost the same cycle count as
// one.  This is the parallelism the diagonal ECC is designed to keep up
// with: a row-parallel gate touches each block diagonal at most once.
#include <iostream>

#include "simpler/logic.hpp"
#include "simpler/mapper.hpp"
#include "simpler/netlist.hpp"
#include "simpler/row_vm.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

int main() {
  using namespace pimecc;

  // Build a 16+16-bit adder netlist in NOR-only form.
  simpler::Netlist netlist("add16");
  simpler::LogicBuilder builder(netlist);
  const simpler::Bus a = builder.input_bus(16);
  const simpler::Bus b = builder.input_bus(16);
  const simpler::AddResult sum = builder.ripple_add(a, b, builder.constant(false));
  builder.output_bus(sum.sum);
  builder.output(sum.carry_out);
  std::cout << "add16 netlist: " << netlist.num_gates() << " NOR gates\n";

  // Map it onto a single row of 256 cells (SIMPLER), then run it in all 64
  // rows of a crossbar at once.
  simpler::MapperOptions options;
  options.row_width = 256;
  const simpler::MappedProgram program = simpler::map_to_row(netlist, options);
  std::cout << "mapped: " << program.baseline_cycles() << " cycles ("
            << program.gate_cycles << " gates + " << program.init_cycles
            << " init), peak " << program.peak_cells_used << " cells\n";

  constexpr std::size_t kRows = 64;
  xbar::Crossbar xb(kRows, options.row_width);
  util::Rng rng(7);
  util::BitMatrix inputs(kRows, 32);
  std::vector<std::uint32_t> expect(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.next() & 0xFFFF);
    const std::uint32_t y = static_cast<std::uint32_t>(rng.next() & 0xFFFF);
    for (std::size_t i = 0; i < 16; ++i) {
      inputs.set(r, i, (x >> i) & 1u);
      inputs.set(r, 16 + i, (y >> i) & 1u);
    }
    expect[r] = x + y;
  }

  const simpler::SimdRunResult result = simpler::run_simd(netlist, program, xb, inputs);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < kRows; ++r) {
    std::uint32_t got = 0;
    for (std::size_t i = 0; i < 17; ++i) {
      if (result.outputs.get(r, i)) got |= 1u << i;
    }
    if (got == expect[r]) ++correct;
  }
  std::cout << correct << "/" << kRows << " SIMD additions correct in "
            << result.cycles << " crossbar cycles ("
            << static_cast<double>(kRows) / static_cast<double>(result.cycles)
            << " adds/cycle; MAGIC violations: " << result.violations << ")\n";
  return correct == kRows && result.violations == 0 ? 0 : 1;
}
