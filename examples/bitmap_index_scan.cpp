// Data-intensive workload: a database bitmap-index scan executed in-memory
// across a multi-crossbar bank, with the background scrub running between
// query steps (the controller-level deployment of the paper's periodic
// check).
//
// Setup: each crossbar row r is one record; columns 0..3 hold predicate
// bitmaps (region flags), computed-in-place query results land in higher
// columns.  Query: SELECT count(*) WHERE (A AND NOT B) OR C -- evaluated
// with MAGIC NOR algebra simultaneously for every record of every unit,
// while soft errors rain in and the incremental scrub keeps the bank clean.
#include <iostream>

#include "arch/memory_system.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pimecc;

  arch::MemorySystemParams params;
  params.unit.n = 45;
  params.unit.m = 9;
  params.unit_rows = 2;
  params.unit_cols = 2;
  arch::MemorySystem bank(params);
  util::Rng rng(0xDB17ull);
  bank.load_random(rng);

  const std::size_t records = params.data_bits() / params.unit.n;
  std::cout << "bank: " << bank.unit_count() << " crossbars, " << records
            << " records, bitmaps in columns A=0 B=1 C=2\n";

  // Expected result from a host-side golden evaluation.
  std::size_t expected = 0;
  for (std::size_t ur = 0; ur < params.unit_rows; ++ur) {
    for (std::size_t uc = 0; uc < params.unit_cols; ++uc) {
      const auto& data = bank.unit(ur, uc).data();
      for (std::size_t r = 0; r < params.unit.n; ++r) {
        const bool a = data.get(r, 0), b = data.get(r, 1), c = data.get(r, 2);
        if ((a && !b) || c) ++expected;
      }
    }
  }

  // In-memory evaluation on every unit, interleaved with scrub ticks and
  // injected soft errors.  (A AND NOT B) OR C = NOR(NOR(nb_or_... ) ...):
  //   t1 = NOR(A', B)   [= A AND NOT B], with A' = NOT A
  //   q  = NOR(NOR(t1, C)) = t1 OR C
  // Columns: 10 = A', 11 = t1, 12 = NOR(t1, C), 13 = q.
  std::size_t matched = 0;
  std::size_t scrub_corrections = 0;
  for (std::size_t ur = 0; ur < params.unit_rows; ++ur) {
    for (std::size_t uc = 0; uc < params.unit_cols; ++uc) {
      arch::PimMachine& unit = bank.unit(ur, uc);
      // Background radiation between queries...
      bank.inject_random_errors(rng, 2);
      // ...and the steady scrub heartbeat.
      for (std::size_t t = 0; t < bank.ticks_per_pass(); ++t) {
        scrub_corrections += bank.scrub_tick().corrected_data;
      }

      const std::size_t stages[4] = {10, 11, 12, 13};
      unit.magic_init_rows_protected(stages);
      const std::size_t in_a[1] = {0};
      unit.magic_nor_rows_protected(in_a, 10);  // A'
      const std::size_t in_t1[2] = {10, 1};
      unit.magic_nor_rows_protected(in_t1, 11);  // A AND NOT B
      const std::size_t in_or[2] = {11, 2};
      unit.magic_nor_rows_protected(in_or, 12);  // NOR(t1, C)
      const std::size_t in_q[1] = {12};
      unit.magic_nor_rows_protected(in_q, 13);  // t1 OR C

      for (std::size_t r = 0; r < params.unit.n; ++r) {
        if (unit.data().get(r, 13)) ++matched;
      }
    }
  }

  std::cout << "query (A AND NOT B) OR C: " << matched << " records matched, "
            << expected << " expected -> "
            << (matched == expected ? "CORRECT" : "WRONG") << '\n'
            << "scrub corrected " << scrub_corrections
            << " soft errors during the scan; bank consistent: "
            << std::boolalpha << bank.all_consistent() << '\n';
  return matched == expected && bank.all_consistent() ? 0 : 1;
}
