// Reliability explorer: evaluate the paper's Section V-A analytic model at
// any design point from the command line.
//
//   reliability_explorer [fit_per_bit] [period_hours] [n] [m] [memory_gib]
//
// Defaults reproduce the paper's case study: 1e-3 FIT/bit, T=24h, n=1020,
// m=15, 1 GiB.  Arguments are strictly validated (util/parse): a malformed
// value prints a usage error and exits 1 instead of being silently coerced
// to 0 by atof/atoll (which then fails deep inside the model math).
#include <cstdlib>
#include <iostream>

#include "reliability/analytic.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace {

void explorer_usage() {
  std::cerr << "usage: reliability_explorer [fit_per_bit] [period_hours] "
               "[n] [m] [memory_gib]\n";
}

double require_double(const char* what, const char* text) {
  const auto parsed = pimecc::util::parse_double(text);
  if (!parsed) {
    std::cerr << "reliability_explorer: bad " << what << " '" << text
              << "' (want a finite number)\n";
    explorer_usage();
    std::exit(1);
  }
  return *parsed;
}

std::size_t require_size(const char* what, const char* text) {
  const auto parsed = pimecc::util::parse_size(text);
  if (!parsed || *parsed == 0) {
    std::cerr << "reliability_explorer: bad " << what << " '" << text
              << "' (want a positive integer)\n";
    explorer_usage();
    std::exit(1);
  }
  return *parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  rel::ReliabilityQuery query;
  if (argc > 1) query.fit_per_bit = require_double("fit_per_bit", argv[1]);
  if (argc > 2) {
    query.check_period_hours = require_double("period_hours", argv[2]);
  }
  if (argc > 3) query.n = require_size("n", argv[3]);
  if (argc > 4) query.m = require_size("m", argv[4]);
  if (argc > 5) {
    const double gib = require_double("memory_gib", argv[5]);
    if (gib <= 0.0) {
      std::cerr << "reliability_explorer: memory_gib must be positive\n";
      return 1;
    }
    query.memory_bits =
        static_cast<std::uint64_t>(gib * 8.0 * 1024 * 1024 * 1024);
  }

  std::cout << "design point: SER=" << util::format_sci(query.fit_per_bit, 2)
            << " FIT/bit, T=" << query.check_period_hours << "h, n=" << query.n
            << ", m=" << query.m << ", memory="
            << static_cast<double>(query.memory_bits) / 8.0 / 1024 / 1024 / 1024
            << " GiB\n\n";

  const rel::ReliabilityPoint baseline = rel::evaluate_baseline(query);
  const rel::ReliabilityPoint proposed = rel::evaluate_proposed(query);

  util::Table table({"Design", "P(bit err in T)", "Memory FIT", "MTTF (h)",
                     "MTTF (y)"});
  auto row = [&](const char* name, const rel::ReliabilityPoint& pt) {
    table.add_row({name, util::format_sci(pt.bit_error_probability, 3),
                   util::format_sci(pt.memory_fit, 3),
                   util::format_sci(pt.mttf_hours, 3),
                   util::format_sci(pt.mttf_hours / (24.0 * 365.0), 3)});
  };
  row("Baseline (no ECC)", baseline);
  row("Proposed (diagonal ECC)", proposed);
  std::cout << table << "\nImprovement: "
            << util::format_sci(proposed.mttf_hours / baseline.mttf_hours, 3)
            << "x\n";

  // Storage cost of the protection.
  const double overhead = 2.0 / static_cast<double>(query.m);
  std::cout << "check-bit storage overhead: " << util::format_pct(overhead)
            << " (2m per m^2 data bits)\n";
  return 0;
}
