// pimecc quickstart: store data in a MAGIC crossbar with diagonal-parity
// ECC attached, compute in-memory with the critical-operation protocol,
// then survive an injected soft error.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <iostream>

#include "arch/params.hpp"
#include "arch/pim_machine.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pimecc;

  // A small unit: 45 x 45 crossbar, 9 x 9 ECC blocks (m odd, m | n).
  arch::ArchParams params;
  params.n = 45;
  params.m = 9;
  arch::PimMachine machine(params);

  // 1. Load data; the CMEM encodes every block's 2m diagonal parities.
  util::Rng rng(42);
  util::BitMatrix image(params.n, params.n);
  for (std::size_t r = 0; r < params.n; ++r) {
    for (std::size_t c = 0; c < params.n; ++c) {
      image.set(r, c, rng.bernoulli(0.5));
    }
  }
  machine.load(image);
  std::cout << "loaded " << params.n << "x" << params.n
            << " bits; ECC consistent: " << std::boolalpha
            << machine.ecc_consistent() << '\n';

  // 2. Compute in-memory: column 2 <- NOR(column 0, column 1) in every row
  //    simultaneously -- one gate cycle for 45 NORs, with the check bits
  //    continuously updated through the shifters and processing crossbars.
  const std::size_t out_col = 2;
  const std::size_t in_cols[2] = {0, 1};
  machine.magic_init_rows_protected(std::span<const std::size_t>(&out_col, 1));
  machine.magic_nor_rows_protected(in_cols, out_col);
  std::cout << "after row-parallel NOR, ECC consistent: "
            << machine.ecc_consistent() << '\n';

  // 3. A soft error strikes a memristor...
  machine.inject_data_error(7, 2);
  std::cout << "after soft error at (7,2), ECC consistent: "
            << machine.ecc_consistent() << '\n';

  // 4. ...and the before-use check of that block-row finds and repairs it.
  const arch::CheckReport report = machine.check_block_row(7);
  std::cout << "check_block_row(7): " << report.corrected_data
            << " data bit(s) corrected, " << report.uncorrectable
            << " uncorrectable\n";
  std::cout << "repaired; ECC consistent: " << machine.ecc_consistent() << '\n';

  // 5. The data survived end to end: verify the NOR results.
  bool all_correct = true;
  for (std::size_t r = 0; r < params.n; ++r) {
    const bool expected = !(image.get(r, 0) || image.get(r, 1));
    all_correct = all_correct && machine.data().get(r, out_col) == expected;
  }
  std::cout << "all 45 in-memory NOR results correct: " << all_correct << '\n';

  std::cout << "cycles -- MEM: " << machine.counters().mem_cycles
            << ", CMEM: " << machine.counters().cmem_cycles
            << ", critical ops: " << machine.counters().critical_ops << '\n';
  return all_correct && report.corrected_data == 1 ? 0 : 1;
}
