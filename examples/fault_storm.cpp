// Fault storm: escalating soft-error bursts against one ECC-protected
// crossbar, scrubbing after each burst -- watch single errors per block get
// corrected and multi-error blocks become detected-uncorrectable, exactly
// the single-error-correction boundary of the per-block diagonal code.
#include <iomanip>
#include <iostream>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

int main() {
  using namespace pimecc;

  constexpr std::size_t kN = 120;
  constexpr std::size_t kM = 15;
  util::Rng rng(1234);

  util::BitMatrix golden(kN, kN);
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) golden.set(r, c, rng.bernoulli(0.5));
  }

  std::cout << "crossbar " << kN << "x" << kN << ", blocks " << kM << "x" << kM
            << " (" << (kN / kM) * (kN / kM) << " blocks)\n"
            << std::left << std::setw(10) << "flips" << std::setw(12)
            << "corrected" << std::setw(14) << "check-fixed" << std::setw(16)
            << "uncorrectable" << "residual-bad-bits\n";

  for (const std::size_t flips : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    util::BitMatrix data = golden;
    ecc::ArrayCode code(kN, kM);
    code.encode_all(data);
    fault::inject_flips_everywhere(rng, data, code, flips);
    const ecc::ScrubReport report = code.scrub(data);
    const std::size_t residual = data.hamming_distance(golden);
    std::cout << std::left << std::setw(10) << flips << std::setw(12)
              << report.corrected_data << std::setw(14)
              << report.corrected_check << std::setw(16) << report.uncorrectable
              << residual << '\n';
  }
  std::cout << "\nSingle errors per block always repair; failures need two "
               "hits in one " << kM << "x" << kM << " block (birthday regime).\n";
  return 0;
}
