// pimecc_map -- command-line SIMPLER mapper + ECC scheduler.
//
// Usage:
//   pimecc_map [options] <netlist.pnl | builtin:NAME>
//
//   --row-width N      crossbar row width (default 1020)
//   --block N          ECC block size m, odd (default 15)
//   --pcs K            processing crossbars (default 3)
//   --coverage MODE    outputs | both (default both)
//   --emit-netlist     print the parsed netlist back out (canonical .pnl)
//   --timeline N       print the first N scheduled resource events
//   --quiet            stats line only
//
// `builtin:NAME` loads one of the bundled EPFL-like benchmarks (adder,
// arbiter, bar, cavlc, ctrl, dec, int2float, max, priority, sin, voter).
//
// Exit status: 0 on success, 1 on bad usage/parse errors, 2 if the netlist
// does not fit the row.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/params.hpp"
#include "arch/scheduler.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "simpler/netlist_io.hpp"
#include "util/table.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: pimecc_map [--row-width N] [--block M] [--pcs K]\n"
        "                  [--coverage outputs|both] [--emit-netlist]\n"
        "                  [--quiet] <netlist.pnl | builtin:NAME>\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pimecc;

  arch::ArchParams params;
  auto coverage = simpler::CoveragePolicy::kInputsAndOutputs;
  bool emit_netlist = false;
  bool quiet = false;
  std::size_t timeline_events = 0;
  std::string source;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(std::cerr);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--row-width") {
      params.n = static_cast<std::size_t>(std::stoull(next_value()));
    } else if (arg == "--block") {
      params.m = static_cast<std::size_t>(std::stoull(next_value()));
    } else if (arg == "--pcs") {
      params.num_pcs = static_cast<std::size_t>(std::stoull(next_value()));
    } else if (arg == "--coverage") {
      const std::string mode = next_value();
      if (mode == "outputs") {
        coverage = simpler::CoveragePolicy::kOutputsOnly;
      } else if (mode == "both") {
        coverage = simpler::CoveragePolicy::kInputsAndOutputs;
      } else {
        std::cerr << "pimecc_map: unknown coverage mode '" << mode << "'\n";
        return 1;
      }
    } else if (arg == "--emit-netlist") {
      emit_netlist = true;
    } else if (arg == "--timeline") {
      timeline_events = static_cast<std::size_t>(std::stoull(next_value()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pimecc_map: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 1;
    } else if (source.empty()) {
      source = arg;
    } else {
      usage(std::cerr);
      return 1;
    }
  }
  if (source.empty()) {
    usage(std::cerr);
    return 1;
  }

  simpler::Netlist netlist("empty");
  try {
    if (source.rfind("builtin:", 0) == 0) {
      netlist = circuits::build_circuit(source.substr(8)).netlist;
    } else {
      std::ifstream file(source);
      if (!file) {
        std::cerr << "pimecc_map: cannot open '" << source << "'\n";
        return 1;
      }
      netlist = simpler::read_netlist(file);
    }
  } catch (const std::exception& e) {
    std::cerr << "pimecc_map: " << e.what() << '\n';
    return 1;
  }

  if (emit_netlist) {
    std::cout << simpler::write_netlist_text(netlist);
    return 0;
  }

  try {
    params.validate();
    simpler::MapperOptions options;
    options.row_width = params.n;
    const simpler::MappedProgram program = simpler::map_to_row(netlist, options);
    std::vector<arch::ScheduledEvent> events;
    const simpler::EccScheduleResult sched = simpler::schedule_with_ecc(
        program, params, coverage, timeline_events > 0 ? &events : nullptr);
    const std::size_t min_pcs = simpler::find_min_pcs(program, params, coverage);

    if (quiet) {
      std::cout << netlist.name() << " baseline=" << sched.baseline_cycles
                << " proposed=" << sched.proposed_cycles << " overhead="
                << util::format_pct(sched.overhead_fraction()) << " min_pcs="
                << min_pcs << '\n';
      return 0;
    }
    util::Table table({"Metric", "Value"});
    table.add_row({"netlist", netlist.name()});
    table.add_row({"inputs / outputs / gates",
                   std::to_string(netlist.num_inputs()) + " / " +
                       std::to_string(netlist.num_outputs()) + " / " +
                       std::to_string(netlist.num_gates())});
    table.add_row({"row width (n)", std::to_string(params.n)});
    table.add_row({"peak cells used", std::to_string(program.peak_cells_used)});
    table.add_row({"baseline cycles (gates + inits)",
                   std::to_string(program.gate_cycles) + " + " +
                       std::to_string(program.init_cycles) + " = " +
                       std::to_string(sched.baseline_cycles)});
    table.add_row({"proposed cycles (with ECC)",
                   std::to_string(sched.proposed_cycles)});
    table.add_row({"latency overhead",
                   util::format_pct(sched.overhead_fraction())});
    table.add_row({"critical ops / cancels",
                   std::to_string(sched.critical_ops) + " / " +
                       std::to_string(sched.cancel_ops)});
    table.add_row({"MEM stall cycles", std::to_string(sched.stall_cycles)});
    table.add_row({"min processing crossbars", std::to_string(min_pcs)});
    std::cout << table;
    if (timeline_events > 0) {
      std::stable_sort(events.begin(), events.end(),
                       [](const arch::ScheduledEvent& a,
                          const arch::ScheduledEvent& b) {
                         return a.cycle < b.cycle;
                       });
      std::cout << "\ntimeline (first " << timeline_events << " events):\n";
      for (std::size_t i = 0; i < events.size() && i < timeline_events; ++i) {
        const arch::ScheduledEvent& e = events[i];
        std::cout << "  [" << e.cycle;
        if (e.span > 1) std::cout << ".." << e.cycle + e.span - 1;
        std::cout << "] " << e.unit_name() << ' ' << e.label << '\n';
      }
    }
    return 0;
  } catch (const std::runtime_error& e) {
    std::cerr << "pimecc_map: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pimecc_map: " << e.what() << '\n';
    return 1;
  }
}
