// pimecc_map -- command-line SIMPLER mapper + ECC scheduler.
//
// Usage:
//   pimecc_map [options] <netlist.pnl | builtin:NAME>
//
//   --row-width N      crossbar row width (default 1020)
//   --block N          ECC block size m, odd (default 15)
//   --pcs K            processing crossbars (default 3)
//   --coverage MODE    outputs | both (default both)
//   --emit-netlist     print the parsed netlist back out (canonical .pnl)
//   --timeline N       print the first N scheduled resource events
//   --quiet            stats line only
//
// `builtin:NAME` loads one of the bundled EPFL-like benchmarks (adder,
// arbiter, bar, cavlc, ctrl, dec, int2float, max, priority, sin, voter).
//
// Exit status: 0 on success, 1 on bad usage/parse errors, 2 if the netlist
// does not fit the row.
//
// The implementation lives in tools/app.cpp (run_map_tool), shared with the
// `pimecc map` subcommand.
#include "app.hpp"

int main(int argc, char** argv) {
  return pimecc::tools::run_map_tool(argc, argv, 1, "pimecc_map");
}
