// pimecc -- tools/app.hpp
//
// Shared scaffolding of the command-line tools (pimecc, pimecc_map):
// checked flag parsing on top of util/parse -- a malformed numeric value
// raises UsageError, which main() turns into a usage message and exit
// status 1, never an uncaught std::stoull std::invalid_argument and a
// std::terminate -- plus the map-tool implementation both binaries share.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pimecc::tools {

/// Any bad command-line input.  Tool mains catch it, print the message and
/// the tool's usage to stderr, and exit 1.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict flag-value parsers: throw UsageError naming the flag unless the
/// whole value is a valid in-range literal.
[[nodiscard]] std::uint64_t flag_u64(std::string_view flag,
                                     std::string_view value);
[[nodiscard]] std::size_t flag_size(std::string_view flag,
                                    std::string_view value);
[[nodiscard]] double flag_double(std::string_view flag, std::string_view value);

/// argv[i + 1] as the value of flag argv[i]; advances i.  Throws UsageError
/// when the value is missing.
[[nodiscard]] std::string flag_value(int argc, char** argv, int& i,
                                     std::string_view flag);

/// The pimecc_map tool: maps a netlist and schedules it under the ECC
/// architecture.  `argv[first..argc)` are the tool's own arguments; `prog`
/// names the invocation in messages ("pimecc_map" or "pimecc map").  Exit
/// status: 0 success, 1 usage/parse error, 2 netlist does not fit the row.
int run_map_tool(int argc, char** argv, int first, std::string_view prog);

}  // namespace pimecc::tools
