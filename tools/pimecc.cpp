// pimecc -- the serving front end: one binary, PISA-style subcommands.
//
// Usage:
//   pimecc map   [pimecc_map options] <netlist.pnl | builtin:NAME>
//   pimecc run   [--circuit NAME] [--n N] [--m M] [--seed S]
//   pimecc mttf  [--fit F] [--period H] [--n N] [--m M] [--gib G]
//                [--simulate] [--trials T] [--crossbars C] [--max-hours H]
//                [--threads K] [--chunk T] [--checkpoint PATH] [--seed S]
//   pimecc sweep [--fit-low F] [--fit-high F] [--ppd N] [--period H]
//                [--n N] [--m M] [--gib G] [--batch B] [--lanes L]
//   pimecc sweep --scenarios [--fit F] [--period H] [--n N] [--m M]
//                [--trials T] [--horizon H] [--seed S] [--batch B] [--lanes L]
//   pimecc serve --trace FILE|- [--batch B] [--lanes L] [--max-pending P]
//                [--stats]
//
// `map` is exactly the pimecc_map tool (same implementation, same exit
// codes).  `run` executes one benchmark end-to-end on the ECC-protected
// machine.  `mttf` evaluates the closed-form model; with --simulate it
// also runs the Monte Carlo lifetime engine, resumable via --checkpoint
// (interrupt it, rerun the identical command, and it continues from the
// last completed chunk with bit-identical results).  `sweep` drives one
// analytic mttf request per sweep point through the batched server; with
// --scenarios it instead drives one Monte Carlo scenario request per
// fault-model x scrub-policy combination (reliability/scenario.hpp) and
// prints the MTTF-vs-scrub-overhead grid.
// `serve` is the daemon loop: it reads request lines (see
// serve/request.hpp for the format) from a trace file or stdin, serves
// them in admission batches on the shared executor, and prints one
// response line per request in submission order.
//
// Exit status: 0 on success, 1 on bad usage or a failed run/mttf request
// (map keeps its 0/1/2 contract).
#include <csignal>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "app.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/scenario.hpp"
#include "serve/server.hpp"
#include "util/chaos.hpp"
#include "util/ckpt_store.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace {

using namespace pimecc;

// Graceful-shutdown latch for `pimecc serve`: SIGINT/SIGTERM request a
// drain-and-exit instead of killing the process mid-batch.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

void usage(std::ostream& os) {
  os << "usage: pimecc <map|run|mttf|sweep|serve> [options]\n"
        "  map    [pimecc_map options] <netlist.pnl | builtin:NAME>\n"
        "  run    [--circuit NAME] [--n N] [--m M] [--seed S]\n"
        "  mttf   [--fit F] [--period H] [--n N] [--m M] [--gib G]\n"
        "         [--simulate] [--trials T] [--crossbars C] [--max-hours H]\n"
        "         [--threads K] [--chunk T] [--checkpoint PATH] [--seed S]\n"
        "  sweep  [--fit-low F] [--fit-high F] [--ppd N] [--period H]\n"
        "         [--n N] [--m M] [--gib G] [--batch B] [--lanes L]\n"
        "  sweep  --scenarios [--fit F] [--period H] [--n N] [--m M]\n"
        "         [--trials T] [--horizon H] [--seed S] [--batch B] [--lanes L]\n"
        "  serve  --trace FILE|- [--batch B] [--lanes L] [--max-pending P]\n"
        "         [--stats]\n";
}

int fail_usage(const tools::UsageError& e) {
  std::cerr << "pimecc: " << e.what() << '\n';
  usage(std::cerr);
  return 1;
}

int cmd_run(int argc, char** argv) {
  serve::Request request;
  request.kind = serve::RequestKind::kRun;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--circuit") {
      request.circuit = tools::flag_value(argc, argv, i, arg);
    } else if (arg == "--n") {
      request.n = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--m") {
      request.m = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--seed") {
      request.seed = tools::flag_u64(arg, tools::flag_value(argc, argv, i, arg));
    } else {
      throw tools::UsageError("run: unknown option '" + arg + "'");
    }
  }
  serve::Server server;
  const serve::Response response = server.execute(request);
  std::cout << serve::format_response(response) << '\n';
  return response.ok && response.mismatches == 0 ? 0 : 1;
}

int cmd_mttf(int argc, char** argv) {
  serve::Request request;
  request.kind = serve::RequestKind::kMttf;
  bool simulate = false;
  rel::LifetimeConfig config;
  config.fit_per_bit = request.fit_per_bit;
  config.trials = 200;
  std::string checkpoint_path;
  std::size_t chunk = 50;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fit") {
      request.fit_per_bit =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--period") {
      request.period_hours =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--n") {
      request.n = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--m") {
      request.m = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--gib") {
      request.memory_gib =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--trials") {
      config.trials =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--crossbars") {
      config.crossbars =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--max-hours") {
      config.max_hours =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--threads") {
      config.threads =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--chunk") {
      chunk = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--checkpoint") {
      checkpoint_path = tools::flag_value(argc, argv, i, arg);
    } else if (arg == "--seed") {
      seed = tools::flag_u64(arg, tools::flag_value(argc, argv, i, arg));
    } else {
      throw tools::UsageError("mttf: unknown option '" + arg + "'");
    }
  }

  serve::Server server;
  const serve::Response response = server.execute(request);
  std::cout << serve::format_response(response) << '\n';
  if (!response.ok) return 1;
  if (!simulate) return 0;

  config.n = request.n;
  config.m = request.m;
  config.fit_per_bit = request.fit_per_bit;
  config.scrub_period_hours = request.period_hours;

  try {
    rel::LifetimeProgress progress;
    bool resumed = false;
    std::optional<util::CheckpointStore> store;
    if (!checkpoint_path.empty()) {
      store.emplace(checkpoint_path);
      // Recovery scans the rotated generations newest-first and resumes
      // from the latest one that decodes against this config; a torn or
      // corrupted generation is skipped, not fatal.
      rel::LifetimeProgress candidate;
      const auto recovered =
          store->recover([&](std::span<const std::uint8_t> bytes) {
            std::istringstream in(
                std::string(reinterpret_cast<const char*>(bytes.data()),
                            bytes.size()),
                std::ios::binary);
            candidate = rel::load_lifetime_checkpoint(in, config);
            return true;
          });
      if (recovered.has_value()) {
        progress = candidate;
        resumed = true;
        std::cout << "resumed checkpoint: " << progress.trials_done << '/'
                  << config.trials << " trials done (generation "
                  << recovered->generation << ", " << recovered->rejected
                  << " rejected)\n";
      }
    }
    if (!resumed) {
      util::Rng rng(seed);
      progress = rel::begin_lifetime(config, rng);
    }
    while (!rel::lifetime_complete(config, progress)) {
      rel::advance_lifetime(config, progress, chunk);
      if (store.has_value()) {
        std::ostringstream out(std::ios::binary);
        rel::save_lifetime_checkpoint(out, config, progress);
        const std::string blob = out.str();
        try {
          // Atomic temp + fsync + rename into the rotated generations;
          // transient failures retry with backoff inside save().
          store->save(std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(blob.data()),
              blob.size()));
        } catch (const util::chaos::IoError& e) {
          std::cerr << "pimecc: cannot write checkpoint '" << checkpoint_path
                    << "': " << e.what() << '\n';
          return 1;
        }
      }
    }
    const rel::LifetimeResult result = rel::lifetime_result(progress);
    std::cout << "simulated trials=" << result.trials
              << " failures=" << result.failures
              << " scrubs=" << result.scrubs_performed
              << " corrected=" << result.errors_corrected
              << " empirical_mttf_h="
              << result.empirical_mttf_hours(config.max_hours)
              << " analytic_mttf_h=" << rel::analytic_mttf_hours(config)
              << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pimecc: " << e.what() << '\n';
    return 1;
  }
}

int cmd_sweep_scenarios(int argc, char** argv) {
  serve::Request point;
  point.kind = serve::RequestKind::kScenario;
  point.n = 60;  // the scenario engine's tractable default, not mttf's 1020
  point.m = 15;
  serve::ServerConfig server_config;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenarios") {
      continue;
    } else if (arg == "--fit") {
      point.fit_per_bit =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--period") {
      point.period_hours =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--n") {
      point.n = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--m") {
      point.m = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--trials") {
      point.trials = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--horizon") {
      point.horizon_hours =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--seed") {
      point.seed = tools::flag_u64(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--batch") {
      server_config.max_batch =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--lanes") {
      server_config.lanes =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else {
      throw tools::UsageError("sweep: unknown option '" + arg + "'");
    }
  }

  // One Monte Carlo scenario request per fault-model x scrub-policy cell,
  // batched through the server's queue -- the same path `serve` exercises.
  serve::Server server(server_config);
  struct Cell {
    std::string_view model;
    std::string_view policy;
    std::uint64_t ticket;
  };
  std::vector<Cell> cells;
  for (const std::string_view model : rel::fault_preset_names()) {
    for (const std::string_view policy : rel::scrub_policy_preset_names()) {
      serve::Request request = point;
      request.model = std::string(model);
      request.policy = std::string(policy);
      cells.push_back({model, policy, server.submit(std::move(request))});
    }
  }
  server.drain();
  bool all_ok = true;
  for (const Cell& cell : cells) {
    const serve::Response response = server.take(cell.ticket);
    std::cout << "model=" << cell.model << " policy=" << cell.policy << ' '
              << serve::format_response(response) << '\n';
    all_ok = all_ok && response.ok;
  }
  return all_ok ? 0 : 1;
}

int cmd_sweep(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--scenarios") {
      return cmd_sweep_scenarios(argc, argv);
    }
  }
  serve::Request point;
  point.kind = serve::RequestKind::kMttf;
  double fit_low = 1e-4;
  double fit_high = 1.0;
  std::size_t ppd = 2;
  serve::ServerConfig server_config;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fit-low") {
      fit_low = tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--fit-high") {
      fit_high = tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--ppd") {
      ppd = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--period") {
      point.period_hours =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--n") {
      point.n = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--m") {
      point.m = tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--gib") {
      point.memory_gib =
          tools::flag_double(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--batch") {
      server_config.max_batch =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--lanes") {
      server_config.lanes =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else {
      throw tools::UsageError("sweep: unknown option '" + arg + "'");
    }
  }
  if (!(fit_low > 0.0) || !(fit_high >= fit_low) || ppd == 0) {
    throw tools::UsageError("sweep: need 0 < --fit-low <= --fit-high, --ppd >= 1");
  }

  // One analytic request per log-spaced sweep point, batched through the
  // server's queue -- the same path `serve` exercises.
  serve::Server server(server_config);
  std::vector<std::uint64_t> tickets;
  std::vector<double> fits;
  const double decades = std::log10(fit_high / fit_low);
  const std::size_t points =
      static_cast<std::size_t>(decades * static_cast<double>(ppd)) + 1;
  for (std::size_t p = 0; p < points; ++p) {
    serve::Request request = point;
    request.fit_per_bit =
        fit_low * std::pow(10.0, static_cast<double>(p) /
                                     static_cast<double>(ppd));
    fits.push_back(request.fit_per_bit);
    tickets.push_back(server.submit(std::move(request)));
  }
  server.drain();
  bool all_ok = true;
  for (std::size_t p = 0; p < tickets.size(); ++p) {
    const serve::Response response = server.take(tickets[p]);
    std::cout << "fit=" << fits[p] << ' '
              << serve::format_response(response) << '\n';
    all_ok = all_ok && response.ok;
  }
  return all_ok ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  std::string trace_path;
  serve::ServerConfig server_config;
  bool print_stats = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace_path = tools::flag_value(argc, argv, i, arg);
    } else if (arg == "--batch") {
      server_config.max_batch =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--lanes") {
      server_config.lanes =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--max-pending") {
      server_config.max_pending =
          tools::flag_size(arg, tools::flag_value(argc, argv, i, arg));
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      throw tools::UsageError("serve: unknown option '" + arg + "'");
    }
  }
  if (trace_path.empty()) {
    throw tools::UsageError("serve: --trace FILE|- is required");
  }

  std::ifstream file;
  if (trace_path != "-") {
    file.open(trace_path);
    if (!file) {
      std::cerr << "pimecc: cannot open trace '" << trace_path << "'\n";
      return 1;
    }
  }
  std::istream& in = trace_path == "-" ? std::cin : file;

  // Graceful shutdown: SIGINT/SIGTERM stop admission, already-served work
  // still gets its response lines, queued-but-unserved tickets are
  // reported as cancelled.
  g_stop_requested = 0;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // The daemon loop: admit requests, serve a batch whenever max_batch are
  // pending (or the trace ends), answer in submission order.  A line that
  // cannot be parsed or admitted gets an immediate error line in its slot
  // (sentinel ticket), so the transcript stays one line per request.
  serve::Server server(server_config);
  constexpr std::uint64_t kNoTicket = ~std::uint64_t{0};
  std::vector<std::uint64_t> tickets;
  std::vector<std::string> early_lines;  // aligned with tickets via sentinel
  std::string line;
  while (g_stop_requested == 0 && std::getline(in, line)) {
    serve::Request request;
    std::string error;
    if (serve::parse_request(line, request, error)) {
      const serve::RequestKind kind = request.kind;
      serve::Admission admission = server.try_submit(std::move(request));
      if (admission.admitted) {
        tickets.push_back(admission.ticket);
        early_lines.emplace_back();
        if (server.pending() >= server_config.max_batch) server.drain_once();
      } else {
        // Backpressure: the rejection is itself the response.
        serve::Response rejected;
        rejected.kind = kind;
        rejected.code = admission.code;
        rejected.error = admission.message;
        tickets.push_back(kNoTicket);
        early_lines.push_back(serve::format_response(rejected));
      }
    } else if (!error.empty()) {
      // No request kind to report: the line never parsed.
      tickets.push_back(kNoTicket);
      early_lines.push_back("error kind=parse code=invalid_argument message=\"" +
                            error + '"');
    }
  }
  std::size_t cancelled = 0;
  if (g_stop_requested != 0) {
    // Stop admitting and fail the queued remainder; whatever a drain has
    // already published still reaches the transcript below.
    cancelled = server.shutdown();
  } else {
    server.drain();
    server.close();
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (tickets[i] == kNoTicket) {
      std::cout << early_lines[i] << '\n';
    } else {
      std::cout << serve::format_response(server.take(tickets[i])) << '\n';
    }
  }
  if (g_stop_requested != 0) {
    std::cerr << "pimecc: serve interrupted: " << cancelled
              << " queued request(s) cancelled\n";
  }
  if (print_stats) {
    const serve::RegistryStats stats = server.registry().stats();
    std::cerr << "registry: circuits " << stats.circuit_hits << " hit / "
              << stats.circuit_misses << " miss; programs "
              << stats.program_hits << " hit / " << stats.program_misses
              << " miss; machines " << stats.machine_reuses << " reused / "
              << stats.machine_builds << " built\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "map") {
      return tools::run_map_tool(argc, argv, 2, "pimecc map");
    } else if (command == "run") {
      return cmd_run(argc, argv);
    } else if (command == "mttf") {
      return cmd_mttf(argc, argv);
    } else if (command == "sweep") {
      return cmd_sweep(argc, argv);
    } else if (command == "serve") {
      return cmd_serve(argc, argv);
    } else if (command == "--help" || command == "-h") {
      usage(std::cout);
      return 0;
    }
    throw tools::UsageError("unknown command '" + command + "'");
  } catch (const tools::UsageError& e) {
    return fail_usage(e);
  } catch (const std::exception& e) {
    std::cerr << "pimecc: " << e.what() << '\n';
    return 1;
  }
}
