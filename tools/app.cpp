#include "app.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "arch/params.hpp"
#include "arch/scheduler.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/ecc_schedule.hpp"
#include "simpler/mapper.hpp"
#include "simpler/netlist_io.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace pimecc::tools {

std::uint64_t flag_u64(std::string_view flag, std::string_view value) {
  const auto parsed = util::parse_u64(value);
  if (!parsed) {
    throw UsageError(std::string(flag) + ": expected an unsigned integer, got '" +
                     std::string(value) + "'");
  }
  return *parsed;
}

std::size_t flag_size(std::string_view flag, std::string_view value) {
  const auto parsed = util::parse_size(value);
  if (!parsed) {
    throw UsageError(std::string(flag) + ": expected an unsigned integer, got '" +
                     std::string(value) + "'");
  }
  return *parsed;
}

double flag_double(std::string_view flag, std::string_view value) {
  const auto parsed = util::parse_double(value);
  if (!parsed) {
    throw UsageError(std::string(flag) + ": expected a finite number, got '" +
                     std::string(value) + "'");
  }
  return *parsed;
}

std::string flag_value(int argc, char** argv, int& i, std::string_view flag) {
  if (i + 1 >= argc) {
    throw UsageError("missing value for " + std::string(flag));
  }
  return argv[++i];
}

namespace {

void map_usage(std::ostream& os, std::string_view prog) {
  os << "usage: " << prog
     << " [--row-width N] [--block M] [--pcs K]\n"
        "                  [--coverage outputs|both] [--emit-netlist]\n"
        "                  [--timeline N] [--quiet] <netlist.pnl | builtin:NAME>\n";
}

}  // namespace

int run_map_tool(int argc, char** argv, int first, std::string_view prog) {
  arch::ArchParams params;
  auto coverage = simpler::CoveragePolicy::kInputsAndOutputs;
  bool emit_netlist = false;
  bool quiet = false;
  std::size_t timeline_events = 0;
  std::string source;

  try {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--row-width") {
        params.n = flag_size(arg, flag_value(argc, argv, i, arg));
      } else if (arg == "--block") {
        params.m = flag_size(arg, flag_value(argc, argv, i, arg));
      } else if (arg == "--pcs") {
        params.num_pcs = flag_size(arg, flag_value(argc, argv, i, arg));
      } else if (arg == "--coverage") {
        const std::string mode = flag_value(argc, argv, i, arg);
        if (mode == "outputs") {
          coverage = simpler::CoveragePolicy::kOutputsOnly;
        } else if (mode == "both") {
          coverage = simpler::CoveragePolicy::kInputsAndOutputs;
        } else {
          throw UsageError("unknown coverage mode '" + mode + "'");
        }
      } else if (arg == "--emit-netlist") {
        emit_netlist = true;
      } else if (arg == "--timeline") {
        timeline_events = flag_size(arg, flag_value(argc, argv, i, arg));
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        map_usage(std::cout, prog);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw UsageError("unknown option '" + arg + "'");
      } else if (source.empty()) {
        source = arg;
      } else {
        throw UsageError("more than one netlist argument");
      }
    }
    if (source.empty()) {
      throw UsageError("missing netlist argument");
    }
  } catch (const UsageError& e) {
    std::cerr << prog << ": " << e.what() << '\n';
    map_usage(std::cerr, prog);
    return 1;
  }

  simpler::Netlist netlist("empty");
  try {
    if (source.rfind("builtin:", 0) == 0) {
      netlist = circuits::build_circuit(source.substr(8)).netlist;
    } else {
      std::ifstream file(source);
      if (!file) {
        std::cerr << prog << ": cannot open '" << source << "'\n";
        return 1;
      }
      netlist = simpler::read_netlist(file);
    }
  } catch (const std::exception& e) {
    std::cerr << prog << ": " << e.what() << '\n';
    return 1;
  }

  if (emit_netlist) {
    std::cout << simpler::write_netlist_text(netlist);
    return 0;
  }

  try {
    params.validate();
    simpler::MapperOptions options;
    options.row_width = params.n;
    const simpler::MappedProgram program = simpler::map_to_row(netlist, options);
    std::vector<arch::ScheduledEvent> events;
    const simpler::EccScheduleResult sched = simpler::schedule_with_ecc(
        program, params, coverage, timeline_events > 0 ? &events : nullptr);
    const std::size_t min_pcs = simpler::find_min_pcs(program, params, coverage);

    if (quiet) {
      std::cout << netlist.name() << " baseline=" << sched.baseline_cycles
                << " proposed=" << sched.proposed_cycles << " overhead="
                << util::format_pct(sched.overhead_fraction()) << " min_pcs="
                << min_pcs << '\n';
      return 0;
    }
    util::Table table({"Metric", "Value"});
    table.add_row({"netlist", netlist.name()});
    table.add_row({"inputs / outputs / gates",
                   std::to_string(netlist.num_inputs()) + " / " +
                       std::to_string(netlist.num_outputs()) + " / " +
                       std::to_string(netlist.num_gates())});
    table.add_row({"row width (n)", std::to_string(params.n)});
    table.add_row({"peak cells used", std::to_string(program.peak_cells_used)});
    table.add_row({"baseline cycles (gates + inits)",
                   std::to_string(program.gate_cycles) + " + " +
                       std::to_string(program.init_cycles) + " = " +
                       std::to_string(sched.baseline_cycles)});
    table.add_row({"proposed cycles (with ECC)",
                   std::to_string(sched.proposed_cycles)});
    table.add_row({"latency overhead",
                   util::format_pct(sched.overhead_fraction())});
    table.add_row({"critical ops / cancels",
                   std::to_string(sched.critical_ops) + " / " +
                       std::to_string(sched.cancel_ops)});
    table.add_row({"MEM stall cycles", std::to_string(sched.stall_cycles)});
    table.add_row({"min processing crossbars", std::to_string(min_pcs)});
    std::cout << table;
    if (timeline_events > 0) {
      std::stable_sort(events.begin(), events.end(),
                       [](const arch::ScheduledEvent& a,
                          const arch::ScheduledEvent& b) {
                         return a.cycle < b.cycle;
                       });
      std::cout << "\ntimeline (first " << timeline_events << " events):\n";
      for (std::size_t i = 0; i < events.size() && i < timeline_events; ++i) {
        const arch::ScheduledEvent& e = events[i];
        std::cout << "  [" << e.cycle;
        if (e.span > 1) std::cout << ".." << e.cycle + e.span - 1;
        std::cout << "] " << e.unit_name() << ' ' << e.label << '\n';
      }
    }
    return 0;
  } catch (const std::runtime_error& e) {
    std::cerr << prog << ": " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << prog << ": " << e.what() << '\n';
    return 1;
  }
}

}  // namespace pimecc::tools
