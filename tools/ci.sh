#!/usr/bin/env bash
# Canonical local CI gate: configure + build + ctest in Debug and Release.
# Run from anywhere; builds land in <repo>/build-ci-{debug,release}.
#
# Usage: tools/ci.sh [--werror] [extra cmake args...]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake_args=()
if [[ "${1:-}" == "--werror" ]]; then
  cmake_args+=(-DPIMECC_WERROR=ON)
  shift
fi
cmake_args+=("$@")

# Sanitizer stage: UBSan+ASan Debug build running the unit-label tests, so
# the shift-width / tail-word / gather-bounds classes of bug the SIMD
# kernels are hardened against abort CI instead of regressing silently.
# Skipped (with a notice) when the toolchain has no ASan runtime.
sanitize_dir="$repo/build-ci-sanitize"
if echo 'int main(){}' | c++ -x c++ -fsanitize=address,undefined -o /dev/null - 2>/dev/null; then
  echo "==== [Sanitize] configure ===="
  cmake -B "$sanitize_dir" -S "$repo" -DCMAKE_BUILD_TYPE=Debug -DPIMECC_SANITIZE=ON \
    "${cmake_args[@]+"${cmake_args[@]}"}"
  echo "==== [Sanitize] build ===="
  cmake --build "$sanitize_dir" -j "$jobs"
  echo "==== [Sanitize] test (unit label) ===="
  ctest --test-dir "$sanitize_dir" -L unit --output-on-failure -j "$jobs"
else
  echo "==== toolchain lacks ASan/UBSan runtime; skipping sanitize stage ===="
fi

# ThreadSanitizer stage: races the work-stealing executor, the fleet bulk
# operations, and the trial pools (the concurrency-label tests).  TSan can't
# coexist with ASan in one binary, so this is its own build tree.  Skipped
# (with a notice) when the toolchain has no TSan runtime.
tsan_dir="$repo/build-ci-tsan"
if echo 'int main(){}' | c++ -x c++ -fsanitize=thread -o /dev/null - 2>/dev/null; then
  echo "==== [TSan] configure ===="
  cmake -B "$tsan_dir" -S "$repo" -DCMAKE_BUILD_TYPE=Debug -DPIMECC_TSAN=ON \
    "${cmake_args[@]+"${cmake_args[@]}"}"
  echo "==== [TSan] build ===="
  cmake --build "$tsan_dir" -j "$jobs"
  echo "==== [TSan] test (concurrency label) ===="
  ctest --test-dir "$tsan_dir" -L concurrency --output-on-failure -j "$jobs"
  # The serve deadline/cancel/shutdown paths and the fleet quarantine
  # accounting race threads by design; run them under TSan explicitly.
  echo "==== [TSan] test (robustness label) ===="
  ctest --test-dir "$tsan_dir" -L robustness --output-on-failure -j "$jobs"
else
  echo "==== toolchain lacks TSan runtime; skipping tsan stage ===="
fi

release_dir=""
for config in Debug Release; do
  # tr, not ${config,,}: macOS ships bash 3.2 which lacks case expansion.
  build_dir="$repo/build-ci-$(tr '[:upper:]' '[:lower:]' <<<"$config")"
  if [[ "$config" == "Release" ]]; then release_dir="$build_dir"; fi
  echo "==== [$config] configure ===="
  cmake -B "$build_dir" -S "$repo" -DCMAKE_BUILD_TYPE="$config" "${cmake_args[@]+"${cmake_args[@]}"}"
  echo "==== [$config] build ===="
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$config] test ===="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  # Fault-tolerance gate: the chaos-injection + crash-recovery suites
  # (torn-write checkpoint resume, serve admission/deadline/shutdown,
  # fleet quarantine accounting) must pass standalone in every config.
  echo "==== [$config] test (robustness label) ===="
  ctest --test-dir "$build_dir" -L robustness --output-on-failure -j "$jobs"
done

# Engine perf tracking: smoke-configuration run of the throughput harness,
# archived next to the Release build (the committed BENCH_engine.json at the
# repo root is a full-configuration run; don't clobber it from CI).  Guarded:
# extra cmake args may disable the bench build entirely.
bench_bin="$release_dir/bench/bench_engine_throughput"
if [[ -n "$release_dir" && -x "$bench_bin" ]]; then
  echo "==== [Release] bench_engine_throughput (smoke) ===="
  "$bench_bin" --smoke --out="$release_dir/BENCH_engine.json"
  echo "archived $release_dir/BENCH_engine.json"
else
  echo "==== bench_engine_throughput not built; skipping smoke bench ===="
fi

# Same for the ECC codec layer: the smoke configuration also runs the
# fast-vs-reference differential cross-check (non-zero exit on divergence).
codec_bin="$release_dir/bench/bench_codec_throughput"
if [[ -n "$release_dir" && -x "$codec_bin" ]]; then
  echo "==== [Release] bench_codec_throughput (smoke) ===="
  "$codec_bin" --smoke --out="$release_dir/BENCH_codec.json"
  echo "archived $release_dir/BENCH_codec.json"
else
  echo "==== bench_codec_throughput not built; skipping smoke bench ===="
fi

# And the arch layer: the smoke configuration runs the full fast-vs-reference
# machine cross-check (identical protected program + fault injection; contents,
# check state, cycle counters and reports must all agree) and gates on it.
arch_bin="$release_dir/bench/bench_arch_throughput"
if [[ -n "$release_dir" && -x "$arch_bin" ]]; then
  echo "==== [Release] bench_arch_throughput (smoke) ===="
  "$arch_bin" --smoke --out="$release_dir/BENCH_arch.json"
  echo "archived $release_dir/BENCH_arch.json"
else
  echo "==== bench_arch_throughput not built; skipping smoke bench ===="
fi

# And the reliability layer: the smoke configuration runs the sparse-vs-dense
# Monte Carlo counter-equality check and the lifetime distribution gates
# (zero-rate scrub accounting, matched failure counts, analytic agreement)
# and exits non-zero on any divergence.
rel_bin="$release_dir/bench/bench_reliability_throughput"
if [[ -n "$release_dir" && -x "$rel_bin" ]]; then
  echo "==== [Release] bench_reliability_throughput (smoke) ===="
  "$rel_bin" --smoke --out="$release_dir/BENCH_reliability.json"
  echo "archived $release_dir/BENCH_reliability.json"
else
  echo "==== bench_reliability_throughput not built; skipping smoke bench ===="
fi

# And the fleet layer: the smoke configuration runs the fleet-vs-flat
# Monte Carlo bit-identity gate at every tested shard/worker count plus the
# fleet-vs-single-crossbar scrub differential, and exits non-zero on any
# divergence.
fleet_bin="$release_dir/bench/bench_fleet_throughput"
if [[ -n "$release_dir" && -x "$fleet_bin" ]]; then
  echo "==== [Release] bench_fleet_throughput (smoke) ===="
  "$fleet_bin" --smoke --out="$release_dir/BENCH_fleet.json"
  echo "archived $release_dir/BENCH_fleet.json"
else
  echo "==== bench_fleet_throughput not built; skipping smoke bench ===="
fi

# And the serving layer: the smoke configuration runs the serve-determinism
# gate (identical responses at every batch size and lane count), the machine
# checkpoint continuation identity, and the serialized chunked-lifetime
# resume bit-identity, and exits non-zero on any divergence.
serving_bin="$release_dir/bench/bench_serving"
if [[ -n "$release_dir" && -x "$serving_bin" ]]; then
  echo "==== [Release] bench_serving (smoke) ===="
  "$serving_bin" --smoke --out="$release_dir/BENCH_serving.json"
  echo "archived $release_dir/BENCH_serving.json"
else
  echo "==== bench_serving not built; skipping smoke bench ===="
fi

# And the scenario-diversity layer: the smoke configuration runs the
# thread-determinism gate (bit-identical campaigns at 1 vs 4 lanes), the
# exact zero-rate scrub-accounting cross-check against the lifetime engine,
# the iid statistical pin, and the stuck-at accounting invariants, and exits
# non-zero on any divergence.
scenarios_bin="$release_dir/bench/bench_scenarios"
if [[ -n "$release_dir" && -x "$scenarios_bin" ]]; then
  echo "==== [Release] bench_scenarios (smoke) ===="
  "$scenarios_bin" --smoke --out="$release_dir/BENCH_scenarios.json"
  echo "archived $release_dir/BENCH_scenarios.json"
else
  echo "==== bench_scenarios not built; skipping smoke bench ===="
fi

echo "==== CI gate passed (Debug + Release) ===="
