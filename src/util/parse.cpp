#include "util/parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace pimecc::util {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // from_chars accepts a leading '-' for unsigned types (negation modulo
  // 2^64); reject any non-digit up front so "-1" and "+1" both fail.
  if (!std::isdigit(static_cast<unsigned char>(text.front()))) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::size_t> parse_size(std::string_view text) {
  const auto value = parse_u64(text);
  if (!value || *value > static_cast<std::uint64_t>(~std::size_t{0})) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*value);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const char first = text.front();
  if (!std::isdigit(static_cast<unsigned char>(first)) && first != '-' &&
      first != '.') {
    return std::nullopt;  // rejects "+1", "inf", "nan", whitespace
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                         value, std::chars_format::general);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // "1e999" overflows to inf
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "1" || text == "true" || text == "on") return true;
  if (text == "0" || text == "false" || text == "off") return false;
  return std::nullopt;
}

}  // namespace pimecc::util
