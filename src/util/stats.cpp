#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pimecc::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci_halfwidth(double z) const noexcept {
  if (n_ < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

double geometric_mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

ProportionInterval wilson_interval(std::size_t k, std::size_t n, double z) noexcept {
  ProportionInterval out;
  if (n == 0) return out;
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn)) / denom;
  out.center = center;
  out.low = std::max(0.0, center - half);
  out.high = std::min(1.0, center + half);
  return out;
}

double percentile(std::vector<double> values, double p) noexcept {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace pimecc::util
