// pimecc -- util/bitvector.hpp
//
// Dense dynamic bit vector with word-parallel logic operations.
//
// BitVector is the storage primitive shared by the crossbar simulator
// (src/xbar), the ECC codecs (src/core), and the netlist evaluator
// (src/simpler).  It intentionally offers NOR as a first-class operation
// because MAGIC's native gate is NOR.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pimecc::util {

/// Dense vector of bits backed by 64-bit words.
///
/// Indexing is bounds-checked in debug builds (assert) and by `at()` in all
/// builds.  Logic operations require equal sizes and throw
/// `std::invalid_argument` on mismatch; this is a programming error, not a
/// data error, so it is not part of the simulation result space.
class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;

  /// Constructs `size` bits, all zero.
  explicit BitVector(std::size_t size);

  /// Constructs `size` bits, all set to `value`.
  BitVector(std::size_t size, bool value);

  /// Parses a string of '0'/'1' characters, index 0 = leftmost character.
  /// Throws std::invalid_argument on any other character.
  static BitVector from_string(const std::string& bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // --- word-level access (the word-parallel engine's fast path) -----------
  /// Number of backing 64-bit words.
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  /// Read-only view of the backing words.  Bits at positions >= size() in
  /// the last word are guaranteed zero (class invariant).
  [[nodiscard]] std::span<const Word> words() const noexcept { return words_; }
  /// Mutable view of the backing words.  A caller that may set bits beyond
  /// size() must call sanitize() before using any other member.
  [[nodiscard]] std::span<Word> words_mutable() noexcept { return words_; }
  /// Re-establishes the padding invariant after raw word writes.
  void sanitize() noexcept { clear_padding(); }
  /// Word 0 (bits [0, 64)), or 0 when empty.  The codec engine stores one
  /// diagonal-parity family per word for block sizes m <= 64.
  [[nodiscard]] Word low_word() const noexcept {
    return words_.empty() ? Word{0} : words_[0];
  }
  /// Overwrites word 0 and re-establishes the padding invariant, so stray
  /// bits at positions >= size() are discarded.  Requires size() > 0.
  void set_low_word(Word w) noexcept;

  /// Unchecked bit read (asserts in debug builds).
  [[nodiscard]] bool get(std::size_t i) const noexcept;
  /// Unchecked bit write (asserts in debug builds).
  void set(std::size_t i, bool value) noexcept;
  /// Checked bit read; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t i) const;
  /// Flips bit `i` and returns its new value.
  bool flip(std::size_t i) noexcept;

  /// Sets every bit to `value`.
  void fill(bool value) noexcept;

  /// Resizes to `size` bits; new bits are zero.
  void resize(std::size_t size);

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// XOR-reduction of all bits (even/odd parity).
  [[nodiscard]] bool parity() const noexcept;
  /// True if no bit is set.
  [[nodiscard]] bool none() const noexcept { return count() == 0; }
  /// True if at least one bit is set.
  [[nodiscard]] bool any() const noexcept { return !none(); }
  /// True if every bit is set.
  [[nodiscard]] bool all() const noexcept { return count() == size_; }

  /// Index of the lowest set bit, or `size()` if none.
  [[nodiscard]] std::size_t find_first() const noexcept;
  /// Index of the lowest set bit strictly above `i`, or `size()` if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Appends the indices of all set bits to `out`.
  void collect_set_bits(std::vector<std::size_t>& out) const;
  /// Returns the indices of all set bits.
  [[nodiscard]] std::vector<std::size_t> set_bits() const;

  // Word-parallel logic; all require `other.size() == size()`.
  BitVector& operator^=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);
  /// In-place bitwise NOT.
  void invert() noexcept;
  /// this <- NOR(this, other) == NOT(this OR other); MAGIC's native gate.
  void nor_assign(const BitVector& other);
  /// this <- (this AND NOT mask) OR (src AND mask): keeps this where the
  /// mask is 0 and takes `src` where the mask is 1 (lane-masked update).
  BitVector& assign_masked(const BitVector& src, const BitVector& mask);
  /// True iff (this AND other) has at least one set bit; no allocation.
  [[nodiscard]] bool intersects(const BitVector& other) const;
  /// popcount(this AND NOT other); no allocation.  Sizes must match.
  [[nodiscard]] std::size_t count_and_not(const BitVector& other) const;

  [[nodiscard]] friend BitVector operator^(BitVector a, const BitVector& b) {
    a ^= b;
    return a;
  }
  [[nodiscard]] friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend BitVector operator~(BitVector a) {
    a.invert();
    return a;
  }

  bool operator==(const BitVector& other) const noexcept = default;

  /// Hamming distance to `other`; sizes must match.
  [[nodiscard]] std::size_t hamming_distance(const BitVector& other) const;

  /// '0'/'1' string, index 0 leftmost.
  [[nodiscard]] std::string to_string() const;

 private:
  static std::size_t words_for(std::size_t bits) noexcept {
    return (bits + kWordBits - 1) / kWordBits;
  }
  /// Zeroes the unused high bits of the last word (class invariant).
  void clear_padding() noexcept;
  void require_same_size(const BitVector& other) const;

  std::vector<Word> words_;
  std::size_t size_ = 0;
};

}  // namespace pimecc::util
