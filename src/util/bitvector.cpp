#include "util/bitvector.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace pimecc::util {

BitVector::BitVector(std::size_t size) : words_(words_for(size), 0), size_(size) {}

BitVector::BitVector(std::size_t size, bool value)
    : words_(words_for(size), value ? ~Word{0} : Word{0}), size_(size) {
  clear_padding();
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.set(i, true);
    } else if (bits[i] != '0') {
      throw std::invalid_argument("BitVector::from_string: invalid character");
    }
  }
  return v;
}

bool BitVector::get(std::size_t i) const noexcept {
  assert(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool value) noexcept {
  assert(i < size_);
  const Word mask = Word{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

bool BitVector::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVector::at: index out of range");
  return get(i);
}

bool BitVector::flip(std::size_t i) noexcept {
  assert(i < size_);
  words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
  return get(i);
}

void BitVector::set_low_word(Word w) noexcept {
  assert(!words_.empty());
  words_[0] = w;
  clear_padding();
}

void BitVector::fill(bool value) noexcept {
  for (auto& w : words_) w = value ? ~Word{0} : Word{0};
  clear_padding();
}

void BitVector::resize(std::size_t size) {
  words_.resize(words_for(size), 0);
  size_ = size;
  clear_padding();
}

std::size_t BitVector::count() const noexcept {
  std::size_t total = 0;
  for (const Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::parity() const noexcept {
  Word acc = 0;
  for (const Word w : words_) acc ^= w;
  return (std::popcount(acc) & 1) != 0;
}

std::size_t BitVector::find_first() const noexcept {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      return wi * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    }
  }
  return size_;
}

std::size_t BitVector::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) return size_;
  std::size_t wi = i / kWordBits;
  Word w = words_[wi] & (~Word{0} << (i % kWordBits));
  while (true) {
    if (w != 0) {
      const std::size_t pos = wi * kWordBits + static_cast<std::size_t>(std::countr_zero(w));
      return pos < size_ ? pos : size_;
    }
    if (++wi == words_.size()) return size_;
    w = words_[wi];
  }
}

void BitVector::collect_set_bits(std::vector<std::size_t>& out) const {
  for (std::size_t i = find_first(); i < size_; i = find_next(i)) out.push_back(i);
}

std::vector<std::size_t> BitVector::set_bits() const {
  std::vector<std::size_t> out;
  collect_set_bits(out);
  return out;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  require_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  require_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  require_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

void BitVector::invert() noexcept {
  for (auto& w : words_) w = ~w;
  clear_padding();
}

void BitVector::nor_assign(const BitVector& other) {
  require_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = ~(words_[i] | other.words_[i]);
  }
  clear_padding();
}

BitVector& BitVector::assign_masked(const BitVector& src, const BitVector& mask) {
  require_same_size(src);
  require_same_size(mask);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = (words_[i] & ~mask.words_[i]) | (src.words_[i] & mask.words_[i]);
  }
  return *this;
}

bool BitVector::intersects(const BitVector& other) const {
  require_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t BitVector::count_and_not(const BitVector& other) const {
  require_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & ~other.words_[i]));
  }
  return total;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  require_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return total;
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

void BitVector::clear_padding() noexcept {
  const std::size_t used = size_ % kWordBits;
  if (used != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

void BitVector::require_same_size(const BitVector& other) const {
  if (other.size_ != size_) {
    throw std::invalid_argument("BitVector: size mismatch in logic operation");
  }
}

}  // namespace pimecc::util
