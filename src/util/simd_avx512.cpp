// pimecc -- util/simd_avx512.cpp
//
// AVX-512 kernel table: same algorithms as the AVX2 unit at twice the lane
// width, with native per-lane popcount (vpopcntq, AVX512VPOPCNTDQ) and
// k-register masked gathers.  Compiled with the avx512{f,bw,dq,vl,
// vpopcntdq} flags set per-file by CMake; stubbed to nullptr otherwise.
// The shift-totality and masked-gather safety arguments are identical to
// the AVX2 unit (vector shift counts >= 64 yield 0; masked-out gather lanes
// perform no memory access).
#include "util/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && defined(__AVX512VPOPCNTDQ__) &&                  \
    !defined(PIMECC_FORCE_SCALAR_BUILD)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace pimecc::util::simd::detail {

namespace {

inline __m512i sll64(__m512i v, std::size_t k) noexcept {
  return _mm512_sll_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}
inline __m512i srl64(__m512i v, std::size_t k) noexcept {
  return _mm512_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}

inline void fold_rotations(__m512i seg, std::size_t k, std::size_t m,
                           __m512i vmask, __m512i& lead, __m512i& cnt) noexcept {
  const __m512i sl_k = sll64(seg, k);
  const __m512i sr_k = srl64(seg, k);
  const __m512i sl_mk = sll64(seg, m - k);
  const __m512i sr_mk = srl64(seg, m - k);
  lead = _mm512_xor_si512(
      lead, _mm512_and_si512(_mm512_or_si512(sl_k, sr_mk), vmask));
  cnt = _mm512_xor_si512(
      cnt, _mm512_and_si512(_mm512_or_si512(sl_mk, sr_k), vmask));
}

void band_accumulate_avx512(const std::uint64_t* const* rows, std::size_t m,
                            std::size_t bps, std::uint64_t* lead,
                            std::uint64_t* cnt) {
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(low_mask(m)));
  std::size_t bc = 0;
  if (m == 64) {
    for (; bc + 8 <= bps; bc += 8) {
      __m512i vlead = _mm512_setzero_si512();
      __m512i vcnt = _mm512_setzero_si512();
      for (std::size_t r = 0; r < m; ++r) {
        const __m512i seg = _mm512_loadu_si512(rows[r] + bc);
        fold_rotations(seg, r, m, vmask, vlead, vcnt);
      }
      _mm512_storeu_si512(lead + bc, vlead);
      _mm512_storeu_si512(cnt + bc, vcnt);
    }
  } else {
    for (; bc + 8 <= bps; bc += 8) {
      alignas(64) long long wi[8];
      alignas(64) long long sh[8];
      for (std::size_t l = 0; l < 8; ++l) {
        const std::size_t bit0 = (bc + l) * m;
        wi[l] = static_cast<long long>(bit0 >> 6);
        sh[l] = static_cast<long long>(bit0 & 63);
      }
      const __m512i vwi = _mm512_load_si512(wi);
      const __m512i vsh = _mm512_load_si512(sh);
      const __m512i vlsh = _mm512_sub_epi64(_mm512_set1_epi64(64), vsh);
      const __mmask8 need =
          _mm512_cmpneq_epi64_mask(vsh, _mm512_setzero_si512()) &
          _mm512_cmpgt_epi64_mask(
              _mm512_add_epi64(vsh,
                               _mm512_set1_epi64(static_cast<long long>(m))),
              _mm512_set1_epi64(64));
      const __m512i vwi1 = _mm512_add_epi64(vwi, _mm512_set1_epi64(1));
      __m512i vlead = _mm512_setzero_si512();
      __m512i vcnt = _mm512_setzero_si512();
      for (std::size_t r = 0; r < m; ++r) {
        const void* base = rows[r];
        const __m512i g0 = _mm512_i64gather_epi64(vwi, base, 8);
        const __m512i g1 = _mm512_mask_i64gather_epi64(
            _mm512_setzero_si512(), need, vwi1, base, 8);
        const __m512i seg = _mm512_and_si512(
            _mm512_or_si512(_mm512_srlv_epi64(g0, vsh),
                            _mm512_sllv_epi64(g1, vlsh)),
            vmask);
        fold_rotations(seg, r, m, vmask, vlead, vcnt);
      }
      _mm512_storeu_si512(lead + bc, vlead);
      _mm512_storeu_si512(cnt + bc, vcnt);
    }
  }
  for (; bc < bps; ++bc) {
    block_peel_scalar(rows, m, bc * m, lead + bc, cnt + bc);
  }
}

void block_peel_avx512(const std::uint64_t* const* rows, std::size_t m,
                       std::size_t bit0, std::uint64_t* lead,
                       std::uint64_t* cnt) {
  const std::uint64_t mask = low_mask(m);
  const std::size_t wi = bit0 / 64;
  const auto sh = static_cast<long long>(bit0 % 64);
  const bool straddles = sh != 0 && static_cast<std::size_t>(sh) + m > 64;
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask));
  const __m512i vsh = _mm512_set1_epi64(sh);
  const __m512i vlsh = _mm512_set1_epi64(64 - sh);
  const __m512i vm = _mm512_set1_epi64(static_cast<long long>(m));
  const __m512i lane_ids = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  __m512i vlead = _mm512_setzero_si512();
  __m512i vcnt = _mm512_setzero_si512();
  std::size_t r = 0;
  for (; r + 8 <= m; r += 8) {
    alignas(64) long long addr[8];
    for (std::size_t l = 0; l < 8; ++l) {
      addr[l] = static_cast<long long>(
          reinterpret_cast<std::uintptr_t>(rows[r + l] + wi));
    }
    const __m512i vaddr = _mm512_load_si512(addr);
    const __m512i g0 = _mm512_i64gather_epi64(vaddr, nullptr, 1);
    __m512i seg = _mm512_srlv_epi64(g0, vsh);
    if (straddles) {
      const __m512i g1 = _mm512_i64gather_epi64(
          _mm512_add_epi64(vaddr, _mm512_set1_epi64(8)), nullptr, 1);
      seg = _mm512_or_si512(seg, _mm512_sllv_epi64(g1, vlsh));
    }
    seg = _mm512_and_si512(seg, vmask);
    const __m512i vk = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(r)), lane_ids);
    const __m512i vmk = _mm512_sub_epi64(vm, vk);
    vlead = _mm512_xor_si512(
        vlead, _mm512_and_si512(_mm512_or_si512(_mm512_sllv_epi64(seg, vk),
                                                _mm512_srlv_epi64(seg, vmk)),
                                vmask));
    vcnt = _mm512_xor_si512(
        vcnt, _mm512_and_si512(_mm512_or_si512(_mm512_sllv_epi64(seg, vmk),
                                               _mm512_srlv_epi64(seg, vk)),
                               vmask));
  }
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, vlead);
  std::uint64_t l = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3] ^ lanes[4] ^
                    lanes[5] ^ lanes[6] ^ lanes[7];
  _mm512_store_si512(lanes, vcnt);
  std::uint64_t c = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3] ^ lanes[4] ^
                    lanes[5] ^ lanes[6] ^ lanes[7];
  for (; r < m; ++r) {
    std::uint64_t seg = rows[r][wi] >> sh;
    if (straddles) seg |= rows[r][wi + 1] << (64 - sh);
    seg &= mask;
    l ^= rotl(seg, r, m);
    c ^= rotl(seg, m - r, m);
  }
  *lead = l;
  *cnt = c;
}

std::size_t nor_column_pass_avx512(const std::uint64_t* const* ins,
                                   std::size_t n_ins,
                                   const std::uint64_t* mask,
                                   std::uint64_t* out, std::size_t n_words) {
  __m512i vviol = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= n_words; w += 8) {
    __m512i any = _mm512_loadu_si512(ins[0] + w);
    for (std::size_t i = 1; i < n_ins; ++i) {
      any = _mm512_or_si512(any, _mm512_loadu_si512(ins[i] + w));
    }
    const __m512i mw = _mm512_loadu_si512(mask + w);
    const __m512i ow = _mm512_loadu_si512(out + w);
    vviol = _mm512_add_epi64(
        vviol, _mm512_popcnt_epi64(_mm512_andnot_si512(ow, mw)));
    _mm512_storeu_si512(out + w,
                        _mm512_andnot_si512(_mm512_and_si512(mw, any), ow));
  }
  std::size_t violations =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(vviol));
  for (; w < n_words; ++w) {
    std::uint64_t any = ins[0][w];
    for (std::size_t i = 1; i < n_ins; ++i) any |= ins[i][w];
    violations += static_cast<std::size_t>(std::popcount(mask[w] & ~out[w]));
    out[w] &= ~(mask[w] & any);
  }
  return violations;
}

constexpr KernelTable kAvx512Table{
    &band_accumulate_avx512,
    &block_peel_avx512,
    &nor_column_pass_avx512,
};

}  // namespace

const KernelTable* avx512_table() noexcept { return &kAvx512Table; }

}  // namespace pimecc::util::simd::detail

#else  // missing AVX-512 feature set || PIMECC_FORCE_SCALAR_BUILD

namespace pimecc::util::simd::detail {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace pimecc::util::simd::detail

#endif
