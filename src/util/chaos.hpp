// pimecc -- util/chaos.hpp
//
// Deterministic I/O fault injection: the substrate of the crash-safety
// harness.  The checkpoint store (util/ckpt_store.hpp) performs every
// filesystem operation through a FileBackend, so tests can swap in a
// ChaosBackend that tears writes at chosen byte offsets, flips bits in what
// reaches "disk", returns short reads, and fails opens transiently -- all
// one-shot and explicitly armed, never clock- or entropy-dependent, so every
// injected failure is reproducible from the test source alone (fuzz sweeps
// derive their offsets from util::Rng::for_stream substreams, the same
// discipline as the rest of the suite).
//
// The real backend's write_file is the crash-safe primitive: it writes the
// full byte image, fsyncs, and closes, reporting every short or failed
// write as an IoError -- it never returns success for a torn file.  Rename
// is POSIX-atomic replacement plus a parent-directory fsync, which is what
// makes the checkpoint store's temp-then-rename generations crash-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pimecc::util::chaos {

/// A failed or injected-to-fail filesystem operation.  Distinct from
/// SerializeError: IoError means the substrate misbehaved (disk full, torn
/// write, transient open failure), SerializeError means the bytes that did
/// arrive are not a valid checkpoint.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --------------------------------------------------------------------------
// Pure byte corruptions (the checkpoint fuzz vocabulary).

/// The first `size` bytes of `bytes` -- a torn write observed at recovery.
/// `size` beyond the input just copies it whole.
[[nodiscard]] std::vector<std::uint8_t> truncated(
    std::span<const std::uint8_t> bytes, std::size_t size);

/// A copy of `bytes` with bit `bit_index` (little-endian within each byte)
/// flipped.  Throws std::out_of_range past the last bit.
[[nodiscard]] std::vector<std::uint8_t> bit_flipped(
    std::span<const std::uint8_t> bytes, std::uint64_t bit_index);

// --------------------------------------------------------------------------
// Filesystem abstraction.

/// The filesystem operations the checkpoint store needs, virtualized so the
/// chaos harness can fail any of them deterministically.  The default
/// implementations are the real (POSIX, durable) ones.
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Creates/truncates `path` and durably writes `bytes`: every byte
  /// written, fsynced, and closed, or IoError -- never a silent short
  /// write.  (A crash can still tear the file; that is what the
  /// temp-then-rename discipline above this call is for.)
  virtual void write_file(const std::string& path,
                          std::span<const std::uint8_t> bytes);

  /// Atomically replaces `to` with `from` (POSIX rename), then fsyncs the
  /// parent directory so the new directory entry is durable.
  virtual void rename_file(const std::string& from, const std::string& to);

  /// Best-effort unlink; missing files are not an error.
  virtual void remove_file(const std::string& path) noexcept;

  /// Reads the whole file into `out`.  Returns false when the file does not
  /// exist or cannot be opened (recovery treats that as "no candidate",
  /// not a failure).
  [[nodiscard]] virtual bool read_file(const std::string& path,
                                       std::vector<std::uint8_t>& out);

  [[nodiscard]] virtual bool exists(const std::string& path);

  /// Delay before retry `attempt` (0-based) of a transiently failed save:
  /// bounded exponential backoff.  Overridden to a no-op by ChaosBackend so
  /// injected-failure tests never sleep.
  virtual void backoff(std::size_t attempt);
};

/// The process-wide real backend (stateless; safe to share).
[[nodiscard]] FileBackend& real_file_backend();

// --------------------------------------------------------------------------
// Chaos backend.

/// One-shot faults to inject, consumed in operation order.  Arm a field,
/// run the operation(s), inspect the log.  Unarmed operations delegate to
/// the wrapped backend untouched.
struct ChaosPlan {
  /// The next `fail_opens` write_file calls fail before creating the file
  /// (transient open failure: EMFILE, ENOSPC at create, ...).
  std::size_t fail_opens = 0;
  /// The next write_file persists only the first `*tear_after` bytes of its
  /// payload, then reports failure (crash / disk-full mid-write).
  std::optional<std::uint64_t> tear_after;
  /// The next write_file completes "successfully" but flips this bit of
  /// the on-disk image (silent media corruption; CRC must catch it).
  std::optional<std::uint64_t> corrupt_bit;
  /// The next rename_file fails, leaving the source file behind.
  bool fail_rename = false;
  /// The next successful read_file returns only the first `*short_read`
  /// bytes (a torn tail observed at recovery time).
  std::optional<std::uint64_t> short_read;
};

/// What the chaos backend actually did -- tests assert on these to prove
/// the fault really fired.
struct ChaosLog {
  std::size_t writes = 0;
  std::size_t renames = 0;
  std::size_t reads = 0;
  std::size_t removes = 0;
  std::size_t backoffs = 0;
  std::size_t opens_failed = 0;
  std::size_t writes_torn = 0;
  std::size_t bits_corrupted = 0;
  std::size_t renames_failed = 0;
  std::size_t reads_shortened = 0;
  [[nodiscard]] std::size_t faults_injected() const noexcept {
    return opens_failed + writes_torn + bits_corrupted + renames_failed +
           reads_shortened;
  }
};

/// FileBackend decorator injecting the armed ChaosPlan faults into a
/// delegate (the real backend by default).  Not thread-safe: the harness
/// drives it from one test thread.
class ChaosBackend final : public FileBackend {
 public:
  explicit ChaosBackend(FileBackend* delegate = nullptr)
      : delegate_(delegate != nullptr ? delegate : &real_file_backend()) {}

  [[nodiscard]] ChaosPlan& plan() noexcept { return plan_; }
  [[nodiscard]] const ChaosLog& log() const noexcept { return log_; }

  void write_file(const std::string& path,
                  std::span<const std::uint8_t> bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) noexcept override;
  [[nodiscard]] bool read_file(const std::string& path,
                               std::vector<std::uint8_t>& out) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  /// Counted but never sleeps: injected-failure tests stay wall-clock free.
  void backoff(std::size_t attempt) override;

 private:
  FileBackend* delegate_;
  ChaosPlan plan_;
  ChaosLog log_;
};

}  // namespace pimecc::util::chaos
