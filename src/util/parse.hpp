// pimecc -- util/parse.hpp
//
// Strict, locale-independent numeric parsing for every external text
// surface (CLI flags, trace lines, example arguments).  The historical CLI
// layer mixed std::stoull (uncaught std::invalid_argument ->
// std::terminate on garbage) with atof/atoll (silently coerce garbage to
// 0) -- exactly the validate-before-mutate gap the library layers were
// swept for.  These helpers return std::nullopt unless the ENTIRE string
// is a valid in-range literal, so callers must decide explicitly what a
// bad value means (usage error, request rejection, ...), and can never
// proceed on a half-parsed number.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace pimecc::util {

/// Parses a full string as an unsigned decimal integer.  Rejects empty
/// strings, signs, leading/trailing whitespace, trailing garbage, and
/// values that overflow std::uint64_t.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// parse_u64 range-checked into std::size_t (they differ on 32-bit size_t).
[[nodiscard]] std::optional<std::size_t> parse_size(std::string_view text);

/// Parses a full string as a finite double (decimal or scientific form,
/// e.g. "24", "0.5", "1e-3").  Rejects empty strings, whitespace, trailing
/// garbage, hex floats, inf, and nan.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Parses "0"/"1"/"true"/"false"/"on"/"off" (exact match).
[[nodiscard]] std::optional<bool> parse_bool(std::string_view text);

}  // namespace pimecc::util
