// pimecc -- util/modmath.hpp
//
// Small modular-arithmetic helpers used by the diagonal geometry.  Diagonal
// indices are computed mod m; decoding the unique intersection of a leading
// and counter diagonal requires the inverse of 2 mod m (m odd).
#pragma once

#include <cstdint>
#include <optional>

namespace pimecc::util {

/// Mathematical (floored) modulo: result is in [0, m) for m > 0, even for
/// negative a.  C++'s % is truncated and returns negatives for negative a.
[[nodiscard]] constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t m) noexcept {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

[[nodiscard]] constexpr std::int64_t gcd_i64(std::int64_t a, std::int64_t b) noexcept {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

/// Modular inverse of a mod m via extended Euclid; nullopt if gcd(a,m) != 1.
[[nodiscard]] std::optional<std::int64_t> mod_inverse(std::int64_t a, std::int64_t m) noexcept;

/// Inverse of 2 mod m for odd m: (m+1)/2, since 2*(m+1)/2 = m+1 ≡ 1 (mod m).
[[nodiscard]] constexpr std::int64_t inverse_of_two(std::int64_t m) noexcept {
  return (m + 1) / 2;
}

[[nodiscard]] constexpr bool is_odd(std::int64_t x) noexcept { return (x & 1) != 0; }

/// Integer ceiling division for non-negative operands.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace pimecc::util
