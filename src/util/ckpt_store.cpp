#include "util/ckpt_store.hpp"

#include <stdexcept>
#include <utility>

namespace pimecc::util {

CheckpointStore::CheckpointStore(std::string base_path)
    : CheckpointStore(std::move(base_path), Options()) {}

CheckpointStore::CheckpointStore(std::string base_path, Options options,
                                 chaos::FileBackend* backend)
    : base_(std::move(base_path)),
      options_(options),
      backend_(backend != nullptr ? backend : &chaos::real_file_backend()) {
  if (base_.empty()) {
    throw std::invalid_argument("CheckpointStore: base path must be non-empty");
  }
  if (options_.generations == 0) {
    throw std::invalid_argument("CheckpointStore: need >= 1 generation");
  }
}

std::string CheckpointStore::generation_path(std::size_t generation) const {
  if (generation == 0) return base_;
  return base_ + "." + std::to_string(generation);
}

void CheckpointStore::save(std::span<const std::uint8_t> bytes) {
  const std::string temp = temp_path();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      // 1. Durable temp image.  Fails (torn or not at all) without having
      //    touched any generation.
      backend_->write_file(temp, bytes);
      // 2. Shift generations oldest-first: G-1 -> G, ..., 1 -> 2.  Each
      //    rename is atomic; a crash between them leaves every completed
      //    snapshot intact under some name the recovery scan covers.
      for (std::size_t g = options_.generations - 1; g >= 1; --g) {
        const std::string from = generation_path(g);
        if (backend_->exists(from)) {
          backend_->rename_file(from, generation_path(g + 1));
        }
      }
      // 3. Publish: the new image becomes generation 1 atomically.
      backend_->rename_file(temp, generation_path(1));
      return;
    } catch (const chaos::IoError&) {
      if (attempt >= options_.retries) {
        backend_->remove_file(temp);
        throw;
      }
      backend_->backoff(attempt);
    }
  }
}

std::optional<CheckpointStore::Recovered> CheckpointStore::recover(
    const Validator& validate) const {
  std::size_t rejected = 0;
  auto consider = [&](std::size_t generation) -> std::optional<Recovered> {
    std::vector<std::uint8_t> bytes;
    if (!backend_->read_file(generation_path(generation), bytes)) {
      return std::nullopt;
    }
    bool ok = false;
    try {
      ok = validate(bytes);
    } catch (...) {
      ok = false;  // a throwing decoder is a rejection, not a crash
    }
    if (!ok) {
      ++rejected;
      return std::nullopt;
    }
    Recovered recovered;
    recovered.bytes = std::move(bytes);
    recovered.path = generation_path(generation);
    recovered.generation = generation;
    recovered.rejected = rejected;
    return recovered;
  };
  // Newest first; a crash mid-shift can leave the newest good snapshot at
  // any index, and the scan order guarantees we resume from the latest one
  // that validates.
  for (std::size_t g = 1; g <= options_.generations; ++g) {
    if (auto recovered = consider(g)) return recovered;
  }
  // Legacy layout: a single checkpoint at the bare base path (what the
  // pre-rotation tools wrote).  Oldest priority by construction.
  if (auto recovered = consider(0)) return recovered;
  return std::nullopt;
}

}  // namespace pimecc::util
