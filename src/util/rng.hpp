// pimecc -- util/rng.hpp
//
// Deterministic, seedable PRNG (xoshiro256**) satisfying
// std::uniform_random_bit_generator so the standard distributions compose
// with it.  All stochastic simulation in pimecc routes through this type so
// experiments are reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <random>

namespace pimecc::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// The full generator state.  next() is a pure function of these four
  /// words, so state()/set_state() round-trips reproduce the stream
  /// position exactly -- the checkpoint formats (arch/checkpoint,
  /// reliability/lifetime) persist this to make long simulations
  /// resumable.  Note the sampling helpers that delegate to <random>
  /// distributions (binomial, poisson) construct a fresh distribution per
  /// call, so no distribution-internal cache exists outside state_ and a
  /// restored Rng continues bit-identically.
  using State = std::array<std::uint64_t, 4>;

  /// Default seed chosen arbitrarily but fixed for reproducibility.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state deterministically from `seed`.
  void reseed(std::uint64_t seed);

  /// Advances the state by 2^128 next() calls (canonical xoshiro256** jump
  /// polynomial): partitions one seed into non-overlapping substreams for
  /// long-lived parallel generators.
  void jump() noexcept;
  /// Advances the state by 2^192 next() calls, for coarser partitions of
  /// partitions (each long_jump() leaves room for 2^64 jump() substreams).
  void long_jump() noexcept;
  /// O(1) per-stream generator: hashes (seed, stream) through SplitMix64 so
  /// any trial/worker index maps to an independent deterministic substream
  /// regardless of how work is distributed across threads.
  [[nodiscard]] static Rng for_stream(std::uint64_t seed,
                                      std::uint64_t stream) noexcept;

  /// Captures the exact stream position (see State).
  [[nodiscard]] State state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  /// Restores a captured stream position.  Throws std::invalid_argument on
  /// the all-zero state, which is not reachable from any seed and would
  /// lock the generator at zero forever.
  void set_state(const State& state);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0 (asserted by modulo
  /// rejection sampling being well-defined).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Binomial sample: number of successes in n trials of probability p.
  /// Delegates to std::binomial_distribution (exact).
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p);

  /// Geometric sample: number of failures before the first success in iid
  /// Bernoulli(p) trials (support {0, 1, ...}), by inversion -- exactly one
  /// next() draw.  The skip-ahead lifetime engine uses this to jump directly
  /// to the next non-empty scrub window.  p >= 1 returns 0; p <= 0 (success
  /// impossible) returns the max std::uint64_t, which callers must treat as
  /// "beyond any horizon"; results too large to represent saturate the same
  /// way.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Poisson sample with the given mean.
  [[nodiscard]] std::uint64_t poisson(double mean);

 private:
  /// Polynomial-jump state advance shared by jump()/long_jump().
  void advance_by(const std::uint64_t (&polynomial)[4]) noexcept;

  std::uint64_t state_[4] = {};
};

class BitMatrix;
class BitVector;

/// Fills `bits` with uniform random bits, word-parallel: one next() draw
/// per backing 64-bit word (NOT one per bit -- callers relying on draw
/// counts must not mix this with per-bit bernoulli fills).  The shared fill
/// discipline of the engine benches and differential harnesses; bulk
/// loaders (MemorySystem::load_random, CrossbarFleet::load_random) draw
/// ONE base seed from the caller and run this over for_stream substreams,
/// one per unit/shard, so images are bit-identical at any worker count.
void fill_random(BitVector& bits, Rng& rng);

/// A rows x cols matrix of uniform random bits (fill_random per row).
[[nodiscard]] BitMatrix random_bit_matrix(std::size_t rows, std::size_t cols,
                                          Rng& rng);

}  // namespace pimecc::util
