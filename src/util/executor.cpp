#include "util/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>

namespace pimecc::util {

namespace detail {

/// Chase-Lev work-stealing deque of Task*.  Owner-only push()/pop() at the
/// bottom, concurrent steal() at the top.  Memory orderings follow Le, Pop,
/// Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak
/// Memory Models" (PPoPP'13); slots are atomics so a thief racing a grow()
/// reads a well-defined value, and outgrown rings are retired on a chain
/// owned by the deque (freed only at destruction) so no thief can touch
/// reclaimed memory.
class StealDeque {
 public:
  StealDeque() : ring_(new Ring(kInitialCapacity)) {}

  ~StealDeque() {
    Ring* ring = ring_.load(std::memory_order_relaxed);
    while (ring != nullptr) {
      Ring* retired = ring->retired;
      delete ring;
      ring = retired;
    }
  }

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.
  void push(Task* task) {
    const std::int64_t bottom = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (bottom - top > static_cast<std::int64_t>(ring->capacity) - 1) {
      ring = grow(ring, top, bottom);
    }
    ring->put(bottom, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(bottom + 1, std::memory_order_relaxed);
  }

  /// Owner only.
  Task* pop() {
    const std::int64_t bottom = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(bottom, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t top = top_.load(std::memory_order_relaxed);
    if (top > bottom) {  // empty: restore
      bottom_.store(bottom + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = ring->get(bottom);
    if (top == bottom) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got there first
      }
      bottom_.store(bottom + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread.
  Task* steal() {
    std::int64_t top = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t bottom = bottom_.load(std::memory_order_acquire);
    if (top >= bottom) return nullptr;
    Ring* ring = ring_.load(std::memory_order_acquire);
    Task* task = ring->get(top);
    if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; the caller moves to the next victim
    }
    return task;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // must be a power of 2

  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<Task*>[]>(cap)) {}

    [[nodiscard]] Task* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, Task* task) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          task, std::memory_order_relaxed);
    }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<Task*>[]> slots;
    Ring* retired = nullptr;  // chain of outgrown predecessors
  };

  /// Owner only: doubles the ring, copying the live [top, bottom) window.
  /// The old ring stays readable (retired chain) for any in-flight thief.
  Ring* grow(Ring* old_ring, std::int64_t top, std::int64_t bottom) {
    Ring* bigger = new Ring(old_ring->capacity * 2);
    for (std::int64_t i = top; i < bottom; ++i) {
      bigger->put(i, old_ring->get(i));
    }
    bigger->retired = old_ring;
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
};

}  // namespace detail

namespace {

/// Worker identity of the current thread: which executor it belongs to
/// (nullptr for non-workers) and its index there.
thread_local Executor* tls_executor = nullptr;
thread_local std::size_t tls_worker_index = 0;

}  // namespace

struct Executor::Worker {
  detail::StealDeque deque;
  std::thread thread;
};

Executor::Executor(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker slot exists: a freshly started
  // worker immediately steals from its siblings' deques.
  for (std::size_t i = 0; i < workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

Executor& Executor::shared() {
  static Executor instance;  // lazy one-time startup, joined at exit
  return instance;
}

std::size_t Executor::worker_count() const noexcept { return workers_.size(); }

std::size_t Executor::self_index() const noexcept {
  return tls_executor == this ? tls_worker_index : kNotAWorker;
}

void Executor::enqueue(detail::Task* task) {
  const std::size_t self = self_index();
  if (self != kNotAWorker) {
    workers_[self]->deque.push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_.push_back(task);
  }
  {
    // The epoch must move under the idle mutex, or a worker deciding to
    // sleep between our push and our notify would miss the wakeup.
    std::lock_guard<std::mutex> lock(idle_mutex_);
    work_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

detail::Task* Executor::try_acquire(std::size_t self) {
  if (self != kNotAWorker) {
    if (detail::Task* task = workers_[self]->deque.pop()) return task;
  }
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_.empty()) {
      detail::Task* task = inject_.front();
      inject_.pop_front();
      return task;
    }
  }
  // Steal sweep, rotated per thread so thieves spread over victims.
  static thread_local std::size_t steal_cursor = 0;
  const std::size_t n = workers_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (steal_cursor + k) % n;
    if (victim == self) continue;
    if (detail::Task* task = workers_[victim]->deque.steal()) {
      steal_cursor = victim;
      return task;
    }
  }
  ++steal_cursor;
  return nullptr;
}

void Executor::run_task(detail::Task* task) noexcept {
  TaskGroup* group = task->group;
  try {
    task->fn();
  } catch (...) {
    group->capture_exception(std::current_exception());
  }
  group->finish_one();
}

void Executor::worker_main(std::size_t index) {
  tls_executor = this;
  tls_worker_index = index;
  for (;;) {
    // Snapshot the epoch BEFORE scanning: any enqueue after this line
    // either is found by the scan or moves the epoch past our snapshot.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    if (detail::Task* task = try_acquire(index)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (stop_) return;
    if (work_epoch_.load(std::memory_order_relaxed) != epoch) continue;
    idle_cv_.wait(lock);
    if (stop_) return;
  }
}

TaskGroup::TaskGroup(Executor& executor) : executor_(executor) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Unobserved task exception during unwinding; wait() exists to observe.
  }
}

void TaskGroup::submit(std::function<void()> fn) {
  detail::Task* task;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.emplace_back();
    task = &tasks_.back();
  }
  task->fn = std::move(fn);
  task->group = this;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  executor_.enqueue(task);
}

void TaskGroup::wait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    detail::Task* task = executor_.try_acquire(executor_.self_index());
    if (task != nullptr) {
      executor_.run_task(task);
      continue;
    }
    // Nothing stealable right now: the remaining tasks are executing on
    // other threads (or briefly in flight between queues).  The short
    // timeout re-arms the help loop in case a running task spawns more
    // stealable work without routing a wakeup at us.
    std::unique_lock<std::mutex> lock(done_mutex_);
    if (pending_.load(std::memory_order_acquire) == 0) break;
    done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  // Lifetime fence: the last finish_one() decrements pending_ while holding
  // done_mutex_, so taking it here after observing zero blocks until that
  // worker has released it -- after which no thread touches this group.
  // Without this, the caller could destroy the group while the final
  // notify_all() is still executing.
  { std::lock_guard<std::mutex> lock(done_mutex_); }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::capture_exception(std::exception_ptr error) noexcept {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = error;
}

void TaskGroup::finish_one() noexcept {
  // The decrement MUST happen under done_mutex_: wait() re-confirms
  // pending_ == 0 under the same mutex before returning, so by the time a
  // waiter can destroy the group, the worker that retired the last task
  // has already left this critical section and never touches the group
  // again.  A lock-free fetch_sub here would let the waiter observe zero
  // (and free the group) between our decrement and the notify below.
  std::lock_guard<std::mutex> lock(done_mutex_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

}  // namespace pimecc::util
