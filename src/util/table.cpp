#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pimecc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: must have at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.render(); }

std::string format_sig(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_sci(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << std::scientific << value;
  return os.str();
}

std::string format_pct(double fraction, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << std::fixed << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace pimecc::util
