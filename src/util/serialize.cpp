#include "util/serialize.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"

namespace pimecc::util {

namespace {

// CRC-64/XZ: reflected ECMA-182 polynomial, init/xorout all-ones.
constexpr std::uint64_t kCrcPoly = 0xC96C5795D7870F42ull;  // reflected 0x42F0E1EBA9EA3693

constexpr std::array<std::uint64_t, 256> make_crc_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrcPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint64_t, 256> kCrcTable = make_crc_table();

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t load_le(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t crc64(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t crc = ~std::uint64_t{0};
  for (const std::uint8_t b : bytes) {
    crc = (crc >> 8) ^ kCrcTable[(crc ^ b) & 0xFF];
  }
  return ~crc;
}

std::uint64_t chunk_magic(std::string_view tag) {
  if (tag.size() != 8) {
    throw std::invalid_argument("chunk_magic: tag must be 8 characters");
  }
  std::uint64_t magic = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    magic |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(tag[i]))
             << (8 * i);
  }
  return magic;
}

// --------------------------------------------------------------- ByteWriter

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }
void ByteWriter::u32(std::uint32_t v) { append_le(buffer_, v, 4); }
void ByteWriter::u64(std::uint64_t v) { append_le(buffer_, v, 8); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view text) {
  u64(text.size());
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

void ByteWriter::bitvector(const BitVector& bits) {
  u64(bits.size());
  for (const std::uint64_t word : bits.words()) u64(word);
}

void ByteWriter::bitmatrix(const BitMatrix& mat) {
  u64(mat.rows());
  u64(mat.cols());
  for (const BitVector& row : mat.rows_span()) {
    for (const std::uint64_t word : row.words()) u64(word);
  }
}

// --------------------------------------------------------------- ByteReader

std::span<const std::uint8_t> ByteReader::take(std::size_t count) {
  if (count > data_.size() - pos_) {
    throw SerializeError("serialized stream truncated");
  }
  const auto view = data_.subspan(pos_, count);
  pos_ += count;
  return view;
}

std::uint8_t ByteReader::u8() { return take(1)[0]; }
std::uint32_t ByteReader::u32() {
  return static_cast<std::uint32_t>(load_le(take(4)));
}
std::uint64_t ByteReader::u64() { return load_le(take(8)); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t size = u64();
  if (size > remaining()) {
    throw SerializeError("serialized string truncated");
  }
  const auto view = take(static_cast<std::size_t>(size));
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

BitVector ByteReader::bitvector() {
  const std::uint64_t size = u64();
  // Overflow-safe ceil(size / 64): (size + 63) would wrap for declared
  // sizes near 2^64 and sneak a 0 word count past the truncation guard.
  const std::uint64_t words = size / 64 + (size % 64 != 0 ? 1 : 0);
  // 8 bytes per word must still be in the buffer before any allocation.
  if (words > remaining() / 8) {
    throw SerializeError("serialized bit vector truncated");
  }
  BitVector bits(static_cast<std::size_t>(size));
  const auto span = bits.words_mutable();
  for (std::size_t w = 0; w < span.size(); ++w) span[w] = u64();
  // The padding invariant (bits >= size are zero) is part of the canonical
  // encoding; stray high bits mean the stream was not produced by
  // ByteWriter::bitvector and passed the CRC by construction error.
  BitVector canonical = bits;
  canonical.sanitize();
  if (!(canonical == bits)) {
    throw SerializeError("serialized bit vector has nonzero padding");
  }
  return bits;
}

BitMatrix ByteReader::bitmatrix() {
  const std::uint64_t rows = u64();
  const std::uint64_t cols = u64();
  const std::uint64_t words_per_row = cols / 64 + (cols % 64 != 0 ? 1 : 0);
  if (rows != 0 && words_per_row > remaining() / 8 / rows) {
    throw SerializeError("serialized bit matrix truncated");
  }
  BitMatrix mat(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (BitVector& row : mat.rows_span()) {
    const auto span = row.words_mutable();
    for (std::size_t w = 0; w < span.size(); ++w) span[w] = u64();
    BitVector canonical = row;
    canonical.sanitize();
    if (!(canonical == row)) {
      throw SerializeError("serialized bit matrix has nonzero padding");
    }
  }
  return mat;
}

void ByteReader::require_exhausted() const {
  if (pos_ != data_.size()) {
    throw SerializeError("serialized payload has trailing bytes");
  }
}

// ------------------------------------------------------------ chunk framing

void write_chunk(std::ostream& os, std::uint64_t magic, std::uint32_t version,
                 std::span<const std::uint8_t> payload) {
  ByteWriter header;
  header.u64(magic);
  header.u32(version);
  header.u64(payload.size());
  os.write(reinterpret_cast<const char*>(header.data().data()),
           static_cast<std::streamsize>(header.size()));
  os.write(reinterpret_cast<const char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  ByteWriter footer;
  footer.u64(crc64(payload));
  os.write(reinterpret_cast<const char*>(footer.data().data()),
           static_cast<std::streamsize>(footer.size()));
}

namespace {

/// Reads exactly `count` bytes or throws SerializeError.
std::vector<std::uint8_t> read_exact(std::istream& is, std::size_t count,
                                     const char* what) {
  std::vector<std::uint8_t> bytes(count);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(count));
  if (static_cast<std::size_t>(is.gcount()) != count) {
    throw SerializeError(std::string("checkpoint truncated reading ") + what);
  }
  return bytes;
}

}  // namespace

Chunk read_chunk(std::istream& is, std::uint64_t expected_magic,
                 std::uint32_t max_version, std::uint64_t max_payload) {
  const auto header = read_exact(is, 8 + 4 + 8, "chunk header");
  ByteReader reader(header);
  const std::uint64_t magic = reader.u64();
  if (magic != expected_magic) {
    throw SerializeError("bad checkpoint magic (wrong or corrupt file)");
  }
  const std::uint32_t version = reader.u32();
  if (version == 0 || version > max_version) {
    throw SerializeError("unsupported checkpoint version " +
                         std::to_string(version));
  }
  const std::uint64_t size = reader.u64();
  if (size > max_payload) {
    throw SerializeError("checkpoint payload size implausibly large");
  }
  Chunk chunk;
  chunk.version = version;
  chunk.payload = read_exact(is, static_cast<std::size_t>(size), "payload");
  const auto crc_bytes = read_exact(is, 8, "checksum");
  const std::uint64_t stored_crc = load_le(crc_bytes);
  if (stored_crc != crc64(chunk.payload)) {
    throw SerializeError("checkpoint checksum mismatch (corrupt file)");
  }
  return chunk;
}

}  // namespace pimecc::util
