// pimecc -- util/bitmatrix.hpp
//
// Dense 2-D bit matrix used for crossbar contents, ECC block views, and
// golden-model comparisons.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/bitvector.hpp"

namespace pimecc::util {

/// Row-major dense bit matrix.
///
/// Rows are stored as independent BitVectors so entire rows can be moved,
/// XORed, and NORed word-parallel -- mirroring the row-parallel nature of
/// MAGIC operations.  Column access is provided (bit-by-bit) for
/// column-parallel operations and for diagonal extraction.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const noexcept;
  void set(std::size_t r, std::size_t c, bool value) noexcept;
  /// Checked accessor; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t r, std::size_t c) const;
  /// Flips the bit and returns its new value.
  bool flip(std::size_t r, std::size_t c) noexcept;

  [[nodiscard]] const BitVector& row(std::size_t r) const;
  [[nodiscard]] BitVector& row(std::size_t r);

  /// Direct, bounds-unchecked view of the row storage (one BitVector per
  /// row), inlineable into engine hot loops.  Prefer row()/column() in
  /// non-critical code.
  [[nodiscard]] std::span<BitVector> rows_span() noexcept { return rows_storage_; }
  [[nodiscard]] std::span<const BitVector> rows_span() const noexcept {
    return rows_storage_;
  }

  /// Extracts column `c` as a BitVector of length rows().
  [[nodiscard]] BitVector column(std::size_t c) const;
  /// Extracts column `c` into `out` (resized to rows()); allocation-free
  /// once `out` has capacity.  One word read + one shift/OR per row.
  void column_into(std::size_t c, BitVector& out) const;
  /// ORs column `c` into `acc` (length must equal rows()), for folding
  /// several columns into one row-indexed vector without temporaries.
  void or_column_into(std::size_t c, BitVector& acc) const;
  /// Overwrites column `c` from `values` (length must equal rows()).
  void set_column(std::size_t c, const BitVector& values);
  /// row(r) <- (row(r) AND NOT mask) OR (values AND mask): lane-masked row
  /// update; `values` and `mask` must have length cols().
  void row_assign_masked(std::size_t r, const BitVector& values,
                         const BitVector& mask);

  void fill(bool value) noexcept;

  /// Total number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// Number of differing bits against another matrix of equal shape.
  [[nodiscard]] std::size_t hamming_distance(const BitMatrix& other) const;

  bool operator==(const BitMatrix& other) const noexcept = default;

 private:
  std::vector<BitVector> rows_storage_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace pimecc::util
