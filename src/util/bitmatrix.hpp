// pimecc -- util/bitmatrix.hpp
//
// Dense 2-D bit matrix used for crossbar contents, ECC block views, and
// golden-model comparisons.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.hpp"

namespace pimecc::util {

/// Row-major dense bit matrix.
///
/// Rows are stored as independent BitVectors so entire rows can be moved,
/// XORed, and NORed word-parallel -- mirroring the row-parallel nature of
/// MAGIC operations.  Column access is provided (bit-by-bit) for
/// column-parallel operations and for diagonal extraction.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const noexcept;
  void set(std::size_t r, std::size_t c, bool value) noexcept;
  /// Checked accessor; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t r, std::size_t c) const;
  /// Flips the bit and returns its new value.
  bool flip(std::size_t r, std::size_t c) noexcept;

  [[nodiscard]] const BitVector& row(std::size_t r) const;
  [[nodiscard]] BitVector& row(std::size_t r);

  /// Extracts column `c` as a BitVector of length rows().
  [[nodiscard]] BitVector column(std::size_t c) const;
  /// Overwrites column `c` from `values` (length must equal rows()).
  void set_column(std::size_t c, const BitVector& values);

  void fill(bool value) noexcept;

  /// Total number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// Number of differing bits against another matrix of equal shape.
  [[nodiscard]] std::size_t hamming_distance(const BitMatrix& other) const;

  bool operator==(const BitMatrix& other) const noexcept = default;

 private:
  std::vector<BitVector> rows_storage_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace pimecc::util
