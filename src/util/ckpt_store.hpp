// pimecc -- util/ckpt_store.hpp
//
// Crash-safe rotated checkpoint store: the persistence discipline under
// `pimecc mttf --checkpoint` (and any other resumable campaign).  A store
// owns a base path and keeps up to `generations` complete snapshots as
// `<base>.1` (newest) through `<base>.G` (oldest), logrotate-style.
//
// Save is atomic per generation: the full image is written to `<base>.tmp`
// (every byte written + fsynced, or the save fails -- chaos::FileBackend's
// contract), the existing generations are shifted by rename, and the temp
// file is renamed into `<base>.1`.  A crash at ANY point -- mid-temp-write,
// between shifts, before the final rename -- leaves every previously
// completed generation intact under some name in [1, G]: the previous
// newest snapshot is never unlinked or overwritten until the new one is
// durable.  Transient failures (injected or real: fd pressure, disk-full
// at create) are retried with bounded backoff; a persistent failure throws
// chaos::IoError with the temp file removed and all generations untouched.
//
// Recovery scans newest-first: generation 1, 2, ..., G, then the bare
// `<base>` path (the legacy single-file layout older tools wrote), and
// returns the first candidate the caller's validator accepts -- a torn,
// bit-flipped, or version-skewed generation is counted as rejected and the
// scan continues, so one bad write can never take down a campaign that has
// any older good snapshot.  tests/test_chaos.cpp drives every one of these
// failure modes through a deterministic fault injector.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/chaos.hpp"

namespace pimecc::util {

class CheckpointStore {
 public:
  struct Options {
    std::size_t generations = 3;  ///< rotated snapshots to keep (>= 1)
    std::size_t retries = 3;      ///< extra attempts after a transient failure
  };

  /// One recovered snapshot: the validated bytes plus provenance.
  struct Recovered {
    std::vector<std::uint8_t> bytes;
    std::string path;
    std::size_t generation = 0;  ///< 1 = newest; 0 = legacy bare base path
    std::size_t rejected = 0;    ///< candidates present but failed validation
  };

  /// Accepts or rejects one candidate snapshot's bytes.  A validator that
  /// throws is treated as rejecting (decoders naturally throw
  /// SerializeError on defects).
  using Validator = std::function<bool(std::span<const std::uint8_t>)>;

  /// `backend` defaults to the real filesystem; tests pass a ChaosBackend.
  /// Throws std::invalid_argument on an empty path or zero generations.
  explicit CheckpointStore(std::string base_path);
  CheckpointStore(std::string base_path, Options options,
                  chaos::FileBackend* backend = nullptr);

  /// Persists `bytes` as the new newest generation (see the file comment
  /// for the crash-safety argument).  Throws chaos::IoError after the
  /// retry budget is exhausted.
  void save(std::span<const std::uint8_t> bytes);

  /// Scans generations newest-first (then the legacy bare path) and
  /// returns the first whose bytes `validate` accepts; nullopt when no
  /// candidate survives.
  [[nodiscard]] std::optional<Recovered> recover(
      const Validator& validate) const;

  /// `<base>.<generation>`; generation 0 is the bare base path.
  [[nodiscard]] std::string generation_path(std::size_t generation) const;
  [[nodiscard]] std::string temp_path() const { return base_ + ".tmp"; }
  [[nodiscard]] const std::string& base_path() const noexcept { return base_; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  std::string base_;
  Options options_;
  chaos::FileBackend* backend_;
};

}  // namespace pimecc::util
