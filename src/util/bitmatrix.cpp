#include "util/bitmatrix.hpp"

#include <cassert>
#include <stdexcept>

namespace pimecc::util {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_storage_(rows, BitVector(cols)), rows_(rows), cols_(cols) {}

bool BitMatrix::get(std::size_t r, std::size_t c) const noexcept {
  assert(r < rows_ && c < cols_);
  return rows_storage_[r].get(c);
}

void BitMatrix::set(std::size_t r, std::size_t c, bool value) noexcept {
  assert(r < rows_ && c < cols_);
  rows_storage_[r].set(c, value);
}

bool BitMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("BitMatrix::at: index out of range");
  }
  return get(r, c);
}

bool BitMatrix::flip(std::size_t r, std::size_t c) noexcept {
  assert(r < rows_ && c < cols_);
  return rows_storage_[r].flip(c);
}

const BitVector& BitMatrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row: index out of range");
  return rows_storage_[r];
}

BitVector& BitMatrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row: index out of range");
  return rows_storage_[r];
}

BitVector BitMatrix::column(std::size_t c) const {
  BitVector v;
  column_into(c, v);
  return v;
}

void BitMatrix::column_into(std::size_t c, BitVector& out) const {
  // Validate before touching `out`: a throwing call must not clobber the
  // caller's buffer.
  if (c >= cols_) {
    throw std::out_of_range("BitMatrix::column_into: index out of range");
  }
  out.resize(rows_);
  if (rows_ == 0) return;
  // Single pass: accumulate one output word at a time and store it whole
  // (the protected-machine hot path peels two columns per operation, so
  // this runs without the zero-fill + OR double walk).
  const std::size_t wi = c / BitVector::kWordBits;
  const unsigned shift = static_cast<unsigned>(c % BitVector::kWordBits);
  const std::span<BitVector::Word> out_words = out.words_mutable();
  BitVector::Word acc = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    acc |= ((rows_storage_[r].words()[wi] >> shift) & 1u)
           << (r % BitVector::kWordBits);
    if ((r + 1) % BitVector::kWordBits == 0) {
      out_words[r / BitVector::kWordBits] = acc;
      acc = 0;
    }
  }
  if (rows_ % BitVector::kWordBits != 0) {
    out_words[(rows_ - 1) / BitVector::kWordBits] = acc;
  }
}

void BitMatrix::or_column_into(std::size_t c, BitVector& acc) const {
  if (c >= cols_) {
    throw std::out_of_range("BitMatrix::or_column_into: index out of range");
  }
  if (acc.size() != rows_) {
    throw std::invalid_argument("BitMatrix::or_column_into: length mismatch");
  }
  const std::size_t wi = c / BitVector::kWordBits;
  const unsigned shift = static_cast<unsigned>(c % BitVector::kWordBits);
  const std::span<BitVector::Word> acc_words = acc.words_mutable();
  for (std::size_t r = 0; r < rows_; ++r) {
    const BitVector::Word bit = (rows_storage_[r].words()[wi] >> shift) & 1u;
    acc_words[r / BitVector::kWordBits] |= bit << (r % BitVector::kWordBits);
  }
}

void BitMatrix::set_column(std::size_t c, const BitVector& values) {
  if (c >= cols_) throw std::out_of_range("BitMatrix::set_column: index out of range");
  if (values.size() != rows_) {
    throw std::invalid_argument("BitMatrix::set_column: length mismatch");
  }
  const std::size_t wi = c / BitVector::kWordBits;
  const unsigned shift = static_cast<unsigned>(c % BitVector::kWordBits);
  const BitVector::Word mask = BitVector::Word{1} << shift;
  const std::span<const BitVector::Word> value_words = values.words();
  for (std::size_t r = 0; r < rows_; ++r) {
    const BitVector::Word bit =
        (value_words[r / BitVector::kWordBits] >> (r % BitVector::kWordBits)) & 1u;
    BitVector::Word& w = rows_storage_[r].words_mutable()[wi];
    w = (w & ~mask) | (bit << shift);
  }
}

void BitMatrix::row_assign_masked(std::size_t r, const BitVector& values,
                                  const BitVector& mask) {
  if (r >= rows_) {
    throw std::out_of_range("BitMatrix::row_assign_masked: index out of range");
  }
  rows_storage_[r].assign_masked(values, mask);
}

void BitMatrix::fill(bool value) noexcept {
  for (auto& row_vec : rows_storage_) row_vec.fill(value);
}

std::size_t BitMatrix::count() const noexcept {
  std::size_t total = 0;
  for (const auto& row_vec : rows_storage_) total += row_vec.count();
  return total;
}

std::size_t BitMatrix::hamming_distance(const BitMatrix& other) const {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("BitMatrix::hamming_distance: shape mismatch");
  }
  std::size_t total = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    total += rows_storage_[r].hamming_distance(other.rows_storage_[r]);
  }
  return total;
}

}  // namespace pimecc::util
