#include "util/bitmatrix.hpp"

#include <cassert>
#include <stdexcept>

namespace pimecc::util {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_storage_(rows, BitVector(cols)), rows_(rows), cols_(cols) {}

bool BitMatrix::get(std::size_t r, std::size_t c) const noexcept {
  assert(r < rows_ && c < cols_);
  return rows_storage_[r].get(c);
}

void BitMatrix::set(std::size_t r, std::size_t c, bool value) noexcept {
  assert(r < rows_ && c < cols_);
  rows_storage_[r].set(c, value);
}

bool BitMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("BitMatrix::at: index out of range");
  }
  return get(r, c);
}

bool BitMatrix::flip(std::size_t r, std::size_t c) noexcept {
  assert(r < rows_ && c < cols_);
  return rows_storage_[r].flip(c);
}

const BitVector& BitMatrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row: index out of range");
  return rows_storage_[r];
}

BitVector& BitMatrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("BitMatrix::row: index out of range");
  return rows_storage_[r];
}

BitVector BitMatrix::column(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("BitMatrix::column: index out of range");
  BitVector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v.set(r, get(r, c));
  return v;
}

void BitMatrix::set_column(std::size_t c, const BitVector& values) {
  if (c >= cols_) throw std::out_of_range("BitMatrix::set_column: index out of range");
  if (values.size() != rows_) {
    throw std::invalid_argument("BitMatrix::set_column: length mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) set(r, c, values.get(r));
}

void BitMatrix::fill(bool value) noexcept {
  for (auto& row_vec : rows_storage_) row_vec.fill(value);
}

std::size_t BitMatrix::count() const noexcept {
  std::size_t total = 0;
  for (const auto& row_vec : rows_storage_) total += row_vec.count();
  return total;
}

std::size_t BitMatrix::hamming_distance(const BitMatrix& other) const {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("BitMatrix::hamming_distance: shape mismatch");
  }
  std::size_t total = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    total += rows_storage_[r].hamming_distance(other.rows_storage_[r]);
  }
  return total;
}

}  // namespace pimecc::util
