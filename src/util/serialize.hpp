// pimecc -- util/serialize.hpp
//
// Versioned, checksummed binary serialization: the substrate of the
// checkpoint formats (arch/checkpoint.hpp, reliability/lifetime.hpp) that
// make long lifetime simulations resumable and request traces replayable.
//
// Layout discipline
//   - Everything is little-endian, fixed-width, no padding: a checkpoint
//     written on one machine restores on any other.
//   - A file is one or more *chunks*:
//
//       | magic u64 | version u32 | payload_size u64 | payload | crc64 u64 |
//
//     The magic is an 8-character tag (chunk_magic("PIMECCKP")), the
//     version gates format evolution (readers accept <= their maximum and
//     must keep decoding every version they ever wrote), and the CRC-64
//     (ECMA-182 polynomial) covers the payload bytes.
//   - Decoding is strictly validate-before-mutate: read_chunk verifies
//     magic, version, size bound, and checksum before returning a byte
//     buffer; ByteReader throws SerializeError on any truncated read; and
//     checkpoint restorers parse the full payload into locals before
//     touching any live state.  A corrupt file can therefore never poke a
//     machine, a code, or an RNG.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pimecc::util {

class BitMatrix;
class BitVector;

/// Any structural defect of a serialized stream: truncation, bad magic,
/// unsupported version, checksum mismatch, or field-level validation
/// failures raised by the checkpoint decoders.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-64/ECMA-182 (the xz polynomial 0x42F0E1EBA9EA3693, reflected form)
/// over a byte span.  Table-driven, one table shared process-wide.
[[nodiscard]] std::uint64_t crc64(std::span<const std::uint8_t> bytes) noexcept;

/// Packs an 8-character tag into the u64 chunk magic ("PIMECCKP" etc.).
/// Throws std::invalid_argument unless the tag is exactly 8 characters.
[[nodiscard]] std::uint64_t chunk_magic(std::string_view tag);

/// Little-endian append-only byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern via bit_cast (doubles round-trip exactly,
  /// including signed zeros; NaN payloads are preserved bit-for-bit).
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// u64 length prefix + raw bytes.
  void str(std::string_view text);
  /// u64 bit count + backing words (the padding invariant makes the word
  /// image canonical for a given bit content).
  void bitvector(const BitVector& bits);
  /// u64 rows, u64 cols + each row's words.
  void bitmatrix(const BitMatrix& mat);

  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Little-endian cursor over a byte span; every read throws SerializeError
/// on truncation, so decoders cannot silently run off the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] BitVector bitvector();
  [[nodiscard]] BitMatrix bitmatrix();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Throws SerializeError unless every payload byte was consumed --
  /// trailing garbage means the stream is not what the decoder thinks.
  void require_exhausted() const;

 private:
  std::span<const std::uint8_t> take(std::size_t count);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Default ceiling on a declared payload size (256 MiB): a corrupt or
/// hostile size field must not drive a multi-gigabyte allocation before
/// truncation is even detectable.
inline constexpr std::uint64_t kMaxChunkPayload = 256ull << 20;

/// Writes one framed chunk (header + payload + CRC).  Throws
/// std::ios_base::failure-free: stream state is the caller's to check, but
/// a throwing stream propagates naturally.
void write_chunk(std::ostream& os, std::uint64_t magic, std::uint32_t version,
                 std::span<const std::uint8_t> payload);

struct Chunk {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Reads and fully validates one chunk: magic must equal `expected_magic`,
/// version must be in [1, max_version], the declared size must be within
/// `max_payload`, the payload must be complete, and the trailing CRC must
/// match.  Throws SerializeError otherwise; the returned payload is safe
/// to parse.
[[nodiscard]] Chunk read_chunk(std::istream& is, std::uint64_t expected_magic,
                               std::uint32_t max_version,
                               std::uint64_t max_payload = kMaxChunkPayload);

}  // namespace pimecc::util
