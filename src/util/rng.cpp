#include "util/rng.hpp"

#include <algorithm>

namespace pimecc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() noexcept {
  // 53-bit mantissa construction.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  std::binomial_distribution<std::uint64_t> dist(n, p);
  return dist(*this);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  std::poisson_distribution<std::uint64_t> dist(mean);
  return dist(*this);
}

}  // namespace pimecc::util
