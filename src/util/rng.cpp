#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"

namespace pimecc::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

void Rng::set_state(const State& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0) {
    throw std::invalid_argument("Rng::set_state: all-zero state is invalid");
  }
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
}

void Rng::advance_by(const std::uint64_t (&polynomial)[4]) noexcept {
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t mask : polynomial) {
    for (int b = 0; b < 64; ++b) {
      if (mask & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (void)next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Rng::jump() noexcept {
  // Blackman & Vigna's jump polynomial for xoshiro256**: equivalent to
  // 2^128 next() calls.
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
      0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  advance_by(kJump);
}

void Rng::long_jump() noexcept {
  // The 2^192-step long-jump polynomial.
  static constexpr std::uint64_t kLongJump[4] = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
      0x77710069854ee241ull, 0x39109bb02acbe635ull};
  advance_by(kLongJump);
}

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Hash the (seed, stream) pair into a fresh SplitMix64 starting point so
  // consecutive stream indices yield decorrelated xoshiro states.  Also
  // distinct from reseed(seed) itself (stream 0 included) because the seed
  // is mixed once before the stream is folded in.
  std::uint64_t sm = seed;
  sm = splitmix64(sm) ^ (stream * 0xD1342543DE82EF95ull + 0x9E3779B97F4A7C15ull);
  Rng r;
  for (auto& s : r.state_) s = splitmix64(sm);
  if ((r.state_[0] | r.state_[1] | r.state_[2] | r.state_[3]) == 0) r.state_[0] = 1;
  return r;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() noexcept {
  // 53-bit mantissa construction.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  std::binomial_distribution<std::uint64_t> dist(n, p);
  return dist(*this);
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~std::uint64_t{0};
  // Inversion of the survival function: G = floor(ln U / ln(1-p)) with
  // U in (0, 1]; uniform01() is [0, 1), so flip it.
  const double u = 1.0 - uniform01();
  const double g = std::floor(std::log(u) / std::log1p(-p));
  // NaN (0/0 for u == 1... cannot happen; guard anyway) and values at or
  // beyond 2^64 saturate.
  if (!(g < 18446744073709551615.0)) return ~std::uint64_t{0};
  return g <= 0.0 ? 0 : static_cast<std::uint64_t>(g);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  std::poisson_distribution<std::uint64_t> dist(mean);
  return dist(*this);
}

void fill_random(BitVector& bits, Rng& rng) {
  for (auto& word : bits.words_mutable()) word = rng.next();
  bits.sanitize();
}

BitMatrix random_bit_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  BitMatrix mat(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) fill_random(mat.row(r), rng);
  return mat;
}

}  // namespace pimecc::util
