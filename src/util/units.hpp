// pimecc -- util/units.hpp
//
// Reliability units used throughout the paper's evaluation (Section V-A).
//
//   FIT (Failures In Time): failures per 10^9 device-hours.
//   1 FIT/bit  ==  one soft error per 10^9 hours in a specific memristor.
#pragma once

#include <cmath>
#include <limits>

namespace pimecc::util {

/// Hours per 10^9-hour FIT window.
inline constexpr double kFitHours = 1e9;

/// Probability that a device with constant rate `fit_per_bit` [FIT/bit]
/// errs at least once within `hours`:  1 - exp(-lambda * T / 1e9).
[[nodiscard]] inline double error_probability(double fit_per_bit, double hours) noexcept {
  if (fit_per_bit <= 0.0 || hours <= 0.0) return 0.0;
  return -std::expm1(-fit_per_bit * hours / kFitHours);
}

/// Converts a failure probability over a window of `hours` into a failure
/// rate in FIT:  p * 1e9 / T.
[[nodiscard]] inline double probability_to_fit(double p_fail, double hours) noexcept {
  if (hours <= 0.0) return 0.0;
  return p_fail * kFitHours / hours;
}

/// Mean time to failure [hours] from a failure rate [FIT]: 1e9 / FIT.
/// Returns +inf for a zero rate.
[[nodiscard]] inline double fit_to_mttf_hours(double fit) noexcept {
  if (fit <= 0.0) return std::numeric_limits<double>::infinity();
  return kFitHours / fit;
}

}  // namespace pimecc::util
