// pimecc -- util/simd_avx2.cpp
//
// AVX2 kernel table.  Compiled with -mavx2 (set per-file by CMake); when the
// compiler lacks the flag or the build forces scalar, the stub at the bottom
// keeps the symbol defined and detection reports the level unavailable.
//
// Correctness notes shared by the kernels below:
//  * Variable 64-bit vector shifts (vpsllvq/vpsrlvq) return 0 for any count
//    >= 64, so the two-shift rotate ((seg << k) | (seg >> m-k)) & mask is
//    total -- including k == 0 (right count m, possibly 64) and k == m --
//    with no per-lane branching and no shift-width UB.  This is the vector
//    twin of the masked scalar simd::rotl.
//  * Masked gathers (vpgatherqq) perform no memory access on masked-out
//    lanes, so the conditional second-word read of a straddling segment is
//    exactly as safe as the scalar `if` it replaces.
//  * Every gathered word is masked down to the low m segment bits before
//    use, so tail-word garbage above a row's logical size never leaks in.
#include "util/simd.hpp"

#if defined(__AVX2__) && !defined(PIMECC_FORCE_SCALAR_BUILD)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace pimecc::util::simd::detail {

namespace {

inline __m256i sll64(__m256i v, std::size_t k) noexcept {
  return _mm256_sll_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}
inline __m256i srl64(__m256i v, std::size_t k) noexcept {
  return _mm256_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(k)));
}

/// lead ^= rotl(seg, k); cnt ^= rotl(seg, m-k) for 4 lanes with uniform k.
/// The four shifted forms are shared between the two accumulators.
inline void fold_rotations(__m256i seg, std::size_t k, std::size_t m,
                           __m256i vmask, __m256i& lead, __m256i& cnt) noexcept {
  const __m256i sl_k = sll64(seg, k);
  const __m256i sr_k = srl64(seg, k);
  const __m256i sl_mk = sll64(seg, m - k);
  const __m256i sr_mk = srl64(seg, m - k);
  lead = _mm256_xor_si256(
      lead, _mm256_and_si256(_mm256_or_si256(sl_k, sr_mk), vmask));
  cnt = _mm256_xor_si256(
      cnt, _mm256_and_si256(_mm256_or_si256(sl_mk, sr_k), vmask));
}

void band_accumulate_avx2(const std::uint64_t* const* rows, std::size_t m,
                          std::size_t bps, std::uint64_t* lead,
                          std::uint64_t* cnt) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(low_mask(m)));
  std::size_t bc = 0;
  if (m == 64) {
    // Word-aligned single-word blocks: plain unaligned loads, no gathers,
    // no segment peel at all.
    for (; bc + 4 <= bps; bc += 4) {
      __m256i vlead = _mm256_setzero_si256();
      __m256i vcnt = _mm256_setzero_si256();
      for (std::size_t r = 0; r < m; ++r) {
        const __m256i seg = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(rows[r] + bc));
        fold_rotations(seg, r, m, vmask, vlead, vcnt);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lead + bc), vlead);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cnt + bc), vcnt);
    }
  } else {
    for (; bc + 4 <= bps; bc += 4) {
      // Per-lane word index / intra-word shift of segment bc+l, fixed for
      // the whole row loop.
      alignas(32) long long wi[4];
      alignas(32) long long sh[4];
      for (std::size_t l = 0; l < 4; ++l) {
        const std::size_t bit0 = (bc + l) * m;
        wi[l] = static_cast<long long>(bit0 >> 6);
        sh[l] = static_cast<long long>(bit0 & 63);
      }
      const __m256i vwi = _mm256_load_si256(reinterpret_cast<__m256i*>(wi));
      const __m256i vsh = _mm256_load_si256(reinterpret_cast<__m256i*>(sh));
      const __m256i vlsh = _mm256_sub_epi64(_mm256_set1_epi64x(64), vsh);
      // Lane needs words[wi+1] iff sh != 0 and sh + m > 64 -- the straddle
      // condition of the scalar extract; such a word provably exists (the
      // segment ends inside it), so the masked gather never reads past the
      // row.
      const __m256i vneed = _mm256_andnot_si256(
          _mm256_cmpeq_epi64(vsh, _mm256_setzero_si256()),
          _mm256_cmpgt_epi64(
              _mm256_add_epi64(vsh, _mm256_set1_epi64x(
                                        static_cast<long long>(m))),
              _mm256_set1_epi64x(64)));
      const __m256i vwi1 = _mm256_add_epi64(vwi, _mm256_set1_epi64x(1));
      __m256i vlead = _mm256_setzero_si256();
      __m256i vcnt = _mm256_setzero_si256();
      for (std::size_t r = 0; r < m; ++r) {
        const auto* base = reinterpret_cast<const long long*>(rows[r]);
        const __m256i g0 = _mm256_i64gather_epi64(base, vwi, 8);
        const __m256i g1 = _mm256_mask_i64gather_epi64(
            _mm256_setzero_si256(), base, vwi1, vneed, 8);
        const __m256i seg = _mm256_and_si256(
            _mm256_or_si256(_mm256_srlv_epi64(g0, vsh),
                            _mm256_sllv_epi64(g1, vlsh)),
            vmask);
        fold_rotations(seg, r, m, vmask, vlead, vcnt);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(lead + bc), vlead);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cnt + bc), vcnt);
    }
  }
  for (; bc < bps; ++bc) {
    block_peel_scalar(rows, m, bc * m, lead + bc, cnt + bc);
  }
}

void block_peel_avx2(const std::uint64_t* const* rows, std::size_t m,
                     std::size_t bit0, std::uint64_t* lead,
                     std::uint64_t* cnt) {
  const std::uint64_t mask = low_mask(m);
  const std::size_t wi = bit0 / 64;
  const auto sh = static_cast<long long>(bit0 % 64);
  const bool straddles = sh != 0 && static_cast<std::size_t>(sh) + m > 64;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vsh = _mm256_set1_epi64x(sh);
  const __m256i vlsh = _mm256_set1_epi64x(64 - sh);
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
  __m256i vlead = _mm256_setzero_si256();
  __m256i vcnt = _mm256_setzero_si256();
  std::size_t r = 0;
  for (; r + 4 <= m; r += 4) {
    // Four rows at once: the segment position is shared, the row base
    // pointers are not, so gather by absolute address (base nullptr,
    // byte-scale indices).  The straddle condition is uniform across lanes,
    // hence a plain branch instead of a masked gather.
    const __m256i vaddr = _mm256_set_epi64x(
        static_cast<long long>(reinterpret_cast<std::uintptr_t>(rows[r + 3] + wi)),
        static_cast<long long>(reinterpret_cast<std::uintptr_t>(rows[r + 2] + wi)),
        static_cast<long long>(reinterpret_cast<std::uintptr_t>(rows[r + 1] + wi)),
        static_cast<long long>(reinterpret_cast<std::uintptr_t>(rows[r + 0] + wi)));
    const __m256i g0 =
        _mm256_i64gather_epi64(static_cast<const long long*>(nullptr), vaddr, 1);
    __m256i seg = _mm256_srlv_epi64(g0, vsh);
    if (straddles) {
      const __m256i g1 = _mm256_i64gather_epi64(
          static_cast<const long long*>(nullptr),
          _mm256_add_epi64(vaddr, _mm256_set1_epi64x(8)), 1);
      seg = _mm256_or_si256(seg, _mm256_sllv_epi64(g1, vlsh));
    }
    seg = _mm256_and_si256(seg, vmask);
    // Rotation counts differ per lane (k = r+l): variable shifts, with the
    // count-64 cases (k = 0 -> m-k may be 64) naturally yielding 0.
    const __m256i vk = _mm256_set_epi64x(
        static_cast<long long>(r + 3), static_cast<long long>(r + 2),
        static_cast<long long>(r + 1), static_cast<long long>(r + 0));
    const __m256i vmk = _mm256_sub_epi64(vm, vk);
    vlead = _mm256_xor_si256(
        vlead, _mm256_and_si256(_mm256_or_si256(_mm256_sllv_epi64(seg, vk),
                                                _mm256_srlv_epi64(seg, vmk)),
                                vmask));
    vcnt = _mm256_xor_si256(
        vcnt, _mm256_and_si256(_mm256_or_si256(_mm256_sllv_epi64(seg, vmk),
                                               _mm256_srlv_epi64(seg, vk)),
                               vmask));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vlead);
  std::uint64_t l = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vcnt);
  std::uint64_t c = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3];
  for (; r < m; ++r) {
    std::uint64_t seg = rows[r][wi] >> sh;
    if (straddles) seg |= rows[r][wi + 1] << (64 - sh);
    seg &= mask;
    l ^= rotl(seg, r, m);
    c ^= rotl(seg, m - r, m);
  }
  *lead = l;
  *cnt = c;
}

/// Per-lane popcount of 4x64 via the nibble-LUT + psadbw idiom.
inline __m256i popcount64x4(__m256i v) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  const __m256i cnt8 = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                       _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
}

std::size_t nor_column_pass_avx2(const std::uint64_t* const* ins,
                                 std::size_t n_ins, const std::uint64_t* mask,
                                 std::uint64_t* out, std::size_t n_words) {
  __m256i vviol = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= n_words; w += 4) {
    __m256i any = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ins[0] + w));
    for (std::size_t i = 1; i < n_ins; ++i) {
      any = _mm256_or_si256(
          any, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ins[i] + w)));
    }
    const __m256i mw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w));
    const __m256i ow =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + w));
    vviol = _mm256_add_epi64(vviol, popcount64x4(_mm256_andnot_si256(ow, mw)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + w),
        _mm256_andnot_si256(_mm256_and_si256(mw, any), ow));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vviol);
  std::size_t violations =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < n_words; ++w) {
    std::uint64_t any = ins[0][w];
    for (std::size_t i = 1; i < n_ins; ++i) any |= ins[i][w];
    violations += static_cast<std::size_t>(std::popcount(mask[w] & ~out[w]));
    out[w] &= ~(mask[w] & any);
  }
  return violations;
}

constexpr KernelTable kAvx2Table{
    &band_accumulate_avx2,
    &block_peel_avx2,
    &nor_column_pass_avx2,
};

}  // namespace

const KernelTable* avx2_table() noexcept { return &kAvx2Table; }

}  // namespace pimecc::util::simd::detail

#else  // !__AVX2__ || PIMECC_FORCE_SCALAR_BUILD

namespace pimecc::util::simd::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace pimecc::util::simd::detail

#endif
