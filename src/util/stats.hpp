// pimecc -- util/stats.hpp
//
// Streaming statistics and summary helpers used by the Monte Carlo
// reliability engine and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace pimecc::util {

/// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the normal-approximation confidence interval on the mean
  /// (z = 1.96 for ~95%).
  [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly positive values; returns 0 if empty or any
/// value is non-positive.
[[nodiscard]] double geometric_mean(const std::vector<double>& values) noexcept;

/// Wilson score interval for a binomial proportion (successes k of n).
struct ProportionInterval {
  double center = 0.0;
  double low = 0.0;
  double high = 0.0;
};
[[nodiscard]] ProportionInterval wilson_interval(std::size_t k, std::size_t n,
                                                 double z = 1.96) noexcept;

/// p-th percentile (0..100) of a copy of `values` (nearest-rank).
[[nodiscard]] double percentile(std::vector<double> values, double p) noexcept;

}  // namespace pimecc::util
