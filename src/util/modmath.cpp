#include "util/modmath.hpp"

namespace pimecc::util {

std::optional<std::int64_t> mod_inverse(std::int64_t a, std::int64_t m) noexcept {
  if (m <= 0) return std::nullopt;
  a = floor_mod(a, m);
  // Extended Euclid maintaining only the coefficient of a.
  std::int64_t old_r = a, r = m;
  std::int64_t old_s = 1, s = 0;
  while (r != 0) {
    const std::int64_t q = old_r / r;
    const std::int64_t tmp_r = old_r - q * r;
    old_r = r;
    r = tmp_r;
    const std::int64_t tmp_s = old_s - q * s;
    old_s = s;
    s = tmp_s;
  }
  if (old_r != 1) return std::nullopt;
  return floor_mod(old_s, m);
}

}  // namespace pimecc::util
