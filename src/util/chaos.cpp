#include "util/chaos.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pimecc::util::chaos {

std::vector<std::uint8_t> truncated(std::span<const std::uint8_t> bytes,
                                    std::size_t size) {
  const std::size_t keep = std::min(size, bytes.size());
  return std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + keep);
}

std::vector<std::uint8_t> bit_flipped(std::span<const std::uint8_t> bytes,
                                      std::uint64_t bit_index) {
  if (bit_index >= static_cast<std::uint64_t>(bytes.size()) * 8) {
    throw std::out_of_range("chaos::bit_flipped: bit index out of range");
  }
  std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
  out[static_cast<std::size_t>(bit_index / 8)] ^=
      static_cast<std::uint8_t>(1u << (bit_index % 8));
  return out;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// fsync a directory so a rename within it is durable.  Best effort: some
/// filesystems refuse O_RDONLY directory fsync; that's not a data-loss
/// path (the rename itself already happened atomically).
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

class RealFileBackend final : public FileBackend {};

}  // namespace

void FileBackend::write_file(const std::string& path,
                             std::span<const std::uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create", path);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      (void)::close(fd);
      errno = saved;
      throw_errno("write failed for", path);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    (void)::close(fd);
    errno = saved;
    throw_errno("fsync failed for", path);
  }
  if (::close(fd) != 0) throw_errno("close failed for", path);
}

void FileBackend::rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("cannot rename '" + from + "' to", to);
  }
  sync_parent_dir(to);
}

void FileBackend::remove_file(const std::string& path) noexcept {
  (void)::unlink(path.c_str());
}

bool FileBackend::read_file(const std::string& path,
                            std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  (void)::close(fd);
  return true;
}

bool FileBackend::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void FileBackend::backoff(std::size_t attempt) {
  // Bounded exponential: 1ms, 2ms, 4ms, ... capped at 64ms.  A transient
  // open failure (fd pressure, NFS hiccup) gets breathing room; a
  // persistent one still fails the save within the retry budget fast.
  const std::uint64_t ms = std::min<std::uint64_t>(64, 1ull << std::min<std::size_t>(attempt, 6));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

FileBackend& real_file_backend() {
  static RealFileBackend backend;
  return backend;
}

// ------------------------------------------------------------ ChaosBackend

void ChaosBackend::write_file(const std::string& path,
                              std::span<const std::uint8_t> bytes) {
  ++log_.writes;
  if (plan_.fail_opens > 0) {
    --plan_.fail_opens;
    ++log_.opens_failed;
    throw IoError("chaos: injected transient open failure for '" + path + "'");
  }
  if (plan_.tear_after.has_value()) {
    const std::uint64_t keep = *plan_.tear_after;
    plan_.tear_after.reset();
    ++log_.writes_torn;
    delegate_->write_file(path,
                          bytes.subspan(0, std::min<std::size_t>(
                                               bytes.size(),
                                               static_cast<std::size_t>(keep))));
    throw IoError("chaos: injected torn write for '" + path + "'");
  }
  if (plan_.corrupt_bit.has_value()) {
    const std::uint64_t bit = *plan_.corrupt_bit;
    plan_.corrupt_bit.reset();
    ++log_.bits_corrupted;
    delegate_->write_file(path, bit_flipped(bytes, bit));
    return;  // "succeeds": silent corruption, only the CRC can catch it
  }
  delegate_->write_file(path, bytes);
}

void ChaosBackend::rename_file(const std::string& from, const std::string& to) {
  ++log_.renames;
  if (plan_.fail_rename) {
    plan_.fail_rename = false;
    ++log_.renames_failed;
    throw IoError("chaos: injected rename failure '" + from + "' -> '" + to +
                  "'");
  }
  delegate_->rename_file(from, to);
}

void ChaosBackend::remove_file(const std::string& path) noexcept {
  ++log_.removes;
  delegate_->remove_file(path);
}

bool ChaosBackend::read_file(const std::string& path,
                             std::vector<std::uint8_t>& out) {
  ++log_.reads;
  if (!delegate_->read_file(path, out)) return false;
  if (plan_.short_read.has_value()) {
    const std::uint64_t keep = *plan_.short_read;
    plan_.short_read.reset();
    ++log_.reads_shortened;
    if (keep < out.size()) out.resize(static_cast<std::size_t>(keep));
  }
  return true;
}

bool ChaosBackend::exists(const std::string& path) {
  return delegate_->exists(path);
}

void ChaosBackend::backoff(std::size_t) { ++log_.backoffs; }

}  // namespace pimecc::util::chaos
