#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pimecc::util::simd {

namespace detail {

namespace {

/// Extracts the m-bit segment at absolute bit offset bit0 of a word array.
/// Identical contract to diagword::extract; duplicated here (two lines) so
/// this layer stays free of core/ includes.
inline std::uint64_t extract(const std::uint64_t* words, std::size_t bit0,
                             std::size_t m) noexcept {
  const std::size_t wi = bit0 / 64;
  const unsigned shift = static_cast<unsigned>(bit0 % 64);
  std::uint64_t seg = words[wi] >> shift;
  if (shift != 0 && shift + m > 64) {
    seg |= words[wi + 1] << (64u - shift);
  }
  return seg & low_mask(m);
}

}  // namespace

void block_peel_scalar(const std::uint64_t* const* rows, std::size_t m,
                       std::size_t bit0, std::uint64_t* lead,
                       std::uint64_t* cnt) {
  std::uint64_t l = 0;
  std::uint64_t c = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const std::uint64_t seg = extract(rows[r], bit0, m);
    l ^= rotl(seg, r, m);
    c ^= rotl(seg, m - r, m);  // (m - r) % m handled by rotl's reduction
  }
  *lead = l;
  *cnt = c;
}

void band_accumulate_scalar(const std::uint64_t* const* rows, std::size_t m,
                            std::size_t bps, std::uint64_t* lead,
                            std::uint64_t* cnt) {
  for (std::size_t bc = 0; bc < bps; ++bc) {
    lead[bc] = 0;
    cnt[bc] = 0;
  }
  for (std::size_t r = 0; r < m; ++r) {
    const std::uint64_t* words = rows[r];
    const std::size_t rot_right = r == 0 ? 0 : m - r;
    for (std::size_t bc = 0; bc < bps; ++bc) {
      const std::uint64_t seg = extract(words, bc * m, m);
      lead[bc] ^= rotl(seg, r, m);
      cnt[bc] ^= rotl(seg, rot_right, m);
    }
  }
}

std::size_t nor_column_pass_scalar(const std::uint64_t* const* ins,
                                   std::size_t n_ins, const std::uint64_t* mask,
                                   std::uint64_t* out, std::size_t n_words) {
  std::size_t violations = 0;
  for (std::size_t w = 0; w < n_words; ++w) {
    std::uint64_t any = ins[0][w];
    for (std::size_t i = 1; i < n_ins; ++i) any |= ins[i][w];
    const std::uint64_t mw = mask[w];
    violations += static_cast<std::size_t>(std::popcount(mw & ~out[w]));
    out[w] &= ~(mw & any);
  }
  return violations;
}

}  // namespace detail

namespace {

constexpr KernelTable kScalarTable{
    &detail::band_accumulate_scalar,
    &detail::block_peel_scalar,
    &detail::nor_column_pass_scalar,
};

Level detect() noexcept {
#if defined(PIMECC_FORCE_SCALAR_BUILD)
  return Level::kScalar;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (detail::avx512_table() != nullptr &&
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return Level::kAvx512;
  }
  if (detail::avx2_table() != nullptr && __builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
  return Level::kScalar;
#else
  return Level::kScalar;
#endif
}

const KernelTable* table_for(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return &kScalarTable;
    case Level::kAvx2: return detail::avx2_table();
    case Level::kAvx512: return detail::avx512_table();
  }
  return nullptr;
}

struct Dispatch {
  Level detected;
  bool forced_scalar_env;
  std::atomic<const KernelTable*> table;
  std::atomic<Level> level;

  Dispatch() noexcept : detected(detect()), forced_scalar_env(false) {
    const char* env = std::getenv("PIMECC_FORCE_SCALAR");
    forced_scalar_env =
        env != nullptr && env[0] != '\0' && std::string(env) != "0";
    const Level start = forced_scalar_env ? Level::kScalar : detected;
    level.store(start, std::memory_order_relaxed);
    table.store(table_for(start), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() noexcept {
  static Dispatch d;  // constructed on first use; kernels() is hot after that
  return d;
}

}  // namespace

Level detected_level() noexcept { return dispatch().detected; }

Level active_level() noexcept {
  return dispatch().level.load(std::memory_order_relaxed);
}

bool force_scalar_env() noexcept { return dispatch().forced_scalar_env; }

void set_level(Level level) {
  Dispatch& d = dispatch();
  if (static_cast<unsigned>(level) > static_cast<unsigned>(d.detected)) {
    throw std::invalid_argument(std::string("simd::set_level: level '") +
                                to_string(level) +
                                "' not supported on this CPU/build (max '" +
                                to_string(d.detected) + "')");
  }
  d.level.store(level, std::memory_order_relaxed);
  d.table.store(table_for(level), std::memory_order_relaxed);
}

std::vector<Level> available_levels() {
  std::vector<Level> out;
  const auto max = static_cast<unsigned>(dispatch().detected);
  for (unsigned l = 0; l <= max; ++l) out.push_back(static_cast<Level>(l));
  return out;
}

const KernelTable& kernels() noexcept {
  return *dispatch().table.load(std::memory_order_relaxed);
}

const KernelTable& kernels_for(Level level) {
  Dispatch& d = dispatch();
  if (static_cast<unsigned>(level) > static_cast<unsigned>(d.detected)) {
    throw std::invalid_argument(std::string("simd::kernels_for: level '") +
                                to_string(level) +
                                "' not supported on this CPU/build (max '" +
                                to_string(d.detected) + "')");
  }
  return *table_for(level);
}

}  // namespace pimecc::util::simd
