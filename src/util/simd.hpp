// pimecc -- util/simd.hpp
//
// Runtime-dispatched SIMD kernels under the word-parallel engines.
//
// The word-parallel engines (PRs 2-4) express every hot path as loops over
// 64-bit words; this layer vectorizes the three hottest of those loops as
// AVX2 and AVX-512 kernels selected by CPUID at startup, PISA-style: the
// scalar implementation is retained as the portable fallback and as the
// golden model every wider variant must match bit-for-bit (pinned by the
// dispatch-level differential suite in tests/test_simd.cpp).
//
// Layering: this header knows nothing about BitVector/BitMatrix -- kernels
// take raw word pointers, so core/ and xbar/ can both sit on top of it.
// The bit-rotation primitives (low_mask / rotl / bit_reverse / reflect)
// live here because both the scalar kernels and core/geometry's diagword
// wrappers share them.
//
// Dispatch levels
//   kScalar  portable uint64_t loops (always available)
//   kAvx2    256-bit: gathers + variable 64-bit shifts (x86-64 with AVX2)
//   kAvx512  512-bit: 8-lane gathers + vpopcntq (needs F/BW/DQ/VL/VPOPCNTDQ)
//
// Selection: the highest level the CPU supports, unless the environment
// variable PIMECC_FORCE_SCALAR is set (non-empty, not "0") at process
// start, or the library was built with -DPIMECC_FORCE_SCALAR=ON (which
// compiles the SIMD translation units out entirely).  Tests and benches
// can also override per-call-site with set_level(), which clamps to the
// detected level and is how the differential suite proves every available
// level bit-identical to scalar on the same hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pimecc::util::simd {

// ---------------------------------------------------------------- primitives

/// Mask of the low m bits (m in [0, 64]).
[[nodiscard]] constexpr std::uint64_t low_mask(std::size_t m) noexcept {
  return m >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << m) - 1;
}

/// Masked rotate-left of the low m bits of `seg` by k: bit c -> (c + k) mod m.
/// Total for every m in [1, 64] and any k (k is reduced mod m; stray bits of
/// `seg` at positions >= m are discarded before rotating, so they can never
/// leak into the result through the right-shift half).  Both shift counts
/// are provably < 64 on every path, so there is no shift-width UB even at
/// m == 64 -- the corner the unmasked `seg >> (m - k)` form trips over.
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t seg, std::size_t k,
                                           std::size_t m) noexcept {
  seg &= low_mask(m);
  k %= m;
  if (k == 0) return seg;
  return ((seg << k) | (seg >> (m - k))) & low_mask(m);
}

/// Reverses all 64 bits (bit j -> 63 - j).
[[nodiscard]] constexpr std::uint64_t bit_reverse(std::uint64_t v) noexcept {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) | ((v & 0x0f0f0f0f0f0f0f0full) << 4);
  v = ((v >> 8) & 0x00ff00ff00ff00ffull) | ((v & 0x00ff00ff00ff00ffull) << 8);
  v = ((v >> 16) & 0x0000ffff0000ffffull) | ((v & 0x0000ffff0000ffffull) << 16);
  return (v >> 32) | (v << 32);
}

/// Reflection of the low m bits: bit j -> (m - j) mod m (bit 0 fixed, bits
/// [1, m) reversed).  This is the stride-(m-1) permutation -- the counter
/// diagonal's reordering -- in O(1) instead of the O(m) bit loop:
/// bit_reverse sends j to 63-j, the shift re-anchors to m-1-j, and one
/// rotate-left lands on (m - j) mod m.  Valid for m in [1, 64]; the shift
/// count 64 - m is at most 63 because bit_reverse already handled m == 64.
[[nodiscard]] constexpr std::uint64_t reflect(std::uint64_t seg,
                                              std::size_t m) noexcept {
  return rotl(bit_reverse(seg) >> (64 - m), 1, m);
}

// ------------------------------------------------------------------ dispatch

enum class Level : unsigned char { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] constexpr const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "?";
}

/// Highest level this CPU (and this build) supports.  Detected once via
/// CPUID; a PIMECC_FORCE_SCALAR build reports kScalar unconditionally.
[[nodiscard]] Level detected_level() noexcept;

/// Level the kernel table currently dispatches to.  Starts at
/// detected_level(), or kScalar when the PIMECC_FORCE_SCALAR environment
/// variable is set (non-empty, not "0") at process start.
[[nodiscard]] Level active_level() noexcept;

/// Re-points the kernel table at `level`.  Throws std::invalid_argument if
/// the CPU (or build) does not support it -- callers enumerate
/// available_levels() instead of guessing.  Intended for tests and benches;
/// concurrent kernel calls see either the old or the new table (the swap is
/// one atomic pointer store).
void set_level(Level level);

/// Every level in [kScalar, detected_level()], lowest first.
[[nodiscard]] std::vector<Level> available_levels();

/// True iff the PIMECC_FORCE_SCALAR environment variable pinned the initial
/// level to scalar (diagnostic; set_level can still raise it afterwards).
[[nodiscard]] bool force_scalar_env() noexcept;

// ------------------------------------------------------------------- kernels

/// The dispatched kernels.  All pointers are non-null at every level; the
/// scalar table is the reference semantics and every wider table must be
/// bit-identical on any input (differential-tested per level).
struct KernelTable {
  /// Diagonal rotate-and-XOR accumulation over one block band (the codec
  /// engine's encode_all/scrub/consistent_with walk).  rows[r] (r < m)
  /// points at the backing words of band row r; each row holds bps
  /// consecutive m-bit segments (m <= 64, segment bc at bits
  /// [bc*m, bc*m + m)).  Writes, for every block column bc:
  ///   lead[bc] = XOR_r rotl(seg(r, bc), r, m)
  ///   cnt[bc]  = XOR_r rotl(seg(r, bc), (m - r) % m, m)
  /// cnt is left pre-reflection: callers apply simd::reflect once per block
  /// (the m=63/64-class single-word path that replaced the O(m) stride
  /// permutation).  Bits above each segment's low m are never read unmasked.
  void (*band_accumulate)(const std::uint64_t* const* rows, std::size_t m,
                          std::size_t bps, std::uint64_t* lead,
                          std::uint64_t* cnt);

  /// Same accumulation for ONE block whose m-bit segment sits at bit offset
  /// bit0 of each row (the band walk's per-block segment peel: block-column
  /// scrubs, scrub_block, per-block encode/syndrome).  rows[r] (r < m)
  /// points at the backing words of block row r.  *lead / *cnt receive the
  /// leading and pre-reflection counter parity.
  void (*block_peel)(const std::uint64_t* const* rows, std::size_t m,
                     std::size_t bit0, std::uint64_t* lead,
                     std::uint64_t* cnt);

  /// Fused column-orientation MAGIC NOR pass over n_words words:
  ///   viol    += popcount(mask[w] & ~out[w])        (uninitialized outputs)
  ///   out[w]  &= ~(mask[w] & (OR_i ins[i][w]))      (out' = out AND NOR(in))
  /// Returns the violation count.  One pass instead of the former
  /// copy/OR/invert/count/AND/assign chain; mask's padding bits must be 0
  /// (BitVector invariant), so out's padding is preserved verbatim.
  std::size_t (*nor_column_pass)(const std::uint64_t* const* ins,
                                 std::size_t n_ins, const std::uint64_t* mask,
                                 std::uint64_t* out, std::size_t n_words);
};

/// Kernel table for the active level.  One relaxed atomic pointer load.
[[nodiscard]] const KernelTable& kernels() noexcept;

/// Kernel table for a specific level (throws like set_level on unsupported
/// levels).  Lets benches time two levels without racing on the global.
[[nodiscard]] const KernelTable& kernels_for(Level level);

namespace detail {
/// The scalar implementations, shared by simd.cpp's table and by the AVX
/// translation units' remainder loops.
void band_accumulate_scalar(const std::uint64_t* const* rows, std::size_t m,
                            std::size_t bps, std::uint64_t* lead,
                            std::uint64_t* cnt);
void block_peel_scalar(const std::uint64_t* const* rows, std::size_t m,
                       std::size_t bit0, std::uint64_t* lead,
                       std::uint64_t* cnt);
std::size_t nor_column_pass_scalar(const std::uint64_t* const* ins,
                                   std::size_t n_ins,
                                   const std::uint64_t* mask,
                                   std::uint64_t* out, std::size_t n_words);
/// Defined in simd_avx2.cpp / simd_avx512.cpp (null when compiled out).
[[nodiscard]] const KernelTable* avx2_table() noexcept;
[[nodiscard]] const KernelTable* avx512_table() noexcept;
}  // namespace detail

}  // namespace pimecc::util::simd
