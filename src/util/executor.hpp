// pimecc -- util/executor.hpp
//
// Persistent work-stealing thread pool: the shared concurrency substrate of
// the fleet-scale simulation layer (and of every later serving/sweep
// subsystem).  Grown out of reliability/parallel.hpp's one-shot
// contiguous-partition std::thread spawner, which rebuilt a pool per call
// and pinned each worker to a fixed trial range -- so one expensive trial
// serialized its whole contiguous chunk behind it.
//
// Architecture
//   - One Executor owns N worker threads (lazy one-time startup for the
//     process-wide Executor::shared(); N = hardware concurrency).
//   - Each worker owns a Chase-Lev deque: the owner pushes and pops at the
//     bottom (LIFO, cache-warm), idle threads steal from the top (FIFO,
//     oldest first).  The implementation follows the weak-memory-model
//     formulation of Le, Pop, Cohen & Zappa Nardelli (PPoPP'13), with
//     atomic slot arrays retired-not-freed on growth so a racing thief
//     never reads reclaimed memory.
//   - A shared mutex-protected injection queue receives submissions from
//     threads that are not workers of this executor (the main thread, a
//     test thread, a worker of another executor); workers drain it between
//     deque scans, so external work cannot starve.
//   - Sleep/wake is epoch-based: enqueue bumps a work epoch under the idle
//     mutex and notifies; a worker sleeps only if the epoch has not moved
//     since before its last full scan, so wakeups cannot be lost.
//
// TaskGroup is the submit/wait unit.  wait() *helps*: the waiting thread
// executes queued tasks (its own deque first when it is a worker, then the
// injection queue, then steals) until the group's pending count reaches
// zero -- so nested groups inside tasks cannot deadlock, and on a machine
// with W workers a waiting caller gives min(lanes, W + 1) OS threads of
// real concurrency.  The first exception thrown by any task is captured
// and rethrown from wait() after every task of the group has finished,
// mirroring reliability/parallel.hpp's rethrow-after-join contract.
//
// Determinism: the executor itself promises nothing about which thread
// runs which task -- callers get thread-count-invariant results by giving
// every task a deterministic identity (a trial substream, a shard index)
// and writing into per-identity result slots or commutative integer
// accumulators.  parallel_for below packages that pattern.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pimecc::util {

class TaskGroup;

namespace detail {

class StealDeque;

/// One queued unit of work, owned by its TaskGroup (stable address).
struct Task {
  std::function<void()> fn;
  TaskGroup* group = nullptr;
};

}  // namespace detail

/// Persistent pool of worker threads with per-worker work-stealing deques
/// and a shared injection queue.
class Executor {
 public:
  /// Spawns `workers` threads (0 = hardware concurrency, at least 1).
  explicit Executor(std::size_t workers = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide executor, started lazily on first use and shared by
  /// every fleet/reliability/memory-system entry point.
  [[nodiscard]] static Executor& shared();

  [[nodiscard]] std::size_t worker_count() const noexcept;

  /// worker_count() + 1: the waiting caller helps, so this is the maximum
  /// number of OS threads that can be executing tasks concurrently.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return worker_count() + 1;
  }

 private:
  friend class TaskGroup;

  struct Worker;

  static constexpr std::size_t kNotAWorker = ~std::size_t{0};

  void enqueue(detail::Task* task);
  /// Own-deque pop (workers only), then injection queue, then a steal sweep
  /// over every worker deque; nullptr when nothing was acquired.
  [[nodiscard]] detail::Task* try_acquire(std::size_t self);
  /// Runs one task, routing any exception into its group.
  void run_task(detail::Task* task) noexcept;
  void worker_main(std::size_t index);
  /// This thread's worker index in *this* executor, or kNotAWorker.
  [[nodiscard]] std::size_t self_index() const noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex inject_mutex_;
  std::deque<detail::Task*> inject_;

  // Lost-wakeup-free sleep: enqueue bumps the epoch under idle_mutex_ and
  // notifies; a worker that found nothing re-checks the epoch under the
  // mutex before sleeping.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  bool stop_ = false;  // guarded by idle_mutex_
};

/// A batch of tasks submitted together and waited on as a unit.
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor = Executor::shared());
  /// Waits for any still-pending tasks (exceptions are swallowed -- call
  /// wait() yourself to observe them).
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn`.  Callable from any thread, including from inside a task
  /// of this same group (the nesting the scheduler relies on).
  void submit(std::function<void()> fn);

  /// Helps execute queued work until every submitted task has finished,
  /// then rethrows the first captured exception, if any.  May be called
  /// repeatedly; the group is reusable after wait() returns.
  void wait();

  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class Executor;

  void capture_exception(std::exception_ptr error) noexcept;
  void finish_one() noexcept;

  Executor& executor_;
  std::mutex tasks_mutex_;
  std::deque<detail::Task> tasks_;  // stable addresses; freed with the group
  std::atomic<std::size_t> pending_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

/// Runs `body(i)` for every i in [0, count) across up to `max_lanes` lane
/// tasks (0 = executor parallelism) pulling single indices from a shared
/// atomic ticket counter -- dynamic load balancing with no per-index task
/// allocation, so skewed per-index costs cannot serialize behind a
/// contiguous chunk.  The caller's thread helps.  Deterministic whenever
/// `body(i)` writes only to slot i (or to commutative accumulators); which
/// lane runs which index is intentionally unspecified.  `max_lanes <= 1`
/// (or count <= 1) runs inline on the caller with no executor traffic.
template <typename Body>
void parallel_for(Executor& executor, std::size_t count, std::size_t max_lanes,
                  Body&& body) {
  std::size_t lanes = max_lanes != 0 ? max_lanes : executor.parallelism();
  lanes = std::min(lanes, count);
  if (lanes <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  TaskGroup group(executor);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    group.submit([&next, &body, count] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  group.wait();
}

}  // namespace pimecc::util
