// pimecc -- util/table.hpp
//
// ASCII table rendering for the benchmark harnesses.  Every bench binary
// that reproduces a paper table/figure prints through this, so outputs have
// a consistent, diffable format (and an optional CSV form for plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pimecc::util {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Renders with column alignment, `|` separators, and a rule under the
  /// header.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  [[nodiscard]] std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (general format).
[[nodiscard]] std::string format_sig(double value, int digits = 4);
/// Formats a double in scientific notation with `digits` fractional digits.
[[nodiscard]] std::string format_sci(double value, int digits = 3);
/// Formats a double as a percentage string like "26.2%".
[[nodiscard]] std::string format_pct(double fraction, int digits = 2);

}  // namespace pimecc::util
