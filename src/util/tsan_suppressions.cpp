// pimecc -- util/tsan_suppressions.cpp
//
// Default ThreadSanitizer suppressions, baked into every PIMECC_TSAN
// binary (the file compiles to nothing in other builds, so the src glob
// can include it unconditionally).  Must be linked into the executable
// itself and exported dynamically -- the shared libtsan runtime carries a
// weak default and calls the hook through the dynamic table, so a strong
// definition buried in a static archive is never seen.  src/CMakeLists.txt
// propagates this file as an INTERFACE source of pimecc and the PIMECC_TSAN
// block adds -Wl,--export-dynamic-symbol for it.
//
// signgam: POSIX requires lgamma() to write the global `signgam`, and
// libstdc++'s std::binomial_distribution calls lgamma while initializing
// its parameters -- so two lanes drawing binomials concurrently race on
// that one libm global.  Nothing here ever reads signgam, and forking the
// documented std::binomial_distribution sampling stream (montecarlo.hpp)
// just to call lgamma_r instead would re-pin every seeded test, so the
// race is suppressed at the source instead.
#ifndef __has_feature
#define __has_feature(x) 0
#endif

#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)

extern "C" const char* __tsan_default_suppressions();
extern "C" const char* __tsan_default_suppressions() {
  return "race:signgam\n";
}

#endif
