// pimecc -- simpler/protected_vm.hpp
//
// Executes a mapped single-row program on the full ECC-protected machine:
// the end-to-end composition of SIMPLER and the paper's architecture.
// Inputs are loaded through the protected controller path, the input
// block-rows are checked before execution (Section IV), every init and
// gate runs the critical-operation protocol, and the function executes in
// SIMD across any number of crossbar rows at a single row's cycle count.
//
// The VM's marshalling is word-parallel: per-row input images are built by
// masked word assignment over the resident row (one precomputed
// input+constant mask, no per-node scans), and outputs are peeled one
// column word-walk per primary output.  The same code drives both the
// word-parallel PimMachine and the bit-serial ReferencePimMachine -- the
// two overloads issue an identical protected-operation sequence, so the
// differential harness can pin contents, check state, and cycle counters
// across the full stack.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/pim_machine.hpp"
#include "simpler/mapper.hpp"
#include "simpler/netlist.hpp"
#include "util/bitmatrix.hpp"

namespace pimecc::arch {
// The bit-serial reference stack stays out of this header's include graph;
// only the differential overload's signature needs the type.
class ReferencePimMachine;
}  // namespace pimecc::arch

namespace pimecc::simpler {

/// Outcome of one protected (SIMD) program execution.
struct ProtectedRunResult {
  util::BitMatrix outputs;              ///< one row of PO values per lane
  std::size_t input_check_corrections = 0;  ///< errors repaired before use
  bool ecc_consistent_after = false;
};

/// Runs `program` in every row of `machine` simultaneously with per-row
/// inputs (`inputs` is machine-rows x num_inputs).  The machine's contents
/// outside the program's cells stay ECC-covered throughout.
///
/// `check_inputs_first` runs the paper's before-use check on every block
/// band, repairing any single soft error that accumulated since the data
/// was written.
ProtectedRunResult run_program_protected(arch::PimMachine& machine,
                                         const Netlist& netlist,
                                         const MappedProgram& program,
                                         const util::BitMatrix& inputs,
                                         bool check_inputs_first = true);

/// Identical execution on the bit-serial reference machine (differential
/// tests and benchmarks).
ProtectedRunResult run_program_protected(arch::ReferencePimMachine& machine,
                                         const Netlist& netlist,
                                         const MappedProgram& program,
                                         const util::BitMatrix& inputs,
                                         bool check_inputs_first = true);

}  // namespace pimecc::simpler
