#include "simpler/protected_vm.hpp"

#include <stdexcept>

namespace pimecc::simpler {

ProtectedRunResult run_program_protected(arch::PimMachine& machine,
                                         const Netlist& netlist,
                                         const MappedProgram& program,
                                         const util::BitMatrix& inputs,
                                         bool check_inputs_first) {
  const std::size_t n = machine.n();
  if (program.row_width > n) {
    throw std::invalid_argument(
        "run_program_protected: program wider than the machine row");
  }
  if (inputs.rows() != n || inputs.cols() != program.input_cells.size()) {
    throw std::invalid_argument(
        "run_program_protected: inputs must be machine-rows x num-inputs");
  }

  ProtectedRunResult result;

  // The paper's discipline, applied *before* any protected write touches
  // the array: a soft error overwritten before it is checked would leave a
  // permanently wrong parity (the Section III false-positive race, see
  // bench_false_positive), so every block band is verified first.
  if (check_inputs_first) {
    for (std::size_t band = 0; band < n / machine.m(); ++band) {
      const arch::CheckReport report =
          machine.check_block_row(band * machine.m());
      result.input_check_corrections += report.corrected_data;
      result.input_check_corrections += report.corrected_check;
    }
  }

  // Load inputs and constants through the protected write path (full row
  // images built from the current contents so unrelated columns survive).
  for (std::size_t r = 0; r < n; ++r) {
    util::BitVector image = machine.data().row(r);
    for (std::size_t i = 0; i < program.input_cells.size(); ++i) {
      image.set(program.input_cells[i], inputs.get(r, i));
    }
    // Constants sit right after the inputs (mapper convention).
    CellIndex next_fixed = static_cast<CellIndex>(program.input_cells.size());
    for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
      const NodeType t = netlist.node(id).type;
      if (t == NodeType::kConstZero || t == NodeType::kConstOne) {
        image.set(next_fixed++, t == NodeType::kConstOne);
      }
    }
    machine.write_row_protected(r, image);
  }

  // Execute: every op through the critical-operation protocol, all rows in
  // parallel (empty lane list = SIMD across the full array).
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kInit) {
      std::vector<std::size_t> cols(op.init_cells.begin(), op.init_cells.end());
      machine.magic_init_rows_protected(cols);
    } else {
      std::vector<std::size_t> ins(op.in_cells.begin(), op.in_cells.end());
      machine.magic_nor_rows_protected(ins, op.cell);
    }
  }

  result.outputs = util::BitMatrix(n, program.output_cells.size());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < program.output_cells.size(); ++i) {
      result.outputs.set(r, i, machine.data().get(r, program.output_cells[i]));
    }
  }
  result.ecc_consistent_after = machine.ecc_consistent();
  return result;
}

}  // namespace pimecc::simpler
