#include "simpler/protected_vm.hpp"

#include <stdexcept>

#include "arch/reference_pim_machine.hpp"

namespace pimecc::simpler {

namespace {

template <typename Machine>
ProtectedRunResult run_impl(Machine& machine, const Netlist& netlist,
                            const MappedProgram& program,
                            const util::BitMatrix& inputs,
                            bool check_inputs_first) {
  const std::size_t n = machine.n();
  if (program.row_width > n) {
    throw std::invalid_argument(
        "run_program_protected: program wider than the machine row");
  }
  if (inputs.rows() != n || inputs.cols() != program.input_cells.size()) {
    throw std::invalid_argument(
        "run_program_protected: inputs must be machine-rows x num-inputs");
  }

  ProtectedRunResult result;

  // The paper's discipline, applied *before* any protected write touches
  // the array: a soft error overwritten before it is checked would leave a
  // permanently wrong parity (the Section III false-positive race, see
  // bench_false_positive), so every block band is verified first.
  if (check_inputs_first) {
    for (std::size_t band = 0; band < n / machine.m(); ++band) {
      const arch::CheckReport report =
          machine.check_block_row(band * machine.m());
      result.input_check_corrections += report.corrected_data;
      result.input_check_corrections += report.corrected_check;
    }
  }

  // Load inputs and constants through the protected write path (full row
  // images built from the current contents so unrelated columns survive).
  // The input/constant cell mask and the constant values are fixed across
  // rows (constants sit right after the inputs -- mapper convention), so
  // each row image is one masked word assignment plus one bit scatter of
  // that row's input values.
  util::BitVector fixed_mask(n);
  util::BitVector row_values(n);
  for (const CellIndex cell : program.input_cells) fixed_mask.set(cell, true);
  CellIndex next_fixed = static_cast<CellIndex>(program.input_cells.size());
  for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
    const NodeType t = netlist.node(id).type;
    if (t == NodeType::kConstZero || t == NodeType::kConstOne) {
      fixed_mask.set(next_fixed, true);
      row_values.set(next_fixed, t == NodeType::kConstOne);
      ++next_fixed;
    }
  }
  util::BitVector image(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < program.input_cells.size(); ++i) {
      row_values.set(program.input_cells[i], inputs.get(r, i));
    }
    image = machine.data().row(r);
    image.assign_masked(row_values, fixed_mask);
    machine.write_row_protected(r, image);
  }

  // Execute: every op through the critical-operation protocol, all rows in
  // parallel (empty lane list = SIMD across the full array).
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kInit) {
      std::vector<std::size_t> cols(op.init_cells.begin(), op.init_cells.end());
      machine.magic_init_rows_protected(cols);
    } else {
      std::vector<std::size_t> ins(op.in_cells.begin(), op.in_cells.end());
      machine.magic_nor_rows_protected(ins, op.cell);
    }
  }

  result.outputs = util::BitMatrix(n, program.output_cells.size());
  util::BitVector column(n);
  for (std::size_t i = 0; i < program.output_cells.size(); ++i) {
    machine.data().column_into(program.output_cells[i], column);
    result.outputs.set_column(i, column);
  }
  result.ecc_consistent_after = machine.ecc_consistent();
  return result;
}

}  // namespace

ProtectedRunResult run_program_protected(arch::PimMachine& machine,
                                         const Netlist& netlist,
                                         const MappedProgram& program,
                                         const util::BitMatrix& inputs,
                                         bool check_inputs_first) {
  return run_impl(machine, netlist, program, inputs, check_inputs_first);
}

ProtectedRunResult run_program_protected(arch::ReferencePimMachine& machine,
                                         const Netlist& netlist,
                                         const MappedProgram& program,
                                         const util::BitMatrix& inputs,
                                         bool check_inputs_first) {
  return run_impl(machine, netlist, program, inputs, check_inputs_first);
}

}  // namespace pimecc::simpler
