#include "simpler/logic.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimecc::simpler {

LogicBuilder::LogicBuilder(Netlist& netlist, std::size_t max_fanin)
    : netlist_(netlist), max_fanin_(max_fanin) {
  if (max_fanin < 2) {
    throw std::invalid_argument("LogicBuilder: max_fanin must be >= 2");
  }
}

Bus LogicBuilder::input_bus(std::size_t width) {
  Bus bus(width);
  for (auto& bit : bus) bit = input();
  return bus;
}

NodeId LogicBuilder::constant(bool value) {
  if (!have_consts_) {
    const_zero_ = netlist_.add_const(false);
    const_one_ = netlist_.add_const(true);
    have_consts_ = true;
  }
  return value ? const_one_ : const_zero_;
}

void LogicBuilder::output_bus(const Bus& bus) {
  for (const NodeId bit : bus) output(bit);
}

NodeId LogicBuilder::nor_gate(std::span<const NodeId> ins) {
  if (ins.empty()) {
    throw std::invalid_argument("LogicBuilder::nor_gate: empty input list");
  }
  if (ins.size() <= max_fanin_) return netlist_.add_nor(ins);
  // NOR(wide) = NOT(OR(wide)): build the OR as a tree, invert once.
  return not_gate(or_gate(ins));
}

NodeId LogicBuilder::not_gate(NodeId a) { return netlist_.add_nor({a}); }

NodeId LogicBuilder::or_gate(std::span<const NodeId> ins) {
  if (ins.empty()) {
    throw std::invalid_argument("LogicBuilder::or_gate: empty input list");
  }
  if (ins.size() == 1) return not_gate(not_gate(ins[0]));
  if (ins.size() <= max_fanin_) return not_gate(netlist_.add_nor(ins));
  // Tree reduction: fold chunks of max_fanin_ into NORs, invert, recurse.
  std::vector<NodeId> level(ins.begin(), ins.end());
  while (level.size() > max_fanin_) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < level.size(); i += max_fanin_) {
      const std::size_t take = std::min(max_fanin_, level.size() - i);
      if (take == 1) {
        next.push_back(level[i]);
      } else {
        next.push_back(not_gate(netlist_.add_nor(
            std::span<const NodeId>(level.data() + i, take))));
      }
    }
    level = std::move(next);
  }
  return not_gate(netlist_.add_nor(std::span<const NodeId>(level)));
}

NodeId LogicBuilder::and_gate(std::span<const NodeId> ins) {
  // AND(x...) = NOR(x'...).
  std::vector<NodeId> inverted;
  inverted.reserve(ins.size());
  for (const NodeId x : ins) inverted.push_back(not_gate(x));
  return nor_gate(std::span<const NodeId>(inverted));
}

NodeId LogicBuilder::nand_gate(std::span<const NodeId> ins) {
  return not_gate(and_gate(ins));
}

NodeId LogicBuilder::xnor2(NodeId a, NodeId b) {
  const NodeId n1 = nor2(a, b);
  const NodeId n2 = nor2(a, n1);
  const NodeId n3 = nor2(b, n1);
  return nor2(n2, n3);
}

NodeId LogicBuilder::mux(NodeId sel, NodeId lo, NodeId hi) {
  // sel ? hi : lo = NOR(NOR(hi, sel'), NOR(lo, sel))'.
  const NodeId nsel = not_gate(sel);
  const NodeId hi_term = nor2(hi, nsel);  // (hi + sel')' = hi' sel ... selects hi
  const NodeId lo_term = nor2(lo, sel);
  return nor2(hi_term, lo_term);
}

Bus LogicBuilder::mux_bus(NodeId sel, const Bus& lo, const Bus& hi) {
  if (lo.size() != hi.size()) {
    throw std::invalid_argument("LogicBuilder::mux_bus: width mismatch");
  }
  const NodeId nsel = not_gate(sel);
  Bus out(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) {
    out[i] = nor2(nor2(hi[i], nsel), nor2(lo[i], sel));
  }
  return out;
}

NodeId LogicBuilder::majority3(NodeId a, NodeId b, NodeId c) {
  // maj = ((a+b)(a+c)(b+c)) = NOR(NOR(a,b), NOR(a,c), NOR(b,c)).
  const NodeId ab = nor2(a, b);
  const NodeId ac = nor2(a, c);
  const NodeId bc = nor2(b, c);
  return netlist_.add_nor({ab, ac, bc});
}

AddResult LogicBuilder::full_adder(NodeId a, NodeId b, NodeId cin) {
  AddResult r;
  r.sum = {xor3(a, b, cin)};
  r.carry_out = majority3(a, b, cin);
  return r;
}

AddResult LogicBuilder::ripple_add(const Bus& a, const Bus& b, NodeId carry_in) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("LogicBuilder::ripple_add: width mismatch");
  }
  AddResult out;
  out.sum.resize(a.size());
  NodeId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.sum[i] = xor3(a[i], b[i], carry);
    carry = majority3(a[i], b[i], carry);
  }
  out.carry_out = carry;
  return out;
}

AddResult LogicBuilder::ripple_sub(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("LogicBuilder::ripple_sub: width mismatch");
  }
  // a - b = a + ~b + 1; borrow_out = NOT(carry_out).
  AddResult out;
  out.sum.resize(a.size());
  NodeId carry = constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NodeId nb = not_gate(b[i]);
    out.sum[i] = xor3(a[i], nb, carry);
    carry = majority3(a[i], nb, carry);
  }
  out.carry_out = not_gate(carry);  // borrow: 1 iff a < b
  return out;
}

NodeId LogicBuilder::greater_equal(const Bus& a, const Bus& b) {
  return not_gate(ripple_sub(a, b).carry_out);
}

NodeId LogicBuilder::equal(const Bus& a, const Bus& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("LogicBuilder::equal: width mismatch");
  }
  std::vector<NodeId> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diffs.push_back(not_gate(xnor2(a[i], b[i])));  // 1 iff bits differ
  }
  return nor_gate(std::span<const NodeId>(diffs));  // 1 iff no bit differs
}

Bus LogicBuilder::popcount(const std::vector<NodeId>& bits) {
  if (bits.empty()) return {constant(false)};
  // Carry-save reduction: compress triples of equal-weight bits with full
  // adders until each weight holds at most one bit.  Higher weights are
  // compressed as soon as they accumulate three bits (before returning to
  // weight 0) so that carry values are consumed promptly -- this keeps the
  // number of simultaneously-live values bounded, which the single-row
  // mapper depends on for wide inputs like the 1001-bit voter.
  std::vector<std::vector<NodeId>> columns(1, bits);
  auto compress_step = [&]() -> bool {
    for (std::size_t w = columns.size(); w-- > 0;) {
      if (columns[w].size() >= 3) {
        // FIFO: consume the oldest three bits of this weight.
        const NodeId a = columns[w][0];
        const NodeId b = columns[w][1];
        const NodeId c = columns[w][2];
        columns[w].erase(columns[w].begin(), columns[w].begin() + 3);
        columns[w].push_back(xor3(a, b, c));
        if (w + 1 == columns.size()) columns.emplace_back();
        columns[w + 1].push_back(majority3(a, b, c));
        return true;
      }
    }
    for (std::size_t w = columns.size(); w-- > 0;) {
      if (columns[w].size() == 2) {
        const NodeId a = columns[w][0];
        const NodeId b = columns[w][1];
        columns[w].clear();
        columns[w].push_back(not_gate(xnor2(a, b)));  // half-adder sum
        if (w + 1 == columns.size()) columns.emplace_back();
        columns[w + 1].push_back(and2(a, b));  // half-adder carry
        return true;
      }
    }
    return false;
  };
  while (compress_step()) {
  }
  Bus out(columns.size());
  for (std::size_t w = 0; w < columns.size(); ++w) {
    out[w] = columns[w].empty() ? constant(false) : columns[w].front();
  }
  return out;
}

Bus LogicBuilder::multiply(const Bus& a, const Bus& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("LogicBuilder::multiply: empty operand");
  }
  const std::size_t width = a.size() + b.size();
  Bus acc = constant_bus(width, 0);
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Partial product (a << j) AND b[j], added into the accumulator.
    Bus partial = constant_bus(width, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
      partial[i + j] = and2(a[i], b[j]);
    }
    acc = ripple_add(acc, partial, constant(false)).sum;
  }
  return acc;
}

Bus LogicBuilder::constant_bus(std::size_t width, std::uint64_t value) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = constant(i < 64 && ((value >> i) & 1u));
  }
  return bus;
}

}  // namespace pimecc::simpler
