// pimecc -- simpler/row_vm.hpp
//
// Executes a MappedProgram on an actual crossbar with genuine MAGIC
// semantics -- the bridge between the mapper's schedule and the simulated
// hardware.  Two modes:
//
//   * single-row: the program runs in one chosen row (SIMPLER's execution
//     model; used to validate mapper correctness against Netlist::eval).
//   * SIMD: the same op sequence executes in every row simultaneously with
//     per-row inputs -- MAGIC's throughput story (paper Figure 1), at the
//     same cycle count as a single row.
#pragma once

#include <cstddef>

#include "simpler/mapper.hpp"
#include "simpler/netlist.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc::simpler {

/// Result of a single-row execution.
struct RowRunResult {
  util::BitVector outputs;
  std::uint64_t cycles = 0;       ///< crossbar cycles consumed by the program
  std::uint64_t violations = 0;   ///< MAGIC precondition violations (must be 0)
};

/// Runs `program` in row `row` of `xbar`; inputs indexed like
/// netlist.inputs().  The crossbar must be at least row_width wide.
RowRunResult run_single_row(const Netlist& netlist, const MappedProgram& program,
                            xbar::Crossbar& xbar, std::size_t row,
                            const util::BitVector& inputs);

/// SIMD execution: row r of `inputs` feeds row r of the crossbar; returns
/// one output row per crossbar row.  Cycle count equals the single-row
/// count -- this is the parallelism the ECC mechanism must keep up with.
struct SimdRunResult {
  util::BitMatrix outputs;  ///< rows x num_outputs
  std::uint64_t cycles = 0;
  std::uint64_t violations = 0;
};
SimdRunResult run_simd(const Netlist& netlist, const MappedProgram& program,
                       xbar::Crossbar& xbar, const util::BitMatrix& inputs);

}  // namespace pimecc::simpler
