#include "simpler/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimecc::simpler {

NodeId Netlist::add_input() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({NodeType::kInput, {}});
  is_output_.push_back(false);
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_nor(std::span<const NodeId> fanins) {
  if (fanins.empty()) {
    throw std::invalid_argument("Netlist::add_nor: NOR needs at least one fanin");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (const NodeId f : fanins) {
    if (f >= id) {
      throw std::invalid_argument("Netlist::add_nor: fanin references unknown node");
    }
  }
  nodes_.push_back({NodeType::kNor, {fanins.begin(), fanins.end()}});
  is_output_.push_back(false);
  ++gate_count_;
  return id;
}

NodeId Netlist::add_const(bool value) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({value ? NodeType::kConstOne : NodeType::kConstZero, {}});
  is_output_.push_back(false);
  return id;
}

void Netlist::mark_output(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Netlist::mark_output: unknown node");
  }
  // A node may drive several output pins (e.g. shared constants feeding a
  // constant bus); each mark adds one pin.
  is_output_[id] = true;
  outputs_.push_back(id);
}

std::size_t Netlist::max_fanin() const noexcept {
  std::size_t widest = 0;
  for (const Node& node : nodes_) widest = std::max(widest, node.fanins.size());
  return widest;
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> counts(nodes_.size(), 0);
  for (const Node& node : nodes_) {
    for (const NodeId f : node.fanins) ++counts[f];
  }
  for (const NodeId out : outputs_) ++counts[out];
  return counts;
}

std::vector<bool> Netlist::eval_all(const util::BitVector& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("Netlist::eval: wrong number of input values");
  }
  std::vector<bool> value(nodes_.size(), false);
  std::size_t next_input = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    switch (node.type) {
      case NodeType::kInput:
        value[id] = input_values.get(next_input++);
        break;
      case NodeType::kConstZero:
        value[id] = false;
        break;
      case NodeType::kConstOne:
        value[id] = true;
        break;
      case NodeType::kNor: {
        bool any = false;
        for (const NodeId f : node.fanins) any = any || value[f];
        value[id] = !any;
        break;
      }
    }
  }
  return value;
}

util::BitVector Netlist::eval(const util::BitVector& input_values) const {
  const std::vector<bool> value = eval_all(input_values);
  util::BitVector out(outputs_.size());
  for (std::size_t i = 0; i < outputs_.size(); ++i) out.set(i, value[outputs_[i]]);
  return out;
}

}  // namespace pimecc::simpler
