#include "simpler/row_vm.hpp"

#include <stdexcept>

namespace pimecc::simpler {

namespace {

void require_fits(const MappedProgram& program, const xbar::Crossbar& xbar) {
  if (xbar.cols() < program.row_width) {
    throw std::invalid_argument("row_vm: crossbar narrower than the mapped row");
  }
}

void place_constants(const Netlist& netlist, const MappedProgram& program,
                     xbar::Crossbar& xbar, std::size_t row) {
  // Constants were pre-placed right after the inputs by the mapper.
  CellIndex next_fixed = static_cast<CellIndex>(program.input_cells.size());
  for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
    const NodeType t = netlist.node(id).type;
    if (t == NodeType::kConstZero || t == NodeType::kConstOne) {
      xbar.poke(row, next_fixed++, t == NodeType::kConstOne);
    }
  }
}

std::uint64_t execute_ops(const MappedProgram& program, xbar::Crossbar& xbar,
                          std::span<const std::size_t> lanes) {
  std::uint64_t violations = 0;
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kInit) {
      std::vector<std::size_t> lines(op.init_cells.begin(), op.init_cells.end());
      xbar.magic_init(xbar::Orientation::kRow, lines, lanes);
    } else {
      std::vector<std::size_t> ins(op.in_cells.begin(), op.in_cells.end());
      const xbar::OpResult r =
          xbar.magic_nor(xbar::Orientation::kRow, ins, op.cell, lanes);
      violations += r.violations;
    }
  }
  return violations;
}

}  // namespace

RowRunResult run_single_row(const Netlist& netlist, const MappedProgram& program,
                            xbar::Crossbar& xbar, std::size_t row,
                            const util::BitVector& inputs) {
  require_fits(program, xbar);
  if (inputs.size() != program.input_cells.size()) {
    throw std::invalid_argument("run_single_row: wrong number of inputs");
  }
  const std::uint64_t start_cycles = xbar.cycles();
  for (std::size_t i = 0; i < program.input_cells.size(); ++i) {
    xbar.poke(row, program.input_cells[i], inputs.get(i));
  }
  place_constants(netlist, program, xbar, row);

  const std::size_t lanes_arr[1] = {row};
  RowRunResult result;
  result.violations = execute_ops(program, xbar, lanes_arr);
  result.outputs.resize(program.output_cells.size());
  for (std::size_t i = 0; i < program.output_cells.size(); ++i) {
    result.outputs.set(i, xbar.peek(row, program.output_cells[i]));
  }
  result.cycles = xbar.cycles() - start_cycles;
  return result;
}

SimdRunResult run_simd(const Netlist& netlist, const MappedProgram& program,
                       xbar::Crossbar& xbar, const util::BitMatrix& inputs) {
  require_fits(program, xbar);
  if (inputs.rows() != xbar.rows() ||
      inputs.cols() != program.input_cells.size()) {
    throw std::invalid_argument("run_simd: inputs must be rows x num_inputs");
  }
  const std::uint64_t start_cycles = xbar.cycles();
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    for (std::size_t i = 0; i < program.input_cells.size(); ++i) {
      xbar.poke(r, program.input_cells[i], inputs.get(r, i));
    }
    place_constants(netlist, program, xbar, r);
  }

  SimdRunResult result;
  result.violations = execute_ops(program, xbar, {});
  result.outputs = util::BitMatrix(xbar.rows(), program.output_cells.size());
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    for (std::size_t i = 0; i < program.output_cells.size(); ++i) {
      result.outputs.set(r, i, xbar.peek(r, program.output_cells[i]));
    }
  }
  result.cycles = xbar.cycles() - start_cycles;
  return result;
}

}  // namespace pimecc::simpler
