// pimecc -- simpler/mapper.hpp
//
// SIMPLER-style mapping of a NOR netlist onto a single crossbar row
// (Ben-Hur et al., "SIMPLER MAGIC", IEEE TCAD 2020 -- reimplemented; see
// DESIGN.md substitution #4).
//
// The mapper chooses an evaluation order by the cell-usage (CU) heuristic
// (a Sethi-Ullman-style register-need estimate), then simulates execution
// in a row of W cells: each gate writes one cell; a cell whose value has no
// remaining consumers is recycled, but must be re-initialized to LRS before
// reuse.  Any number of cells in the row can be initialized in one cycle,
// so initializations are batched: when the free pool runs dry, one init
// cycle converts every recyclable cell into a usable one.
//
//   baseline cycles = #gates + #init cycles
//
// which is the quantity the paper's Table I "Baseline" column reports.
#pragma once

#include <cstdint>
#include <vector>

#include "simpler/netlist.hpp"

namespace pimecc::simpler {

using CellIndex = std::uint32_t;

/// One mapped operation.
struct MappedOp {
  enum class Kind : std::uint8_t {
    kGate,  ///< one MAGIC NOR executing `node` into `cell`
    kInit,  ///< one batched initialization cycle of `init_cells`
  };
  Kind kind = Kind::kGate;

  // kGate fields.
  NodeId node = 0;
  CellIndex cell = 0;
  std::vector<CellIndex> in_cells;
  bool writes_output = false;  ///< node is a primary output

  // kInit fields.
  std::vector<CellIndex> init_cells;
  /// Cells in init_cells that currently hold ECC-covered values (function
  /// inputs being recycled); the ECC scheduler must cancel their parity
  /// contribution before this init destroys them.
  std::vector<CellIndex> covered_cells;
};

/// Result of mapping one netlist.
struct MappedProgram {
  std::vector<MappedOp> ops;
  std::size_t row_width = 0;
  std::vector<CellIndex> input_cells;   ///< cell of each primary input
  std::vector<CellIndex> output_cells;  ///< final cell of each primary output
  std::uint64_t gate_cycles = 0;
  std::uint64_t init_cycles = 0;
  std::size_t peak_cells_used = 0;

  /// Paper Table I "Baseline": gates + inits.
  [[nodiscard]] std::uint64_t baseline_cycles() const noexcept {
    return gate_cycles + init_cycles;
  }
};

/// Mapping knobs.
struct MapperOptions {
  std::size_t row_width = 1020;  ///< W (the paper's n)
  /// Reserve the first num_inputs cells for inputs (they are ECC-covered
  /// data already resident in the row).
  bool allow_input_recycling = true;
};

/// Maps `netlist` onto a single row.  Throws std::runtime_error if the
/// netlist cannot fit (live values exceed the row width).
[[nodiscard]] MappedProgram map_to_row(const Netlist& netlist,
                                       const MapperOptions& options);

/// Computes the CU (cell usage) value of every node: CU(input) = 1,
/// CU(gate) = max_i(CU(child_i) + i) over children sorted by CU descending
/// (i zero-based).  Exposed for tests.
[[nodiscard]] std::vector<std::uint32_t> compute_cell_usage(const Netlist& netlist);

}  // namespace pimecc::simpler
