// pimecc -- simpler/ecc_schedule.hpp
//
// The paper's extension of SIMPLER (Section V-B): takes a mapped single-row
// program and schedules the additional operations the proposed architecture
// requires -- checking the ECC of the function inputs before execution, and
// continuously updating check bits for every write to ECC-covered cells --
// through a greedy pass that respects MEM / processing-crossbar /
// connection-unit availability, adding stall cycles when a resource is
// busy.  Reports baseline vs proposed cycle counts (Table I).
#pragma once

#include <cstdint>

#include "arch/params.hpp"
#include "arch/scheduler.hpp"
#include "simpler/mapper.hpp"

namespace pimecc::simpler {

/// Which resident values the ECC must maintain during function execution.
/// The paper covers function inputs (checked before use) and function
/// outputs (updated after writes); intermediates are explicitly future work.
enum class CoveragePolicy : unsigned char {
  kOutputsOnly,       ///< only primary-output writes are critical
  kInputsAndOutputs,  ///< + recycled input cells need a cancel update
};

/// Outcome of ECC scheduling for one benchmark.
struct EccScheduleResult {
  std::uint64_t baseline_cycles = 0;
  std::uint64_t proposed_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t critical_ops = 0;
  std::uint64_t cancel_ops = 0;
  arch::ScheduleStats stats;

  [[nodiscard]] double overhead_fraction() const noexcept {
    if (baseline_cycles == 0) return 0.0;
    return static_cast<double>(proposed_cycles) /
               static_cast<double>(baseline_cycles) -
           1.0;
  }
};

/// Schedules `program` under the proposed architecture `params`.  When
/// `events` is non-null, every resource reservation is appended to it (the
/// cycle-by-cycle trace behind `pimecc_map --timeline`).
[[nodiscard]] EccScheduleResult schedule_with_ecc(
    const MappedProgram& program, const arch::ArchParams& params,
    CoveragePolicy policy, std::vector<arch::ScheduledEvent>* events = nullptr);

/// The Table I "PC (#)" column: the smallest number of processing crossbars
/// (1..8) for which the schedule is as fast as with unlimited PCs.
[[nodiscard]] std::size_t find_min_pcs(const MappedProgram& program,
                                       const arch::ArchParams& params,
                                       CoveragePolicy policy);

}  // namespace pimecc::simpler
