// pimecc -- simpler/logic.hpp
//
// Gate-library builder over the NOR-only netlist IR: the synthesis
// front-end used by the EPFL-like benchmark generators.  Every helper
// decomposes to MAGIC-executable NOR gates; fan-in above the configured cap
// is decomposed into trees.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "simpler/netlist.hpp"

namespace pimecc::simpler {

/// Multi-bit signal: bit 0 is the least significant bit.
using Bus = std::vector<NodeId>;

/// Sum/carry pair returned by adders.
struct AddResult {
  Bus sum;
  NodeId carry_out;
};

/// NOR-level logic builder.
class LogicBuilder {
 public:
  /// `max_fanin` caps NOR width; wider ORs/ANDs become gate trees.
  explicit LogicBuilder(Netlist& netlist, std::size_t max_fanin = 4);

  [[nodiscard]] Netlist& netlist() noexcept { return netlist_; }

  // --- primitives -----------------------------------------------------------
  NodeId input() { return netlist_.add_input(); }
  Bus input_bus(std::size_t width);
  NodeId constant(bool value);
  void output(NodeId id) { netlist_.mark_output(id); }
  void output_bus(const Bus& bus);

  NodeId nor_gate(std::span<const NodeId> ins);
  NodeId not_gate(NodeId a);
  NodeId or_gate(std::span<const NodeId> ins);
  NodeId and_gate(std::span<const NodeId> ins);
  NodeId nand_gate(std::span<const NodeId> ins);

  NodeId nor2(NodeId a, NodeId b) { return nor_gate(pair(a, b)); }
  NodeId or2(NodeId a, NodeId b) { return or_gate(pair(a, b)); }
  NodeId and2(NodeId a, NodeId b) { return and_gate(pair(a, b)); }
  NodeId nand2(NodeId a, NodeId b) { return nand_gate(pair(a, b)); }

  /// XNOR via the canonical 4-NOR structure (same dataflow as the CMEM's
  /// processing crossbars).
  NodeId xnor2(NodeId a, NodeId b);
  NodeId xor2(NodeId a, NodeId b) { return not_gate(xnor2(a, b)); }
  /// XOR3 = XNOR(XNOR(a,b),c): exactly 8 NORs.
  NodeId xor3(NodeId a, NodeId b, NodeId c) { return xnor2(xnor2(a, b), c); }

  /// 2:1 multiplexer: sel ? hi : lo.
  NodeId mux(NodeId sel, NodeId lo, NodeId hi);
  /// Bitwise mux over equal-width buses.
  Bus mux_bus(NodeId sel, const Bus& lo, const Bus& hi);

  /// Majority of three (carry function): 4 NORs.
  NodeId majority3(NodeId a, NodeId b, NodeId c);

  // --- arithmetic ------------------------------------------------------------
  /// Full adder: sum = a^b^cin (XOR3), carry = maj3.
  AddResult full_adder(NodeId a, NodeId b, NodeId cin);
  /// Ripple-carry addition of equal-width buses.
  AddResult ripple_add(const Bus& a, const Bus& b, NodeId carry_in);
  /// a - b borrow-ripple; returns difference and borrow_out (1 iff a < b).
  AddResult ripple_sub(const Bus& a, const Bus& b);
  /// Unsigned comparison a >= b (via subtract-borrow).
  NodeId greater_equal(const Bus& a, const Bus& b);
  /// Equality over buses.
  NodeId equal(const Bus& a, const Bus& b);
  /// Popcount: adds `bits.size()` single bits into a ceil(log2)+1-wide bus
  /// using a full-adder reduction tree (the voter's substrate).
  Bus popcount(const std::vector<NodeId>& bits);
  /// Unsigned multiply (shift-and-add array), result width = wa + wb.
  Bus multiply(const Bus& a, const Bus& b);

  /// Constant bus of `width` from the low bits of `value`.
  Bus constant_bus(std::size_t width, std::uint64_t value);

 private:
  [[nodiscard]] std::span<const NodeId> pair(NodeId a, NodeId b) {
    pair_[0] = a;
    pair_[1] = b;
    return {pair_.data(), 2};
  }

  Netlist& netlist_;
  std::size_t max_fanin_;
  std::vector<NodeId> pair_ = {0, 0};
  NodeId const_zero_ = 0;
  NodeId const_one_ = 0;
  bool have_consts_ = false;
};

}  // namespace pimecc::simpler
