#include "simpler/mapper.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimecc::simpler {

std::vector<std::uint32_t> compute_cell_usage(const Netlist& netlist) {
  std::vector<std::uint32_t> cu(netlist.num_nodes(), 0);
  for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
    const Node& node = netlist.node(id);
    if (node.type != NodeType::kNor) {
      cu[id] = 1;
      continue;
    }
    std::vector<std::uint32_t> child_cu;
    child_cu.reserve(node.fanins.size());
    for (const NodeId f : node.fanins) child_cu.push_back(cu[f]);
    std::sort(child_cu.begin(), child_cu.end(), std::greater<>());
    std::uint32_t need = 1;
    for (std::size_t i = 0; i < child_cu.size(); ++i) {
      need = std::max(need, child_cu[i] + static_cast<std::uint32_t>(i));
    }
    cu[id] = need;
  }
  return cu;
}

namespace {

/// Post-order over the gate DAG, children visited in descending-CU order
/// (the Sethi-Ullman evaluation order SIMPLER derives its schedule from).
std::vector<NodeId> evaluation_order(const Netlist& netlist,
                                     const std::vector<std::uint32_t>& cu) {
  enum : std::uint8_t { kUnvisited = 0, kInProgress = 1, kDone = 2 };
  std::vector<std::uint8_t> state(netlist.num_nodes(), kUnvisited);
  std::vector<NodeId> order;
  order.reserve(netlist.num_gates());

  // Visit outputs in descending CU so deep cones evaluate first.
  std::vector<NodeId> roots = netlist.outputs();
  std::stable_sort(roots.begin(), roots.end(),
                   [&](NodeId a, NodeId b) { return cu[a] > cu[b]; });

  std::vector<NodeId> stack;
  for (const NodeId root : roots) {
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      if (state[v] == kDone) {
        stack.pop_back();
        continue;
      }
      if (state[v] == kInProgress) {
        state[v] = kDone;
        if (netlist.node(v).type == NodeType::kNor) order.push_back(v);
        stack.pop_back();
        continue;
      }
      state[v] = kInProgress;
      // Push children in ascending CU so the highest-CU child is expanded
      // first (it ends nearest the top of the stack).
      std::vector<NodeId> kids = netlist.node(v).fanins;
      std::stable_sort(kids.begin(), kids.end(),
                       [&](NodeId a, NodeId b) { return cu[a] < cu[b]; });
      for (const NodeId k : kids) {
        if (state[k] == kUnvisited) stack.push_back(k);
      }
    }
  }
  return order;
}

}  // namespace

namespace {

/// Allocation simulation over one candidate evaluation order; throws
/// std::runtime_error on row overflow.
MappedProgram allocate_row(const Netlist& netlist, const MapperOptions& options,
                           const std::vector<NodeId>& order) {
  // Fanout over *live* consumers only: gates unreachable from any output
  // are never executed (dead logic), so edges into them must not pin their
  // operand cells.  `order` is exactly the reachable gate set.
  std::vector<std::uint32_t> fanout(netlist.num_nodes(), 0);
  for (const NodeId gate : order) {
    for (const NodeId f : netlist.node(gate).fanins) ++fanout[f];
  }
  for (const NodeId out : netlist.outputs()) ++fanout[out];

  constexpr CellIndex kNoCell = ~CellIndex{0};
  std::vector<CellIndex> cell_of(netlist.num_nodes(), kNoCell);
  std::vector<bool> is_output(netlist.num_nodes(), false);
  for (const NodeId out : netlist.outputs()) is_output[out] = true;

  MappedProgram program;
  program.row_width = options.row_width;

  // Pre-place inputs and constants at the start of the row.
  CellIndex next_fixed = 0;
  for (const NodeId in : netlist.inputs()) {
    cell_of[in] = next_fixed++;
    program.input_cells.push_back(cell_of[in]);
  }
  std::vector<bool> covered_cell(options.row_width, false);
  for (const CellIndex c : program.input_cells) covered_cell[c] = true;
  for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
    const NodeType t = netlist.node(id).type;
    if (t == NodeType::kConstZero || t == NodeType::kConstOne) {
      cell_of[id] = next_fixed++;
    }
  }
  if (next_fixed > options.row_width) {
    throw std::runtime_error("map_to_row: inputs do not fit in the row");
  }

  // All remaining cells are batch-initialized once up front.
  std::vector<CellIndex> ready;
  for (CellIndex c = next_fixed; c < options.row_width; ++c) ready.push_back(c);
  // Allocate from the low end first (ready acts as a stack; reverse so the
  // lowest cells pop first -- purely cosmetic determinism).
  std::reverse(ready.begin(), ready.end());
  {
    MappedOp init;
    init.kind = MappedOp::Kind::kInit;
    init.init_cells.assign(ready.rbegin(), ready.rend());
    program.ops.push_back(std::move(init));
    ++program.init_cycles;
  }

  std::vector<CellIndex> dirty;
  std::vector<CellIndex> dirty_covered;  // subset of dirty holding input data
  std::size_t live = next_fixed;
  program.peak_cells_used = live;

  for (const NodeId gate : order) {
    const Node& node = netlist.node(gate);
    // Acquire an initialized cell, batching a re-init cycle if needed.
    if (ready.empty()) {
      if (dirty.empty()) {
        throw std::runtime_error(
            "map_to_row: row width exceeded (netlist " + netlist.name() +
            ", live values " + std::to_string(live) + " of " +
            std::to_string(options.row_width) + " cells)");
      }
      MappedOp init;
      init.kind = MappedOp::Kind::kInit;
      init.init_cells = dirty;
      init.covered_cells = dirty_covered;
      for (const CellIndex c : dirty_covered) covered_cell[c] = false;
      program.ops.push_back(std::move(init));
      ++program.init_cycles;
      ready.assign(dirty.rbegin(), dirty.rend());
      dirty.clear();
      dirty_covered.clear();
    }
    const CellIndex out_cell = ready.back();
    ready.pop_back();
    ++live;
    program.peak_cells_used = std::max(program.peak_cells_used, live);

    MappedOp op;
    op.kind = MappedOp::Kind::kGate;
    op.node = gate;
    op.cell = out_cell;
    op.writes_output = is_output[gate];
    op.in_cells.reserve(node.fanins.size());
    for (const NodeId f : node.fanins) {
      if (cell_of[f] == kNoCell) {
        throw std::logic_error("map_to_row: fanin not resident (order bug)");
      }
      op.in_cells.push_back(cell_of[f]);
    }
    cell_of[gate] = out_cell;
    program.ops.push_back(std::move(op));
    ++program.gate_cycles;

    // Release fanins whose last consumer this was.
    for (const NodeId f : node.fanins) {
      if (--fanout[f] == 0) {
        const bool is_input_cell = netlist.node(f).type == NodeType::kInput;
        if (is_input_cell && !options.allow_input_recycling) continue;
        // Outputs were given an extra pin in fanout_counts(), so they can
        // never reach zero here.
        dirty.push_back(cell_of[f]);
        if (is_input_cell && covered_cell[cell_of[f]]) {
          dirty_covered.push_back(cell_of[f]);
        }
        cell_of[f] = kNoCell;
        --live;
      }
    }
  }

  for (const NodeId out : netlist.outputs()) {
    if (cell_of[out] == kNoCell) {
      throw std::logic_error("map_to_row: output not resident at end");
    }
    program.output_cells.push_back(cell_of[out]);
  }
  return program;
}

}  // namespace

MappedProgram map_to_row(const Netlist& netlist, const MapperOptions& options) {
  const std::vector<std::uint32_t> cu = compute_cell_usage(netlist);
  // Primary order: Sethi-Ullman-style CU-driven DFS (SIMPLER's heuristic).
  try {
    return allocate_row(netlist, options, evaluation_order(netlist, cu));
  } catch (const std::runtime_error&) {
    // Fall through to the construction-order schedule.
  }
  // Fallback: reachable gates in id (construction/topological) order.  For
  // wide-input reduction netlists (e.g. the 1001-bit voter) the
  // output-driven DFS parks every cross-cone value (all the carry bits)
  // while it chases one output cone; construction order interleaves the
  // cones and keeps liveness bounded.
  std::vector<bool> reachable(netlist.num_nodes(), false);
  {
    std::vector<NodeId> stack = netlist.outputs();
    for (const NodeId out : stack) reachable[out] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId f : netlist.node(v).fanins) {
        if (!reachable[f]) {
          reachable[f] = true;
          stack.push_back(f);
        }
      }
    }
  }
  std::vector<NodeId> id_order;
  id_order.reserve(netlist.num_gates());
  for (NodeId id = 0; id < netlist.num_nodes(); ++id) {
    if (reachable[id] && netlist.node(id).type == NodeType::kNor) {
      id_order.push_back(id);
    }
  }
  return allocate_row(netlist, options, id_order);
}

}  // namespace pimecc::simpler
