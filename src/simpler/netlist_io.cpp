#include "simpler/netlist_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pimecc::simpler {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("netlist parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

void write_netlist(std::ostream& os, const Netlist& netlist) {
  os << ".model " << netlist.name() << '\n';
  // Inputs forming a dense prefix are batched; stragglers (inputs added
  // after gates) are emitted individually.
  NodeId prefix = 0;
  while (prefix < netlist.num_nodes() &&
         netlist.node(prefix).type == NodeType::kInput) {
    ++prefix;
  }
  os << ".inputs " << prefix << '\n';
  for (NodeId id = prefix; id < netlist.num_nodes(); ++id) {
    const Node& node = netlist.node(id);
    switch (node.type) {
      case NodeType::kInput:
        os << ".input " << id << '\n';
        break;
      case NodeType::kConstZero:
        os << ".const0 " << id << '\n';
        break;
      case NodeType::kConstOne:
        os << ".const1 " << id << '\n';
        break;
      case NodeType::kNor:
        os << ".nor " << id;
        for (const NodeId f : node.fanins) os << ' ' << f;
        os << '\n';
        break;
    }
  }
  os << ".outputs";
  for (const NodeId out : netlist.outputs()) os << ' ' << out;
  os << '\n';
  os << ".end\n";
}

std::string write_netlist_text(const Netlist& netlist) {
  std::ostringstream os;
  write_netlist(os, netlist);
  return os.str();
}

Netlist read_netlist(std::istream& is) {
  std::string model_name = "netlist";
  Netlist netlist(model_name);
  bool saw_model = false;
  bool saw_inputs = false;
  bool saw_end = false;
  NodeId next_id = 0;
  std::vector<NodeId> pending_outputs;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank line
    if (saw_end) fail(line_no, "content after .end");

    if (directive == ".model") {
      if (saw_model) fail(line_no, "duplicate .model");
      if (!(tokens >> model_name)) fail(line_no, ".model needs a name");
      netlist = Netlist(model_name);
      saw_model = true;
    } else if (directive == ".inputs") {
      if (!saw_model) fail(line_no, ".inputs before .model");
      if (saw_inputs) fail(line_no, "duplicate .inputs");
      std::size_t count = 0;
      if (!(tokens >> count)) fail(line_no, ".inputs needs a count");
      for (std::size_t i = 0; i < count; ++i) netlist.add_input();
      next_id = static_cast<NodeId>(count);
      saw_inputs = true;
    } else if (directive == ".input") {
      NodeId id = 0;
      if (!(tokens >> id)) fail(line_no, ".input needs an id");
      if (id != next_id) fail(line_no, "ids must be dense and ascending");
      netlist.add_input();
      ++next_id;
    } else if (directive == ".const0" || directive == ".const1") {
      NodeId id = 0;
      if (!(tokens >> id)) fail(line_no, directive + " needs an id");
      if (id != next_id) fail(line_no, "ids must be dense and ascending");
      netlist.add_const(directive == ".const1");
      ++next_id;
    } else if (directive == ".nor") {
      NodeId id = 0;
      if (!(tokens >> id)) fail(line_no, ".nor needs an id");
      if (id != next_id) fail(line_no, "ids must be dense and ascending");
      std::vector<NodeId> fanins;
      NodeId f = 0;
      while (tokens >> f) fanins.push_back(f);
      if (fanins.empty()) fail(line_no, ".nor needs at least one fanin");
      try {
        netlist.add_nor(std::span<const NodeId>(fanins));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      ++next_id;
    } else if (directive == ".outputs") {
      NodeId out = 0;
      while (tokens >> out) pending_outputs.push_back(out);
    } else if (directive == ".end") {
      saw_end = true;
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_end) fail(line_no, "missing .end");
  for (const NodeId out : pending_outputs) {
    if (out >= netlist.num_nodes()) {
      fail(line_no, "output references unknown node");
    }
    netlist.mark_output(out);
  }
  return netlist;
}

Netlist read_netlist_text(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

}  // namespace pimecc::simpler
