// pimecc -- simpler/netlist.hpp
//
// NOR-only combinational netlist IR.
//
// SIMPLER MAGIC [13] maps logic synthesized into NOR/NOT form (MAGIC's
// functionally-complete gate set) onto a single crossbar row.  This IR is
// the input to that mapper: a DAG of k-input NOR nodes over primary
// inputs, with designated primary outputs.  NOT is a 1-input NOR; MAGIC
// executes a k-input NOR in one cycle for any k that fits in a row.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bitvector.hpp"

namespace pimecc::simpler {

using NodeId = std::uint32_t;

enum class NodeType : std::uint8_t {
  kInput,
  kNor,        ///< k-input NOR, k >= 1 (k == 1 is NOT)
  kConstZero,  ///< constant 0 (an HRS cell)
  kConstOne,   ///< constant 1 (an LRS cell)
};

/// One netlist node.  Fanins always reference lower node ids, so node order
/// is topological by construction.
struct Node {
  NodeType type = NodeType::kNor;
  std::vector<NodeId> fanins;
};

/// Immutable-after-build combinational netlist.
class Netlist {
 public:
  explicit Netlist(std::string name = "netlist") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  NodeId add_input();
  /// Adds a k-input NOR; all fanins must be existing nodes.
  NodeId add_nor(std::span<const NodeId> fanins);
  NodeId add_nor(std::initializer_list<NodeId> fanins) {
    return add_nor(std::span<const NodeId>(fanins.begin(), fanins.size()));
  }
  NodeId add_const(bool value);
  /// Marks a node as primary output (a node may be marked once).
  void mark_output(NodeId id);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_.size(); }
  /// Number of NOR gates (excludes inputs and constants).
  [[nodiscard]] std::size_t num_gates() const noexcept { return gate_count_; }
  /// Largest NOR fan-in in the netlist.
  [[nodiscard]] std::size_t max_fanin() const noexcept;

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const noexcept {
    return outputs_;
  }

  /// Number of consumers of each node (outputs count as one extra consumer,
  /// pinning output cells).
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Evaluates the netlist: `input_values` indexed like inputs().
  [[nodiscard]] util::BitVector eval(const util::BitVector& input_values) const;

  /// Evaluates every node; returned vector is indexed by NodeId (testing).
  [[nodiscard]] std::vector<bool> eval_all(const util::BitVector& input_values) const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<bool> is_output_;
  std::size_t gate_count_ = 0;
};

}  // namespace pimecc::simpler
