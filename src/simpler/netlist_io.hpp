// pimecc -- simpler/netlist_io.hpp
//
// Text serialization of NOR netlists, in the spirit of BLIF but restricted
// to the NOR-only IR SIMPLER consumes.  Format ("pnl" -- pimecc netlist):
//
//   # comment
//   .model <name>
//   .inputs <count>
//   .const0 <id>            (optional, at most one)
//   .const1 <id>            (optional, at most one)
//   .nor <id> <fanin> [<fanin> ...]
//   .outputs <id> [<id> ...]
//   .end
//
// Node ids must be dense and ascending: inputs occupy 0..count-1 and every
// later directive must declare the next id in sequence (this mirrors the
// in-memory invariant that fanins reference earlier nodes).  Lines may
// appear in any order only for `.outputs`; everything else is positional.
#pragma once

#include <iosfwd>
#include <string>

#include "simpler/netlist.hpp"

namespace pimecc::simpler {

/// Serializes `netlist` into the .pnl text format.
[[nodiscard]] std::string write_netlist_text(const Netlist& netlist);
void write_netlist(std::ostream& os, const Netlist& netlist);

/// Parses a .pnl document; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Netlist read_netlist(std::istream& is);
[[nodiscard]] Netlist read_netlist_text(const std::string& text);

}  // namespace pimecc::simpler
