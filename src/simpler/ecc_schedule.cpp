#include "simpler/ecc_schedule.hpp"

namespace pimecc::simpler {

namespace {

/// Hazard key of the check bits updated by a write to row-resident cell
/// `cell` (the single execution row has index 0 within its block).
arch::CheckCellKey key_for_cell(const arch::ArchParams& params, CellIndex cell) {
  const std::uint64_t block_col = cell / params.m;
  const std::uint64_t lead = cell % params.m;         // (0 + c) mod m
  const std::uint64_t cnt = (params.m - lead) % params.m;  // (0 - c) mod m
  return (block_col << 32) | (lead << 16) | cnt;
}

}  // namespace

EccScheduleResult schedule_with_ecc(const MappedProgram& program,
                                    const arch::ArchParams& params,
                                    CoveragePolicy policy,
                                    std::vector<arch::ScheduledEvent>* events) {
  params.validate();
  arch::ProtocolScheduler sched(params);
  sched.set_event_sink(events);
  sched.schedule_input_check();
  for (const MappedOp& op : program.ops) {
    if (op.kind == MappedOp::Kind::kInit) {
      if (policy == CoveragePolicy::kInputsAndOutputs &&
          !op.covered_cells.empty()) {
        std::vector<arch::CheckCellKey> keys;
        keys.reserve(op.covered_cells.size());
        for (const CellIndex cell : op.covered_cells) {
          keys.push_back(key_for_cell(params, cell));
        }
        sched.schedule_cancel_batch(keys);
      }
      sched.schedule_plain_op();
    } else if (op.writes_output) {
      sched.schedule_critical_op(key_for_cell(params, op.cell));
    } else {
      sched.schedule_plain_op();
    }
  }
  const arch::ScheduleStats stats = sched.finish();

  EccScheduleResult result;
  result.baseline_cycles = program.baseline_cycles();
  result.proposed_cycles = stats.makespan;
  result.stall_cycles = stats.stall_cycles;
  result.critical_ops = stats.critical_ops;
  result.cancel_ops = stats.cancel_ops;
  result.stats = stats;
  return result;
}

std::size_t find_min_pcs(const MappedProgram& program,
                         const arch::ArchParams& params, CoveragePolicy policy) {
  arch::ArchParams unlimited = params;
  unlimited.num_pcs = 64;
  const std::uint64_t best =
      schedule_with_ecc(program, unlimited, policy).proposed_cycles;
  for (std::size_t k = 1; k <= 8; ++k) {
    arch::ArchParams trial = params;
    trial.num_pcs = k;
    if (schedule_with_ecc(program, trial, policy).proposed_cycles == best) {
      return k;
    }
  }
  return 8;
}

}  // namespace pimecc::simpler
