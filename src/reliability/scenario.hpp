// pimecc -- reliability/scenario.hpp
//
// Scenario-diversity lifetime engine: Monte Carlo memory lifetimes under a
// *mix* of fault mechanisms (iid soft errors, activation-induced
// disturbance, correlated inter-block bursts, transient-vs-stuck-at cells)
// scrubbed by a pluggable policy (scrub_policy.hpp), instead of the single
// iid-errors + full-periodic-scrub scenario of lifetime.hpp.
//
// The engine tracks each trial's memory as a sparse diff against the
// golden image, per m x m block (data cells and, optionally, the block's
// 2m check bits).  The failure predicate is the first instant any block
// holds >= 2 differing cells -- exactly the diagonal code's per-block
// corruption condition (one error per block is always repaired; two or
// more make silent miscorrection possible), evaluated in O(active faults)
// per trial without materializing a BitMatrix.  With the iid model alone
// and the periodic policy, this reproduces lifetime.hpp's reference-walker
// distribution; bench_scenarios and test_scenarios pin the two engines
// against each other (exact scrub accounting at zero fault rate,
// statistical bands on the hot configuration).
//
// Determinism contract (same as simulate_lifetime / run_montecarlo):
// run_scenario draws exactly ONE value from the caller's rng -- the base
// seed -- and trial t runs on util::Rng::for_stream(base_seed, t).  Trials
// ride dynamic-ticket lanes on the shared executor (reliability/parallel.hpp),
// counters merge commutatively and per-trial TTFs land in per-trial slots
// folded in trial order, so results are bit-identical at any thread count.
// The scrub schedule is planned once, deterministically, before any trial
// runs; trials never consult each other.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/burst.hpp"
#include "reliability/scrub_policy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pimecc::rel {

/// Deterministic synthetic workload: every row sustains
/// `activations_per_hour` wordline activations, except the leading
/// `hot_row_fraction` of rows which run at `hot_multiplier` times that --
/// the skewed access pattern that makes activation-aware scrub policies and
/// the disturbance model interesting.  (Campaigns replaying a *measured*
/// workload can bypass this and feed Crossbar::row_activation_snapshot()
/// rates straight into ScrubPlanContext / fault::DisturbanceModel.)
struct WorkloadModel {
  double activations_per_hour = 1000.0;
  double hot_row_fraction = 0.1;
  double hot_multiplier = 8.0;
};

/// The canonical workload used by the bench/serve presets.
[[nodiscard]] WorkloadModel canonical_workload() noexcept;

/// Expands a workload into per-row activation rates (activations/hour),
/// length n: the leading floor(hot_row_fraction * n) rows are hot.
[[nodiscard]] std::vector<double> row_activation_rates(
    const WorkloadModel& workload, std::size_t n);

/// Which fault mechanisms act on the memory, and how hard.  Every rate of 0
/// disables its mechanism entirely (including its randomness consumption).
struct FaultMix {
  /// iid soft errors (the paper's SER), FIT/bit over data + check cells.
  double fit_per_bit = 0.0;
  /// Activation-induced disturbance hazard per effective aggressor
  /// activation (fault::DisturbanceParams::flip_probability_per_activation).
  double disturb_per_activation = 0.0;
  std::size_t disturb_radius = 1;
  /// Correlated burst events (fault::correlated_burst_cells), Poisson
  /// arrivals at this rate.
  double bursts_per_hour = 0.0;
  std::size_t burst_length = 4;
  fault::BurstShape burst_shape = fault::BurstShape::kVertical;
  double burst_spread_probability = 0.25;
  /// Probability that a newly faulted cell is stuck-at (latched) rather
  /// than transient; stuck cells re-flip after every repair until replaced
  /// after `replace_after_repairs` repairs (fault::StuckAtSet).
  /// Disturbance flips are always transient.
  double stuck_probability = 0.0;
  std::size_t replace_after_repairs = 3;
};

/// Named fault-mix presets used by bench_scenarios, `pimecc sweep
/// --scenarios`, and the serve layer: "iid", "disturb", "burst", "stuckat",
/// "mixed".  Each starts from a default-constructed mix with the given SER
/// and enables its mechanism at calibrated strength.  Returns false on an
/// unknown name, leaving `out` untouched.
bool apply_fault_preset(std::string_view name, double fit_per_bit, FaultMix& out);

/// The preset names, in canonical campaign order.
[[nodiscard]] std::span<const std::string_view> fault_preset_names() noexcept;

/// One scenario campaign.
struct ScenarioConfig {
  std::size_t n = 60;            ///< array dimension
  std::size_t m = 15;            ///< block size (must divide n)
  std::size_t trials = 100;
  double max_hours = 240.0;      ///< per-trial horizon
  bool include_check_bits = true;
  std::size_t threads = 1;       ///< executor lanes; 0 = full shared width
  WorkloadModel workload;
  FaultMix faults;
  ScrubPolicyConfig policy;
};

/// Campaign outcome.  Counter semantics: `faults_injected` counts fault
/// *applications* (including re-hits of already-faulty or stuck cells);
/// `errors_corrected` counts single-error block repairs of transient
/// faults; `stuck_repairs` counts repair attempts on stuck cells (undone by
/// the cell re-asserting its latched value) and `cells_replaced` those that
/// reached the spare-remap threshold.
struct ScenarioResult {
  std::size_t trials = 0;
  std::size_t failures = 0;
  util::RunningStats time_to_failure_hours;  ///< over failed trials
  std::uint64_t scrub_events = 0;
  std::uint64_t blocks_scrubbed = 0;
  std::uint64_t cells_scrubbed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t errors_corrected = 0;
  std::uint64_t stuck_repairs = 0;
  std::uint64_t cells_replaced = 0;

  /// Censored-campaign MTTF, same convention as LifetimeResult: failed
  /// trials contribute their TTF, censored trials `horizon`; with zero
  /// failures returns the total exposure horizon * trials.
  [[nodiscard]] double empirical_mttf_hours(double horizon) const noexcept;

  /// Scrub overhead: cells checked per memory-hour of exposure -- the cost
  /// axis of the MTTF-vs-overhead frontier in bench_scenarios.
  [[nodiscard]] double scrub_cells_per_hour(double horizon) const noexcept;
};

/// Runs the campaign.  Draws exactly one value from `rng`; see the file
/// comment for the determinism contract.  Throws std::invalid_argument on
/// an invalid configuration before consuming any randomness.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config,
                                          util::Rng& rng);

}  // namespace pimecc::rel
