// pimecc -- reliability/scrub_policy.hpp
//
// Pluggable scrub scheduling for the scenario engine (scenario.hpp).  The
// paper's reliability analysis scrubs the whole memory every T hours; an
// adaptive controller can do better under non-uniform workloads by
// scrubbing hot regions more often and cold regions less.  A ScrubPolicy
// turns a campaign's geometry + per-row activation rates into the full
// deterministic schedule of scrub events up front: which block-row bands
// are scrubbed, and when.
//
// Scheduling is a pure function of the configuration -- policies see the
// deterministic workload *rates*, never a trial's random state -- which is
// what keeps scenario trials on the substream-determinism contract:
// every trial of a campaign replays the same schedule, randomness lives
// entirely in the trial's own Rng substream, and results are bit-identical
// at any thread count.
//
// Granularity is the block-row band (rows [b*m, (b+1)*m)), matching
// ArrayCode::scrub_band / PimMachine::check_block_row: that is the unit
// the architecture's checking crossbar actually verifies per pass.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace pimecc::rel {

enum class ScrubPolicyKind : unsigned char {
  kPeriodic,             ///< full scrub every period_hours (the paper's baseline)
  kActivationTriggered,  ///< per-band cadence from the band's activation rate
  kRegionPeriodic,       ///< round-robin region scrubs every region_period_hours
  kHotRowPriority,       ///< hot bands every hot_period_hours + periodic fulls
};

[[nodiscard]] const char* to_string(ScrubPolicyKind kind) noexcept;

/// Parameters of one policy instance.  `period_hours` is the full-scrub
/// period for kPeriodic and the per-band backstop for the adaptive
/// policies (no band ever waits longer than the backstop between scrubs).
struct ScrubPolicyConfig {
  ScrubPolicyKind kind = ScrubPolicyKind::kPeriodic;
  double period_hours = 24.0;
  /// kActivationTriggered: a band is scrubbed whenever its hottest row
  /// accumulates this many activations since the band's last scrub.
  std::uint64_t activation_budget = 100000;
  /// kRegionPeriodic: number of round-robin band groups (band b belongs to
  /// region b % regions) and the interval between region scrubs.
  std::size_t regions = 4;
  double region_period_hours = 6.0;
  /// kHotRowPriority: cadence of the hot-band-only scrubs.
  double hot_period_hours = 6.0;
};

/// Throws std::invalid_argument on non-positive periods, a zero activation
/// budget, or zero regions.
void require_valid(const ScrubPolicyConfig& config);

/// One scheduled scrub: at `hours`, the listed block-row bands are checked
/// and repaired.  An empty `bands` list means a full scrub (every band).
struct ScrubEvent {
  double hours = 0.0;
  std::vector<std::size_t> bands;  ///< sorted, distinct; empty = all bands

  [[nodiscard]] bool full() const noexcept { return bands.empty(); }
};

/// What a policy plans against.
struct ScrubPlanContext {
  std::size_t n = 0;             ///< array dimension (rows)
  std::size_t m = 0;             ///< block size; bands = n / m
  double horizon_hours = 0.0;    ///< campaign horizon
  /// Deterministic per-row activation rates (activations/hour), length n.
  std::span<const double> row_activation_rates;
};

/// A scrub schedule generator; see the file comment for the determinism
/// contract.
class ScrubPolicy {
 public:
  virtual ~ScrubPolicy() = default;

  [[nodiscard]] virtual ScrubPolicyKind kind() const noexcept = 0;

  /// The deterministic schedule, in strictly increasing time order, of
  /// every scrub whose preceding inter-scrub window *starts* before
  /// ctx.horizon_hours (so the final event may land past the horizon --
  /// the same one-scrub-per-started-window accounting as the lifetime
  /// engine's reference walker, which is what makes the two engines'
  /// zero-rate scrub counts exactly comparable).  Events scheduled for the
  /// same instant are merged into one event (union of bands).  Throws
  /// std::invalid_argument on an invalid context and std::length_error if
  /// the schedule would exceed an internal sanity cap (~10M events).
  [[nodiscard]] virtual std::vector<ScrubEvent> plan(
      const ScrubPlanContext& ctx) const = 0;
};

/// Builds the policy described by `config` (validating it first).
[[nodiscard]] std::unique_ptr<ScrubPolicy> make_scrub_policy(
    const ScrubPolicyConfig& config);

/// Named policy presets used by bench_scenarios, `pimecc sweep
/// --scenarios`, and the serve layer: "periodic", "activation", "region",
/// "hotrow".  Returns false on an unknown name, leaving `out` untouched.
bool apply_policy_preset(std::string_view name, ScrubPolicyConfig& out);

/// The preset names, in canonical campaign order.
[[nodiscard]] std::span<const std::string_view> scrub_policy_preset_names() noexcept;

}  // namespace pimecc::rel
