// pimecc -- reliability/analytic.hpp
//
// Closed-form reliability model of paper Section V-A / Figure 6.
//
// Assumptions (the paper's): memristor soft errors are uniform and
// independent with constant rate lambda [FIT/bit]; the exposure window of
// any bit is at most the full-memory check period T (worst case); a block
// survives iff it suffers zero or one soft error in the window (the
// diagonal code corrects any single error); blocks, crossbars and the
// 1 GB memory are independent, so successes multiply.
//
//   p            = 1 - exp(-lambda*T/1e9)
//   P(block ok)  = (1-p)^B + B*p*(1-p)^(B-1),  B = m^2 + 2m
//   P(xbar ok)   = P(block ok)^((n/m)^2)
//   P(mem ok)    = P(xbar ok)^ceil(2^33 / n^2)
//   FIT(memory)  = (1 - P(mem ok)) * 1e9 / T
//   MTTF [h]     = 1e9 / FIT
//
// The baseline (no ECC) fails on any single bit error.  All products are
// evaluated in log space so the tiny-p regime keeps full precision
// (log1p/expm1 throughout).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/params.hpp"

namespace pimecc::rel {

/// Parameters of one reliability evaluation point.
struct ReliabilityQuery {
  double fit_per_bit = 1e-3;      ///< lambda [FIT/bit]
  double check_period_hours = 24; ///< T
  std::size_t n = 1020;
  std::size_t m = 15;
  std::uint64_t memory_bits = std::uint64_t{1} << 33;  ///< 1 GB
  /// Count the block's 2m check bits in its vulnerable population
  /// (physically faithful: check-bit memristors fail like data memristors).
  bool include_check_bits = true;
};

/// All derived quantities for one design point.
struct ReliabilityPoint {
  double bit_error_probability = 0.0;
  double log_block_success = 0.0;     ///< proposed design, natural log
  double log_memory_success = 0.0;
  double memory_fit = 0.0;
  double mttf_hours = 0.0;
};

/// Proposed design (diagonal ECC, single-error correction per block).
[[nodiscard]] ReliabilityPoint evaluate_proposed(const ReliabilityQuery& query);

/// Baseline (no ECC): any bit error is a memory failure.
[[nodiscard]] ReliabilityPoint evaluate_baseline(const ReliabilityQuery& query);

/// One row of the Figure 6 sweep.
struct SweepPoint {
  double fit_per_bit = 0.0;
  double baseline_mttf_hours = 0.0;
  double proposed_mttf_hours = 0.0;

  [[nodiscard]] double improvement() const noexcept {
    return baseline_mttf_hours > 0.0 ? proposed_mttf_hours / baseline_mttf_hours
                                     : 0.0;
  }
};

/// Logarithmic SER sweep [fit_low, fit_high] with `points_per_decade`
/// samples per decade (Figure 6: 1e-5 .. 1e3).
[[nodiscard]] std::vector<SweepPoint> sweep_mttf(const ReliabilityQuery& base,
                                                 double fit_low, double fit_high,
                                                 std::size_t points_per_decade);

}  // namespace pimecc::rel
