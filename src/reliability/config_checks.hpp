// pimecc -- reliability/config_checks.hpp
//
// Shared validate-before-run helpers for the reliability entry points.
// The fast and reference engines must reject bad configurations
// identically, and must do so before drawing from the caller's generator
// or touching any state (the PR 2-4 validate-before-mutate convention).
#pragma once

#include <cmath>
#include <stdexcept>

#include "reliability/lifetime.hpp"
#include "reliability/montecarlo.hpp"

namespace pimecc::rel {

inline void require_valid(const MonteCarloConfig& config) {
  if (config.n == 0 || config.m == 0 || config.n % config.m != 0) {
    throw std::invalid_argument("run_montecarlo: m must divide n");
  }
  if (!(config.window_hours > 0.0) || !std::isfinite(config.window_hours)) {
    throw std::invalid_argument(
        "run_montecarlo: window_hours must be positive and finite");
  }
  if (config.fit_per_bit < 0.0 || !std::isfinite(config.fit_per_bit)) {
    throw std::invalid_argument(
        "run_montecarlo: fit_per_bit must be non-negative and finite");
  }
}

inline void require_valid(const LifetimeConfig& config) {
  if (config.n == 0 || config.m == 0 || config.n % config.m != 0 ||
      config.m % 2 == 0) {
    throw std::invalid_argument("simulate_lifetime: need odd m dividing n");
  }
  if (config.scrub_period_hours <= 0.0 ||
      !std::isfinite(config.scrub_period_hours) || config.crossbars == 0) {
    throw std::invalid_argument("simulate_lifetime: bad period or size");
  }
  if (!(config.max_hours > 0.0) || !std::isfinite(config.max_hours) ||
      config.fit_per_bit < 0.0 || !std::isfinite(config.fit_per_bit)) {
    throw std::invalid_argument("simulate_lifetime: bad horizon or rate");
  }
}

}  // namespace pimecc::rel
