// pimecc -- reliability/reference_reliability.hpp
//
// Golden reliability engines retained from the dense era (the PR 2-4
// convention: every fast engine keeps its predecessor for differential
// pinning).
//
// reference_run_montecarlo: per trial, full golden copies of the data
// matrix and the whole ArrayCode check state, a whole-array scrub, and a
// row-XOR failed-block scan -- O(n^2) per trial regardless of how few
// flips were injected.  Same seeding contract as run_montecarlo (one base
// seed drawn from the caller, golden image from substream 0, trial t from
// substream t+1), so the sparse engine must reproduce its counters exactly
// on every substream -- with one documented exception: `miscorrected` here
// keeps the historical approximation (every failed block of a trial that
// reported >= 1 data correction), while the sparse engine is exact (a
// block is miscorrected iff its own scrub reported a data correction and
// its residual is nonzero).  The exact set is a subset of the approximated
// one, so run_montecarlo(...).miscorrected <= the reference's, always.
//
// reference_simulate_lifetime: the windowed walker, drawing one binomial
// per scrub window (empty or not) from the caller's stream,
// single-threaded.  The skip-ahead engine samples the same process but
// resamples the stream (geometric window gaps + conditioned hit counts),
// so the pinning here is equivalence in distribution -- matched failure
// counts within statistical bands and analytic-model agreement -- gated by
// tests/test_reliability_engine.cpp and bench_reliability_throughput, not
// bit equality.
#pragma once

#include "reliability/lifetime.hpp"
#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"

namespace pimecc::rel {

/// The dense full-scrub Monte Carlo engine (threaded, same determinism
/// contract as run_montecarlo).
[[nodiscard]] MonteCarloResult reference_run_montecarlo(
    const MonteCarloConfig& config, util::Rng& rng);

/// The window-by-window lifetime walker (single-threaded, consumes the
/// caller's stream directly; `config.threads` is ignored).
[[nodiscard]] LifetimeResult reference_simulate_lifetime(
    const LifetimeConfig& config, util::Rng& rng);

}  // namespace pimecc::rel
