#include "reliability/montecarlo.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/array_code.hpp"
#include "reliability/config_checks.hpp"
#include "reliability/parallel.hpp"
#include "reliability/sparse_trial.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double MonteCarloResult::block_failure_rate() const noexcept {
  return blocks_total > 0 ? static_cast<double>(blocks_failed) /
                                static_cast<double>(blocks_total)
                          : 0.0;
}

namespace detail {

void accumulate(MonteCarloResult& total, const MonteCarloResult& partial) {
  total.trials_with_errors += partial.trials_with_errors;
  total.trials_failed += partial.trials_failed;
  total.flips_injected += partial.flips_injected;
  total.blocks_failed += partial.blocks_failed;
  total.blocks_with_errors += partial.blocks_with_errors;
  total.corrected_data += partial.corrected_data;
  total.corrected_check += partial.corrected_check;
  total.detected_uncorrectable += partial.detected_uncorrectable;
  total.miscorrected += partial.miscorrected;
}

util::BitMatrix make_montecarlo_golden(std::size_t n, std::uint64_t base_seed) {
  util::BitMatrix golden(n, n);
  util::Rng golden_rng = util::Rng::for_stream(base_seed, 0);
  for (std::size_t r = 0; r < n; ++r) {
    util::BitVector& row = golden.row(r);
    for (auto& word : row.words_mutable()) word = golden_rng.next();
    row.sanitize();
  }
  return golden;
}

}  // namespace detail

MonteCarloResult run_montecarlo(const MonteCarloConfig& config, util::Rng& rng) {
  require_valid(config);
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;

  MonteCarloResult result;
  result.trials = config.trials;
  result.blocks_total =
      static_cast<std::uint64_t>(config.trials) * probe.block_count();

  // One draw from the caller's stream seeds everything below, so the
  // caller's generator advances identically for every thread count (and
  // identically to reference_run_montecarlo and the fleet engine).
  const std::uint64_t base_seed = rng.next();

  const util::BitMatrix golden =
      detail::make_montecarlo_golden(config.n, base_seed);
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);

  detail::SparseTrialContext ctx;
  ctx.golden = &golden;
  ctx.golden_code = &golden_code;
  ctx.p = p;
  ctx.population = data_cells + check_cells;
  ctx.bps = golden_code.blocks_per_side();
  ctx.m = config.m;
  ctx.include_check_bits = config.include_check_bits;

  // Each lane carries one (data, check) image that equals golden between
  // trials (run_sparse_trial's rollback contract); trial t always rides
  // substream t + 1, so the dynamic lane assignment cannot affect any
  // counter bit.
  struct Lane {
    detail::SparseTrialLane state;
    MonteCarloResult out;
  };
  const std::vector<Lane> lanes = detail::run_trial_pool<Lane>(
      config.trials, config.threads,
      [&ctx] { return Lane{detail::SparseTrialLane(ctx), {}}; },
      [&ctx, base_seed](Lane& lane, std::size_t t) {
        util::Rng trial_rng = util::Rng::for_stream(base_seed, t + 1);
        detail::run_sparse_trial(ctx, lane.state, trial_rng, lane.out);
      });
  for (const Lane& lane : lanes) detail::accumulate(result, lane.out);
  return result;
}

double analytic_block_failure(const MonteCarloConfig& config) {
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const double cells = static_cast<double>(
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0));
  // 1 - (1-p)^B - B p (1-p)^(B-1), in log space for small p.
  const double log1mp = std::log1p(-p);
  const double ok = std::exp(cells * log1mp) +
                    cells * p * std::exp((cells - 1.0) * log1mp);
  return 1.0 - ok;
}

}  // namespace pimecc::rel
