#include "reliability/montecarlo.hpp"

#include <cmath>
#include <stdexcept>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "util/bitmatrix.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double MonteCarloResult::block_failure_rate() const noexcept {
  return blocks_total > 0 ? static_cast<double>(blocks_failed) /
                                static_cast<double>(blocks_total)
                          : 0.0;
}

MonteCarloResult run_montecarlo(const MonteCarloConfig& config, util::Rng& rng) {
  if (config.n == 0 || config.m == 0 || config.n % config.m != 0) {
    throw std::invalid_argument("run_montecarlo: m must divide n");
  }
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;
  const std::size_t population = data_cells + check_cells;

  MonteCarloResult result;
  result.trials = config.trials;
  result.blocks_total =
      static_cast<std::uint64_t>(config.trials) * probe.block_count();

  util::BitMatrix golden(config.n, config.n);
  for (std::size_t r = 0; r < config.n; ++r) {
    for (std::size_t c = 0; c < config.n; ++c) {
      golden.set(r, c, rng.bernoulli(0.5));
    }
  }
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);

  for (std::size_t t = 0; t < config.trials; ++t) {
    const std::size_t flips =
        static_cast<std::size_t>(rng.binomial(population, p));
    if (flips == 0) continue;
    ++result.trials_with_errors;
    result.flips_injected += flips;

    util::BitMatrix data = golden;
    ecc::ArrayCode code = golden_code;
    const fault::InjectionRecord record =
        config.include_check_bits
            ? fault::inject_flips_everywhere(rng, data, code, flips)
            : fault::inject_data_flips(rng, data, flips);

    // Which blocks received at least one flip.
    std::vector<bool> block_touched(code.block_count(), false);
    for (const fault::DataFlip& f : record.data_flips) {
      const ecc::BlockIndex b = code.block_of(f.r, f.c);
      block_touched[b.block_row * code.blocks_per_side() + b.block_col] = true;
    }
    for (const fault::CheckFlip& f : record.check_flips) {
      block_touched[f.block_row * code.blocks_per_side() + f.block_col] = true;
    }
    for (const bool touched : block_touched) {
      if (touched) ++result.blocks_with_errors;
    }

    const ecc::ScrubReport scrub = code.scrub(data);
    result.corrected_data += scrub.corrected_data;
    result.corrected_check += scrub.corrected_check;
    result.detected_uncorrectable += scrub.uncorrectable;

    // Failure accounting: any data bit still wrong after repair.
    bool crossbar_failed = false;
    std::size_t failed_blocks_this_trial = 0;
    for (std::size_t br = 0; br < code.blocks_per_side(); ++br) {
      for (std::size_t bc = 0; bc < code.blocks_per_side(); ++bc) {
        bool block_bad = false;
        for (std::size_t r = br * config.m; r < (br + 1) * config.m && !block_bad;
             ++r) {
          for (std::size_t c = bc * config.m; c < (bc + 1) * config.m; ++c) {
            if (data.get(r, c) != golden.get(r, c)) {
              block_bad = true;
              break;
            }
          }
        }
        if (block_bad) {
          ++failed_blocks_this_trial;
          crossbar_failed = true;
        }
      }
    }
    result.blocks_failed += failed_blocks_this_trial;
    if (crossbar_failed) ++result.trials_failed;
    // Miscorrection: a "correction" happened but the block is still bad, or
    // data changed away from golden where no flip landed -- approximated as
    // failed blocks that reported a data correction.
    if (failed_blocks_this_trial > 0 && scrub.corrected_data > 0) {
      result.miscorrected += failed_blocks_this_trial;
    }
  }
  return result;
}

double analytic_block_failure(const MonteCarloConfig& config) {
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const double cells = static_cast<double>(
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0));
  // 1 - (1-p)^B - B p (1-p)^(B-1), in log space for small p.
  const double log1mp = std::log1p(-p);
  const double ok = std::exp(cells * log1mp) +
                    cells * p * std::exp((cells - 1.0) * log1mp);
  return 1.0 - ok;
}

}  // namespace pimecc::rel
