#include "reliability/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "reliability/config_checks.hpp"
#include "reliability/parallel.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double MonteCarloResult::block_failure_rate() const noexcept {
  return blocks_total > 0 ? static_cast<double>(blocks_failed) /
                                static_cast<double>(blocks_total)
                          : 0.0;
}

namespace {

/// Folds one worker's counters into the aggregate.  All fields are integer
/// sums over disjoint trial sets, so the merge is order-insensitive.
void accumulate(MonteCarloResult& total, const MonteCarloResult& partial) {
  total.trials_with_errors += partial.trials_with_errors;
  total.trials_failed += partial.trials_failed;
  total.flips_injected += partial.flips_injected;
  total.blocks_failed += partial.blocks_failed;
  total.blocks_with_errors += partial.blocks_with_errors;
  total.corrected_data += partial.corrected_data;
  total.corrected_check += partial.corrected_check;
  total.detected_uncorrectable += partial.detected_uncorrectable;
  total.miscorrected += partial.miscorrected;
}

}  // namespace

MonteCarloResult run_montecarlo(const MonteCarloConfig& config, util::Rng& rng) {
  require_valid(config);
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;
  const std::size_t population = data_cells + check_cells;

  MonteCarloResult result;
  result.trials = config.trials;
  result.blocks_total =
      static_cast<std::uint64_t>(config.trials) * probe.block_count();

  // One draw from the caller's stream seeds everything below, so the
  // caller's generator advances identically for every thread count (and
  // identically to reference_run_montecarlo).
  const std::uint64_t base_seed = rng.next();

  util::BitMatrix golden(config.n, config.n);
  {
    util::Rng golden_rng = util::Rng::for_stream(base_seed, 0);
    for (std::size_t r = 0; r < config.n; ++r) {
      util::BitVector& row = golden.row(r);
      for (auto& word : row.words_mutable()) word = golden_rng.next();
      row.sanitize();
    }
  }
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);
  const std::size_t bps = golden_code.blocks_per_side();
  const std::size_t mm = config.m;

  // Runs trials [first, last) into `out`.  The worker's (data, code) pair
  // is initialized to golden state ONCE and reconstituted after every
  // trial by the undo log, so a trial costs O(flips) regardless of n:
  //   1. inject (allocation-free record reuse),
  //   2. scrub only the touched blocks (ArrayCode::scrub_block),
  //   3. per touched block, residual = injected data flips XOR reported
  //      data correction; surviving cells are exactly the bits still wrong,
  //   4. rollback: re-flip the surviving cells, the reported check-bit
  //      repair, and the injected check flips (XOR cancellation restores
  //      golden state bit-for-bit).
  // Untouched blocks stay consistent throughout, so skipping them is
  // exact, and per-trial substreams make the worker partition irrelevant.
  auto run_range = [&](std::size_t first, std::size_t last, MonteCarloResult& out) {
    util::BitMatrix data = golden;
    ecc::ArrayCode code = golden_code;
    fault::InjectionRecord record;
    std::vector<std::size_t> scratch;
    std::vector<std::size_t> touched;
    std::vector<std::pair<std::size_t, std::size_t>> residual;
    for (std::size_t t = first; t < last; ++t) {
      util::Rng trial_rng = util::Rng::for_stream(base_seed, t + 1);
      const std::size_t flips =
          static_cast<std::size_t>(trial_rng.binomial(population, p));
      if (flips == 0) continue;
      ++out.trials_with_errors;
      out.flips_injected += flips;

      if (config.include_check_bits) {
        fault::inject_flips_everywhere(trial_rng, data, code, flips, record,
                                       scratch);
      } else {
        fault::inject_data_flips(trial_rng, data, flips, record, scratch);
      }

      // Which blocks received at least one flip (sorted unique flat ids).
      touched.clear();
      for (const fault::DataFlip& f : record.data_flips) {
        touched.push_back((f.r / mm) * bps + f.c / mm);
      }
      for (const fault::CheckFlip& f : record.check_flips) {
        touched.push_back(f.block_row * bps + f.block_col);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
      out.blocks_with_errors += touched.size();

      std::size_t failed_blocks_this_trial = 0;
      for (const std::size_t flat : touched) {
        const ecc::BlockIndex b{flat / bps, flat % bps};
        const ecc::BlockRepair repair = code.scrub_block(data, b);
        switch (repair.status) {
          case ecc::DecodeStatus::kClean: break;
          case ecc::DecodeStatus::kCorrectedData: ++out.corrected_data; break;
          case ecc::DecodeStatus::kCorrectedCheck: ++out.corrected_check; break;
          case ecc::DecodeStatus::kDetectedUncorrectable:
            ++out.detected_uncorrectable;
            break;
        }

        // Exact residual: every data flip this trial put into block b, plus
        // the repair's own flip if it corrected a data bit.  Cells listed
        // twice cancelled out (the repair undid an injected flip); cells
        // listed once are still wrong.
        residual.clear();
        for (const fault::DataFlip& f : record.data_flips) {
          if (f.r / mm == b.block_row && f.c / mm == b.block_col) {
            residual.emplace_back(f.r, f.c);
          }
        }
        if (repair.status == ecc::DecodeStatus::kCorrectedData) {
          residual.emplace_back(repair.data_r, repair.data_c);
        }
        std::sort(residual.begin(), residual.end());
        std::size_t survivors = 0;
        for (std::size_t i = 0; i < residual.size();) {
          if (i + 1 < residual.size() && residual[i] == residual[i + 1]) {
            i += 2;  // injected and repaired: already back at golden
            continue;
          }
          ++survivors;
          data.flip(residual[i].first, residual[i].second);  // rollback
          ++i;
        }
        if (survivors > 0) {
          ++failed_blocks_this_trial;
          // Exact miscorrection verdict: this block's scrub claimed a data
          // correction, yet the block did not return to golden.
          if (repair.status == ecc::DecodeStatus::kCorrectedData) {
            ++out.miscorrected;
          }
        }

        // Roll back a check-bit repair (it flipped exactly one stored bit).
        if (repair.status == ecc::DecodeStatus::kCorrectedCheck) {
          ecc::CheckBits& bits = code.check_bits_mutable(b);
          if (repair.check_on_leading_axis) {
            bits.leading.flip(repair.check_index);
          } else {
            bits.counter.flip(repair.check_index);
          }
        }
      }

      // Roll back the injected check flips; combined with the per-block
      // repair rollbacks above, every check bit has now been flipped an
      // even number of times and the stored state equals golden again.
      for (const fault::CheckFlip& f : record.check_flips) {
        ecc::CheckBits& bits = code.check_bits_mutable({f.block_row, f.block_col});
        if (f.on_leading_axis) {
          bits.leading.flip(f.index);
        } else {
          bits.counter.flip(f.index);
        }
      }

      out.blocks_failed += failed_blocks_this_trial;
      if (failed_blocks_this_trial > 0) ++out.trials_failed;
    }
  };

  for (const MonteCarloResult& partial : detail::run_partitioned<MonteCarloResult>(
           config.trials, config.threads, run_range)) {
    accumulate(result, partial);
  }
  return result;
}

double analytic_block_failure(const MonteCarloConfig& config) {
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const double cells = static_cast<double>(
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0));
  // 1 - (1-p)^B - B p (1-p)^(B-1), in log space for small p.
  const double log1mp = std::log1p(-p);
  const double ok = std::exp(cells * log1mp) +
                    cells * p * std::exp((cells - 1.0) * log1mp);
  return 1.0 - ok;
}

}  // namespace pimecc::rel
