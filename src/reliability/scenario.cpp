#include "reliability/scenario.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "fault/disturbance.hpp"
#include "fault/injector.hpp"
#include "fault/models.hpp"
#include "reliability/parallel.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

namespace {

void require_valid(const ScenarioConfig& config) {
  if (config.m == 0 || config.n == 0 || config.n % config.m != 0) {
    throw std::invalid_argument("ScenarioConfig: n must be a positive multiple of m");
  }
  if (config.trials == 0) {
    throw std::invalid_argument("ScenarioConfig: trials must be positive");
  }
  if (!(config.max_hours > 0.0) || !std::isfinite(config.max_hours)) {
    throw std::invalid_argument("ScenarioConfig: max_hours must be positive and finite");
  }
  const WorkloadModel& w = config.workload;
  if (w.activations_per_hour < 0.0 || !std::isfinite(w.activations_per_hour) ||
      !(w.hot_row_fraction >= 0.0 && w.hot_row_fraction <= 1.0) ||
      w.hot_multiplier < 0.0 || !std::isfinite(w.hot_multiplier)) {
    throw std::invalid_argument("ScenarioConfig: invalid workload model");
  }
  const FaultMix& f = config.faults;
  if (f.fit_per_bit < 0.0 || !std::isfinite(f.fit_per_bit)) {
    throw std::invalid_argument("ScenarioConfig: fit_per_bit must be >= 0");
  }
  if (f.disturb_per_activation < 0.0 || !std::isfinite(f.disturb_per_activation)) {
    throw std::invalid_argument("ScenarioConfig: disturb_per_activation must be >= 0");
  }
  if (f.disturb_radius == 0) {
    throw std::invalid_argument("ScenarioConfig: disturb_radius must be >= 1");
  }
  if (f.bursts_per_hour < 0.0 || !std::isfinite(f.bursts_per_hour)) {
    throw std::invalid_argument("ScenarioConfig: bursts_per_hour must be >= 0");
  }
  if (f.burst_length == 0) {
    throw std::invalid_argument("ScenarioConfig: burst_length must be >= 1");
  }
  if (!(f.burst_spread_probability >= 0.0 && f.burst_spread_probability <= 1.0)) {
    throw std::invalid_argument(
        "ScenarioConfig: burst_spread_probability must be in [0, 1]");
  }
  if (!(f.stuck_probability >= 0.0 && f.stuck_probability <= 1.0)) {
    throw std::invalid_argument("ScenarioConfig: stuck_probability must be in [0, 1]");
  }
  if (f.replace_after_repairs == 0) {
    throw std::invalid_argument("ScenarioConfig: replace_after_repairs must be >= 1");
  }
  rel::require_valid(config.policy);
}

/// Flat cell addressing shared by every mechanism: data cell (r, c) is slot
/// r * n + c; check bit `idx` on axis a of block (bR, bC) is slot
/// n^2 + (bR * nb + bC) * 2m + a * m + idx.  The block of any slot is thus
/// a pure index computation -- no per-cell state beyond the sparse diffs.
struct SlotMap {
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t nb = 0;          ///< blocks per side
  std::size_t data_cells = 0;  ///< n^2
  std::size_t population = 0;  ///< n^2 (+ 2m * nb^2 with check bits)

  SlotMap(std::size_t n_, std::size_t m_, bool include_check_bits)
      : n(n_), m(m_), nb(n_ / m_), data_cells(n_ * n_) {
    population = data_cells + (include_check_bits ? nb * nb * 2 * m : 0);
  }

  [[nodiscard]] std::size_t block_of(std::size_t slot) const noexcept {
    if (slot < data_cells) {
      return (slot / n) / m * nb + (slot % n) / m;
    }
    return (slot - data_cells) / (2 * m);
  }
};

/// Per-lane accumulator: commutative counters plus trial-reused scratch.
struct Lane {
  std::size_t failures = 0;
  std::uint64_t scrub_events = 0;
  std::uint64_t blocks_scrubbed = 0;
  std::uint64_t cells_scrubbed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t errors_corrected = 0;
  std::uint64_t stuck_repairs = 0;
  std::uint64_t cells_replaced = 0;

  std::vector<std::vector<std::size_t>> block_diffs;  ///< slots != golden
  std::vector<std::size_t> scratch;
  std::vector<double> window_activations;
  std::vector<fault::DataFlip> disturb_flips;
};

}  // namespace

WorkloadModel canonical_workload() noexcept { return WorkloadModel{}; }

std::vector<double> row_activation_rates(const WorkloadModel& workload,
                                         std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("row_activation_rates: n must be positive");
  }
  const auto hot_rows =
      static_cast<std::size_t>(workload.hot_row_fraction * static_cast<double>(n));
  std::vector<double> rates(n, workload.activations_per_hour);
  for (std::size_t r = 0; r < hot_rows; ++r) {
    rates[r] = workload.activations_per_hour * workload.hot_multiplier;
  }
  return rates;
}

bool apply_fault_preset(std::string_view name, double fit_per_bit, FaultMix& out) {
  FaultMix preset;
  preset.fit_per_bit = fit_per_bit;
  if (name == "iid") {
    // Pure SER: the lifetime.hpp scenario, the cross-check anchor.
  } else if (name == "disturb") {
    // ~0.4 extra flips per 24 h window near the hot rows at the canonical
    // workload (hot aggressors at 8000 activations/h, radius 1).
    preset.disturb_per_activation = 2e-9;
    preset.disturb_radius = 1;
  } else if (name == "burst") {
    preset.bursts_per_hour = 2e-4;
    preset.burst_length = 4;
    preset.burst_shape = fault::BurstShape::kVertical;
    preset.burst_spread_probability = 0.25;
  } else if (name == "stuckat") {
    preset.stuck_probability = 0.25;
    preset.replace_after_repairs = 3;
  } else if (name == "mixed") {
    preset.disturb_per_activation = 1e-9;
    preset.disturb_radius = 1;
    preset.bursts_per_hour = 1e-4;
    preset.burst_length = 4;
    preset.burst_shape = fault::BurstShape::kVertical;
    preset.burst_spread_probability = 0.25;
    preset.stuck_probability = 0.1;
    preset.replace_after_repairs = 3;
  } else {
    return false;
  }
  out = preset;
  return true;
}

std::span<const std::string_view> fault_preset_names() noexcept {
  static constexpr std::array<std::string_view, 5> kNames = {
      "iid", "disturb", "burst", "stuckat", "mixed"};
  return kNames;
}

double ScenarioResult::empirical_mttf_hours(double horizon) const noexcept {
  const double exposure =
      time_to_failure_hours.sum() +
      static_cast<double>(trials - failures) * horizon;
  if (failures == 0) return horizon * static_cast<double>(trials);
  return exposure / static_cast<double>(failures);
}

double ScenarioResult::scrub_cells_per_hour(double horizon) const noexcept {
  const double exposure =
      time_to_failure_hours.sum() +
      static_cast<double>(trials - failures) * horizon;
  if (!(exposure > 0.0)) return 0.0;
  return static_cast<double>(cells_scrubbed) / exposure;
}

ScenarioResult run_scenario(const ScenarioConfig& config, util::Rng& rng) {
  require_valid(config);

  const std::vector<double> rates = row_activation_rates(config.workload, config.n);
  const std::unique_ptr<ScrubPolicy> policy = make_scrub_policy(config.policy);
  const std::vector<ScrubEvent> plan = policy->plan(
      {config.n, config.m, config.max_hours, rates});

  const SlotMap map(config.n, config.m, config.include_check_bits);
  const FaultMix& mix = config.faults;
  const std::size_t blocks = map.nb * map.nb;
  const std::size_t cells_per_block =
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0);
  const double iid_fit = mix.fit_per_bit;
  const bool use_disturb = mix.disturb_per_activation > 0.0;
  const bool use_bursts = mix.bursts_per_hour > 0.0;
  const fault::DisturbanceModel disturb(
      config.n, config.n,
      {mix.disturb_per_activation, mix.disturb_radius, /*activation_floor=*/0});

  const std::uint64_t base_seed = rng.next();
  std::vector<double> ttf_slots(config.trials, -1.0);

  auto run_trial = [&](Lane& lane, std::size_t t) {
    util::Rng trial_rng = util::Rng::for_stream(base_seed, t);
    fault::StuckAtSet stuck(mix.replace_after_repairs);
    lane.block_diffs.resize(blocks);
    for (std::vector<std::size_t>& diffs : lane.block_diffs) diffs.clear();

    // One injection: toggle the slot's membership in its block's diff set
    // (a re-flip of a faulty cell restores it -- XOR semantics), unless the
    // cell is stuck, in which case it is pinned at its latched value and
    // the injection has no effect.  A fresh fault may latch (stuck-at) when
    // the mechanism produces persistent damage; disturbance is transient by
    // nature and never sticks.
    auto apply_fault = [&](std::size_t slot, bool may_stick) {
      ++lane.faults_injected;
      if (stuck.is_stuck(slot)) return;
      std::vector<std::size_t>& diffs = lane.block_diffs[map.block_of(slot)];
      const auto it = std::find(diffs.begin(), diffs.end(), slot);
      if (it != diffs.end()) {
        diffs.erase(it);
        return;
      }
      diffs.push_back(slot);
      if (may_stick && mix.stuck_probability > 0.0 &&
          trial_rng.bernoulli(mix.stuck_probability)) {
        stuck.mark(slot);
      }
    };

    double prev = 0.0;
    double ttf = -1.0;
    for (const ScrubEvent& event : plan) {
      const double dt = event.hours - prev;

      // --- fault arrival over (prev, event.hours], fixed mechanism order --
      if (iid_fit > 0.0) {
        const double p = util::error_probability(iid_fit, dt);
        const std::size_t count = trial_rng.binomial(map.population, p);
        if (count > 0) {
          fault::sample_distinct(trial_rng, map.population, count, lane.scratch);
          for (const std::size_t slot : lane.scratch) {
            apply_fault(slot, /*may_stick=*/true);
          }
        }
      }
      if (use_disturb) {
        lane.window_activations.resize(config.n);
        for (std::size_t r = 0; r < config.n; ++r) {
          lane.window_activations[r] = rates[r] * dt;
        }
        lane.disturb_flips.clear();
        disturb.sample(trial_rng, lane.window_activations, lane.disturb_flips,
                       lane.scratch);
        for (const fault::DataFlip& flip : lane.disturb_flips) {
          apply_fault(flip.r * config.n + flip.c, /*may_stick=*/false);
        }
      }
      if (use_bursts) {
        const std::size_t arrivals = trial_rng.poisson(mix.bursts_per_hour * dt);
        for (std::size_t a = 0; a < arrivals; ++a) {
          const std::vector<fault::DataFlip> cells = fault::correlated_burst_cells(
              trial_rng, config.n, config.n, config.m, mix.burst_length,
              mix.burst_shape, mix.burst_spread_probability);
          for (const fault::DataFlip& flip : cells) {
            apply_fault(flip.r * config.n + flip.c, /*may_stick=*/true);
          }
        }
      }

      // --- failure predicate, evaluated before the scrub can mask it ------
      for (const std::vector<std::size_t>& diffs : lane.block_diffs) {
        if (diffs.size() >= 2) {
          ttf = event.hours;
          break;
        }
      }
      if (ttf >= 0.0) break;

      // --- the scrub itself: every covered block holds at most one diff ---
      ++lane.scrub_events;
      auto scrub_block = [&](std::size_t b) {
        std::vector<std::size_t>& diffs = lane.block_diffs[b];
        if (diffs.empty()) return;
        const std::size_t slot = diffs.front();
        if (stuck.is_stuck(slot)) {
          ++lane.stuck_repairs;
          if (stuck.on_repair(slot)) {
            ++lane.cells_replaced;
            diffs.clear();  // remapped to a spare: repaired for good
          }
          // else: the latched cell re-asserts its value; the diff persists.
        } else {
          ++lane.errors_corrected;
          diffs.clear();
        }
      };
      std::size_t covered = 0;
      if (event.full()) {
        for (std::size_t b = 0; b < blocks; ++b) scrub_block(b);
        covered = blocks;
      } else {
        for (const std::size_t band : event.bands) {
          for (std::size_t j = 0; j < map.nb; ++j) {
            scrub_block(band * map.nb + j);
          }
        }
        covered = event.bands.size() * map.nb;
      }
      lane.blocks_scrubbed += covered;
      lane.cells_scrubbed += covered * cells_per_block;

      prev = event.hours;
      if (prev >= config.max_hours) break;
    }

    if (ttf >= 0.0) ++lane.failures;
    ttf_slots[t] = ttf;
  };

  const std::vector<Lane> lanes = detail::run_trial_pool<Lane>(
      config.trials, config.threads, [] { return Lane{}; }, run_trial);

  ScenarioResult result;
  result.trials = config.trials;
  for (const Lane& lane : lanes) {
    result.failures += lane.failures;
    result.scrub_events += lane.scrub_events;
    result.blocks_scrubbed += lane.blocks_scrubbed;
    result.cells_scrubbed += lane.cells_scrubbed;
    result.faults_injected += lane.faults_injected;
    result.errors_corrected += lane.errors_corrected;
    result.stuck_repairs += lane.stuck_repairs;
    result.cells_replaced += lane.cells_replaced;
  }
  for (const double ttf : ttf_slots) {
    if (ttf >= 0.0) result.time_to_failure_hours.add(ttf);
  }
  return result;
}

}  // namespace pimecc::rel
