// pimecc -- reliability/fleet_reliability.hpp
//
// Fleet-scale reliability campaigns: Monte Carlo over a sharded bank of
// crossbars and the Figure 6 MTTF grid over simulated datacenter-sized
// memories, both riding the persistent work-stealing executor.
//
// run_fleet_montecarlo treats a *shard* as the unit of work: shard s runs
// trials_per_shard sparse trials (reliability/sparse_trial.hpp -- the
// byte-for-byte single-crossbar trial body) on substreams
// 1 + s * trials_per_shard + t over ONE golden image per (n, m) config
// shared by every shard (substream 0, the run_montecarlo discipline).
// That makes the contract exact and testable: the fleet totals are
// BIT-IDENTICAL to run_montecarlo over shards * trials_per_shard flat
// trials from the same caller rng, at every shard count and every worker
// count -- the fleet engine cannot drift from the single-crossbar engine
// without tests/test_fleet.cpp and bench_fleet_throughput failing.  On
// top of the flat totals it reports per-shard outcome slots (filled by
// whichever lane ran the shard; deterministic because slot s belongs to
// shard s alone).
//
// run_fleet_mttf_grid evaluates a (SER x shard-count) grid of lifetime
// campaigns -- the empirical counterpart of the paper's Figure 6 sweep,
// scaled from one crossbar to a simulated bank -- pairing each cell's
// empirical MTTF (simulate_lifetime, skip-ahead engine, executor-parallel
// trials) with the Section V-A closed form for the same geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/fleet.hpp"
#include "reliability/lifetime.hpp"
#include "reliability/montecarlo.hpp"
#include "util/rng.hpp"

namespace pimecc::rel {

/// Configuration of one fleet Monte Carlo campaign.
struct FleetMonteCarloConfig {
  std::size_t n = 120;   ///< per-shard crossbar dimension
  std::size_t m = 15;    ///< block size
  double fit_per_bit = 0.0;
  double window_hours = 24.0;
  std::size_t shards = 64;
  std::size_t trials_per_shard = 10;
  bool include_check_bits = true;
  std::size_t threads = 1;  ///< executor lanes; 0 = full shared-executor width

  [[nodiscard]] std::size_t total_trials() const noexcept {
    return shards * trials_per_shard;
  }
  /// The flat single-crossbar configuration this campaign must reproduce
  /// bit-identically (trials = shards * trials_per_shard).
  [[nodiscard]] MonteCarloConfig flat() const noexcept {
    MonteCarloConfig config;
    config.n = n;
    config.m = m;
    config.fit_per_bit = fit_per_bit;
    config.window_hours = window_hours;
    config.trials = total_trials();
    config.include_check_bits = include_check_bits;
    config.threads = threads;
    return config;
  }
};

/// Outcome slot of one shard (deterministic: slot s is written only by the
/// lane that ran shard s, whichever lane that was).
struct FleetShardOutcome {
  std::size_t trials_with_errors = 0;
  std::size_t trials_failed = 0;
  std::uint64_t flips_injected = 0;
  std::uint64_t blocks_failed = 0;
  /// Full per-shard counters (trials/blocks_total included), so degraded
  /// campaign totals are exactly the sum of the surviving shards' stats.
  MonteCarloResult stats;
  /// True when the shard was quarantined without a spare and ran no trials.
  bool skipped = false;
  bool operator==(const FleetShardOutcome&) const noexcept = default;
};

/// Aggregated fleet campaign outcome.
struct FleetMonteCarloResult {
  /// Flat totals; bit-identical to run_montecarlo(config.flat(), rng).
  MonteCarloResult total;
  /// Per-shard outcomes in shard order.
  std::vector<FleetShardOutcome> shards;
};

/// Runs the fleet campaign.  Draws exactly one value from `rng`; see the
/// file comment for the substream mapping and the bit-identity contract.
[[nodiscard]] FleetMonteCarloResult run_fleet_montecarlo(
    const FleetMonteCarloConfig& config, util::Rng& rng);

/// Degradation bookkeeping of one health-aware fleet campaign.
struct FleetDegradationReport {
  /// Logical shards quarantined by the preflight scrub, in shard order.
  std::vector<std::size_t> quarantined;
  std::size_t spares_activated = 0;  ///< quarantined shards remapped + rerun
  std::size_t shards_excluded = 0;   ///< quarantined shards with no spare
  std::size_t trials_skipped = 0;    ///< excluded shards x trials_per_shard
  [[nodiscard]] bool degraded() const noexcept { return !quarantined.empty(); }
};

/// Health-aware campaign outcome: totals cover ONLY the shards that ran.
struct FleetCampaignResult {
  MonteCarloResult total;
  std::vector<FleetShardOutcome> shards;  ///< slot.skipped marks exclusions
  FleetDegradationReport degradation;
};

/// Runs a Monte Carlo campaign over `fleet`'s health state: a preflight
/// scrub quarantines every shard reporting uncorrectable blocks
/// (CrossbarFleet::quarantine_uncorrectable); quarantined shards with a
/// spare are remapped, reloaded, and run their trials normally, shards
/// without one are excluded with exact bookkeeping.  Substreams are
/// logical-shard-indexed (shard s trial t on 1 + s*T + t, identical to
/// run_fleet_montecarlo), so a fully respared campaign is BIT-IDENTICAL to
/// a healthy one, and an excluded campaign's totals equal the healthy
/// run's minus exactly the excluded shards' slots.  Requires
/// fleet.shard_count() == config.shards and matching (n, m); draws exactly
/// one value from `rng`.
[[nodiscard]] FleetCampaignResult run_fleet_campaign(
    const FleetMonteCarloConfig& config, arch::CrossbarFleet& fleet,
    util::Rng& rng);

/// One cell of the fleet MTTF grid.
struct FleetMttfPoint {
  double fit_per_bit = 0.0;
  std::size_t shards = 0;
  std::size_t trials = 0;
  std::size_t failures = 0;
  double horizon_hours = 0.0;
  double empirical_mttf_hours = 0.0;  ///< censored MLE (LifetimeResult)
  double analytic_mttf_hours = 0.0;   ///< Section V-A closed form
  std::uint64_t scrub_windows = 0;    ///< scrubs simulated across all trials
};

/// Grid configuration: the cross product of SER points and shard counts,
/// each cell a full lifetime campaign over a bank of `shards` crossbars.
struct FleetMttfGridConfig {
  std::size_t n = 1020;
  std::size_t m = 15;
  double scrub_period_hours = 24.0;
  double max_hours = 24.0 * 365 * 20;  ///< per-trial horizon
  std::size_t trials = 100;
  std::size_t threads = 0;  ///< executor lanes per cell; 0 = full width
  std::vector<double> fit_points;
  std::vector<std::size_t> shard_counts;
};

/// Evaluates the grid cell by cell (each cell's trials run
/// executor-parallel).  Cells are seeded with one caller draw each, in
/// row-major (fit, shards) order, so the grid is reproducible from the
/// caller's rng state regardless of worker count.
[[nodiscard]] std::vector<FleetMttfPoint> run_fleet_mttf_grid(
    const FleetMttfGridConfig& config, util::Rng& rng);

}  // namespace pimecc::rel
