#include "reliability/reference_reliability.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "reliability/config_checks.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

namespace {

/// Folds one worker's counters into the aggregate.  All fields are integer
/// sums over disjoint trial sets, so the merge is order-insensitive.
void accumulate(MonteCarloResult& total, const MonteCarloResult& partial) {
  total.trials_with_errors += partial.trials_with_errors;
  total.trials_failed += partial.trials_failed;
  total.flips_injected += partial.flips_injected;
  total.blocks_failed += partial.blocks_failed;
  total.blocks_with_errors += partial.blocks_with_errors;
  total.corrected_data += partial.corrected_data;
  total.corrected_check += partial.corrected_check;
  total.detected_uncorrectable += partial.detected_uncorrectable;
  total.miscorrected += partial.miscorrected;
}

}  // namespace

MonteCarloResult reference_run_montecarlo(const MonteCarloConfig& config,
                                          util::Rng& rng) {
  require_valid(config);
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;
  const std::size_t population = data_cells + check_cells;

  MonteCarloResult result;
  result.trials = config.trials;
  result.blocks_total =
      static_cast<std::uint64_t>(config.trials) * probe.block_count();

  // One draw from the caller's stream seeds everything below, so the
  // caller's generator advances identically for every thread count.
  const std::uint64_t base_seed = rng.next();

  util::BitMatrix golden(config.n, config.n);
  {
    util::Rng golden_rng = util::Rng::for_stream(base_seed, 0);
    for (std::size_t r = 0; r < config.n; ++r) {
      util::BitVector& row = golden.row(r);
      for (auto& word : row.words_mutable()) word = golden_rng.next();
      row.sanitize();
    }
  }
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);

  const std::size_t bps = golden_code.blocks_per_side();
  // Column-range mask per block column: the failed-block scan is a row-XOR
  // against these masks instead of a per-bit walk.
  std::vector<util::BitVector> block_masks(bps, util::BitVector(config.n));
  for (std::size_t bc = 0; bc < bps; ++bc) {
    for (std::size_t c = bc * config.m; c < (bc + 1) * config.m; ++c) {
      block_masks[bc].set(c, true);
    }
  }

  // Runs trials [first, last) into `out`, with all scratch state local to
  // the worker.  Each trial's randomness comes from its own substream, so
  // the partition into workers cannot affect any sampled value.
  auto run_range = [&](std::size_t first, std::size_t last, MonteCarloResult& out) {
    util::BitMatrix data;
    ecc::ArrayCode code = golden_code;
    util::BitVector band_acc(config.n);
    util::BitVector diff(config.n);
    std::vector<char> block_touched(golden_code.block_count());
    for (std::size_t t = first; t < last; ++t) {
      util::Rng trial_rng = util::Rng::for_stream(base_seed, t + 1);
      const std::size_t flips =
          static_cast<std::size_t>(trial_rng.binomial(population, p));
      if (flips == 0) continue;
      ++out.trials_with_errors;
      out.flips_injected += flips;

      data = golden;
      code = golden_code;
      const fault::InjectionRecord record =
          config.include_check_bits
              ? fault::inject_flips_everywhere(trial_rng, data, code, flips)
              : fault::inject_data_flips(trial_rng, data, flips);

      // Which blocks received at least one flip.
      std::fill(block_touched.begin(), block_touched.end(), 0);
      for (const fault::DataFlip& f : record.data_flips) {
        const ecc::BlockIndex b = code.block_of(f.r, f.c);
        block_touched[b.block_row * bps + b.block_col] = 1;
      }
      for (const fault::CheckFlip& f : record.check_flips) {
        block_touched[f.block_row * bps + f.block_col] = 1;
      }
      for (const char touched : block_touched) {
        if (touched) ++out.blocks_with_errors;
      }

      // Whole-array check via the word-parallel batch band path (one pass
      // per block band; see ArrayCode::scrub) -- the dominant per-trial cost.
      const ecc::ScrubReport scrub = code.scrub(data);
      out.corrected_data += scrub.corrected_data;
      out.corrected_check += scrub.corrected_check;
      out.detected_uncorrectable += scrub.uncorrectable;

      // Failure accounting: any data bit still wrong after repair.  The
      // band accumulator ORs the row-XOR of each row in a block band; a
      // block failed iff the accumulator intersects its column mask.
      std::size_t failed_blocks_this_trial = 0;
      for (std::size_t br = 0; br < bps; ++br) {
        band_acc.fill(false);
        for (std::size_t r = br * config.m; r < (br + 1) * config.m; ++r) {
          diff = data.row(r);
          diff ^= golden.row(r);
          band_acc |= diff;
        }
        if (band_acc.none()) continue;
        for (std::size_t bc = 0; bc < bps; ++bc) {
          if (band_acc.intersects(block_masks[bc])) ++failed_blocks_this_trial;
        }
      }
      out.blocks_failed += failed_blocks_this_trial;
      if (failed_blocks_this_trial > 0) ++out.trials_failed;
      // Miscorrection: a "correction" happened but the block is still bad, or
      // data changed away from golden where no flip landed -- approximated as
      // failed blocks that reported a data correction.  (The sparse engine
      // computes the exact per-block verdict instead; see the header.)
      if (failed_blocks_this_trial > 0 && scrub.corrected_data > 0) {
        out.miscorrected += failed_blocks_this_trial;
      }
    }
  };

  std::size_t n_threads =
      config.threads != 0
          ? config.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  n_threads = std::min<std::size_t>(n_threads, std::max<std::size_t>(config.trials, 1));

  if (n_threads <= 1) {
    run_range(0, config.trials, result);
    return result;
  }

  std::vector<MonteCarloResult> partials(n_threads);
  // An exception escaping a std::thread body calls std::terminate; capture
  // per worker and rethrow after the join so errors surface to the caller
  // exactly as they do on the single-threaded path.
  std::vector<std::exception_ptr> errors(n_threads);
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    const std::size_t first = config.trials * i / n_threads;
    const std::size_t last = config.trials * (i + 1) / n_threads;
    workers.emplace_back([&run_range, &partials, &errors, i, first, last] {
      try {
        run_range(first, last, partials[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (const MonteCarloResult& partial : partials) accumulate(result, partial);
  return result;
}

LifetimeResult reference_simulate_lifetime(const LifetimeConfig& config,
                                           util::Rng& rng) {
  require_valid(config);
  const std::size_t blocks_per_side = config.n / config.m;
  const std::size_t blocks_per_xbar = blocks_per_side * blocks_per_side;
  const std::size_t total_blocks = blocks_per_xbar * config.crossbars;
  const std::size_t cells_per_block =
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0);
  const double p_window = util::error_probability(config.fit_per_bit,
                                                  config.scrub_period_hours);

  LifetimeResult result;
  result.trials = config.trials;

  // Per scrub window: errors land uniformly across all cells; a scrub
  // clears blocks with <= 1 error and the memory fails on the first block
  // holding >= 2.  Sampling one binomial for the whole memory per window
  // (then assigning hits to blocks only when >= 2 landed) keeps long
  // lifetimes tractable; the block-level abstraction is exact for the model
  // under test (per-bit mechanics are validated by run_montecarlo).
  const std::uint64_t total_cells =
      static_cast<std::uint64_t>(total_blocks) * cells_per_block;
  std::vector<std::size_t> hit_blocks;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    double hours = 0.0;
    bool failed = false;
    while (hours < config.max_hours && !failed) {
      hours += config.scrub_period_hours;
      ++result.scrubs_performed;
      const std::uint64_t hits = rng.binomial(total_cells, p_window);
      if (hits == 0) continue;
      if (hits == 1) {
        ++result.errors_corrected;
        continue;
      }
      // Assign each hit to a block; distinct-cell correction is negligible
      // at the rates of interest (hits << cells_per_block).
      hit_blocks.clear();
      for (std::uint64_t h = 0; h < hits; ++h) {
        hit_blocks.push_back(
            static_cast<std::size_t>(rng.uniform_below(total_blocks)));
      }
      std::sort(hit_blocks.begin(), hit_blocks.end());
      for (std::size_t i = 0; i + 1 < hit_blocks.size(); ++i) {
        if (hit_blocks[i] == hit_blocks[i + 1]) {
          failed = true;
          break;
        }
      }
      if (!failed) result.errors_corrected += hits;
    }
    if (failed) {
      ++result.failures;
      result.time_to_failure_hours.add(hours);
    }
  }
  return result;
}

}  // namespace pimecc::rel
