// pimecc -- reliability/lifetime.hpp
//
// Discrete-time lifetime simulation of a multi-crossbar memory: soft
// errors arrive continuously at a constant SER, the full memory is
// scrubbed every T hours, and the memory *fails* the first time a scrub
// meets a block carrying more than one error (silent corruption becomes
// possible).  Running many lifetimes yields an empirical MTTF that the
// Section V-A closed form must predict -- the strongest end-to-end check
// of Figure 6's machinery, complementing the per-block Monte Carlo.
//
// The engine is event-driven: instead of walking every scrub window of a
// multi-year horizon one binomial at a time, it samples the index of the
// next NON-EMPTY window directly (windows are iid, so the gap is geometric
// in P(window non-empty); util::Rng::geometric) and then draws the window's
// hit count from the binomial conditioned on >= 1 -- identical in
// distribution to the window-by-window walk, at O(events) instead of
// O(windows) per trial.  Trials run as dynamic-ticket lanes on the shared
// work-stealing executor with the same determinism contract as
// run_montecarlo: one base seed drawn from the caller, trial t on
// substream t (util::Rng::for_stream), results bit-identical for any
// thread count (per-trial TTFs are folded into the RunningStats in trial
// order after the join).  Since skip-ahead resamples
// the stream, the original walker is retained as
// reference_simulate_lifetime (reference_reliability.hpp) and the two are
// pinned by equivalence-of-distribution tests, not bit equality.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pimecc::rel {

/// Configuration of one lifetime campaign.
struct LifetimeConfig {
  std::size_t n = 60;             ///< per-crossbar dimension
  std::size_t m = 15;             ///< block size
  std::size_t crossbars = 4;      ///< units in the memory
  double fit_per_bit = 0.0;       ///< SER (use high rates for tractability)
  double scrub_period_hours = 24.0;
  std::size_t trials = 100;
  double max_hours = 1e7;         ///< per-trial simulation horizon
  bool include_check_bits = true;
  std::size_t threads = 1;        ///< executor lanes; 0 = full shared-executor width
};

/// Campaign outcome.
struct LifetimeResult {
  std::size_t trials = 0;
  std::size_t failures = 0;       ///< trials that failed within the horizon
  util::RunningStats time_to_failure_hours;  ///< over failed trials
  std::uint64_t scrubs_performed = 0;
  std::uint64_t errors_corrected = 0;

  /// Empirical MTTF from a censored campaign: total observed exposure
  /// (failed trials contribute their TTF, censored trials the full
  /// `horizon`) divided by the failure count -- the standard censored-data
  /// MLE for an exponential lifetime.  With failures == 0 the MLE is
  /// undefined; by convention the function returns `horizon * trials`,
  /// i.e. the total exposure, which lower-bounds any MTTF consistent with
  /// observing zero failures.
  [[nodiscard]] double empirical_mttf_hours(double horizon) const noexcept;
};

/// Running state of a campaign, resumable at any trial boundary.  Because
/// trial t rides its own for_stream substream, the first `trials_done`
/// trials are a closed set: no random draw of a later trial depends on
/// them, so a campaign advanced in chunks (possibly serialized to disk and
/// reloaded between chunks, possibly at a different thread count) produces
/// results bit-identical to one uninterrupted run.
struct LifetimeProgress {
  std::uint64_t base_seed = 0;   ///< seeds substream t for trial t
  std::size_t trials_done = 0;   ///< trials completed so far
  std::size_t failures = 0;
  std::uint64_t scrubs_performed = 0;
  std::uint64_t errors_corrected = 0;
  /// Per-trial time to failure in hours for trials [0, trials_done);
  /// negative means the trial survived the horizon.
  std::vector<double> ttf_hours;
};

/// Starts a campaign: validates `config` and draws exactly ONE value from
/// `rng` (the base seed), just like simulate_lifetime.
[[nodiscard]] LifetimeProgress begin_lifetime(const LifetimeConfig& config,
                                              util::Rng& rng);

/// Runs up to `max_trials` more trials (0 = all remaining) on the shared
/// executor and folds them into `progress`.  Returns the number of trials
/// actually run.  `config` must be the campaign's own configuration --
/// except `threads`, which may vary freely between calls without changing
/// any result bit.
std::size_t advance_lifetime(const LifetimeConfig& config,
                             LifetimeProgress& progress,
                             std::size_t max_trials = 0);

[[nodiscard]] inline bool lifetime_complete(
    const LifetimeConfig& config, const LifetimeProgress& progress) noexcept {
  return progress.trials_done >= config.trials;
}

/// Folds `progress` into the campaign outcome (over the trials completed so
/// far; `result.trials` is progress.trials_done).
[[nodiscard]] LifetimeResult lifetime_result(const LifetimeProgress& progress);

/// Writes one resumable-campaign chunk (magic "PIMECCLT"): the config
/// fingerprint (minus `threads`) plus the full LifetimeProgress.
void save_lifetime_checkpoint(std::ostream& os, const LifetimeConfig& config,
                              const LifetimeProgress& progress);

/// Reads a campaign chunk and validates it against `config`: every field
/// but `threads` must match the saved fingerprint bit-for-bit (resuming
/// under a different configuration would silently mix distributions).
/// Throws util::SerializeError on any defect; never returns partial state.
[[nodiscard]] LifetimeProgress load_lifetime_checkpoint(
    std::istream& is, const LifetimeConfig& config);

/// Runs the campaign with the skip-ahead engine.  Draws exactly one value
/// from `rng`; see the file comment for the determinism contract.
/// Equivalent by construction to begin_lifetime + advance_lifetime(all) +
/// lifetime_result -- the chunked and uninterrupted paths share this one
/// code path, which is what the checkpoint/resume bit-identity tests pin.
[[nodiscard]] LifetimeResult simulate_lifetime(const LifetimeConfig& config,
                                               util::Rng& rng);

/// The closed-form MTTF prediction for the same configuration (the Figure 6
/// model applied to `crossbars` units of n x n instead of 1 GB).
[[nodiscard]] double analytic_mttf_hours(const LifetimeConfig& config);

}  // namespace pimecc::rel
