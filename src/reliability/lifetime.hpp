// pimecc -- reliability/lifetime.hpp
//
// Discrete-time lifetime simulation of a multi-crossbar memory: soft
// errors arrive continuously at a constant SER, the full memory is
// scrubbed every T hours, and the memory *fails* the first time a scrub
// meets a block carrying more than one error (silent corruption becomes
// possible).  Running many lifetimes yields an empirical MTTF that the
// Section V-A closed form must predict -- the strongest end-to-end check
// of Figure 6's machinery, complementing the per-block Monte Carlo.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pimecc::rel {

/// Configuration of one lifetime campaign.
struct LifetimeConfig {
  std::size_t n = 60;             ///< per-crossbar dimension
  std::size_t m = 15;             ///< block size
  std::size_t crossbars = 4;      ///< units in the memory
  double fit_per_bit = 0.0;       ///< SER (use high rates for tractability)
  double scrub_period_hours = 24.0;
  std::size_t trials = 100;
  double max_hours = 1e7;         ///< per-trial simulation horizon
  bool include_check_bits = true;
};

/// Campaign outcome.
struct LifetimeResult {
  std::size_t trials = 0;
  std::size_t failures = 0;       ///< trials that failed within the horizon
  util::RunningStats time_to_failure_hours;  ///< over failed trials
  std::uint64_t scrubs_performed = 0;
  std::uint64_t errors_corrected = 0;

  /// Empirical MTTF estimate (censored trials count the full horizon).
  [[nodiscard]] double empirical_mttf_hours(double horizon) const noexcept;
};

/// Runs the campaign.
[[nodiscard]] LifetimeResult simulate_lifetime(const LifetimeConfig& config,
                                               util::Rng& rng);

/// The closed-form MTTF prediction for the same configuration (the Figure 6
/// model applied to `crossbars` units of n x n instead of 1 GB).
[[nodiscard]] double analytic_mttf_hours(const LifetimeConfig& config);

}  // namespace pimecc::rel
