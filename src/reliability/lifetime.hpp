// pimecc -- reliability/lifetime.hpp
//
// Discrete-time lifetime simulation of a multi-crossbar memory: soft
// errors arrive continuously at a constant SER, the full memory is
// scrubbed every T hours, and the memory *fails* the first time a scrub
// meets a block carrying more than one error (silent corruption becomes
// possible).  Running many lifetimes yields an empirical MTTF that the
// Section V-A closed form must predict -- the strongest end-to-end check
// of Figure 6's machinery, complementing the per-block Monte Carlo.
//
// The engine is event-driven: instead of walking every scrub window of a
// multi-year horizon one binomial at a time, it samples the index of the
// next NON-EMPTY window directly (windows are iid, so the gap is geometric
// in P(window non-empty); util::Rng::geometric) and then draws the window's
// hit count from the binomial conditioned on >= 1 -- identical in
// distribution to the window-by-window walk, at O(events) instead of
// O(windows) per trial.  Trials run as dynamic-ticket lanes on the shared
// work-stealing executor with the same determinism contract as
// run_montecarlo: one base seed drawn from the caller, trial t on
// substream t (util::Rng::for_stream), results bit-identical for any
// thread count (per-trial TTFs are folded into the RunningStats in trial
// order after the join).  Since skip-ahead resamples
// the stream, the original walker is retained as
// reference_simulate_lifetime (reference_reliability.hpp) and the two are
// pinned by equivalence-of-distribution tests, not bit equality.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pimecc::rel {

/// Configuration of one lifetime campaign.
struct LifetimeConfig {
  std::size_t n = 60;             ///< per-crossbar dimension
  std::size_t m = 15;             ///< block size
  std::size_t crossbars = 4;      ///< units in the memory
  double fit_per_bit = 0.0;       ///< SER (use high rates for tractability)
  double scrub_period_hours = 24.0;
  std::size_t trials = 100;
  double max_hours = 1e7;         ///< per-trial simulation horizon
  bool include_check_bits = true;
  std::size_t threads = 1;        ///< executor lanes; 0 = full shared-executor width
};

/// Campaign outcome.
struct LifetimeResult {
  std::size_t trials = 0;
  std::size_t failures = 0;       ///< trials that failed within the horizon
  util::RunningStats time_to_failure_hours;  ///< over failed trials
  std::uint64_t scrubs_performed = 0;
  std::uint64_t errors_corrected = 0;

  /// Empirical MTTF from a censored campaign: total observed exposure
  /// (failed trials contribute their TTF, censored trials the full
  /// `horizon`) divided by the failure count -- the standard censored-data
  /// MLE for an exponential lifetime.  With failures == 0 the MLE is
  /// undefined; by convention the function returns `horizon * trials`,
  /// i.e. the total exposure, which lower-bounds any MTTF consistent with
  /// observing zero failures.
  [[nodiscard]] double empirical_mttf_hours(double horizon) const noexcept;
};

/// Runs the campaign with the skip-ahead engine.  Draws exactly one value
/// from `rng`; see the file comment for the determinism contract.
[[nodiscard]] LifetimeResult simulate_lifetime(const LifetimeConfig& config,
                                               util::Rng& rng);

/// The closed-form MTTF prediction for the same configuration (the Figure 6
/// model applied to `crossbars` units of n x n instead of 1 GB).
[[nodiscard]] double analytic_mttf_hours(const LifetimeConfig& config);

}  // namespace pimecc::rel
