#include "reliability/analytic.hpp"

#include <cmath>
#include <stdexcept>

#include "util/modmath.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

namespace {

void validate(const ReliabilityQuery& q) {
  if (q.n == 0 || q.m == 0 || q.n % q.m != 0 || q.m % 2 == 0) {
    throw std::invalid_argument(
        "ReliabilityQuery: need odd m dividing n (both positive)");
  }
  if (q.check_period_hours <= 0.0 || q.fit_per_bit < 0.0) {
    throw std::invalid_argument("ReliabilityQuery: bad rate or period");
  }
}

/// Crossbars needed to assemble the memory from n*n data bits each.
std::uint64_t crossbar_count(const ReliabilityQuery& q) {
  return util::ceil_div(q.memory_bits,
                        static_cast<std::uint64_t>(q.n) * q.n);
}

ReliabilityPoint finish(const ReliabilityQuery& q, double log_memory_success) {
  ReliabilityPoint out;
  out.bit_error_probability = util::error_probability(q.fit_per_bit,
                                                      q.check_period_hours);
  out.log_memory_success = log_memory_success;
  // P(fail) = 1 - exp(log_success) = -expm1(log_success).
  const double p_fail = -std::expm1(log_memory_success);
  out.memory_fit = util::probability_to_fit(p_fail, q.check_period_hours);
  out.mttf_hours = util::fit_to_mttf_hours(out.memory_fit);
  return out;
}

}  // namespace

ReliabilityPoint evaluate_proposed(const ReliabilityQuery& query) {
  validate(query);
  const double p = util::error_probability(query.fit_per_bit,
                                           query.check_period_hours);
  const double block_cells = static_cast<double>(
      query.m * query.m + (query.include_check_bits ? 2 * query.m : 0));
  // log P(block ok) = log((1-p)^B + B p (1-p)^(B-1))
  //                 = (B-1) log(1-p) + log((1-p) + B p).
  const double log1mp = std::log1p(-p);
  const double log_block =
      (block_cells - 1.0) * log1mp + std::log1p(-p + block_cells * p);
  const double blocks_per_xbar =
      static_cast<double>((query.n / query.m) * (query.n / query.m));
  const double log_xbar = log_block * blocks_per_xbar;
  const double log_memory =
      log_xbar * static_cast<double>(crossbar_count(query));
  ReliabilityPoint out = finish(query, log_memory);
  out.log_block_success = log_block;
  return out;
}

ReliabilityPoint evaluate_baseline(const ReliabilityQuery& query) {
  validate(query);
  const double p = util::error_probability(query.fit_per_bit,
                                           query.check_period_hours);
  // Any of the memory_bits failing is a memory failure.
  const double log_memory =
      std::log1p(-p) * static_cast<double>(query.memory_bits);
  return finish(query, log_memory);
}

std::vector<SweepPoint> sweep_mttf(const ReliabilityQuery& base, double fit_low,
                                   double fit_high, std::size_t points_per_decade) {
  if (fit_low <= 0.0 || fit_high < fit_low || points_per_decade == 0) {
    throw std::invalid_argument("sweep_mttf: bad sweep range");
  }
  std::vector<SweepPoint> points;
  const double step = 1.0 / static_cast<double>(points_per_decade);
  const double log_low = std::log10(fit_low);
  const double log_high = std::log10(fit_high);
  for (double lg = log_low; lg <= log_high + 1e-9; lg += step) {
    ReliabilityQuery q = base;
    q.fit_per_bit = std::pow(10.0, lg);
    SweepPoint pt;
    pt.fit_per_bit = q.fit_per_bit;
    pt.baseline_mttf_hours = evaluate_baseline(q).mttf_hours;
    pt.proposed_mttf_hours = evaluate_proposed(q).mttf_hours;
    points.push_back(pt);
  }
  return points;
}

}  // namespace pimecc::rel
