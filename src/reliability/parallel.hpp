// pimecc -- reliability/parallel.hpp
//
// Shared trial-pool scaffolding for the reliability engines: contiguous
// deterministic partition of [0, trials) over a std::thread pool, with
// per-worker exception capture rethrown after the join (an exception
// escaping a std::thread body would call std::terminate).  Because every
// engine derives each trial's randomness from its own substream, the
// partition cannot affect any sampled value -- only how work is spread.
// (reference_reliability.cpp keeps its own frozen copy by design.)
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace pimecc::rel::detail {

/// Runs `fn(first, last, partial)` over a deterministic contiguous
/// partition of [0, trials) with `threads` workers (0 = hardware
/// concurrency, capped by the trial count) and returns one `Partial` per
/// worker, in worker order.  The caller merges them; for commutative
/// integer sums the merge is thread-count invariant.
template <typename Partial, typename Fn>
std::vector<Partial> run_partitioned(std::size_t trials, std::size_t threads,
                                     Fn&& fn) {
  std::size_t n_threads =
      threads != 0 ? threads
                   : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  n_threads = std::min<std::size_t>(n_threads, std::max<std::size_t>(trials, 1));

  std::vector<Partial> partials(n_threads);
  if (n_threads <= 1) {
    fn(std::size_t{0}, trials, partials[0]);
    return partials;
  }
  std::vector<std::exception_ptr> errors(n_threads);
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    const std::size_t first = trials * i / n_threads;
    const std::size_t last = trials * (i + 1) / n_threads;
    workers.emplace_back([&fn, &partials, &errors, i, first, last] {
      try {
        fn(first, last, partials[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return partials;
}

}  // namespace pimecc::rel::detail
