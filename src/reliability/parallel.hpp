// pimecc -- reliability/parallel.hpp
//
// Trial-pool scaffolding for the reliability engines, rebuilt on the
// persistent work-stealing executor (util/executor.hpp).  The historical
// run_partitioned carved [0, trials) into one contiguous chunk per
// std::thread spawned fresh for the call -- and silently clamped the
// thread count by the trial count before any load cost was known, so a
// single expensive trial serialized the rest of its chunk behind it.
// run_trial_pool replaces both defects at once: lanes pull single trial
// indices from a shared atomic ticket counter (dynamic stealing; a slow
// trial occupies exactly one lane while every other lane drains the rest),
// and the lanes are executor tasks, so no threads are created per call.
//
// Determinism is unchanged from the PR 5 contract: every engine derives a
// trial's randomness from the trial's own substream and merges either
// commutative integer sums or per-trial result slots, so which lane runs
// which trial cannot affect any result bit.  Exceptions thrown by a trial
// are captured and rethrown after every lane has finished
// (TaskGroup::wait's rethrow-after-join contract); the remaining trials
// still run.  (reference_reliability.cpp keeps its own frozen copy of the
// old spawner by design.)
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/executor.hpp"

namespace pimecc::rel::detail {

/// Runs `run_trial(lane_state, t)` once for every t in [0, trials) over a
/// pool of lanes with dynamic single-trial tickets.  `threads` caps the
/// lane count (0 = the shared executor's parallelism); lanes never exceed
/// the trial count because more could not run anyway.  `make_lane()` is
/// called once per lane, on the calling thread, before any trial runs;
/// each lane task owns its state exclusively.  Returns the lane states in
/// lane order for the caller to merge (commutative merges are
/// thread-count invariant).  threads == 1 runs inline with no executor
/// traffic, preserving the serial path exactly.
template <typename Lane, typename MakeLane, typename RunTrial>
std::vector<Lane> run_trial_pool(std::size_t trials, std::size_t threads,
                                 MakeLane&& make_lane, RunTrial&& run_trial) {
  std::size_t lanes =
      threads != 0 ? threads : util::Executor::shared().parallelism();
  lanes = std::min(lanes, std::max<std::size_t>(trials, 1));

  std::vector<Lane> lane_states;
  lane_states.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) lane_states.push_back(make_lane());

  if (lanes <= 1) {
    for (std::size_t t = 0; t < trials; ++t) run_trial(lane_states[0], t);
    return lane_states;
  }

  std::atomic<std::size_t> next{0};
  util::TaskGroup group(util::Executor::shared());
  for (std::size_t i = 0; i < lanes; ++i) {
    group.submit([&next, &run_trial, trials, lane = &lane_states[i]] {
      for (;;) {
        const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= trials) return;
        run_trial(*lane, t);
      }
    });
  }
  group.wait();  // helps; rethrows the first trial exception after the join
  return lane_states;
}

}  // namespace pimecc::rel::detail
