#include "reliability/scrub_policy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace pimecc::rel {

namespace {

// Backstop against degenerate configurations (e.g. a microsecond period over
// a decade horizon) producing schedules that could never be simulated anyway.
constexpr std::size_t kMaxScheduleEvents = 10'000'000;

void require_context(const ScrubPlanContext& ctx) {
  if (ctx.m == 0 || ctx.n == 0 || ctx.n % ctx.m != 0) {
    throw std::invalid_argument("ScrubPolicy::plan: n must be a positive multiple of m");
  }
  if (!(ctx.horizon_hours > 0.0) || !std::isfinite(ctx.horizon_hours)) {
    throw std::invalid_argument("ScrubPolicy::plan: horizon must be positive and finite");
  }
  if (ctx.row_activation_rates.size() != ctx.n) {
    throw std::invalid_argument(
        "ScrubPolicy::plan: row_activation_rates must have one entry per row");
  }
  for (const double rate : ctx.row_activation_rates) {
    if (rate < 0.0 || !std::isfinite(rate)) {
      throw std::invalid_argument(
          "ScrubPolicy::plan: activation rates must be finite and non-negative");
    }
  }
}

/// Emits the periodic stream t = period, 2*period, ... ; an event is kept
/// while its window start (k*period) is before the horizon, so the final
/// event may overhang -- the lifetime engine's accounting (see plan() doc).
template <typename Emit>
void emit_periodic_stream(double period, double horizon, Emit&& emit) {
  for (std::size_t k = 0;; ++k) {
    const double start = static_cast<double>(k) * period;
    if (start >= horizon) break;
    if (k >= kMaxScheduleEvents) {
      throw std::length_error("ScrubPolicy::plan: schedule exceeds sanity cap");
    }
    emit(static_cast<double>(k + 1) * period);
  }
}

/// Sorts raw per-stream events by time and merges coincident ones: a full
/// event absorbs band lists; a band union covering every band becomes full.
std::vector<ScrubEvent> coalesce(std::vector<ScrubEvent> raw, std::size_t bands) {
  if (raw.size() > kMaxScheduleEvents) {
    throw std::length_error("ScrubPolicy::plan: schedule exceeds sanity cap");
  }
  std::sort(raw.begin(), raw.end(), [](const ScrubEvent& a, const ScrubEvent& b) {
    return a.hours < b.hours;
  });
  std::vector<ScrubEvent> merged;
  merged.reserve(raw.size());
  for (ScrubEvent& event : raw) {
    if (!merged.empty() && merged.back().hours == event.hours) {
      ScrubEvent& into = merged.back();
      if (into.full() || event.full()) {
        into.bands.clear();
      } else {
        into.bands.insert(into.bands.end(), event.bands.begin(), event.bands.end());
      }
    } else {
      merged.push_back(std::move(event));
    }
  }
  for (ScrubEvent& event : merged) {
    if (event.full()) continue;
    std::sort(event.bands.begin(), event.bands.end());
    event.bands.erase(std::unique(event.bands.begin(), event.bands.end()),
                      event.bands.end());
    if (event.bands.size() == bands) event.bands.clear();
  }
  return merged;
}

class PeriodicPolicy final : public ScrubPolicy {
 public:
  explicit PeriodicPolicy(const ScrubPolicyConfig& config)
      : period_(config.period_hours) {}

  [[nodiscard]] ScrubPolicyKind kind() const noexcept override {
    return ScrubPolicyKind::kPeriodic;
  }

  [[nodiscard]] std::vector<ScrubEvent> plan(const ScrubPlanContext& ctx) const override {
    require_context(ctx);
    std::vector<ScrubEvent> events;
    emit_periodic_stream(period_, ctx.horizon_hours,
                         [&](double t) { events.push_back({t, {}}); });
    return events;
  }

 private:
  double period_;
};

class RegionPeriodicPolicy final : public ScrubPolicy {
 public:
  explicit RegionPeriodicPolicy(const ScrubPolicyConfig& config)
      : regions_(config.regions), region_period_(config.region_period_hours) {}

  [[nodiscard]] ScrubPolicyKind kind() const noexcept override {
    return ScrubPolicyKind::kRegionPeriodic;
  }

  [[nodiscard]] std::vector<ScrubEvent> plan(const ScrubPlanContext& ctx) const override {
    require_context(ctx);
    const std::size_t bands = ctx.n / ctx.m;
    const std::size_t regions = std::min(regions_, bands);
    std::vector<ScrubEvent> events;
    std::size_t k = 0;
    emit_periodic_stream(region_period_, ctx.horizon_hours, [&](double t) {
      ScrubEvent event{t, {}};
      for (std::size_t b = k % regions; b < bands; b += regions) {
        event.bands.push_back(b);
      }
      ++k;
      events.push_back(std::move(event));
    });
    return coalesce(std::move(events), bands);
  }

 private:
  std::size_t regions_;
  double region_period_;
};

class ActivationTriggeredPolicy final : public ScrubPolicy {
 public:
  explicit ActivationTriggeredPolicy(const ScrubPolicyConfig& config)
      : budget_(config.activation_budget), backstop_(config.period_hours) {}

  [[nodiscard]] ScrubPolicyKind kind() const noexcept override {
    return ScrubPolicyKind::kActivationTriggered;
  }

  [[nodiscard]] std::vector<ScrubEvent> plan(const ScrubPlanContext& ctx) const override {
    require_context(ctx);
    const std::size_t bands = ctx.n / ctx.m;
    std::vector<ScrubEvent> events;
    for (std::size_t b = 0; b < bands; ++b) {
      // The band's cadence is set by its hottest row: scrub once that row
      // has accumulated `budget_` activations, but never wait longer than
      // the backstop period.
      double peak_rate = 0.0;
      for (std::size_t r = b * ctx.m; r < (b + 1) * ctx.m; ++r) {
        peak_rate = std::max(peak_rate, ctx.row_activation_rates[r]);
      }
      double period = backstop_;
      if (peak_rate > 0.0) {
        period = std::min(backstop_, static_cast<double>(budget_) / peak_rate);
      }
      emit_periodic_stream(period, ctx.horizon_hours,
                           [&](double t) { events.push_back({t, {b}}); });
    }
    return coalesce(std::move(events), bands);
  }

 private:
  std::uint64_t budget_;
  double backstop_;
};

class HotRowPriorityPolicy final : public ScrubPolicy {
 public:
  explicit HotRowPriorityPolicy(const ScrubPolicyConfig& config)
      : hot_period_(config.hot_period_hours), full_period_(config.period_hours) {}

  [[nodiscard]] ScrubPolicyKind kind() const noexcept override {
    return ScrubPolicyKind::kHotRowPriority;
  }

  [[nodiscard]] std::vector<ScrubEvent> plan(const ScrubPlanContext& ctx) const override {
    require_context(ctx);
    const std::size_t bands = ctx.n / ctx.m;
    // Hot bands are those containing any row strictly hotter than the
    // coldest row in the array; under a uniform workload there are none and
    // the policy degenerates to the periodic baseline.
    const double floor = *std::min_element(ctx.row_activation_rates.begin(),
                                           ctx.row_activation_rates.end());
    std::vector<std::size_t> hot;
    for (std::size_t b = 0; b < bands; ++b) {
      for (std::size_t r = b * ctx.m; r < (b + 1) * ctx.m; ++r) {
        if (ctx.row_activation_rates[r] > floor) {
          hot.push_back(b);
          break;
        }
      }
    }
    std::vector<ScrubEvent> events;
    emit_periodic_stream(full_period_, ctx.horizon_hours,
                         [&](double t) { events.push_back({t, {}}); });
    if (!hot.empty()) {
      emit_periodic_stream(hot_period_, ctx.horizon_hours,
                           [&](double t) { events.push_back({t, hot}); });
    }
    return coalesce(std::move(events), bands);
  }

 private:
  double hot_period_;
  double full_period_;
};

}  // namespace

const char* to_string(ScrubPolicyKind kind) noexcept {
  switch (kind) {
    case ScrubPolicyKind::kPeriodic:
      return "periodic";
    case ScrubPolicyKind::kActivationTriggered:
      return "activation";
    case ScrubPolicyKind::kRegionPeriodic:
      return "region";
    case ScrubPolicyKind::kHotRowPriority:
      return "hotrow";
  }
  return "unknown";
}

void require_valid(const ScrubPolicyConfig& config) {
  if (!(config.period_hours > 0.0) || !std::isfinite(config.period_hours)) {
    throw std::invalid_argument("ScrubPolicyConfig: period_hours must be positive");
  }
  if (!(config.region_period_hours > 0.0) ||
      !std::isfinite(config.region_period_hours)) {
    throw std::invalid_argument(
        "ScrubPolicyConfig: region_period_hours must be positive");
  }
  if (!(config.hot_period_hours > 0.0) || !std::isfinite(config.hot_period_hours)) {
    throw std::invalid_argument("ScrubPolicyConfig: hot_period_hours must be positive");
  }
  if (config.activation_budget == 0) {
    throw std::invalid_argument("ScrubPolicyConfig: activation_budget must be >= 1");
  }
  if (config.regions == 0) {
    throw std::invalid_argument("ScrubPolicyConfig: regions must be >= 1");
  }
}

std::unique_ptr<ScrubPolicy> make_scrub_policy(const ScrubPolicyConfig& config) {
  require_valid(config);
  switch (config.kind) {
    case ScrubPolicyKind::kPeriodic:
      return std::make_unique<PeriodicPolicy>(config);
    case ScrubPolicyKind::kActivationTriggered:
      return std::make_unique<ActivationTriggeredPolicy>(config);
    case ScrubPolicyKind::kRegionPeriodic:
      return std::make_unique<RegionPeriodicPolicy>(config);
    case ScrubPolicyKind::kHotRowPriority:
      return std::make_unique<HotRowPriorityPolicy>(config);
  }
  throw std::invalid_argument("make_scrub_policy: unknown policy kind");
}

bool apply_policy_preset(std::string_view name, ScrubPolicyConfig& out) {
  ScrubPolicyConfig preset;
  if (name == "periodic") {
    preset.kind = ScrubPolicyKind::kPeriodic;
    preset.period_hours = 24.0;
  } else if (name == "activation") {
    // At the canonical workload (hot rows ~8000 activations/hour) this puts
    // hot bands on a ~6 h cadence while cold bands ride the 24 h backstop.
    preset.kind = ScrubPolicyKind::kActivationTriggered;
    preset.period_hours = 24.0;
    preset.activation_budget = 48000;
  } else if (name == "region") {
    preset.kind = ScrubPolicyKind::kRegionPeriodic;
    preset.period_hours = 24.0;
    preset.regions = 4;
    preset.region_period_hours = 6.0;
  } else if (name == "hotrow") {
    preset.kind = ScrubPolicyKind::kHotRowPriority;
    preset.period_hours = 24.0;
    preset.hot_period_hours = 6.0;
  } else {
    return false;
  }
  out = preset;
  return true;
}

std::span<const std::string_view> scrub_policy_preset_names() noexcept {
  static constexpr std::array<std::string_view, 4> kNames = {
      "periodic", "activation", "region", "hotrow"};
  return kNames;
}

}  // namespace pimecc::rel
