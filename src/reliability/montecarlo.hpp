// pimecc -- reliability/montecarlo.hpp
//
// Monte Carlo cross-validation of the analytic Section V-A model: inject
// soft errors into a real simulated crossbar + check memory for one check
// period, run the architecture's scrub, and measure how often a block (or
// the crossbar) retains an uncorrected/miscorrected error.  Used by
// bench_montecarlo_mttf and the reliability tests to confirm the analytic
// block-failure probabilities.
//
// Trials are independent and run as dynamic-ticket lanes on the shared
// work-stealing executor (util/executor.hpp via reliability/parallel.hpp);
// `threads` caps the lane count, no threads are spawned per call, and a
// skewed trial occupies one lane while the others drain the rest.
// Determinism is guaranteed by construction: exactly one 64-bit base seed
// is drawn from the caller's generator, the golden image comes from
// substream 0 and trial t from substream t+1 (util::Rng::for_stream), and
// all result fields are commutative integer sums -- so on a given platform
// the result is bit-identical for any thread count, and the caller's
// generator advances by the same single draw.  (Across standard libraries the stream differs:
// Rng::binomial delegates to std::binomial_distribution, whose algorithm
// is implementation-defined.)
//
// The engine is sparse and event-driven: per-trial cost scales with the
// number of injected flips, not with n^2.  Each worker keeps ONE mutable
// image that always equals the golden state between trials; a trial
// injects its flips, repairs only the touched blocks
// (ArrayCode::scrub_block -- scrub_band generalized to block granularity),
// computes each touched block's exact residual from the injection record
// plus the reported repair, and then rolls everything back through an undo
// log (re-flip the surviving deltas and the recorded check-bit flips).
// There is no per-trial golden copy and no full-array scrub.  The dense
// engine is retained as reference_run_montecarlo
// (reference_reliability.hpp); every counter is pinned equal on every
// substream except `miscorrected`, which is exact here (a block is
// miscorrected iff its own scrub reported a data correction and its
// residual is nonzero) and approximated in the reference (every failed
// block of a trial with >= 1 data correction) -- exact <= approximated,
// always.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace pimecc::rel {

/// Configuration of one Monte Carlo experiment.
struct MonteCarloConfig {
  std::size_t n = 120;   ///< crossbar size (scaled down for trial volume)
  std::size_t m = 15;    ///< block size
  double fit_per_bit = 0.0;
  double window_hours = 24.0;
  std::size_t trials = 1000;
  bool include_check_bits = true;
  std::size_t threads = 1;  ///< executor lanes; 0 = full shared-executor width
};

/// Aggregated outcome.
struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t trials_with_errors = 0;      ///< >= 1 flip injected
  std::size_t trials_failed = 0;           ///< crossbar left corrupted
  std::uint64_t blocks_total = 0;          ///< trials x blocks per crossbar
  std::uint64_t flips_injected = 0;
  std::uint64_t blocks_failed = 0;         ///< blocks left corrupted
  std::uint64_t blocks_with_errors = 0;    ///< blocks that received >= 1 flip
  std::uint64_t corrected_data = 0;
  std::uint64_t corrected_check = 0;
  std::uint64_t detected_uncorrectable = 0;
  /// Blocks whose scrub reported a data correction yet whose post-repair
  /// data still differs from golden (exact, per-block residual accounting;
  /// the reference engine over-approximates this -- see the file comment).
  std::uint64_t miscorrected = 0;

  [[nodiscard]] double crossbar_failure_rate() const noexcept {
    return trials > 0 ? static_cast<double>(trials_failed) /
                            static_cast<double>(trials)
                      : 0.0;
  }
  [[nodiscard]] double block_failure_rate() const noexcept;

  bool operator==(const MonteCarloResult&) const noexcept = default;
};

/// Runs the experiment: per trial, sample a binomial flip count over all
/// vulnerable cells, inject, repair the touched blocks only, diff each
/// touched block's residual exactly, and roll back to golden in O(flips).
/// Draws exactly one value from `rng` and derives all per-trial randomness
/// from it; see the file comment for the determinism guarantees and the
/// reference-engine pinning contract.
[[nodiscard]] MonteCarloResult run_montecarlo(const MonteCarloConfig& config,
                                              util::Rng& rng);

/// Analytic per-block failure probability for the same configuration
/// (P(>= 2 errors in a block)), for direct comparison.
[[nodiscard]] double analytic_block_failure(const MonteCarloConfig& config);

}  // namespace pimecc::rel
