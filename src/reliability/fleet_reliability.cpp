#include "reliability/fleet_reliability.hpp"

#include <stdexcept>
#include <vector>

#include "core/array_code.hpp"
#include "reliability/config_checks.hpp"
#include "reliability/parallel.hpp"
#include "reliability/sparse_trial.hpp"
#include "util/bitmatrix.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

FleetMonteCarloResult run_fleet_montecarlo(const FleetMonteCarloConfig& config,
                                           util::Rng& rng) {
  require_valid(config.flat());
  if (config.shards == 0) {
    throw std::invalid_argument("run_fleet_montecarlo: need >= 1 shard");
  }
  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;

  FleetMonteCarloResult result;
  result.total.trials = config.total_trials();
  result.total.blocks_total =
      static_cast<std::uint64_t>(config.total_trials()) * probe.block_count();
  result.shards.resize(config.shards);

  // Single caller draw; golden from substream 0; shard s's trial t on
  // substream 1 + s*T + t.  That is exactly the substream sequence a flat
  // run_montecarlo over S*T trials walks, so every counter of
  // result.total is bit-identical to the flat engine's.
  const std::uint64_t base_seed = rng.next();

  const util::BitMatrix golden =
      detail::make_montecarlo_golden(config.n, base_seed);
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);

  detail::SparseTrialContext ctx;
  ctx.golden = &golden;
  ctx.golden_code = &golden_code;
  ctx.p = p;
  ctx.population = data_cells + check_cells;
  ctx.bps = golden_code.blocks_per_side();
  ctx.m = config.m;
  ctx.include_check_bits = config.include_check_bits;

  // The ticket unit is a SHARD: one golden image amortizes over
  // trials_per_shard trials of lane-local work, and shard outcome slot s
  // is written only by the lane that drew ticket s.
  struct Lane {
    detail::SparseTrialLane state;
    MonteCarloResult out;
  };
  const std::size_t trials_per_shard = config.trials_per_shard;
  std::vector<FleetShardOutcome>& shard_slots = result.shards;
  const std::vector<Lane> lanes = detail::run_trial_pool<Lane>(
      config.shards, config.threads,
      [&ctx] { return Lane{detail::SparseTrialLane(ctx), {}}; },
      [&ctx, &shard_slots, base_seed, trials_per_shard](Lane& lane,
                                                        std::size_t s) {
        MonteCarloResult shard_out;
        for (std::size_t t = 0; t < trials_per_shard; ++t) {
          util::Rng trial_rng =
              util::Rng::for_stream(base_seed, 1 + s * trials_per_shard + t);
          detail::run_sparse_trial(ctx, lane.state, trial_rng, shard_out);
        }
        FleetShardOutcome& slot = shard_slots[s];
        slot.trials_with_errors = shard_out.trials_with_errors;
        slot.trials_failed = shard_out.trials_failed;
        slot.flips_injected = shard_out.flips_injected;
        slot.blocks_failed = shard_out.blocks_failed;
        slot.stats = shard_out;
        detail::accumulate(lane.out, shard_out);
      });
  for (const Lane& lane : lanes) detail::accumulate(result.total, lane.out);
  const std::uint64_t blocks_per_trial = probe.block_count();
  for (FleetShardOutcome& slot : result.shards) {
    slot.stats.trials = trials_per_shard;
    slot.stats.blocks_total = trials_per_shard * blocks_per_trial;
  }
  return result;
}

FleetCampaignResult run_fleet_campaign(const FleetMonteCarloConfig& config,
                                       arch::CrossbarFleet& fleet,
                                       util::Rng& rng) {
  require_valid(config.flat());
  if (config.shards == 0) {
    throw std::invalid_argument("run_fleet_campaign: need >= 1 shard");
  }
  if (fleet.shard_count() != config.shards || fleet.n() != config.n ||
      fleet.m() != config.m) {
    throw std::invalid_argument(
        "run_fleet_campaign: fleet shape must match the campaign config");
  }

  FleetCampaignResult result;

  // Preflight scrub: shards reporting uncorrectable blocks are quarantined
  // before any trial runs.  With spares they are remapped and participate
  // normally; without, they are excluded from the accounting entirely.
  result.degradation.quarantined = fleet.quarantine_uncorrectable();
  for (const std::size_t s : result.degradation.quarantined) {
    if (fleet.shard_active(s)) {
      ++result.degradation.spares_activated;
    } else {
      ++result.degradation.shards_excluded;
      result.degradation.trials_skipped += config.trials_per_shard;
    }
  }

  const double p =
      util::error_probability(config.fit_per_bit, config.window_hours);
  const std::size_t data_cells = config.n * config.n;
  ecc::ArrayCode probe(config.n, config.m);
  const std::size_t check_cells =
      config.include_check_bits ? probe.block_count() * 2 * config.m : 0;

  // Same single-draw discipline as run_fleet_montecarlo: golden from
  // substream 0, shard s trial t on substream 1 + s*T + t.  Because the
  // substream index is the LOGICAL shard id, a respared shard replays its
  // predecessor's exact trial sequence (bit-identical recovery) and an
  // excluded shard's trials simply never run (exact subtraction).
  const std::uint64_t base_seed = rng.next();
  const util::BitMatrix golden =
      detail::make_montecarlo_golden(config.n, base_seed);
  ecc::ArrayCode golden_code(config.n, config.m);
  golden_code.encode_all(golden);
  // Surviving shards (including freshly respared ones) carry the campaign
  // image; dead shards are skipped by the fleet itself.
  fleet.load_broadcast(golden);

  detail::SparseTrialContext ctx;
  ctx.golden = &golden;
  ctx.golden_code = &golden_code;
  ctx.p = p;
  ctx.population = data_cells + check_cells;
  ctx.bps = golden_code.blocks_per_side();
  ctx.m = config.m;
  ctx.include_check_bits = config.include_check_bits;

  struct Lane {
    detail::SparseTrialLane state;
    MonteCarloResult out;
  };
  const std::size_t trials_per_shard = config.trials_per_shard;
  const std::uint64_t blocks_per_trial = probe.block_count();
  result.shards.resize(config.shards);
  std::vector<FleetShardOutcome>& shard_slots = result.shards;
  const arch::CrossbarFleet& health = fleet;
  const std::vector<Lane> lanes = detail::run_trial_pool<Lane>(
      config.shards, config.threads,
      [&ctx] { return Lane{detail::SparseTrialLane(ctx), {}}; },
      [&ctx, &shard_slots, &health, base_seed, trials_per_shard,
       blocks_per_trial](Lane& lane, std::size_t s) {
        FleetShardOutcome& slot = shard_slots[s];
        if (!health.shard_active(s)) {
          slot.skipped = true;
          return;
        }
        MonteCarloResult shard_out;
        for (std::size_t t = 0; t < trials_per_shard; ++t) {
          util::Rng trial_rng =
              util::Rng::for_stream(base_seed, 1 + s * trials_per_shard + t);
          detail::run_sparse_trial(ctx, lane.state, trial_rng, shard_out);
        }
        shard_out.trials = trials_per_shard;
        shard_out.blocks_total = trials_per_shard * blocks_per_trial;
        slot.trials_with_errors = shard_out.trials_with_errors;
        slot.trials_failed = shard_out.trials_failed;
        slot.flips_injected = shard_out.flips_injected;
        slot.blocks_failed = shard_out.blocks_failed;
        slot.stats = shard_out;
        detail::accumulate(lane.out, shard_out);
      });
  for (const Lane& lane : lanes) detail::accumulate(result.total, lane.out);
  const std::size_t shards_run =
      config.shards - result.degradation.shards_excluded;
  result.total.trials = shards_run * trials_per_shard;
  result.total.blocks_total =
      static_cast<std::uint64_t>(result.total.trials) * blocks_per_trial;
  return result;
}

std::vector<FleetMttfPoint> run_fleet_mttf_grid(
    const FleetMttfGridConfig& config, util::Rng& rng) {
  std::vector<FleetMttfPoint> grid;
  grid.reserve(config.fit_points.size() * config.shard_counts.size());
  // Row-major (fit, shards): each cell consumes exactly one caller draw
  // (simulate_lifetime's contract), so the whole grid is reproducible from
  // the caller's rng state regardless of worker count or cell order --
  // but we still run cells in order, since each cell is internally
  // executor-parallel already.
  for (const double fit : config.fit_points) {
    for (const std::size_t shards : config.shard_counts) {
      LifetimeConfig cell;
      cell.n = config.n;
      cell.m = config.m;
      cell.crossbars = shards;
      cell.fit_per_bit = fit;
      cell.scrub_period_hours = config.scrub_period_hours;
      cell.trials = config.trials;
      cell.max_hours = config.max_hours;
      cell.include_check_bits = true;
      cell.threads = config.threads;

      const LifetimeResult run = simulate_lifetime(cell, rng);

      FleetMttfPoint point;
      point.fit_per_bit = fit;
      point.shards = shards;
      point.trials = run.trials;
      point.failures = run.failures;
      point.horizon_hours = config.max_hours;
      point.empirical_mttf_hours = run.empirical_mttf_hours(config.max_hours);
      point.analytic_mttf_hours = analytic_mttf_hours(cell);
      point.scrub_windows = run.scrubs_performed;
      grid.push_back(point);
    }
  }
  return grid;
}

}  // namespace pimecc::rel
