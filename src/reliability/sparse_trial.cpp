#include "reliability/sparse_trial.hpp"

#include <algorithm>

namespace pimecc::rel::detail {

void run_sparse_trial(const SparseTrialContext& ctx, SparseTrialLane& lane,
                      util::Rng& trial_rng, MonteCarloResult& out) {
  const std::size_t flips =
      static_cast<std::size_t>(trial_rng.binomial(ctx.population, ctx.p));
  if (flips == 0) return;
  ++out.trials_with_errors;
  out.flips_injected += flips;

  const std::size_t mm = ctx.m;
  const std::size_t bps = ctx.bps;

  if (ctx.include_check_bits) {
    fault::inject_flips_everywhere(trial_rng, lane.data, lane.code, flips,
                                   lane.record, lane.scratch);
  } else {
    fault::inject_data_flips(trial_rng, lane.data, flips, lane.record,
                             lane.scratch);
  }

  // Which blocks received at least one flip (sorted unique flat ids).
  lane.touched.clear();
  for (const fault::DataFlip& f : lane.record.data_flips) {
    lane.touched.push_back((f.r / mm) * bps + f.c / mm);
  }
  for (const fault::CheckFlip& f : lane.record.check_flips) {
    lane.touched.push_back(f.block_row * bps + f.block_col);
  }
  std::sort(lane.touched.begin(), lane.touched.end());
  lane.touched.erase(std::unique(lane.touched.begin(), lane.touched.end()),
                     lane.touched.end());
  out.blocks_with_errors += lane.touched.size();

  std::size_t failed_blocks_this_trial = 0;
  for (const std::size_t flat : lane.touched) {
    const ecc::BlockIndex b{flat / bps, flat % bps};
    const ecc::BlockRepair repair = lane.code.scrub_block(lane.data, b);
    switch (repair.status) {
      case ecc::DecodeStatus::kClean: break;
      case ecc::DecodeStatus::kCorrectedData: ++out.corrected_data; break;
      case ecc::DecodeStatus::kCorrectedCheck: ++out.corrected_check; break;
      case ecc::DecodeStatus::kDetectedUncorrectable:
        ++out.detected_uncorrectable;
        break;
    }

    // Exact residual: every data flip this trial put into block b, plus
    // the repair's own flip if it corrected a data bit.  Cells listed
    // twice cancelled out (the repair undid an injected flip); cells
    // listed once are still wrong.
    lane.residual.clear();
    for (const fault::DataFlip& f : lane.record.data_flips) {
      if (f.r / mm == b.block_row && f.c / mm == b.block_col) {
        lane.residual.emplace_back(f.r, f.c);
      }
    }
    if (repair.status == ecc::DecodeStatus::kCorrectedData) {
      lane.residual.emplace_back(repair.data_r, repair.data_c);
    }
    std::sort(lane.residual.begin(), lane.residual.end());
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < lane.residual.size();) {
      if (i + 1 < lane.residual.size() &&
          lane.residual[i] == lane.residual[i + 1]) {
        i += 2;  // injected and repaired: already back at golden
        continue;
      }
      ++survivors;
      lane.data.flip(lane.residual[i].first, lane.residual[i].second);  // rollback
      ++i;
    }
    if (survivors > 0) {
      ++failed_blocks_this_trial;
      // Exact miscorrection verdict: this block's scrub claimed a data
      // correction, yet the block did not return to golden.
      if (repair.status == ecc::DecodeStatus::kCorrectedData) {
        ++out.miscorrected;
      }
    }

    // Roll back a check-bit repair (it flipped exactly one stored bit).
    if (repair.status == ecc::DecodeStatus::kCorrectedCheck) {
      ecc::CheckBits& bits = lane.code.check_bits_mutable(b);
      if (repair.check_on_leading_axis) {
        bits.leading.flip(repair.check_index);
      } else {
        bits.counter.flip(repair.check_index);
      }
    }
  }

  // Roll back the injected check flips; combined with the per-block
  // repair rollbacks above, every check bit has now been flipped an even
  // number of times and the stored state equals golden again.
  for (const fault::CheckFlip& f : lane.record.check_flips) {
    ecc::CheckBits& bits =
        lane.code.check_bits_mutable({f.block_row, f.block_col});
    if (f.on_leading_axis) {
      bits.leading.flip(f.index);
    } else {
      bits.counter.flip(f.index);
    }
  }

  out.blocks_failed += failed_blocks_this_trial;
  if (failed_blocks_this_trial > 0) ++out.trials_failed;
}

}  // namespace pimecc::rel::detail
