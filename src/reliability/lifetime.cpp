#include "reliability/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "reliability/analytic.hpp"
#include "reliability/config_checks.hpp"
#include "reliability/parallel.hpp"
#include "util/serialize.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double LifetimeResult::empirical_mttf_hours(double horizon) const noexcept {
  if (failures == 0) return horizon * static_cast<double>(trials);
  // Exposure-based estimator: total observed time / failures (censored
  // trials contribute their full horizon, failed trials their TTF).
  const double censored =
      static_cast<double>(trials - failures) * horizon;
  return (time_to_failure_hours.sum() + censored) /
         static_cast<double>(failures);
}

namespace {

/// Binomial(n, p) conditioned on >= 1 success.  `s` is P(X >= 1) and
/// `log_q` is n*log(1-p) (precomputed by the caller, shared across all
/// windows).  Hybrid: when non-empty windows are common (s >= 1/2),
/// rejection from the unconditional binomial terminates in <= 2 expected
/// draws; in the rare-event regime it inverts the conditional CDF with the
/// pmf recurrence, O(E[X | X >= 1]) ~ O(1) iterations.
std::uint64_t positive_binomial(util::Rng& rng, std::uint64_t n, double p,
                                double s, double log_q) {
  if (p >= 1.0) return n;
  if (s >= 0.5) {
    while (true) {
      const std::uint64_t x = rng.binomial(n, p);
      if (x >= 1) return x;
    }
  }
  const double u = rng.uniform01() * s;
  // pmf(1) = n p (1-p)^(n-1), then pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p).
  double pmf = static_cast<double>(n) * p * std::exp(log_q - std::log1p(-p));
  double cdf = pmf;
  std::uint64_t k = 1;
  while (u > cdf && k < n) {
    pmf *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) *
           (p / (1.0 - p));
    cdf += pmf;
    ++k;
    if (pmf <= 0.0) break;  // underflow: all remaining mass is below u's ulp
  }
  return k;
}

/// Quantities every trial shares, derived once per advance_lifetime call
/// (pure function of the config, so chunked runs re-derive identical
/// values).
struct Derived {
  std::size_t total_blocks = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t total_windows = 0;
  double p_window = 0.0;
  double log_q0 = 0.0;  ///< log P(window empty)
  double s = 0.0;       ///< P(window non-empty)
};

Derived derive(const LifetimeConfig& config) {
  Derived d;
  const std::size_t blocks_per_side = config.n / config.m;
  d.total_blocks = blocks_per_side * blocks_per_side * config.crossbars;
  const std::size_t cells_per_block =
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0);
  d.total_cells = static_cast<std::uint64_t>(d.total_blocks) * cells_per_block;
  d.p_window = util::error_probability(config.fit_per_bit,
                                       config.scrub_period_hours);

  // Window count of the horizon, replicating the reference walker's
  // accumulated-sum loop bit-for-bit (a closed-form ceil could disagree
  // with `hours += period` rounding on awkward period values, and the
  // zero-rate scrub accounting is pinned exactly against the reference).
  for (double hours = 0.0; hours < config.max_hours;
       hours += config.scrub_period_hours) {
    if (hours + config.scrub_period_hours == hours) {
      // The reference walker would never terminate here; reject instead.
      throw std::invalid_argument(
          "simulate_lifetime: scrub period underflows the horizon");
    }
    ++d.total_windows;
  }

  // P(window non-empty) = 1 - (1-p)^cells, in log space for tiny p.
  d.log_q0 = d.p_window >= 1.0
                 ? -std::numeric_limits<double>::infinity()
                 : static_cast<double>(d.total_cells) * std::log1p(-d.p_window);
  d.s = -std::expm1(d.log_q0);
  return d;
}

}  // namespace

LifetimeProgress begin_lifetime(const LifetimeConfig& config, util::Rng& rng) {
  require_valid(config);
  // Reject degenerate horizon/period combinations before touching `rng`,
  // preserving simulate_lifetime's historical throw-before-draw behavior.
  (void)derive(config);
  LifetimeProgress progress;
  // One draw seeds all per-trial substreams (trial t -> stream t), so the
  // caller's generator advances identically for every thread count.
  progress.base_seed = rng.next();
  return progress;
}

std::size_t advance_lifetime(const LifetimeConfig& config,
                             LifetimeProgress& progress,
                             std::size_t max_trials) {
  require_valid(config);
  if (progress.ttf_hours.size() != progress.trials_done) {
    throw std::invalid_argument(
        "advance_lifetime: progress.ttf_hours out of sync with trials_done");
  }
  if (progress.trials_done >= config.trials) return 0;
  const std::size_t remaining = config.trials - progress.trials_done;
  const std::size_t count =
      max_trials == 0 ? remaining : std::min(max_trials, remaining);
  const Derived d = derive(config);
  const std::size_t start = progress.trials_done;
  const std::uint64_t base_seed = progress.base_seed;

  // Per-trial TTF (negative = survived), filled into the trial's own slot
  // by whichever lane runs it and appended to the progress vector in trial
  // order after the join -- bit-identical statistics for any thread count.
  std::vector<double> ttf(count, -1.0);

  // Lane state: commutative counter sums plus reusable scratch.  Trial t
  // always rides substream t, so the dynamic lane assignment cannot
  // affect any sampled value.
  struct Lane {
    std::uint64_t scrubs = 0;
    std::uint64_t corrected = 0;
    std::size_t failures = 0;
    std::vector<std::size_t> hit_blocks;
  };

  auto run_trial = [&](Lane& out, std::size_t t) {
    const std::size_t trial = start + t;  // absolute trial = substream index
    util::Rng trial_rng = util::Rng::for_stream(base_seed, trial);
    if (d.s <= 0.0) {  // no events can ever land: every window is empty
      out.scrubs += d.total_windows;
      return;
    }
    std::uint64_t window = 0;  // 1-based index of the last window handled
    bool failed = false;
    while (!failed) {
      // Jump straight to the next non-empty window: `gap` empty windows,
      // then one carrying >= 1 hit.
      const std::uint64_t gap = trial_rng.geometric(d.s);
      if (gap >= d.total_windows || window + gap >= d.total_windows) break;
      window += gap + 1;
      const std::uint64_t hits = positive_binomial(trial_rng, d.total_cells,
                                                   d.p_window, d.s, d.log_q0);
      if (hits == 1) {
        ++out.corrected;
        continue;
      }
      // Assign each hit to a block; the walk and the failure predicate
      // are identical to the reference engine's.
      out.hit_blocks.clear();
      for (std::uint64_t h = 0; h < hits; ++h) {
        out.hit_blocks.push_back(
            static_cast<std::size_t>(trial_rng.uniform_below(d.total_blocks)));
      }
      std::sort(out.hit_blocks.begin(), out.hit_blocks.end());
      for (std::size_t i = 0; i + 1 < out.hit_blocks.size(); ++i) {
        if (out.hit_blocks[i] == out.hit_blocks[i + 1]) {
          failed = true;
          break;
        }
      }
      if (!failed) out.corrected += hits;
    }
    if (failed) {
      ++out.failures;
      out.scrubs += window;  // the failing scrub is the last one performed
      ttf[t] = static_cast<double>(window) * config.scrub_period_hours;
    } else {
      out.scrubs += d.total_windows;  // survived: every window was scrubbed
    }
  };

  for (const Lane& partial : detail::run_trial_pool<Lane>(
           count, config.threads, [] { return Lane{}; }, run_trial)) {
    progress.scrubs_performed += partial.scrubs;
    progress.errors_corrected += partial.corrected;
    progress.failures += partial.failures;
  }
  progress.ttf_hours.insert(progress.ttf_hours.end(), ttf.begin(), ttf.end());
  progress.trials_done += count;
  return count;
}

LifetimeResult lifetime_result(const LifetimeProgress& progress) {
  LifetimeResult result;
  result.trials = progress.trials_done;
  result.failures = progress.failures;
  result.scrubs_performed = progress.scrubs_performed;
  result.errors_corrected = progress.errors_corrected;
  for (const double ttf : progress.ttf_hours) {
    if (ttf >= 0.0) result.time_to_failure_hours.add(ttf);
  }
  return result;
}

namespace {

const std::uint64_t kLifetimeMagic = util::chunk_magic("PIMECCLT");
constexpr std::uint32_t kLifetimeVersion = 1;

}  // namespace

void save_lifetime_checkpoint(std::ostream& os, const LifetimeConfig& config,
                              const LifetimeProgress& progress) {
  if (progress.ttf_hours.size() != progress.trials_done) {
    throw std::invalid_argument(
        "save_lifetime_checkpoint: progress.ttf_hours out of sync");
  }
  util::ByteWriter w;
  // Config fingerprint -- everything that shapes the distribution.
  // `threads` is deliberately excluded: the determinism contract makes it
  // a pure performance knob, and a checkpoint must be resumable on a
  // machine with a different core count.
  w.u64(config.n);
  w.u64(config.m);
  w.u64(config.crossbars);
  w.f64(config.fit_per_bit);
  w.f64(config.scrub_period_hours);
  w.u64(config.trials);
  w.f64(config.max_hours);
  w.u8(config.include_check_bits ? 1 : 0);

  w.u64(progress.base_seed);
  w.u64(progress.trials_done);
  w.u64(progress.failures);
  w.u64(progress.scrubs_performed);
  w.u64(progress.errors_corrected);
  for (const double ttf : progress.ttf_hours) w.f64(ttf);

  util::write_chunk(os, kLifetimeMagic, kLifetimeVersion, w.data());
}

LifetimeProgress load_lifetime_checkpoint(std::istream& is,
                                          const LifetimeConfig& config) {
  const util::Chunk chunk = util::read_chunk(is, kLifetimeMagic,
                                             kLifetimeVersion);
  util::ByteReader r(chunk.payload);
  const bool same =
      r.u64() == config.n && r.u64() == config.m &&
      r.u64() == config.crossbars && r.f64() == config.fit_per_bit &&
      r.f64() == config.scrub_period_hours && r.u64() == config.trials &&
      r.f64() == config.max_hours &&
      r.u8() == (config.include_check_bits ? 1 : 0);
  if (!same) {
    throw util::SerializeError(
        "lifetime checkpoint configuration mismatch (saved for a different "
        "campaign)");
  }

  LifetimeProgress progress;
  progress.base_seed = r.u64();
  progress.trials_done = static_cast<std::size_t>(r.u64());
  progress.failures = static_cast<std::size_t>(r.u64());
  progress.scrubs_performed = r.u64();
  progress.errors_corrected = r.u64();
  if (progress.trials_done > config.trials ||
      progress.failures > progress.trials_done) {
    throw util::SerializeError("lifetime checkpoint progress out of range");
  }
  progress.ttf_hours.reserve(progress.trials_done);
  std::size_t observed_failures = 0;
  for (std::size_t t = 0; t < progress.trials_done; ++t) {
    const double ttf = r.f64();
    if (std::isnan(ttf)) {
      throw util::SerializeError("lifetime checkpoint TTF is NaN");
    }
    if (ttf >= 0.0) ++observed_failures;
    progress.ttf_hours.push_back(ttf);
  }
  if (observed_failures != progress.failures) {
    throw util::SerializeError(
        "lifetime checkpoint failure count disagrees with per-trial TTFs");
  }
  r.require_exhausted();
  return progress;
}

LifetimeResult simulate_lifetime(const LifetimeConfig& config, util::Rng& rng) {
  LifetimeProgress progress = begin_lifetime(config, rng);
  advance_lifetime(config, progress);
  return lifetime_result(progress);
}

double analytic_mttf_hours(const LifetimeConfig& config) {
  ReliabilityQuery query;
  query.fit_per_bit = config.fit_per_bit;
  query.check_period_hours = config.scrub_period_hours;
  query.n = config.n;
  query.m = config.m;
  query.memory_bits = static_cast<std::uint64_t>(config.crossbars) *
                      config.n * config.n;
  query.include_check_bits = config.include_check_bits;
  return evaluate_proposed(query).mttf_hours;
}

}  // namespace pimecc::rel
