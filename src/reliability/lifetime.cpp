#include "reliability/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "reliability/analytic.hpp"
#include "reliability/config_checks.hpp"
#include "reliability/parallel.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double LifetimeResult::empirical_mttf_hours(double horizon) const noexcept {
  if (failures == 0) return horizon * static_cast<double>(trials);
  // Exposure-based estimator: total observed time / failures (censored
  // trials contribute their full horizon, failed trials their TTF).
  const double censored =
      static_cast<double>(trials - failures) * horizon;
  return (time_to_failure_hours.sum() + censored) /
         static_cast<double>(failures);
}

namespace {

/// Binomial(n, p) conditioned on >= 1 success.  `s` is P(X >= 1) and
/// `log_q` is n*log(1-p) (precomputed by the caller, shared across all
/// windows).  Hybrid: when non-empty windows are common (s >= 1/2),
/// rejection from the unconditional binomial terminates in <= 2 expected
/// draws; in the rare-event regime it inverts the conditional CDF with the
/// pmf recurrence, O(E[X | X >= 1]) ~ O(1) iterations.
std::uint64_t positive_binomial(util::Rng& rng, std::uint64_t n, double p,
                                double s, double log_q) {
  if (p >= 1.0) return n;
  if (s >= 0.5) {
    while (true) {
      const std::uint64_t x = rng.binomial(n, p);
      if (x >= 1) return x;
    }
  }
  const double u = rng.uniform01() * s;
  // pmf(1) = n p (1-p)^(n-1), then pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p).
  double pmf = static_cast<double>(n) * p * std::exp(log_q - std::log1p(-p));
  double cdf = pmf;
  std::uint64_t k = 1;
  while (u > cdf && k < n) {
    pmf *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) *
           (p / (1.0 - p));
    cdf += pmf;
    ++k;
    if (pmf <= 0.0) break;  // underflow: all remaining mass is below u's ulp
  }
  return k;
}

}  // namespace

LifetimeResult simulate_lifetime(const LifetimeConfig& config, util::Rng& rng) {
  require_valid(config);
  const std::size_t blocks_per_side = config.n / config.m;
  const std::size_t blocks_per_xbar = blocks_per_side * blocks_per_side;
  const std::size_t total_blocks = blocks_per_xbar * config.crossbars;
  const std::size_t cells_per_block =
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0);
  const double p_window = util::error_probability(config.fit_per_bit,
                                                  config.scrub_period_hours);
  const std::uint64_t total_cells =
      static_cast<std::uint64_t>(total_blocks) * cells_per_block;

  // Window count of the horizon, replicating the reference walker's
  // accumulated-sum loop bit-for-bit (a closed-form ceil could disagree
  // with `hours += period` rounding on awkward period values, and the
  // zero-rate scrub accounting is pinned exactly against the reference).
  std::uint64_t total_windows = 0;
  for (double hours = 0.0; hours < config.max_hours;
       hours += config.scrub_period_hours) {
    if (hours + config.scrub_period_hours == hours) {
      // The reference walker would never terminate here; reject instead.
      throw std::invalid_argument(
          "simulate_lifetime: scrub period underflows the horizon");
    }
    ++total_windows;
  }

  LifetimeResult result;
  result.trials = config.trials;

  // P(window non-empty) = 1 - (1-p)^cells, in log space for tiny p.
  const double log_q0 =
      p_window >= 1.0 ? -std::numeric_limits<double>::infinity()
                      : static_cast<double>(total_cells) * std::log1p(-p_window);
  const double s = -std::expm1(log_q0);

  // One draw seeds all per-trial substreams (trial t -> stream t), so the
  // caller's generator advances identically for every thread count.
  const std::uint64_t base_seed = rng.next();

  // Per-trial TTF (negative = survived), filled into the trial's own slot
  // by whichever lane runs it and folded into the RunningStats in trial
  // order after the join -- bit-identical statistics for any thread count.
  std::vector<double> ttf(config.trials, -1.0);

  // Lane state: commutative counter sums plus reusable scratch.  Trial t
  // always rides substream t, so the dynamic lane assignment cannot
  // affect any sampled value.
  struct Lane {
    std::uint64_t scrubs = 0;
    std::uint64_t corrected = 0;
    std::size_t failures = 0;
    std::vector<std::size_t> hit_blocks;
  };

  auto run_trial = [&](Lane& out, std::size_t trial) {
    util::Rng trial_rng = util::Rng::for_stream(base_seed, trial);
    if (s <= 0.0) {  // no events can ever land: every window is empty
      out.scrubs += total_windows;
      return;
    }
    std::uint64_t window = 0;  // 1-based index of the last window handled
    bool failed = false;
    while (!failed) {
      // Jump straight to the next non-empty window: `gap` empty windows,
      // then one carrying >= 1 hit.
      const std::uint64_t gap = trial_rng.geometric(s);
      if (gap >= total_windows || window + gap >= total_windows) break;
      window += gap + 1;
      const std::uint64_t hits =
          positive_binomial(trial_rng, total_cells, p_window, s, log_q0);
      if (hits == 1) {
        ++out.corrected;
        continue;
      }
      // Assign each hit to a block; the walk and the failure predicate
      // are identical to the reference engine's.
      out.hit_blocks.clear();
      for (std::uint64_t h = 0; h < hits; ++h) {
        out.hit_blocks.push_back(
            static_cast<std::size_t>(trial_rng.uniform_below(total_blocks)));
      }
      std::sort(out.hit_blocks.begin(), out.hit_blocks.end());
      for (std::size_t i = 0; i + 1 < out.hit_blocks.size(); ++i) {
        if (out.hit_blocks[i] == out.hit_blocks[i + 1]) {
          failed = true;
          break;
        }
      }
      if (!failed) out.corrected += hits;
    }
    if (failed) {
      ++out.failures;
      out.scrubs += window;  // the failing scrub is the last one performed
      ttf[trial] = static_cast<double>(window) * config.scrub_period_hours;
    } else {
      out.scrubs += total_windows;  // survived: every window was scrubbed
    }
  };

  Lane total;
  for (const Lane& partial : detail::run_trial_pool<Lane>(
           config.trials, config.threads, [] { return Lane{}; }, run_trial)) {
    total.scrubs += partial.scrubs;
    total.corrected += partial.corrected;
    total.failures += partial.failures;
  }

  result.scrubs_performed = total.scrubs;
  result.errors_corrected = total.corrected;
  result.failures = total.failures;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    if (ttf[trial] >= 0.0) result.time_to_failure_hours.add(ttf[trial]);
  }
  return result;
}

double analytic_mttf_hours(const LifetimeConfig& config) {
  ReliabilityQuery query;
  query.fit_per_bit = config.fit_per_bit;
  query.check_period_hours = config.scrub_period_hours;
  query.n = config.n;
  query.m = config.m;
  query.memory_bits = static_cast<std::uint64_t>(config.crossbars) *
                      config.n * config.n;
  query.include_check_bits = config.include_check_bits;
  return evaluate_proposed(query).mttf_hours;
}

}  // namespace pimecc::rel
