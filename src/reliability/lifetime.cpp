#include "reliability/lifetime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "reliability/analytic.hpp"
#include "util/units.hpp"

namespace pimecc::rel {

double LifetimeResult::empirical_mttf_hours(double horizon) const noexcept {
  if (failures == 0) return horizon * static_cast<double>(trials);
  // Exposure-based estimator: total observed time / failures (censored
  // trials contribute their full horizon, failed trials their TTF).
  const double censored =
      static_cast<double>(trials - failures) * horizon;
  return (time_to_failure_hours.sum() + censored) /
         static_cast<double>(failures);
}

LifetimeResult simulate_lifetime(const LifetimeConfig& config, util::Rng& rng) {
  if (config.n == 0 || config.m == 0 || config.n % config.m != 0 ||
      config.m % 2 == 0) {
    throw std::invalid_argument("simulate_lifetime: need odd m dividing n");
  }
  if (config.scrub_period_hours <= 0.0 || config.crossbars == 0) {
    throw std::invalid_argument("simulate_lifetime: bad period or size");
  }
  const std::size_t blocks_per_side = config.n / config.m;
  const std::size_t blocks_per_xbar = blocks_per_side * blocks_per_side;
  const std::size_t total_blocks = blocks_per_xbar * config.crossbars;
  const std::size_t cells_per_block =
      config.m * config.m + (config.include_check_bits ? 2 * config.m : 0);
  const double p_window = util::error_probability(config.fit_per_bit,
                                                  config.scrub_period_hours);

  LifetimeResult result;
  result.trials = config.trials;

  // Per scrub window: errors land uniformly across all cells; a scrub
  // clears blocks with <= 1 error and the memory fails on the first block
  // holding >= 2.  Sampling one binomial for the whole memory per window
  // (then assigning hits to blocks only when >= 2 landed) keeps long
  // lifetimes tractable; the block-level abstraction is exact for the model
  // under test (per-bit mechanics are validated by run_montecarlo).
  const std::uint64_t total_cells =
      static_cast<std::uint64_t>(total_blocks) * cells_per_block;
  std::vector<std::size_t> hit_blocks;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    double hours = 0.0;
    bool failed = false;
    while (hours < config.max_hours && !failed) {
      hours += config.scrub_period_hours;
      ++result.scrubs_performed;
      const std::uint64_t hits = rng.binomial(total_cells, p_window);
      if (hits == 0) continue;
      if (hits == 1) {
        ++result.errors_corrected;
        continue;
      }
      // Assign each hit to a block; distinct-cell correction is negligible
      // at the rates of interest (hits << cells_per_block).
      hit_blocks.clear();
      for (std::uint64_t h = 0; h < hits; ++h) {
        hit_blocks.push_back(
            static_cast<std::size_t>(rng.uniform_below(total_blocks)));
      }
      std::sort(hit_blocks.begin(), hit_blocks.end());
      for (std::size_t i = 0; i + 1 < hit_blocks.size(); ++i) {
        if (hit_blocks[i] == hit_blocks[i + 1]) {
          failed = true;
          break;
        }
      }
      if (!failed) result.errors_corrected += hits;
    }
    if (failed) {
      ++result.failures;
      result.time_to_failure_hours.add(hours);
    }
  }
  return result;
}

double analytic_mttf_hours(const LifetimeConfig& config) {
  ReliabilityQuery query;
  query.fit_per_bit = config.fit_per_bit;
  query.check_period_hours = config.scrub_period_hours;
  query.n = config.n;
  query.m = config.m;
  query.memory_bits = static_cast<std::uint64_t>(config.crossbars) *
                      config.n * config.n;
  query.include_check_bits = config.include_check_bits;
  return evaluate_proposed(query).mttf_hours;
}

}  // namespace pimecc::rel
