// pimecc -- reliability/sparse_trial.hpp
//
// The PR 5 sparse event-driven Monte Carlo trial body, factored out of
// run_montecarlo so the single-crossbar engine and the fleet engine
// (fleet_reliability.hpp) execute the IDENTICAL per-trial machinery: a
// fleet run over S shards x T trials/shard on substreams
// 1 + s*T + t must be bit-identical, counter for counter, to a flat
// run_montecarlo over S*T trials -- that equality is the fleet engine's
// primary cross-check, and it only holds because this file is the single
// definition of what one trial does.
//
// A trial: sample the binomial flip count over the vulnerable population,
// inject (allocation-free record reuse), repair only the touched blocks
// (ArrayCode::scrub_block), compute each touched block's exact residual
// from the injection record plus the reported repair, and roll everything
// back through the undo log so the lane's (data, check) image equals the
// shared golden state again -- O(flips) per trial regardless of n.
#pragma once

#include <cstddef>
#include <vector>

#include "core/array_code.hpp"
#include "fault/injector.hpp"
#include "reliability/montecarlo.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::rel::detail {

/// Immutable per-run context shared by every lane: the golden images plus
/// the sampled-population geometry.  The golden state outlives every trial
/// (lanes copy it once and reconstitute it after each trial by rollback).
struct SparseTrialContext {
  const util::BitMatrix* golden = nullptr;
  const ecc::ArrayCode* golden_code = nullptr;
  double p = 0.0;              ///< per-cell flip probability per window
  std::size_t population = 0;  ///< data cells + (optionally) check bits
  std::size_t bps = 0;         ///< blocks per side
  std::size_t m = 0;
  bool include_check_bits = true;
};

/// Mutable lane state: one (data, check) image pair equal to golden
/// between trials, plus allocation-free scratch reused across trials.
struct SparseTrialLane {
  explicit SparseTrialLane(const SparseTrialContext& ctx)
      : data(*ctx.golden), code(*ctx.golden_code) {}

  util::BitMatrix data;
  ecc::ArrayCode code;
  fault::InjectionRecord record;
  std::vector<std::size_t> scratch;
  std::vector<std::size_t> touched;
  std::vector<std::pair<std::size_t, std::size_t>> residual;
};

/// Runs one sparse trial on `trial_rng`, accumulating into `out` and
/// leaving `lane` bit-identical to golden again.  Exactly PR 5's
/// run_montecarlo trial body; see montecarlo.hpp for the counter
/// semantics (miscorrected is exact here).
void run_sparse_trial(const SparseTrialContext& ctx, SparseTrialLane& lane,
                      util::Rng& trial_rng, MonteCarloResult& out);

/// Folds one lane's (or shard's) counters into an aggregate.  All fields
/// are integer sums over disjoint trial sets, so the merge is
/// order-insensitive.
void accumulate(MonteCarloResult& total, const MonteCarloResult& partial);

/// The Monte Carlo golden image discipline shared by the single-crossbar
/// and fleet engines: substream 0 of `base_seed`, one next() per word.
[[nodiscard]] util::BitMatrix make_montecarlo_golden(std::size_t n,
                                                     std::uint64_t base_seed);

}  // namespace pimecc::rel::detail
