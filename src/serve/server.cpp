#include "serve/server.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "reliability/analytic.hpp"
#include "reliability/scenario.hpp"
#include "simpler/protected_vm.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace pimecc::serve {

Server::Server(ServerConfig config) : config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("Server: max_batch must be >= 1");
  }
}

namespace {

std::uint64_t gib_to_bits(double gib) {
  if (!(gib > 0.0) || gib > 1024.0) {
    throw std::invalid_argument("memory size (GiB) out of range (0, 1024]");
  }
  return static_cast<std::uint64_t>(std::llround(gib * 8589934592.0));  // 2^33
}

Response failure_response(RequestKind kind, ErrorCode code,
                          std::string message) {
  Response response;
  response.kind = kind;
  response.ok = false;
  response.code = code;
  response.error = std::move(message);
  return response;
}

}  // namespace

Response Server::handle(const Request& request) {
  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kMap: {
      arch::ArchParams params;
      params.n = request.n;
      params.m = request.m;
      params.num_pcs = request.pcs;
      params.validate();
      const auto program = registry_.program(request.circuit, request.row_width);
      const simpler::EccScheduleResult sched =
          simpler::schedule_with_ecc(*program, params, request.coverage);
      response.baseline_cycles = sched.baseline_cycles;
      response.proposed_cycles = sched.proposed_cycles;
      response.stall_cycles = sched.stall_cycles;
      response.overhead = sched.overhead_fraction();
      if (request.min_pcs) {
        response.min_pcs =
            simpler::find_min_pcs(*program, params, request.coverage);
      }
      break;
    }
    case RequestKind::kRun: {
      const auto spec = registry_.circuit(request.circuit);
      const auto program = registry_.program(request.circuit, request.n);
      auto lease = registry_.acquire_machine(request.n, request.m);
      arch::PimMachine& machine = lease.machine();
      // The response is a pure function of the request: the explicit seed
      // drives both the resident image and the per-lane inputs.
      util::Rng rng(request.seed);
      machine.load(util::random_bit_matrix(machine.n(), machine.n(), rng));
      const util::BitMatrix inputs = util::random_bit_matrix(
          machine.n(), spec->netlist.num_inputs(), rng);
      const simpler::ProtectedRunResult run = simpler::run_program_protected(
          machine, spec->netlist, *program, inputs);
      response.lanes = machine.n();
      response.corrections = run.input_check_corrections;
      response.ecc_consistent = run.ecc_consistent_after;
      for (std::size_t r = 0; r < machine.n(); ++r) {
        if (!(spec->reference(inputs.row(r)) == run.outputs.row(r))) {
          ++response.mismatches;
        }
      }
      break;
    }
    case RequestKind::kMttf: {
      rel::ReliabilityQuery query;
      query.fit_per_bit = request.fit_per_bit;
      query.check_period_hours = request.period_hours;
      query.n = request.n;
      query.m = request.m;
      query.memory_bits = gib_to_bits(request.memory_gib);
      response.baseline_mttf_hours = rel::evaluate_baseline(query).mttf_hours;
      response.proposed_mttf_hours = rel::evaluate_proposed(query).mttf_hours;
      response.improvement =
          response.baseline_mttf_hours > 0.0
              ? response.proposed_mttf_hours / response.baseline_mttf_hours
              : 0.0;
      break;
    }
    case RequestKind::kSweep: {
      rel::ReliabilityQuery base;
      base.fit_per_bit = request.fit_per_bit;
      base.check_period_hours = request.period_hours;
      base.n = request.n;
      base.m = request.m;
      base.memory_bits = gib_to_bits(request.memory_gib);
      const std::vector<rel::SweepPoint> points = rel::sweep_mttf(
          base, request.fit_low, request.fit_high, request.points_per_decade);
      response.sweep_points = points.size();
      bool first = true;
      for (const rel::SweepPoint& point : points) {
        const double improvement = point.improvement();
        if (first || improvement < response.min_improvement) {
          response.min_improvement = improvement;
        }
        if (first || improvement > response.max_improvement) {
          response.max_improvement = improvement;
        }
        first = false;
      }
      break;
    }
    case RequestKind::kScenario: {
      rel::ScenarioConfig config;
      config.n = request.n;
      config.m = request.m;
      config.trials = request.trials;
      config.max_hours = request.horizon_hours;
      // Serial per request: the batch itself is the parallelism axis
      // (execute_batch fans requests across executor lanes).
      config.threads = 1;
      config.workload = rel::canonical_workload();
      if (!rel::apply_fault_preset(request.model, request.fit_per_bit,
                                   config.faults)) {
        throw std::invalid_argument("unknown fault model '" + request.model + "'");
      }
      if (!rel::apply_policy_preset(request.policy, config.policy)) {
        throw std::invalid_argument("unknown scrub policy '" + request.policy +
                                    "'");
      }
      config.policy.period_hours = request.period_hours;
      // Pure function of the request: the explicit seed drives the campaign.
      util::Rng rng(request.seed);
      const rel::ScenarioResult result = rel::run_scenario(config, rng);
      response.trials_run = result.trials;
      response.failures = result.failures;
      response.scenario_mttf_hours = result.empirical_mttf_hours(config.max_hours);
      response.scrub_cells_per_hour = result.scrub_cells_per_hour(config.max_hours);
      break;
    }
  }
  response.ok = true;
  return response;
}

Response Server::execute(const Request& request) {
  // The taxonomy mapping: typed serving failures keep their code, the deep
  // layers' validation throws (ArchParams::validate, registry lookups,
  // gib_to_bits) are the client's fault, everything else is ours.
  try {
    return handle(request);
  } catch (const ServeError& e) {
    return failure_response(request.kind, e.code(), e.what());
  } catch (const std::invalid_argument& e) {
    return failure_response(request.kind, ErrorCode::kInvalidArgument,
                            e.what());
  } catch (const std::out_of_range& e) {
    return failure_response(request.kind, ErrorCode::kInvalidArgument,
                            e.what());
  } catch (const std::exception& e) {
    return failure_response(request.kind, ErrorCode::kInternal, e.what());
  }
}

std::vector<Response> Server::execute_batch(std::span<const Request> requests) {
  std::vector<Response> responses(requests.size());
  util::parallel_for(util::Executor::shared(), requests.size(), config_.lanes,
                     [&](std::size_t i) { responses[i] = execute(requests[i]); });
  return responses;
}

Admission Server::try_submit(Request request) {
  const Clock::time_point now = Clock::now();
  std::unique_lock lock(mutex_);
  Admission admission;
  if (closed_) {
    admission.code = ErrorCode::kRejected;
    admission.message = "server is closed";
    return admission;
  }
  if (config_.max_pending != 0 && queue_.size() >= config_.max_pending) {
    admission.code = ErrorCode::kRejected;
    admission.message = "admission queue full (max_pending=" +
                        std::to_string(config_.max_pending) + ")";
    return admission;
  }
  admission.admitted = true;
  admission.code = ErrorCode::kNone;
  admission.ticket = next_ticket_++;
  Pending pending;
  pending.ticket = admission.ticket;
  if (request.deadline_ms > 0.0) {
    pending.deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  pending.request = std::move(request);
  queue_.push_back(std::move(pending));
  return admission;
}

std::uint64_t Server::submit(Request request) {
  Admission admission = try_submit(std::move(request));
  if (!admission.admitted) {
    throw ServeError(admission.code, "Server::submit: " + admission.message);
  }
  return admission.ticket;
}

std::size_t Server::drain_once() {
  std::vector<Pending> batch;
  {
    std::unique_lock lock(mutex_);
    while (!queue_.empty() && batch.size() < config_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  if (batch.empty()) return 0;
  std::vector<Response> responses(batch.size());
  util::parallel_for(
      util::Executor::shared(), batch.size(), config_.lanes,
      [&](std::size_t i) {
        const Pending& item = batch[i];
        // Cooperative checks at lane admission: work not yet started is
        // cancellable/expirable; work already executing finishes.
        if (cancel_.load(std::memory_order_acquire)) {
          responses[i] = failure_response(item.request.kind,
                                          ErrorCode::kCancelled,
                                          "cancelled by server shutdown");
          return;
        }
        if (item.deadline.has_value() && Clock::now() > *item.deadline) {
          responses[i] = failure_response(
              item.request.kind, ErrorCode::kDeadlineExceeded,
              "deadline expired before execution");
          return;
        }
        responses[i] = execute(item.request);
      });
  {
    std::unique_lock lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      responses_.emplace(batch[i].ticket, std::move(responses[i]));
    }
  }
  published_cv_.notify_all();
  return batch.size();
}

std::size_t Server::drain() {
  std::size_t served = 0;
  for (std::size_t batch = drain_once(); batch != 0; batch = drain_once()) {
    served += batch;
  }
  return served;
}

void Server::mark_taken(std::uint64_t ticket) {
  if (ticket == taken_floor_) {
    ++taken_floor_;
    while (!taken_.empty() && *taken_.begin() == taken_floor_) {
      taken_.erase(taken_.begin());
      ++taken_floor_;
    }
  } else {
    taken_.insert(ticket);
  }
}

bool Server::is_taken(std::uint64_t ticket) const {
  return ticket < taken_floor_ || taken_.count(ticket) != 0;
}

Response Server::take(std::uint64_t ticket) {
  std::unique_lock lock(mutex_);
  if (ticket >= next_ticket_) {
    throw ServeError(ErrorCode::kInvalidArgument,
                     "Server::take: unknown ticket");
  }
  if (is_taken(ticket)) {
    // Regression guard: a consumed ticket used to re-enter the wait below
    // and block forever (its response was already erased).
    throw ServeError(ErrorCode::kInvalidArgument,
                     "Server::take: ticket already taken");
  }
  published_cv_.wait(lock, [&] {
    return responses_.count(ticket) != 0 || closed_;
  });
  const auto it = responses_.find(ticket);
  if (it == responses_.end()) {
    // Closed with the ticket still queued or in flight -- if it is in
    // flight a drain may yet publish it, but the caller asked to shut
    // down; report the abandonment rather than block forever.
    throw ServeError(ErrorCode::kCancelled,
                     "Server::take: server closed before response");
  }
  Response response = std::move(it->second);
  responses_.erase(it);
  mark_taken(ticket);
  return response;
}

void Server::close() {
  {
    std::unique_lock lock(mutex_);
    closed_ = true;
  }
  published_cv_.notify_all();
}

std::size_t Server::shutdown() {
  std::size_t cancelled = 0;
  {
    std::unique_lock lock(mutex_);
    closed_ = true;
    cancel_.store(true, std::memory_order_release);
    for (Pending& pending : queue_) {
      responses_.emplace(pending.ticket,
                         failure_response(pending.request.kind,
                                          ErrorCode::kCancelled,
                                          "cancelled by server shutdown"));
      ++cancelled;
    }
    queue_.clear();
  }
  published_cv_.notify_all();
  return cancelled;
}

std::size_t Server::pending() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

}  // namespace pimecc::serve
