#include "serve/server.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "reliability/analytic.hpp"
#include "reliability/scenario.hpp"
#include "simpler/protected_vm.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"

namespace pimecc::serve {

Server::Server(ServerConfig config) : config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("Server: max_batch must be >= 1");
  }
}

namespace {

std::uint64_t gib_to_bits(double gib) {
  if (!(gib > 0.0) || gib > 1024.0) {
    throw std::invalid_argument("memory size (GiB) out of range (0, 1024]");
  }
  return static_cast<std::uint64_t>(std::llround(gib * 8589934592.0));  // 2^33
}

}  // namespace

Response Server::handle(const Request& request) {
  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kMap: {
      arch::ArchParams params;
      params.n = request.n;
      params.m = request.m;
      params.num_pcs = request.pcs;
      params.validate();
      const auto program = registry_.program(request.circuit, request.row_width);
      const simpler::EccScheduleResult sched =
          simpler::schedule_with_ecc(*program, params, request.coverage);
      response.baseline_cycles = sched.baseline_cycles;
      response.proposed_cycles = sched.proposed_cycles;
      response.stall_cycles = sched.stall_cycles;
      response.overhead = sched.overhead_fraction();
      if (request.min_pcs) {
        response.min_pcs =
            simpler::find_min_pcs(*program, params, request.coverage);
      }
      break;
    }
    case RequestKind::kRun: {
      const auto spec = registry_.circuit(request.circuit);
      const auto program = registry_.program(request.circuit, request.n);
      auto lease = registry_.acquire_machine(request.n, request.m);
      arch::PimMachine& machine = lease.machine();
      // The response is a pure function of the request: the explicit seed
      // drives both the resident image and the per-lane inputs.
      util::Rng rng(request.seed);
      machine.load(util::random_bit_matrix(machine.n(), machine.n(), rng));
      const util::BitMatrix inputs = util::random_bit_matrix(
          machine.n(), spec->netlist.num_inputs(), rng);
      const simpler::ProtectedRunResult run = simpler::run_program_protected(
          machine, spec->netlist, *program, inputs);
      response.lanes = machine.n();
      response.corrections = run.input_check_corrections;
      response.ecc_consistent = run.ecc_consistent_after;
      for (std::size_t r = 0; r < machine.n(); ++r) {
        if (!(spec->reference(inputs.row(r)) == run.outputs.row(r))) {
          ++response.mismatches;
        }
      }
      break;
    }
    case RequestKind::kMttf: {
      rel::ReliabilityQuery query;
      query.fit_per_bit = request.fit_per_bit;
      query.check_period_hours = request.period_hours;
      query.n = request.n;
      query.m = request.m;
      query.memory_bits = gib_to_bits(request.memory_gib);
      response.baseline_mttf_hours = rel::evaluate_baseline(query).mttf_hours;
      response.proposed_mttf_hours = rel::evaluate_proposed(query).mttf_hours;
      response.improvement =
          response.baseline_mttf_hours > 0.0
              ? response.proposed_mttf_hours / response.baseline_mttf_hours
              : 0.0;
      break;
    }
    case RequestKind::kSweep: {
      rel::ReliabilityQuery base;
      base.fit_per_bit = request.fit_per_bit;
      base.check_period_hours = request.period_hours;
      base.n = request.n;
      base.m = request.m;
      base.memory_bits = gib_to_bits(request.memory_gib);
      const std::vector<rel::SweepPoint> points = rel::sweep_mttf(
          base, request.fit_low, request.fit_high, request.points_per_decade);
      response.sweep_points = points.size();
      bool first = true;
      for (const rel::SweepPoint& point : points) {
        const double improvement = point.improvement();
        if (first || improvement < response.min_improvement) {
          response.min_improvement = improvement;
        }
        if (first || improvement > response.max_improvement) {
          response.max_improvement = improvement;
        }
        first = false;
      }
      break;
    }
    case RequestKind::kScenario: {
      rel::ScenarioConfig config;
      config.n = request.n;
      config.m = request.m;
      config.trials = request.trials;
      config.max_hours = request.horizon_hours;
      // Serial per request: the batch itself is the parallelism axis
      // (execute_batch fans requests across executor lanes).
      config.threads = 1;
      config.workload = rel::canonical_workload();
      if (!rel::apply_fault_preset(request.model, request.fit_per_bit,
                                   config.faults)) {
        throw std::invalid_argument("unknown fault model '" + request.model + "'");
      }
      if (!rel::apply_policy_preset(request.policy, config.policy)) {
        throw std::invalid_argument("unknown scrub policy '" + request.policy +
                                    "'");
      }
      config.policy.period_hours = request.period_hours;
      // Pure function of the request: the explicit seed drives the campaign.
      util::Rng rng(request.seed);
      const rel::ScenarioResult result = rel::run_scenario(config, rng);
      response.trials_run = result.trials;
      response.failures = result.failures;
      response.scenario_mttf_hours = result.empirical_mttf_hours(config.max_hours);
      response.scrub_cells_per_hour = result.scrub_cells_per_hour(config.max_hours);
      break;
    }
  }
  response.ok = true;
  return response;
}

Response Server::execute(const Request& request) {
  try {
    return handle(request);
  } catch (const std::exception& e) {
    Response response;
    response.kind = request.kind;
    response.ok = false;
    response.error = e.what();
    return response;
  }
}

std::vector<Response> Server::execute_batch(std::span<const Request> requests) {
  std::vector<Response> responses(requests.size());
  util::parallel_for(util::Executor::shared(), requests.size(), config_.lanes,
                     [&](std::size_t i) { responses[i] = execute(requests[i]); });
  return responses;
}

std::uint64_t Server::submit(Request request) {
  std::unique_lock lock(mutex_);
  if (closed_) throw std::runtime_error("Server::submit: server is closed");
  const std::uint64_t ticket = next_ticket_++;
  queue_.emplace_back(ticket, std::move(request));
  return ticket;
}

std::size_t Server::drain_once() {
  std::vector<std::uint64_t> tickets;
  std::vector<Request> batch;
  {
    std::unique_lock lock(mutex_);
    while (!queue_.empty() && batch.size() < config_.max_batch) {
      tickets.push_back(queue_.front().first);
      batch.push_back(std::move(queue_.front().second));
      queue_.pop_front();
    }
  }
  if (batch.empty()) return 0;
  std::vector<Response> responses = execute_batch(batch);
  {
    std::unique_lock lock(mutex_);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      responses_.emplace(tickets[i], std::move(responses[i]));
    }
  }
  published_cv_.notify_all();
  return batch.size();
}

std::size_t Server::drain() {
  std::size_t served = 0;
  for (std::size_t batch = drain_once(); batch != 0; batch = drain_once()) {
    served += batch;
  }
  return served;
}

Response Server::take(std::uint64_t ticket) {
  std::unique_lock lock(mutex_);
  if (ticket >= next_ticket_) {
    throw std::runtime_error("Server::take: unknown ticket");
  }
  published_cv_.wait(lock, [&] {
    return responses_.count(ticket) != 0 || closed_;
  });
  const auto it = responses_.find(ticket);
  if (it == responses_.end()) {
    // Closed with the ticket still queued or in flight -- if it is in
    // flight a drain may yet publish it, but the caller asked to shut
    // down; report the abandonment rather than block forever.
    throw std::runtime_error("Server::take: server closed before response");
  }
  Response response = std::move(it->second);
  responses_.erase(it);
  return response;
}

void Server::close() {
  {
    std::unique_lock lock(mutex_);
    closed_ = true;
  }
  published_cv_.notify_all();
}

std::size_t Server::pending() const {
  std::unique_lock lock(mutex_);
  return queue_.size();
}

}  // namespace pimecc::serve
