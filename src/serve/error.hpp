// pimecc -- serve/error.hpp
//
// Structured error taxonomy for the serving front end.  Every failed
// request carries an ErrorCode alongside its message, so clients (and the
// daemon's stdout transcript) can distinguish "your request is malformed"
// from "the server is overloaded" from "a deadline expired" without
// string-matching e.what().  The codes are deliberately few: they are the
// retry-policy axis, not a diagnostic dump -- the message keeps the detail.
//
// Mapping discipline (serve/server.cpp):
//   - ServeError                      -> its own code, verbatim
//   - std::invalid_argument /
//     std::out_of_range               -> kInvalidArgument (the deep layers'
//                                        validate() / registry throws)
//   - any other std::exception        -> kInternal
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace pimecc::serve {

enum class ErrorCode : unsigned char {
  kNone = 0,          ///< success (Response.ok == true)
  kInvalidArgument,   ///< malformed or out-of-range request; do not retry
  kRejected,          ///< admission refused (queue full / closed); backpressure
  kDeadlineExceeded,  ///< request expired before execution reached it
  kCancelled,         ///< abandoned by shutdown before execution
  kInternal,          ///< unexpected handler failure; inspect the message
};

[[nodiscard]] constexpr std::string_view error_code_name(
    ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

/// A typed serving failure.  Derives from std::runtime_error so existing
/// callers catching the old flat exceptions keep working; new callers
/// switch on code() instead of parsing what().
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace pimecc::serve
