#include "serve/request.hpp"

#include <set>
#include <sstream>
#include <vector>

#include "util/parse.hpp"

namespace pimecc::serve {

std::string_view kind_name(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kMap: return "map";
    case RequestKind::kRun: return "run";
    case RequestKind::kMttf: return "mttf";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kScenario: return "scenario";
  }
  return "?";
}

namespace {

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

}  // namespace

bool parse_request(std::string_view line, Request& out, std::string& error) {
  error.clear();
  // Trim trailing CR so traces written on Windows parse identically.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const auto tokens = split_ws(line);
  if (tokens.empty() || tokens[0].front() == '#') return false;  // skip, no error

  Request request;
  if (tokens[0] == "map") {
    request.kind = RequestKind::kMap;
  } else if (tokens[0] == "run") {
    request.kind = RequestKind::kRun;
  } else if (tokens[0] == "mttf") {
    request.kind = RequestKind::kMttf;
  } else if (tokens[0] == "sweep") {
    request.kind = RequestKind::kSweep;
  } else if (tokens[0] == "scenario") {
    request.kind = RequestKind::kScenario;
  } else {
    error = "unknown request kind '" + std::string(tokens[0]) + "'";
    return false;
  }

  std::set<std::string_view> seen;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "malformed token '" + std::string(token) + "' (want key=value)";
      return false;
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (!seen.insert(key).second) {
      error = "duplicate key '" + std::string(key) + "'";
      return false;
    }

    auto bad_value = [&] {
      error = "bad value for '" + std::string(key) + "': '" +
              std::string(value) + "'";
      return false;
    };
    auto size_field = [&](std::size_t& field) {
      const auto parsed = util::parse_size(value);
      if (!parsed || *parsed == 0) return bad_value();
      field = *parsed;
      return true;
    };
    auto double_field = [&](double& field) {
      const auto parsed = util::parse_double(value);
      if (!parsed) return bad_value();
      field = *parsed;
      return true;
    };

    if (key == "circuit") {
      if (value.empty()) return bad_value();
      request.circuit = std::string(value);
    } else if (key == "width") {
      if (!size_field(request.row_width)) return false;
    } else if (key == "n") {
      if (!size_field(request.n)) return false;
    } else if (key == "m") {
      if (!size_field(request.m)) return false;
    } else if (key == "pcs") {
      if (!size_field(request.pcs)) return false;
    } else if (key == "coverage") {
      if (value == "outputs") {
        request.coverage = simpler::CoveragePolicy::kOutputsOnly;
      } else if (value == "both") {
        request.coverage = simpler::CoveragePolicy::kInputsAndOutputs;
      } else {
        return bad_value();
      }
    } else if (key == "minpcs") {
      const auto parsed = util::parse_bool(value);
      if (!parsed) return bad_value();
      request.min_pcs = *parsed;
    } else if (key == "seed") {
      const auto parsed = util::parse_u64(value);
      if (!parsed) return bad_value();
      request.seed = *parsed;
    } else if (key == "fit") {
      if (!double_field(request.fit_per_bit)) return false;
    } else if (key == "period") {
      if (!double_field(request.period_hours)) return false;
    } else if (key == "gib") {
      if (!double_field(request.memory_gib)) return false;
    } else if (key == "fit_low") {
      if (!double_field(request.fit_low)) return false;
    } else if (key == "fit_high") {
      if (!double_field(request.fit_high)) return false;
    } else if (key == "ppd") {
      if (!size_field(request.points_per_decade)) return false;
    } else if (key == "model") {
      if (value.empty()) return bad_value();
      request.model = std::string(value);
    } else if (key == "policy") {
      if (value.empty()) return bad_value();
      request.policy = std::string(value);
    } else if (key == "trials") {
      if (!size_field(request.trials)) return false;
    } else if (key == "horizon") {
      if (!double_field(request.horizon_hours)) return false;
    } else if (key == "deadline_ms") {
      if (!double_field(request.deadline_ms)) return false;
      if (request.deadline_ms < 0.0) return bad_value();
    } else {
      error = "unknown key '" + std::string(key) + "'";
      return false;
    }
  }
  out = request;
  return true;
}

std::string format_response(const Response& response) {
  std::ostringstream os;
  if (!response.ok) {
    os << "error kind=" << kind_name(response.kind)
       << " code=" << error_code_name(response.code) << " message=\""
       << response.error << '"';
    return os.str();
  }
  os << "ok kind=" << kind_name(response.kind);
  switch (response.kind) {
    case RequestKind::kMap:
      os << " baseline=" << response.baseline_cycles
         << " proposed=" << response.proposed_cycles
         << " stalls=" << response.stall_cycles
         << " overhead=" << response.overhead;
      if (response.min_pcs != 0) os << " min_pcs=" << response.min_pcs;
      break;
    case RequestKind::kRun:
      os << " lanes=" << response.lanes
         << " mismatches=" << response.mismatches
         << " corrections=" << response.corrections
         << " ecc_consistent=" << (response.ecc_consistent ? 1 : 0);
      break;
    case RequestKind::kMttf:
      os << " baseline_mttf_h=" << response.baseline_mttf_hours
         << " proposed_mttf_h=" << response.proposed_mttf_hours
         << " improvement=" << response.improvement;
      break;
    case RequestKind::kSweep:
      os << " points=" << response.sweep_points
         << " min_improvement=" << response.min_improvement
         << " max_improvement=" << response.max_improvement;
      break;
    case RequestKind::kScenario:
      os << " trials=" << response.trials_run
         << " failures=" << response.failures
         << " mttf_h=" << response.scenario_mttf_hours
         << " scrub_cells_per_h=" << response.scrub_cells_per_hour;
      break;
  }
  return os.str();
}

}  // namespace pimecc::serve
