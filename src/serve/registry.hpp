// pimecc -- serve/registry.hpp
//
// Shared read-mostly caches behind the serving front end: benchmark
// circuits, mapped single-row programs per (circuit, row width), and a
// PimMachine pool per (n, m) so a burst of `run` requests does not rebuild
// the geometry/stride tables (BlockCodec, ArrayCode, crossbar buffers) for
// every request.  Everything cached is immutable once published
// (shared_ptr<const>), so concurrent batch lanes can hit the cache without
// copying; the machine pool hands out exclusive leases instead, because a
// PimMachine is mutable execution state.
//
// Thread safety: all entry points are safe to call concurrently.  Lookups
// take a shared lock; a miss upgrades to an exclusive lock and may build
// the entry outside any lock (two racing misses both build, one wins --
// acceptable for a cache, and it keeps netlist construction out of the
// critical section).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/pim_machine.hpp"
#include "bench_circuits/circuits.hpp"
#include "simpler/mapper.hpp"

namespace pimecc::serve {

/// Cache hit/miss accounting (monotonic; read via Registry::stats).
struct RegistryStats {
  std::uint64_t circuit_hits = 0;
  std::uint64_t circuit_misses = 0;
  std::uint64_t program_hits = 0;
  std::uint64_t program_misses = 0;
  std::uint64_t machine_reuses = 0;
  std::uint64_t machine_builds = 0;
};

class Registry {
 public:
  /// The named benchmark circuit, built on first use.  Throws
  /// std::invalid_argument for unknown names (not cached).
  std::shared_ptr<const circuits::CircuitSpec> circuit(const std::string& name);

  /// The circuit mapped onto a row of `row_width` cells.  Throws
  /// std::runtime_error when the netlist does not fit (not cached).
  std::shared_ptr<const simpler::MappedProgram> program(const std::string& name,
                                                        std::size_t row_width);

  /// Exclusive lease on a PimMachine for the (n, m) design point; freshly
  /// constructed on pool exhaustion.  The machine comes back in whatever
  /// state the previous user left it -- `run` handlers load their own
  /// image, which re-encodes everything.
  class MachineLease {
   public:
    MachineLease(Registry& registry, std::size_t n, std::size_t m,
                 std::unique_ptr<arch::PimMachine> machine)
        : registry_(&registry), n_(n), m_(m), machine_(std::move(machine)) {}
    ~MachineLease();
    MachineLease(MachineLease&&) noexcept = default;
    MachineLease& operator=(MachineLease&&) = delete;
    MachineLease(const MachineLease&) = delete;
    MachineLease& operator=(const MachineLease&) = delete;

    [[nodiscard]] arch::PimMachine& machine() noexcept { return *machine_; }

   private:
    Registry* registry_;
    std::size_t n_;
    std::size_t m_;
    std::unique_ptr<arch::PimMachine> machine_;
  };

  /// Throws std::invalid_argument on an invalid (n, m) design point.
  [[nodiscard]] MachineLease acquire_machine(std::size_t n, std::size_t m);

  [[nodiscard]] RegistryStats stats() const;

 private:
  void release_machine(std::size_t n, std::size_t m,
                       std::unique_ptr<arch::PimMachine> machine);

  mutable std::shared_mutex mutex_;
  // Atomic so hit paths can count under the shared (reader) lock.
  struct {
    std::atomic<std::uint64_t> circuit_hits{0};
    std::atomic<std::uint64_t> circuit_misses{0};
    std::atomic<std::uint64_t> program_hits{0};
    std::atomic<std::uint64_t> program_misses{0};
    std::atomic<std::uint64_t> machine_reuses{0};
    std::atomic<std::uint64_t> machine_builds{0};
  } stats_;
  std::map<std::string, std::shared_ptr<const circuits::CircuitSpec>> circuits_;
  std::map<std::pair<std::string, std::size_t>,
           std::shared_ptr<const simpler::MappedProgram>>
      programs_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::vector<std::unique_ptr<arch::PimMachine>>>
      machines_;
};

}  // namespace pimecc::serve
