// pimecc -- serve/server.hpp
//
// The batched request engine behind `pimecc serve` and `pimecc sweep`: a
// concurrent submission queue in front of a handler that executes batches
// on the process-wide work-stealing executor (util::Executor::shared() via
// parallel_for -- no thread pool of its own, per the repo's one-substrate
// rule).  Producers submit requests and get tickets; drain_once() admits up
// to max_batch pending requests, executes them with up to `lanes` executor
// lanes, and publishes each response under its ticket; take() blocks until
// its ticket is published.
//
// Robustness contract (tests/test_serve.cpp, "Robustness" suites):
//   - Admission is bounded: with max_pending set, try_submit() returns a
//     typed kRejected admission instead of growing the queue forever, and
//     submit() throws ServeError(kRejected) -- explicit backpressure the
//     daemon surfaces to clients as an `error code=rejected` line.
//   - Requests may carry a deadline (Request::deadline_ms, measured from
//     submission).  The deadline is checked cooperatively when a batch lane
//     picks the request up: an expired request is answered with
//     kDeadlineExceeded without executing.  A request already executing
//     runs to completion (no preemption).
//   - shutdown() stops admission, fails every still-queued request with
//     kCancelled, and raises a cancel flag that in-flight batch lanes check
//     before starting each item -- so a drain in progress finishes the work
//     it started, cancels the rest, and every ticket gets a response.
//   - take() of an already-consumed ticket throws immediately (it used to
//     wait on the publication condvar forever).
//
// Determinism: a response is a pure function of its request (run requests
// carry an explicit seed), so neither the batch boundaries nor the lane
// count can change any response bit -- pinned by tests/test_serve.cpp and
// cross-checked by bench_serving across lane counts.  Deadlines are the one
// deliberate exception: a request with deadline_ms > 0 consults the steady
// clock at admission into a lane.  The default (no deadline) keeps the
// engine clock-free, and latency is measured by the bench around the queue,
// never inside it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "serve/error.hpp"
#include "serve/registry.hpp"
#include "serve/request.hpp"

namespace pimecc::serve {

struct ServerConfig {
  std::size_t max_batch = 32;    ///< admission batch size (>= 1)
  std::size_t lanes = 0;         ///< executor lanes per batch; 0 = full width
  std::size_t max_pending = 0;   ///< admission queue bound; 0 = unbounded
};

/// Outcome of one admission attempt (try_submit).  `ticket` is only
/// meaningful when `admitted`; otherwise `code` says why (kRejected for
/// backpressure or a closed server) and `message` carries the detail.
struct Admission {
  bool admitted = false;
  std::uint64_t ticket = 0;
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});

  /// Serves one request synchronously (also the per-item body of
  /// execute_batch, so batched and unbatched paths cannot diverge).
  /// Never throws: handler exceptions become Response{ok=false} with the
  /// taxonomy code (ServeError -> its code, invalid_argument/out_of_range
  /// -> kInvalidArgument, anything else -> kInternal).
  [[nodiscard]] Response execute(const Request& request);

  /// Serves a batch with up to config.lanes executor lanes; responses are
  /// positionally aligned with `requests`.
  [[nodiscard]] std::vector<Response> execute_batch(
      std::span<const Request> requests);

  // --- concurrent queue front end ----------------------------------------
  /// Attempts to enqueue a request; never throws for admission-control
  /// reasons.  The returned ticket (when admitted) is the submission index.
  [[nodiscard]] Admission try_submit(Request request);
  /// Enqueues a request; the returned ticket is its submission index.
  /// Throws ServeError(kRejected) when closed or the queue is full.
  std::uint64_t submit(Request request);
  /// Admits up to max_batch pending requests, executes them, publishes the
  /// responses.  Expired or cancelled requests are answered without
  /// executing.  Returns the number of tickets answered (0 when the queue
  /// was empty).
  std::size_t drain_once();
  /// Drains until the queue is empty; returns the total answered.
  std::size_t drain();
  /// Blocks until `ticket` is published (some thread must be draining),
  /// then removes and returns its response.  Throws ServeError:
  /// kInvalidArgument for a never-issued or already-taken ticket,
  /// kCancelled when the server closed before the response existed.
  [[nodiscard]] Response take(std::uint64_t ticket);
  /// Rejects further submits and wakes blocked take() calls.  Pending
  /// requests already submitted may still be drained and taken.
  void close();
  /// Graceful stop: close(), then fail every still-queued request with a
  /// published kCancelled response and raise the cooperative cancel flag
  /// consulted by in-flight batch lanes.  Returns the number of queued
  /// requests cancelled (in-flight items cancel asynchronously and are
  /// counted by their own kCancelled responses).  Idempotent.
  std::size_t shutdown();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] Registry& registry() noexcept { return registry_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::uint64_t ticket = 0;
    Request request;
    /// Absolute expiry computed at admission; nullopt = no deadline.
    std::optional<Clock::time_point> deadline;
  };

  Response handle(const Request& request);  // may throw; execute() wraps
  /// Marks `ticket` consumed (caller holds mutex_).  Tickets are usually
  /// taken in order, so this compacts to a floor + sparse stragglers.
  void mark_taken(std::uint64_t ticket);
  [[nodiscard]] bool is_taken(std::uint64_t ticket) const;

  ServerConfig config_;
  Registry registry_;

  mutable std::mutex mutex_;
  std::condition_variable published_cv_;
  std::deque<Pending> queue_;
  std::map<std::uint64_t, Response> responses_;
  std::uint64_t next_ticket_ = 0;
  bool closed_ = false;
  /// Every ticket below the floor has been taken; stragglers (out-of-order
  /// takes, abandoned tickets) live in the sparse set until the floor
  /// catches up.  Guarded by mutex_.
  std::uint64_t taken_floor_ = 0;
  std::set<std::uint64_t> taken_;
  /// Raised by shutdown(); batch lanes check it before starting each item.
  std::atomic<bool> cancel_{false};
};

}  // namespace pimecc::serve
