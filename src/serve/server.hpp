// pimecc -- serve/server.hpp
//
// The batched request engine behind `pimecc serve` and `pimecc sweep`: a
// concurrent submission queue in front of a handler that executes batches
// on the process-wide work-stealing executor (util::Executor::shared() via
// parallel_for -- no thread pool of its own, per the repo's one-substrate
// rule).  Producers submit requests and get tickets; drain_once() admits up
// to max_batch pending requests, executes them with up to `lanes` executor
// lanes, and publishes each response under its ticket; take() blocks until
// its ticket is published.
//
// Determinism: a response is a pure function of its request (run requests
// carry an explicit seed), so neither the batch boundaries nor the lane
// count can change any response bit -- pinned by tests/test_serve.cpp and
// cross-checked by bench_serving across lane counts.  Latency is measured
// by the bench around the queue, never inside it, so the engine itself
// stays clock-free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "serve/registry.hpp"
#include "serve/request.hpp"

namespace pimecc::serve {

struct ServerConfig {
  std::size_t max_batch = 32;  ///< admission batch size (>= 1)
  std::size_t lanes = 0;       ///< executor lanes per batch; 0 = full width
};

class Server {
 public:
  explicit Server(ServerConfig config = {});

  /// Serves one request synchronously (also the per-item body of
  /// execute_batch, so batched and unbatched paths cannot diverge).
  /// Never throws: handler exceptions become Response{ok=false}.
  [[nodiscard]] Response execute(const Request& request);

  /// Serves a batch with up to config.lanes executor lanes; responses are
  /// positionally aligned with `requests`.
  [[nodiscard]] std::vector<Response> execute_batch(
      std::span<const Request> requests);

  // --- concurrent queue front end ----------------------------------------
  /// Enqueues a request; the returned ticket is its submission index.
  /// Throws std::runtime_error after close().
  std::uint64_t submit(Request request);
  /// Admits up to max_batch pending requests, executes them, publishes the
  /// responses.  Returns the number served (0 when the queue was empty).
  std::size_t drain_once();
  /// Drains until the queue is empty; returns the total served.
  std::size_t drain();
  /// Blocks until `ticket` is published (some thread must be draining),
  /// then removes and returns its response.  Throws std::runtime_error if
  /// the server is closed while the ticket is still unserved.
  [[nodiscard]] Response take(std::uint64_t ticket);
  /// Rejects further submits and wakes blocked take() calls.  Pending
  /// requests already submitted may still be drained and taken.
  void close();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] Registry& registry() noexcept { return registry_; }

 private:
  Response handle(const Request& request);  // may throw; execute() wraps

  ServerConfig config_;
  Registry registry_;

  mutable std::mutex mutex_;
  std::condition_variable published_cv_;
  std::deque<std::pair<std::uint64_t, Request>> queue_;
  std::map<std::uint64_t, Response> responses_;
  std::uint64_t next_ticket_ = 0;
  bool closed_ = false;
};

}  // namespace pimecc::serve
